"""HTTP surface: start, submit, poll, fetch - plus error statuses."""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import ResultCache
from repro.service.adapters import run_job_naive
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobState, JobStore
from repro.service.server import ServiceThread
from tests.service.test_adapters import CHEAP_MARGINS


@pytest.fixture
def service(tmp_path):
    with ServiceThread(cache=ResultCache(tmp_path), window_ms=10) as svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(*service.address)


class TestEndpoints:
    def test_health_and_experiments(self, client):
        assert client.health()
        assert "margins" in client.experiments()

    def test_submit_poll_fetch_roundtrip(self, client):
        job = client.submit("margins", CHEAP_MARGINS)
        assert job["state"] in ("queued", "running")
        artifact = client.wait(job["id"], timeout=300)
        naive = run_job_naive("margins", CHEAP_MARGINS)
        assert json.dumps(artifact, sort_keys=True) == \
            json.dumps(naive, sort_keys=True)
        status = client.status(job["id"])
        assert status["state"] == "done"
        assert status["items"] == 4
        assert any(entry["id"] == job["id"] for entry in client.jobs())

    def test_concurrent_submissions_coalesce(self, client):
        first = client.submit("figure15", {})
        second = client.submit("figure15", {})
        a = client.wait(first["id"], timeout=300)
        b = client.wait(second["id"], timeout=300)
        assert a == b
        status = client.status(second["id"])
        assert status["coalesced"] + status["cache_hits"] == 1
        stats = client.stats()
        assert stats["jobs"] == 2

    def test_result_before_done_is_409(self, client, service):
        job = service.engine.store.create("margins", {})  # never started
        with pytest.raises(ServiceError) as err:
            client.result(job.id)
        assert err.value.status == 409

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("missing-job")
        assert err.value.status == 404

    def test_bad_experiment_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("warp", {})
        assert err.value.status == 400

    def test_malformed_body_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/jobs", {"params": {}})
        assert err.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/nope")
        assert err.value.status == 404

    def test_method_not_allowed_is_405(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/jobs/123")
        assert err.value.status == 405

    def test_failed_job_surfaces_error(self, client):
        job = client.submit("figure14", {
            "scale": 0.3, "workloads": ["vvadd"],
            "designs": ["ndro_rf", "hiperrf"], "max_instructions": 10})
        with pytest.raises(ServiceError, match="instruction limit"):
            client.wait(job["id"], timeout=300)


class TestJobStore:
    def test_trim_drops_oldest_terminal(self):
        store = JobStore(max_finished=2)
        done = [store.create("e", {}) for _ in range(3)]
        for job in done:
            job.finish({"ok": True})
        live = store.create("e", {})
        store.create("e", {}).finish({})  # 4th terminal triggers trim
        ids = {job.id for job in store.list()}
        assert live.id in ids
        assert done[0].id not in ids  # oldest terminal went first

    def test_snapshot_is_jsonable(self):
        store = JobStore()
        job = store.create("margins", {"scales": [1.0]})
        job.start()
        job.finish({"x": 1})
        snap = job.snapshot()
        json.dumps(snap)
        assert snap["state"] == JobState.DONE.value
        assert snap["latency_s"] is not None
