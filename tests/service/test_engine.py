"""Coalescing engine: windows, dedup, caching, failure handling."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments.parallel import ResultCache
from repro.service.adapters import run_job_naive
from repro.service.engine import CoalescingEngine
from tests.service.test_adapters import CHEAP_MARGINS


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_submit_before_start_rejected(self):
        engine = CoalescingEngine(cache=None)
        with pytest.raises(RuntimeError, match="not started"):
            engine.submit("figure15", {})

    def test_bad_request_creates_no_job(self, tmp_path):
        async def main():
            async with CoalescingEngine(cache=ResultCache(tmp_path)) as eng:
                with pytest.raises(ValueError):
                    eng.submit("margins", {"scales": []})
                assert len(eng.store) == 0

        run(main())


class TestCoalescing:
    def test_identical_jobs_collapse_and_match_naive(self, tmp_path):
        async def main():
            cache = ResultCache(tmp_path)
            async with CoalescingEngine(cache=cache, window_ms=10) as eng:
                first = eng.submit("margins", CHEAP_MARGINS)
                second = eng.submit("margins", CHEAP_MARGINS)
                await eng.wait(first)
                await eng.wait(second)
                return first, second, eng.stats()

        first, second, stats = run(main())
        assert first.state.value == "done", first.error
        assert first.result == second.result
        # the duplicate job led nothing: all four items coalesced
        assert second.coalesced == 4 and second.computed == 0
        # grouped dispatch: 4 items crossed in 2 topology batches
        assert stats["dispatches"] == 2
        assert stats["largest_group"] == 2
        naive = run_job_naive("margins", CHEAP_MARGINS)
        assert json.dumps(first.result, sort_keys=True) == \
            json.dumps(naive, sort_keys=True)

    def test_second_round_serves_from_cache(self, tmp_path):
        async def main():
            cache = ResultCache(tmp_path)
            async with CoalescingEngine(cache=cache, window_ms=5) as eng:
                cold = await eng.run("margins", CHEAP_MARGINS)
                warm = await eng.run("margins", CHEAP_MARGINS)
                return cold, warm

        cold, warm = run(main())
        assert cold.computed == 4 and cold.cache_hits == 0
        assert warm.cache_hits == 4 and warm.computed == 0
        assert warm.result == cold.result

    def test_cache_persists_across_engines(self, tmp_path):
        async def once():
            async with CoalescingEngine(cache=ResultCache(tmp_path),
                                        window_ms=5) as eng:
                return await eng.run("margins", CHEAP_MARGINS)

        cold = run(once())
        warm = run(once())
        assert cold.computed == 4
        assert warm.cache_hits == 4  # a restart costs nothing
        assert warm.result == cold.result

    def test_zero_window_still_dedups(self, tmp_path):
        async def main():
            async with CoalescingEngine(cache=ResultCache(tmp_path),
                                        window_ms=0) as eng:
                first = eng.submit("figure15", {})
                second = eng.submit("figure15", {})
                await eng.wait(first)
                await eng.wait(second)
                return first, second

        first, second = run(main())
        assert first.state.value == "done", first.error
        assert second.coalesced + second.cache_hits == 1

    def test_stats_report_pulse_lane_occupancy(self):
        from repro.service.adapters import PULSE_LANE_METRICS

        PULSE_LANE_METRICS.reset()

        async def main():
            async with CoalescingEngine(cache=None, window_ms=10) as eng:
                first = eng.submit("pulse_rf", {"pattern": [[1, 3]]})
                second = eng.submit("pulse_rf", {"pattern": [[2, 5]]})
                await eng.wait(first)
                await eng.wait(second)
                return first, second, eng.stats()

        first, second, stats = run(main())
        assert first.state.value == "done", first.error
        assert second.state.value == "done", second.error
        lanes = stats["pulse_lanes"]
        # Two strangers' items share the build key: one coalesced
        # dispatch carrying both lanes.
        assert lanes["dispatches"] == 1
        assert lanes["lanes_total"] == 2
        assert lanes["batches_coalesced"] == 1
        assert lanes["lanes_max"] == 2
        assert lanes["lanes_p50"] == 2.0

    def test_engine_without_cache_still_coalesces(self):
        async def main():
            async with CoalescingEngine(cache=None, window_ms=10) as eng:
                first = eng.submit("figure15", {})
                second = eng.submit("figure15", {})
                await eng.wait(first)
                await eng.wait(second)
                return first, second

        first, second = run(main())
        assert first.state.value == "done", first.error
        assert second.coalesced == 1
        assert first.result == second.result


class TestFailure:
    def test_dispatch_error_fails_every_waiting_job(self, tmp_path):
        bad = dict(CHEAP_MARGINS, scales=[1.0], write_counts=[5])

        async def main():
            async with CoalescingEngine(cache=ResultCache(tmp_path),
                                        window_ms=10) as eng:
                first = eng.submit("margins", bad)
                second = eng.submit("margins", bad)
                await eng.wait(first)
                await eng.wait(second)
                return first, second

        first, second = run(main())
        # HC-DRO cells store at most 3 fluxons: writes=5 cannot verify
        # correctly but must fail loudly, on both the leader and the
        # coalesced duplicate, leaving the engine serviceable.
        for job in (first, second):
            assert job.state.value in ("done", "failed")
            assert job.terminal

    def test_failed_job_reports_error_string(self, tmp_path):
        async def main():
            async with CoalescingEngine(cache=ResultCache(tmp_path),
                                        window_ms=0) as eng:
                job = eng.submit("figure14", {
                    "scale": 0.3, "workloads": ["vvadd"],
                    "designs": ["ndro_rf", "hiperrf"],
                    "max_instructions": 10})  # cap too low: cannot finish
                await eng.wait(job)
                return job

        job = run(main())
        assert job.state.value == "failed"
        assert "instruction limit" in (job.error or "")
