"""Decomposition, dispatch grouping, and the naive comparator."""

from __future__ import annotations

import json

import pytest

from repro.service.adapters import (
    CPU_LANE_METRICS,
    PULSE_LANE_METRICS,
    SUPPORTED_EXPERIMENTS,
    cpu_lane_stats,
    decompose,
    dispatch_group,
    jsonable,
    pulse_lane_stats,
    run_job_naive,
)

#: Cheap HC-DRO operating points: short settle/spacing keep a scalar
#: transient in the ~100 ms range instead of seconds.
CHEAP_MARGINS = {"scales": [0.95, 1.0], "write_counts": [0, 2], "reads": 2,
                 "settle_ps": 10.0, "pulse_spacing_ps": 15.0}


class TestRegistry:
    def test_supported_experiments(self):
        assert "figure14" in SUPPORTED_EXPERIMENTS
        assert "margins" in SUPPORTED_EXPERIMENTS
        assert SUPPORTED_EXPERIMENTS == tuple(sorted(SUPPORTED_EXPERIMENTS))

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            decompose("nope", {})


class TestJsonable:
    def test_dataclass_enum_and_tuple(self):
        import dataclasses
        import enum

        class Color(enum.Enum):
            RED = "red"

        @dataclasses.dataclass
        class Point:
            x: int
            tags: tuple

        out = jsonable({"p": Point(1, ("a",)), "c": Color.RED, 2.5: "k"})
        assert out == {"p": {"x": 1, "tags": ["a"]}, "c": "red", "2.5": "k"}
        json.dumps(out)  # wire-safe

    def test_numpy_scalars(self):
        import numpy as np

        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable([np.int64(3)]) == [3]


class TestMarginsAdapter:
    def test_items_group_by_topology(self):
        job = decompose("margins", CHEAP_MARGINS)
        assert len(job.items) == 4  # 2 scales x 2 write counts
        groups = {item.group for item in job.items}
        assert len(groups) == 2  # one per write count (reads/timestep equal)
        assert all(item.kind == "hcdro" for item in job.items)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            decompose("margins", {"scales": []})

    def test_naive_equals_grouped_dispatch(self):
        job = decompose("margins", CHEAP_MARGINS)
        by_group = {}
        for item in job.items:
            by_group.setdefault(item.group, []).append(item)
        values = {}
        for group_items in by_group.values():
            outs = dispatch_group("hcdro", [i.payload for i in group_items])
            for item, out in zip(group_items, outs):
                values[item.digest()] = out
        batched = job.recompose([values[item.digest()]
                                 for item in job.items])
        naive = run_job_naive("margins", CHEAP_MARGINS)
        assert json.dumps(batched, sort_keys=True) == \
            json.dumps(naive, sort_keys=True)


class TestFigure14Adapter:
    def test_key_matches_cli_cache_contract(self):
        """Service items must hit the same figure14-v1 entries the CLI
        sweep writes, so the two front-ends share warm caches."""
        from repro.cpu import CoreConfig
        from repro.experiments.parallel import stable_key

        job = decompose("figure14", {"scale": 0.3, "workloads": ["vvadd"],
                                     "designs": ["ndro_rf", "hiperrf"]})
        item = job.items[0]
        assert item.namespace == "figure14-v1"
        cli_key = ("vvadd", 0.3, ["ndro_rf", "hiperrf"], CoreConfig(),
                   400_000)
        assert stable_key(item.key) == stable_key(cli_key)

    def test_baseline_design_always_present(self):
        job = decompose("figure14", {"workloads": ["vvadd"],
                                     "designs": ["hiperrf"]})
        assert "ndro_rf" in job.items[0].payload[2]

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            decompose("figure14", {"designs": ["warp_drive"]})

    def test_design_union_dispatch_matches_naive(self):
        """Two strangers' design sets replay one tape; each must get the
        exact rows a solo run would have produced."""
        a = decompose("figure14", {"scale": 0.3, "workloads": ["vvadd"],
                                   "designs": ["ndro_rf", "hiperrf"]})
        b = decompose("figure14", {"scale": 0.3, "workloads": ["vvadd"],
                                   "designs": ["ndro_rf",
                                               "dual_bank_hiperrf"]})
        merged = dispatch_group("cpu", [a.items[0].payload,
                                        b.items[0].payload])
        naive_a = run_job_naive("figure14",
                                {"scale": 0.3, "workloads": ["vvadd"],
                                 "designs": ["ndro_rf", "hiperrf"]})
        assert a.recompose([merged[0]]) == naive_a
        assert set(merged[1]["overhead_percent"]) == {"dual_bank_hiperrf"}

    def test_lane_batched_group_matches_solo(self):
        """A coalesced design-union dispatch (one lane batch) must hand
        each item the bitwise-identical value a solo dispatch returns."""
        a = decompose("figure14", {"scale": 0.3, "workloads": ["towers"],
                                   "designs": ["ndro_rf", "hiperrf"]})
        b = decompose("figure14", {"scale": 0.3, "workloads": ["towers"],
                                   "designs": ["ndro_rf",
                                               "dual_bank_hiperrf_ideal"]})
        merged = dispatch_group("cpu", [a.items[0].payload,
                                        b.items[0].payload])
        solo_a = dispatch_group("cpu", [a.items[0].payload])
        solo_b = dispatch_group("cpu", [b.items[0].payload])
        assert merged[0] == solo_a[0]
        assert merged[1] == solo_b[0]

    def test_cpu_lane_metrics_record_design_union(self):
        CPU_LANE_METRICS.reset()
        a = decompose("figure14", {"scale": 0.3, "workloads": ["vvadd"],
                                   "designs": ["ndro_rf", "hiperrf"]})
        b = decompose("figure14", {"scale": 0.3, "workloads": ["vvadd"],
                                   "designs": ["ndro_rf",
                                               "dual_bank_hiperrf"]})
        dispatch_group("cpu", [a.items[0].payload, b.items[0].payload])
        dispatch_group("cpu", [a.items[0].payload])
        stats = cpu_lane_stats()
        assert stats["dispatches"] == 2
        assert stats["lanes_total"] == 5   # 3-design union, then 2 solo
        assert stats["batches_coalesced"] == 2
        assert stats["lanes_max"] == 3


class TestPulseAdapter:
    def test_roundtrip_and_validation(self):
        out = run_job_naive("pulse_rf", {"registers": 4, "width": 4,
                                         "pattern": [[1, 5], [3, 9]]})
        assert out["stored"] == {"1": 5, "3": 9}
        assert out["read"] == {"1": 5, "3": 9}
        with pytest.raises(ValueError, match="register"):
            decompose("pulse_rf", {"registers": 2, "pattern": [[5, 1]]})
        with pytest.raises(ValueError, match="bits"):
            decompose("pulse_rf", {"width": 2, "pattern": [[1, 99]]})

    def test_same_geometry_shares_one_group(self):
        a = decompose("pulse_rf", {"pattern": [[1, 1]]})
        b = decompose("pulse_rf", {"pattern": [[2, 2]]})
        assert a.items[0].group == b.items[0].group
        assert a.items[0].digest() != b.items[0].digest()

    def test_lane_batched_group_matches_solo(self):
        """Strangers coalesced into one lane batch must each get the
        exact artifact a solo dispatch would have produced."""
        params_a = {"pattern": [[1, 5], [2, 9]]}
        params_b = {"pattern": [[3, 0xE4], [3, 0x1B]]}
        a = decompose("pulse_rf", params_a)
        b = decompose("pulse_rf", params_b)
        merged = dispatch_group("pulse", [a.items[0].payload,
                                          b.items[0].payload])
        assert a.recompose([merged[0]]) == run_job_naive("pulse_rf",
                                                         params_a)
        assert b.recompose([merged[1]]) == run_job_naive("pulse_rf",
                                                         params_b)

    def test_lane_metrics_record_occupancy(self):
        PULSE_LANE_METRICS.reset()
        payloads = [decompose("pulse_rf", {"pattern": [[r, r]]})
                    .items[0].payload for r in (1, 2, 3)]
        dispatch_group("pulse", payloads)      # one 3-lane batch
        dispatch_group("pulse", payloads[:1])  # one singleton
        stats = pulse_lane_stats()
        assert stats["dispatches"] == 2
        assert stats["lanes_total"] == 4
        assert stats["batches_coalesced"] == 1
        assert stats["lanes_max"] == 3
        assert stats["lanes_p50"] == 1.0
        assert stats["lanes_p95"] == 3.0

    def test_lane_metrics_empty_snapshot(self):
        PULSE_LANE_METRICS.reset()
        stats = pulse_lane_stats()
        assert stats["dispatches"] == 0
        assert stats["lanes_p50"] == 0.0
