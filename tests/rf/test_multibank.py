"""Tests for the N-way banked HiPerRF generalisation."""

import pytest

from repro.cpu import RFTimingModel
from repro.errors import ConfigError
from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.multibank import MultiBankHiPerRF

GEO = RFGeometry(32, 32)


class TestStructure:
    def test_two_banks_match_dual_bank_design(self):
        """The generalisation must reproduce Section V's design exactly."""
        assert MultiBankHiPerRF(GEO, banks=2).jj_count() == \
            DualBankHiPerRF(GEO).jj_count()

    def test_one_bank_close_to_single_port(self):
        single = HiPerRF(GEO).jj_count()
        one_bank = MultiBankHiPerRF(GEO, banks=1).jj_count()
        assert one_bank == single  # no glue for a single bank

    def test_jj_premium_grows_with_banks(self):
        counts = [MultiBankHiPerRF(GEO, banks=b).jj_count()
                  for b in (1, 2, 4, 8)]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_readout_shrinks_with_banks(self):
        delays = [MultiBankHiPerRF(GEO, banks=b).readout_delay_ps()
                  for b in (1, 2, 4, 8)]
        assert delays == sorted(delays, reverse=True)

    def test_eight_banks_beat_baseline_readout(self):
        assert MultiBankHiPerRF(GEO, banks=8).readout_delay_ps() < \
            NdroRegisterFile(GEO).readout_delay_ps()

    def test_port_counts(self):
        design = MultiBankHiPerRF(GEO, banks=4)
        assert design.read_ports == design.write_ports == 4

    @pytest.mark.parametrize("banks", [0, 3, 5, 32])
    def test_invalid_bank_counts(self, banks):
        with pytest.raises(ConfigError):
            MultiBankHiPerRF(GEO, banks=banks)

    def test_bank_of_modulo(self):
        design = MultiBankHiPerRF(GEO, banks=4)
        assert design.bank_of(5) == 1
        assert design.bank_of(8) == 0
        with pytest.raises(ConfigError):
            design.bank_of(-1)

    def test_issue_cycles_rule(self):
        design = MultiBankHiPerRF(GEO, banks=4)
        assert design.issue_cycles((1, 2)) == 2     # different banks
        assert design.issue_cycles((2, 6)) == 4     # same bank mod 4
        assert design.issue_cycles((3, 3)) == 2     # RAR dedup

    def test_same_bank_probability(self):
        assert MultiBankHiPerRF(GEO, banks=8).same_bank_pair_probability() \
            == pytest.approx(1 / 8)


class TestCpuModelIntegration:
    def test_generic_names_resolve(self):
        for banks in (2, 4, 8):
            model = RFTimingModel.for_design(f"hiperrf_x{banks}")
            assert model.readout_cycles > 0
            assert model.has_loopback

    def test_bank_collision_rules_in_timing_model(self):
        x4 = RFTimingModel.for_design("hiperrf_x4")
        assert x4.issue_gap_gates((2, 6), 1) == 8    # same bank mod 4
        assert x4.issue_gap_gates((1, 2), 1) == 4
        assert x4.read_slots_gates((2, 6)) == (2, 6)
        assert x4.read_slots_gates((1, 2)) == (2, 2)

    def test_more_banks_fewer_conflicts(self):
        """x8 treats (2,6) as cross-bank where x4 serialises it."""
        x8 = RFTimingModel.for_design("hiperrf_x8")
        assert x8.issue_gap_gates((2, 6), 1) == 4

    def test_unknown_name_still_rejected(self):
        with pytest.raises(ConfigError):
            RFTimingModel.for_design("hiperrf_y4")
