"""Tests for the dynamic switching-energy model."""

import pytest

from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.energy import (
    E_SWITCH_AJ,
    E_SWITCH_J,
    access_energy,
    workload_rf_energy_aj,
)

GEO = RFGeometry(32, 32)


class TestSwitchEnergy:
    def test_paper_order_of_magnitude(self):
        # Section I: "little switching energy dissipation (~1e-19 J)".
        assert 1e-19 < E_SWITCH_J < 5e-19

    def test_aj_conversion(self):
        assert E_SWITCH_AJ == pytest.approx(E_SWITCH_J * 1e18)


class TestAccessEnergy:
    def test_all_positive(self):
        for cls in (NdroRegisterFile, HiPerRF, DualBankHiPerRF):
            energy = access_energy(cls(GEO))
            assert energy.read_aj > 0
            assert energy.write_aj > 0

    def test_baseline_has_no_loopback_energy(self):
        energy = access_energy(NdroRegisterFile(GEO))
        assert energy.loopback_aj == 0.0
        assert energy.effective_read_aj == energy.read_aj

    def test_hiperrf_reads_cost_more_effectively(self):
        """The loopback write makes every HiPerRF read more expensive
        dynamically - the flip side of its static-power win."""
        base = access_energy(NdroRegisterFile(GEO))
        hiper = access_energy(HiPerRF(GEO))
        assert hiper.effective_read_aj > 1.2 * base.read_aj

    def test_banked_reads_cheaper_than_unbanked(self):
        hiper = access_energy(HiPerRF(GEO))
        dual = access_energy(DualBankHiPerRF(GEO))
        assert dual.effective_read_aj < hiper.effective_read_aj

    def test_dynamic_energy_negligible_vs_static(self):
        """Why the paper reports static power only: at 1 GOPS the dynamic
        RF power is micro-watt-scale against ~4 mW of bias power."""
        energy = access_energy(HiPerRF(GEO))
        dynamic_power_uw = energy.effective_read_aj * 1e-18 * 1e9 * 1e6
        static_power_uw = HiPerRF(GEO).static_power_uw()
        assert dynamic_power_uw < 0.01 * static_power_uw


class TestWorkloadEnergy:
    def test_accumulates_linearly(self):
        design = HiPerRF(GEO)
        one = workload_rf_energy_aj(design, reads=1, writes=1)
        ten = workload_rf_energy_aj(design, reads=10, writes=10)
        assert ten == pytest.approx(10 * one)

    def test_zero_accesses(self):
        assert workload_rf_energy_aj(NdroRegisterFile(GEO), 0, 0) == 0.0
