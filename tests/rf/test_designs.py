"""Tests for the three register file design models against the paper's tables.

Absolute-number tolerances are deliberately loose (a few percent): the
paper's numbers come from a proprietary cell library; what must hold is
the *shape* - orderings, ratios to baseline, growth with size (DESIGN.md
Section 5 documents the calibration).
"""

import pytest

from repro.rf import (
    DualBankHiPerRF,
    HiPerRF,
    NdroRegisterFile,
    RFGeometry,
    compare_designs,
)

GEOS = {label: RFGeometry(n, w)
        for label, (n, w) in {"4x4": (4, 4), "16x16": (16, 16),
                              "32x32": (32, 32)}.items()}

PAPER_JJ = {
    "ndro_rf": {"4x4": 784, "16x16": 9850, "32x32": 36722},
    "hiperrf": {"4x4": 695, "16x16": 5195, "32x32": 16133},
    "dual_bank_hiperrf": {"4x4": 736, "16x16": 5626, "32x32": 17094},
}
PAPER_POWER = {
    "ndro_rf": {"4x4": 170.73, "16x16": 1997.49, "32x32": 7262.17},
    "hiperrf": {"4x4": 149.16, "16x16": 1220.05, "32x32": 3911.00},
    "dual_bank_hiperrf": {"4x4": 148.47, "16x16": 1289.89, "32x32": 4077.88},
}
PAPER_DELAY = {
    "ndro_rf": {"4x4": 77.0, "16x16": 144.0, "32x32": 177.5},
    "hiperrf": {"4x4": 122.8, "16x16": 187.8, "32x32": 220.3},
    "dual_bank_hiperrf": {"4x4": 94.8, "16x16": 159.8, "32x32": 192.3},
}
DESIGNS = {
    "ndro_rf": NdroRegisterFile,
    "hiperrf": HiPerRF,
    "dual_bank_hiperrf": DualBankHiPerRF,
}


def _all_cases():
    return [(name, label) for name in DESIGNS for label in GEOS]


class TestTable1JJCounts:
    @pytest.mark.parametrize("design,label", _all_cases())
    def test_jj_count_matches_paper(self, design, label):
        model = DESIGNS[design](GEOS[label])
        paper = PAPER_JJ[design][label]
        assert model.jj_count() == pytest.approx(paper, rel=0.09)

    def test_headline_56_percent_saving(self):
        # Abstract: 32x32 HiPerRF cuts the RF JJ count by 56.1%.
        baseline = NdroRegisterFile(GEOS["32x32"])
        hiperrf = HiPerRF(GEOS["32x32"])
        saving = 1 - hiperrf.jj_count() / baseline.jj_count()
        assert saving == pytest.approx(0.561, abs=0.02)

    def test_advantage_grows_with_size(self):
        # Section VI-A: the relative advantage grows with RF size.
        ratios = []
        for label in ("4x4", "16x16", "32x32"):
            ratios.append(HiPerRF(GEOS[label]).jj_count()
                          / NdroRegisterFile(GEOS[label]).jj_count())
        assert ratios[0] > ratios[1] > ratios[2]

    def test_dual_bank_costs_more_than_single(self):
        for label, geo in GEOS.items():
            assert DualBankHiPerRF(geo).jj_count() > HiPerRF(geo).jj_count()

    def test_dual_bank_far_cheaper_than_true_two_port(self):
        # Section V: a true 2R2W HiPerRF would nearly triple the JJs; the
        # banked design must stay well under 2x the single-port design.
        geo = GEOS["32x32"]
        assert DualBankHiPerRF(geo).jj_count() < 1.5 * HiPerRF(geo).jj_count()


class TestTable2StaticPower:
    @pytest.mark.parametrize("design,label", _all_cases())
    def test_power_matches_paper(self, design, label):
        model = DESIGNS[design](GEOS[label])
        paper = PAPER_POWER[design][label]
        assert model.static_power_uw() == pytest.approx(paper, rel=0.05)

    def test_headline_46_percent_power_saving(self):
        # Abstract: 46.2% static power reduction at 32x32.
        baseline = NdroRegisterFile(GEOS["32x32"])
        hiperrf = HiPerRF(GEOS["32x32"])
        saving = 1 - hiperrf.static_power_uw() / baseline.static_power_uw()
        assert saving == pytest.approx(0.462, abs=0.03)


class TestTable3ReadoutDelay:
    @pytest.mark.parametrize("design,label", _all_cases())
    def test_delay_matches_paper(self, design, label):
        model = DESIGNS[design](GEOS[label])
        paper = PAPER_DELAY[design][label]
        assert model.readout_delay_ps() == pytest.approx(paper, rel=0.08)

    def test_hiperrf_slower_than_baseline(self):
        # The LoopBuffer sits on the read path: HiPerRF must lose on delay.
        for label, geo in GEOS.items():
            assert HiPerRF(geo).readout_delay_ps() > \
                NdroRegisterFile(geo).readout_delay_ps()

    def test_dual_bank_recovers_most_delay(self):
        # Section VI-A: dual-banking cuts the delay overhead to ~8% at 32x32.
        geo = GEOS["32x32"]
        base = NdroRegisterFile(geo).readout_delay_ps()
        dual = DualBankHiPerRF(geo).readout_delay_ps()
        single = HiPerRF(geo).readout_delay_ps()
        assert base < dual < single
        assert (dual - base) / base < 0.12

    def test_delay_overhead_shrinks_with_size(self):
        overheads = []
        for label in ("4x4", "16x16", "32x32"):
            geo = GEOS[label]
            overheads.append(HiPerRF(geo).readout_delay_ps()
                             / NdroRegisterFile(geo).readout_delay_ps())
        assert overheads[0] > overheads[1] > overheads[2]


class TestDesignInterfaces:
    def test_cycle_time_is_53ps(self):
        for cls in DESIGNS.values():
            assert cls(GEOS["32x32"]).cycle_time_ps == 53.0

    def test_ports(self):
        geo = GEOS["32x32"]
        assert NdroRegisterFile(geo).read_ports == 1
        assert HiPerRF(geo).write_ports == 1
        assert DualBankHiPerRF(geo).read_ports == 2
        assert DualBankHiPerRF(geo).write_ports == 2

    def test_loopback_only_on_hiperrf_designs(self):
        geo = GEOS["32x32"]
        assert NdroRegisterFile(geo).loopback_path() is None
        assert HiPerRF(geo).loopback_path() is not None
        assert DualBankHiPerRF(geo).loopback_path() is not None

    def test_census_is_cached(self):
        design = HiPerRF(GEOS["16x16"])
        assert design.census() is design.census()

    def test_summary_keys(self):
        summary = HiPerRF(GEOS["16x16"]).summary()
        for key in ("jj_count", "static_power_uw", "readout_delay_ps",
                    "cycle_time_ps", "loopback_delay_ps"):
            assert key in summary

    def test_bank_of_parity(self):
        assert DualBankHiPerRF.bank_of(3) == 1
        assert DualBankHiPerRF.bank_of(8) == 0
        with pytest.raises(ValueError):
            DualBankHiPerRF.bank_of(-1)

    def test_compare_designs(self):
        geo = GEOS["32x32"]
        cmp = compare_designs(NdroRegisterFile(geo), HiPerRF(geo))
        assert cmp.jj_percent_of_baseline == pytest.approx(43.93, abs=2.0)
        assert cmp.power_percent_of_baseline == pytest.approx(53.85, abs=3.0)
        assert cmp.delay_percent_of_baseline == pytest.approx(124.11, abs=3.0)

    def test_compare_designs_geometry_mismatch(self):
        with pytest.raises(ValueError):
            compare_designs(NdroRegisterFile(GEOS["4x4"]), HiPerRF(GEOS["16x16"]))


class TestCriticalPathStructure:
    def test_path_describes(self):
        text = HiPerRF(GEOS["32x32"]).readout_path().describe()
        assert "LoopBuffer" in text
        assert "total" in text

    def test_readout_hops_match_paper_wire_deltas(self):
        # Table IV deltas / 2.62 ps: 15, 19 and 17 hops.
        assert NdroRegisterFile(GEOS["32x32"]).readout_path().hop_count() == 15
        assert HiPerRF(GEOS["32x32"]).readout_path().hop_count() == 19
        assert DualBankHiPerRF(GEOS["32x32"]).readout_path().hop_count() == 17

    def test_pure_offsets_have_no_gates(self):
        path = HiPerRF(GEOS["32x32"]).readout_path()
        trains = [e for e in path.elements if "train" in e.label]
        assert trains and all(e.gate_count == 0 for e in trains)
