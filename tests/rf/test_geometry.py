"""Tests for register file geometry."""

import pytest

from repro.errors import ConfigError
from repro.rf.geometry import RFGeometry, log2_int


class TestLog2Int:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (4, 2),
                                                (32, 5), (1024, 10)])
    def test_exact(self, value, expected):
        assert log2_int(value) == expected

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 33])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ConfigError):
            log2_int(value)


class TestRFGeometry:
    def test_paper_geometries(self):
        for n, w in ((4, 4), (16, 16), (32, 32)):
            geo = RFGeometry(n, w)
            assert geo.total_bits == n * w
            assert geo.hc_cells_per_register == w // 2

    def test_select_bits(self):
        assert RFGeometry(32, 32).select_bits == 5
        assert RFGeometry(4, 4).select_bits == 2

    def test_label(self):
        assert RFGeometry(16, 16).label() == "16x16"

    def test_halved(self):
        half = RFGeometry(32, 32).halved()
        assert half.num_registers == 16
        assert half.width_bits == 32

    def test_halved_too_small(self):
        with pytest.raises(ConfigError):
            RFGeometry(2, 4).halved()

    @pytest.mark.parametrize("n,w", [(3, 4), (0, 4), (1, 4), (4, 3), (4, 0), (4, 1)])
    def test_invalid_shapes(self, n, w):
        with pytest.raises(ConfigError):
            RFGeometry(n, w)

    def test_frozen(self):
        geo = RFGeometry(4, 4)
        with pytest.raises(AttributeError):
            geo.num_registers = 8
