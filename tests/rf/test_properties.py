"""Property-based tests on register file design invariants."""

from hypothesis import given, settings, strategies as st

from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.census import demux_census, fanout_splitters, \
    merger_tree_mergers
from repro.rf.timing import Instr, issue_cycles_for, schedule_dual_bank, \
    schedule_hiperrf, schedule_ndro

geometries = st.builds(
    RFGeometry,
    num_registers=st.sampled_from([2, 4, 8, 16, 32, 64]),
    width_bits=st.sampled_from([2, 4, 8, 16, 32, 64]),
)

bankable_geometries = st.builds(
    RFGeometry,
    num_registers=st.sampled_from([4, 8, 16, 32, 64]),
    width_bits=st.sampled_from([2, 4, 8, 16, 32, 64]),
)


class TestDesignInvariants:
    @settings(max_examples=30, deadline=None)
    @given(geometry=geometries)
    def test_costs_positive_and_consistent(self, geometry):
        for cls in (NdroRegisterFile, HiPerRF):
            design = cls(geometry)
            assert design.jj_count() > 0
            assert design.static_power_uw() > 0
            assert design.readout_delay_ps() > 0
            # Census roll-up must equal the design-level accessors.
            assert design.census().jj_count() == design.jj_count()

    @settings(max_examples=30, deadline=None)
    @given(geometry=geometries)
    def test_storage_jj_counts(self, geometry):
        # The baseline holds exactly n*w NDRO cells; HiPerRF n*w/2 HC-DRO.
        baseline = NdroRegisterFile(geometry).census()
        hiperrf = HiPerRF(geometry).census()
        assert baseline.count("ndro") == geometry.total_bits
        assert hiperrf.count("hcdro") == geometry.total_bits // 2

    @settings(max_examples=30, deadline=None)
    @given(geometry=geometries)
    def test_jj_monotone_in_width(self, geometry):
        if geometry.width_bits >= 64:
            return
        wider = RFGeometry(geometry.num_registers, geometry.width_bits * 2)
        for cls in (NdroRegisterFile, HiPerRF):
            assert cls(wider).jj_count() > cls(geometry).jj_count()

    @settings(max_examples=30, deadline=None)
    @given(geometry=bankable_geometries)
    def test_dual_bank_between_1x_and_2x(self, geometry):
        single = HiPerRF(geometry).jj_count()
        dual = DualBankHiPerRF(geometry).jj_count()
        assert single < dual < 2.2 * single

    @settings(max_examples=30, deadline=None)
    @given(geometry=bankable_geometries)
    def test_hiperrf_always_slower_readout(self, geometry):
        assert HiPerRF(geometry).readout_delay_ps() > \
            NdroRegisterFile(geometry).readout_delay_ps()
        assert DualBankHiPerRF(geometry).readout_delay_ps() < \
            HiPerRF(geometry).readout_delay_ps()


class TestStructuralFormulas:
    @given(n=st.integers(min_value=1, max_value=4096))
    def test_fanout_splitters_formula(self, n):
        assert fanout_splitters(n) == n - 1

    @given(n=st.integers(min_value=1, max_value=4096))
    def test_merger_tree_formula(self, n):
        assert merger_tree_mergers(n) == n - 1

    @given(k=st.integers(min_value=1, max_value=10))
    def test_demux_census_counts(self, k):
        n = 2 ** k
        census = demux_census(n)
        assert census.count("ndroc") == n - 1
        assert census.count("splitter") == (n - 1) - k


instr_streams = st.lists(
    st.builds(
        Instr,
        dest=st.one_of(st.none(), st.integers(1, 31)),
        srcs=st.tuples(st.integers(1, 31), st.integers(1, 31)),
    ),
    min_size=1, max_size=40,
)


class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(stream=instr_streams)
    def test_all_schedules_respect_device_constraints(self, stream):
        """No generated schedule may violate 53 ps / 10 ps constraints."""
        for builder in (schedule_ndro, schedule_hiperrf, schedule_dual_bank):
            builder(stream).validate()

    @settings(max_examples=40, deadline=None)
    @given(stream=instr_streams)
    def test_issue_cycles_match_schedule(self, stream):
        """The closed-form issue cost must match the generated schedule."""
        for builder, name in ((schedule_ndro, "ndro_rf"),
                              (schedule_hiperrf, "hiperrf"),
                              (schedule_dual_bank, "dual_bank_hiperrf")):
            schedule = builder(stream)
            intervals = schedule.issue_intervals()
            expected = [issue_cycles_for(name, instr.dest, instr.srcs)
                        for instr in stream[:-1]]
            assert intervals == expected

    @settings(max_examples=40, deadline=None)
    @given(stream=instr_streams)
    def test_hiperrf_every_read_has_loopback(self, stream):
        from repro.rf.timing import Signal

        schedule = schedule_hiperrf(stream)
        reads = [e for e in schedule.events
                 if e.signal is Signal.REN and "reset" not in e.note]
        loopbacks = [e for e in schedule.events
                     if e.signal is Signal.LOOPBACK]
        assert len(reads) == len(loopbacks)
