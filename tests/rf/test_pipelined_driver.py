"""Pulse-level verification of Figure 8: the NDRO RF at the 53 ps rate.

The static schedule is executed against the real pulse netlist with all
three DEMUX trees re-armed level-by-level each cycle - one port
operation per 53 ps - and every architectural result is checked,
including the write-before-read internal forwarding the paper's timing
design enables.
"""

import pytest

from repro.errors import ConfigError
from repro.pulse import Engine
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseNdroRF
from repro.rf.pipelined_driver import PipelinedNdroRFDriver
from repro.rf.timing import Instr


def preloaded_rf(init):
    engine = Engine()
    rf = PulseNdroRF(engine, RFGeometry(8, 8))
    t = 0.0
    for register, value in init.items():
        rf.schedule_write(register, value, t)
        t += rf.op_period_ps
    engine.run(until_ps=t)
    return rf, t


class TestPipelinedFigure8:
    def test_figure8_instruction_stream(self):
        """The Section III-E example: writes overlapping two reads."""
        init = {1: 0x11, 2: 0x22, 3: 0x33, 4: 0x44}
        rf, t = preloaded_rf(init)
        driver = PipelinedNdroRFDriver(rf, start_ps=t + 100.0)
        stream = [Instr(5, (1, 3)), Instr(6, (5, 2)), Instr(1, (4,)),
                  Instr(None, (6,))]
        results = driver.run_stream(stream, {5: 0x55, 6: 0x66, 1: 0xAA})
        assert results == [(1, 0x11), (3, 0x33), (5, 0x55), (2, 0x22),
                           (4, 0x44), (6, 0x66)]

    def test_raw_dependency_through_rf(self):
        """A value written by instruction j is read by j+1 (one cycle on)."""
        rf, t = preloaded_rf({})
        driver = PipelinedNdroRFDriver(rf, start_ps=t + 100.0)
        results = driver.run_stream(
            [Instr(3, ()), Instr(None, (3,))], {3: 0x7E})
        assert results == [(3, 0x7E)]

    def test_same_cycle_internal_forwarding(self):
        """Figure 8's headline: the write precedes the read within one
        cycle, so an instruction can read the register being written."""
        rf, t = preloaded_rf({2: 0x0F})
        driver = PipelinedNdroRFDriver(rf, start_ps=t + 100.0)
        # One instruction writes r2 and reads r2 in the same cycle.
        results = driver.run_stream([Instr(2, (2,))], {2: 0xF0})
        assert results == [(2, 0xF0)]
        assert rf.stored_word(2) == 0xF0

    def test_overwrite_visible_to_later_read(self):
        rf, t = preloaded_rf({4: 0x01})
        driver = PipelinedNdroRFDriver(rf, start_ps=t + 100.0)
        results = driver.run_stream(
            [Instr(4, ()), Instr(None, (4,)), Instr(None, (4,))],
            {4: 0x99})
        assert results == [(4, 0x99), (4, 0x99)]

    def test_long_stream_at_full_rate(self):
        init = {r: (r * 0x13) & 0xFF for r in range(8)}
        rf, t = preloaded_rf(init)
        driver = PipelinedNdroRFDriver(rf, start_ps=t + 100.0)
        stream = [Instr(None, ((k % 7) + 1,)) for k in range(20)]
        results = driver.run_stream(stream, {})
        for register, value in results:
            assert value == init[register], f"r{register}"

    def test_strict_timing_maintained(self):
        """The whole pipelined run must respect every NDROC constraint
        (the engine is strict: any <53 ps enable pair raises)."""
        rf, t = preloaded_rf({1: 0x5A})
        driver = PipelinedNdroRFDriver(rf, start_ps=t + 100.0)
        # 12 back-to-back single-read instructions = one REN per cycle.
        results = driver.run_stream(
            [Instr(None, (1,)) for _ in range(12)], {})
        assert all(value == 0x5A for _r, value in results)

    def test_missing_writeback_value_rejected(self):
        rf, t = preloaded_rf({})
        driver = PipelinedNdroRFDriver(rf, start_ps=t + 100.0)
        with pytest.raises(ConfigError):
            driver.run_stream([Instr(5, ())], {})
