"""Tests for the PTL wire model (Table IV) and placement study (Figure 15)."""

import pytest

from repro.rf import (
    DualBankHiPerRF,
    HiPerRF,
    NdroRegisterFile,
    RFGeometry,
    WireModel,
    placed_loopback_report,
    wire_aware_delays,
)
from repro.rf.wiring import place_loopback_segments

GEO = RFGeometry(32, 32)

# Table IV, 32x32 with PTL delays.
PAPER_READOUT = {"ndro_rf": 216.8, "hiperrf": 270.1, "dual_bank_hiperrf": 236.8}
PAPER_LOOPBACK = {"hiperrf": 108.4, "dual_bank_hiperrf": 93.7}


class TestWireModel:
    def test_default_hop_delay(self):
        # 262 um at 1 ps / 100 um = 2.62 ps per hop (Section VI-C).
        assert WireModel().avg_hop_delay_ps == pytest.approx(2.62)

    def test_custom_model(self):
        model = WireModel(ps_per_100um=2.0, avg_wire_length_um=100.0)
        assert model.avg_hop_delay_ps == pytest.approx(2.0)


class TestTable4:
    @pytest.mark.parametrize("cls,name", [
        (NdroRegisterFile, "ndro_rf"),
        (HiPerRF, "hiperrf"),
        (DualBankHiPerRF, "dual_bank_hiperrf"),
    ])
    def test_readout_with_wires(self, cls, name):
        result = wire_aware_delays(cls(GEO))
        assert result.readout_delay_ps == pytest.approx(
            PAPER_READOUT[name], rel=0.03)

    @pytest.mark.parametrize("cls,name", [
        (HiPerRF, "hiperrf"),
        (DualBankHiPerRF, "dual_bank_hiperrf"),
    ])
    def test_loopback_with_wires(self, cls, name):
        result = wire_aware_delays(cls(GEO))
        assert result.loopback_delay_ps == pytest.approx(
            PAPER_LOOPBACK[name], rel=0.05)

    def test_baseline_has_no_loopback(self):
        result = wire_aware_delays(NdroRegisterFile(GEO))
        assert result.loopback_delay_ps is None
        assert result.loopback_wire_ps is None

    def test_wire_overhead_is_about_one_percent_cpi_claim(self):
        # Section VI-C: wire delays add ~1% relative overhead vs baseline.
        base = wire_aware_delays(NdroRegisterFile(GEO))
        hiper = wire_aware_delays(HiPerRF(GEO))
        overhead_no_wire = (HiPerRF(GEO).readout_delay_ps()
                            / NdroRegisterFile(GEO).readout_delay_ps())
        overhead_wire = hiper.readout_delay_ps / base.readout_delay_ps
        assert abs(overhead_wire - overhead_no_wire) < 0.03


class TestFigure15Placement:
    def test_loopback_path_is_short_after_placement(self):
        report = placed_loopback_report(HiPerRF(GEO))
        # Figure 15: longest loopback wire ~4.6 ps, far below 53 ps.
        assert report["longest_wire_delay_ps"] < 6.0
        assert report["longest_wire_delay_ps"] == pytest.approx(4.6, abs=2.0)
        assert report["margin_ps"] > 40.0

    def test_decoder_latency_dominates(self):
        report = placed_loopback_report(HiPerRF(GEO))
        assert report["decoder_latency_ps"] == 53.0
        assert report["longest_wire_delay_ps"] < report["decoder_latency_ps"]

    def test_segments_cover_loopback_chain(self):
        segments = place_loopback_segments(HiPerRF(GEO))
        names = [s.source for s in segments] + [segments[-1].sink]
        assert names[0] == "loopbuffer_ndro"
        assert names[-1] == "dand_column_entry"

    def test_scales_with_pitch(self):
        small = placed_loopback_report(HiPerRF(GEO), cell_pitch_um=40.0)
        large = placed_loopback_report(HiPerRF(GEO), cell_pitch_um=150.0)
        assert small["longest_wire_delay_ps"] < large["longest_wire_delay_ps"]

    def test_baseline_rejected(self):
        with pytest.raises(ValueError):
            place_loopback_segments(NdroRegisterFile(GEO))

    def test_invalid_pitch(self):
        with pytest.raises(ValueError):
            place_loopback_segments(HiPerRF(GEO), cell_pitch_um=0.0)
