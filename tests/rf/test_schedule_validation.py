"""Register-index validation in the port schedulers (SFQ016 satellite)."""

import pytest

from repro.errors import ConfigError
from repro.lint import check_schedule
from repro.rf import RFGeometry
from repro.rf.timing import (
    Instr,
    schedule_dual_bank,
    schedule_hiperrf,
    schedule_ndro,
)

SCHEDULERS = (schedule_ndro, schedule_hiperrf, schedule_dual_bank)


def test_instr_rejects_negative_registers():
    with pytest.raises(ConfigError):
        Instr(dest=-1, srcs=(0,))
    with pytest.raises(ConfigError):
        Instr(dest=0, srcs=(1, -2))


def test_instr_still_rejects_three_sources():
    with pytest.raises(ValueError):
        Instr(dest=0, srcs=(1, 2, 3))


def test_instr_registers_lists_dest_first():
    assert Instr(dest=5, srcs=(1, 2)).registers() == (5, 1, 2)
    assert Instr(dest=None, srcs=(7,)).registers() == (7,)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_out_of_range_dest_raises(scheduler):
    with pytest.raises(ConfigError, match="r8"):
        scheduler([Instr(dest=8, srcs=(0, 1))], num_registers=8)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_out_of_range_source_raises(scheduler):
    with pytest.raises(ConfigError, match="r12"):
        scheduler([Instr(dest=0, srcs=(1, 12))], num_registers=8)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_in_range_stream_schedules_and_validates(scheduler):
    instrs = [Instr(dest=1, srcs=(2, 3)), Instr(dest=7, srcs=(1,))]
    schedule = scheduler(instrs, num_registers=8)
    schedule.validate()
    assert schedule.total_cycles() >= 2


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_unbounded_call_stays_backward_compatible(scheduler):
    # Callers that never pass num_registers keep the old behaviour.
    schedule = scheduler([Instr(dest=100, srcs=(200,))])
    assert schedule.events


def test_bad_num_registers_rejected():
    with pytest.raises(ConfigError, match="num_registers"):
        schedule_ndro([Instr(dest=0)], num_registers=0)


@pytest.mark.parametrize("name",
                         ("ndro_rf", "hiperrf", "dual_bank_hiperrf"))
def test_lint_schedule_checks_are_clean_for_builtins(name):
    assert check_schedule(name, RFGeometry(8, 8)) == []


def test_lint_schedule_flags_small_geometry():
    # The sample stream touches r3; a 2-register file cannot encode it.
    issues = check_schedule("hiperrf", RFGeometry(2, 8))
    assert any(i.rule_id == "SFQ016" for i in issues)
