"""Randomised equivalence checking: pulse netlists vs a reference model.

Hypothesis drives random write/read sequences through the pulse-level
register files and a trivial Python dictionary model in lockstep; any
divergence (lost fluxon, failed loopback restore, crosstalk between
registers) fails the property.  This is the reproduction's strongest
functional statement about the netlists.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pulse import Engine
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseHiPerRF, PulseNdroRF

#: (op, register, value) with op in {"w", "r"}; 4 registers, 4-bit words
#: keep netlists small enough for many hypothesis examples.
operations = st.lists(
    st.tuples(st.sampled_from(["w", "r"]),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=15)),
    min_size=1, max_size=8,
)

_SETTINGS = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestNdroRFEquivalence:
    @_SETTINGS
    @given(ops=operations)
    def test_matches_reference_model(self, ops):
        engine = Engine()
        rf = PulseNdroRF(engine, RFGeometry(4, 4))
        reference = {r: 0 for r in range(4)}
        t = 0.0
        for op, register, value in ops:
            if op == "w":
                rf.schedule_write(register, value, t)
                engine.run(until_ps=t + rf.op_period_ps)
                reference[register] = value
                t += rf.op_period_ps
            else:
                got = rf.read_word(register, t)
                t += rf.op_period_ps
                assert got == reference[register], \
                    f"read r{register} after {ops}"
        for register in range(4):
            assert rf.stored_word(register) == reference[register]


class TestHiPerRFEquivalence:
    @_SETTINGS
    @given(ops=operations)
    def test_matches_reference_model(self, ops):
        engine = Engine()
        rf = PulseHiPerRF(engine, RFGeometry(4, 4))
        reference = {r: 0 for r in range(4)}
        t = 0.0
        for op, register, value in ops:
            if op == "w":
                t = rf.write_word(register, value, t)
                reference[register] = value
            else:
                got = rf.read_word(register, t)
                t += 2 * rf.op_period_ps
                assert got == reference[register], \
                    f"read r{register} after {ops}"
        # Loopback must have preserved every register's state.
        for register in range(4):
            assert rf.stored_word(register) == reference[register]
