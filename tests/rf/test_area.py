"""Tests for the area-estimation model (Section VI-A's ~20% observation)."""

import pytest

from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.alternatives import ShiftRegisterRF
from repro.rf.area import (
    CELL_AREA_UM2,
    macro_area,
    rf_chip_area_fraction,
)

GEO = RFGeometry(32, 32)


class TestMacroArea:
    def test_routed_area_exceeds_cell_area(self):
        area = macro_area(NdroRegisterFile(GEO))
        assert area.routed_area_um2 > area.cell_area_um2

    def test_hiperrf_smaller_than_baseline(self):
        base = macro_area(NdroRegisterFile(GEO)).routed_area_mm2
        hiper = macro_area(HiPerRF(GEO)).routed_area_mm2
        assert hiper < 0.6 * base

    def test_area_and_jj_savings_differ(self):
        # Area is not proportional to JJs (interconnect is pad-limited):
        # the area saving is even larger than the JJ saving.
        base = NdroRegisterFile(GEO)
        hiper = HiPerRF(GEO)
        jj_ratio = hiper.jj_count() / base.jj_count()
        area_ratio = (macro_area(hiper).routed_area_um2
                      / macro_area(base).routed_area_um2)
        assert area_ratio != pytest.approx(jj_ratio, abs=0.001)

    def test_dual_bank_slightly_larger(self):
        assert macro_area(DualBankHiPerRF(GEO)).routed_area_um2 > \
            macro_area(HiPerRF(GEO)).routed_area_um2

    def test_every_census_cell_has_a_footprint(self):
        for design in (NdroRegisterFile(GEO), HiPerRF(GEO),
                       DualBankHiPerRF(GEO), ShiftRegisterRF(GEO)):
            for cell_name in design.census().as_dict():
                assert cell_name in CELL_AREA_UM2, cell_name


class TestChipFraction:
    def test_baseline_is_about_20_percent(self):
        # Section VI-A: "the register file size is about 20% of the total
        # CPU design area using NDRO cells".
        fraction = rf_chip_area_fraction(NdroRegisterFile(GEO))
        assert fraction == pytest.approx(0.20, abs=0.03)

    def test_hiperrf_roughly_halves_the_share(self):
        base = rf_chip_area_fraction(NdroRegisterFile(GEO))
        hiper = rf_chip_area_fraction(HiPerRF(GEO))
        assert hiper < 0.65 * base

    def test_fraction_bounds(self):
        for design in (NdroRegisterFile(GEO), HiPerRF(GEO)):
            assert 0.0 < rf_chip_area_fraction(design) < 1.0
