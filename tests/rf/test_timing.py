"""Tests for the port control schedules (Figures 8, 11, 12)."""

import pytest

from repro.cells import params
from repro.errors import TimingViolationError
from repro.rf.timing import (
    Instr,
    PortSchedule,
    Signal,
    issue_cycles_for,
    schedule_dual_bank,
    schedule_hiperrf,
    schedule_ndro,
)

MIXED = [Instr(1, (2, 3)), Instr(4, (1, 3)), Instr(2, (3, 3)),
         Instr(5, (2, 4)), Instr(None, (1,)), Instr(6, ())]


class TestInstr:
    def test_rejects_three_sources(self):
        with pytest.raises(ValueError):
            Instr(1, (2, 3, 4))


class TestSchedulesValidate:
    @pytest.mark.parametrize("builder", [schedule_ndro, schedule_hiperrf,
                                         schedule_dual_bank])
    def test_mixed_stream_validates(self, builder):
        builder(MIXED).validate()

    @pytest.mark.parametrize("builder", [schedule_ndro, schedule_hiperrf,
                                         schedule_dual_bank])
    def test_long_stream_validates(self, builder):
        stream = [Instr((i % 30) + 1, ((i % 7) + 1, (i % 11) + 2))
                  for i in range(200)]
        builder(stream).validate()

    def test_validation_catches_close_pulses(self):
        schedule = PortSchedule("synthetic", params.RF_CYCLE_PS)
        schedule.add(0, 0.0, Signal.REN, "read_port", 1)
        schedule.add(0, 20.0, Signal.REN, "read_port", 2)
        with pytest.raises(TimingViolationError, match="apart"):
            schedule.validate()

    def test_validation_catches_early_wen(self):
        schedule = PortSchedule("synthetic", params.RF_CYCLE_PS)
        schedule.add(0, 0.0, Signal.RESET, "reset_port", 1)
        schedule.add(1, 0.0, Signal.WEN, "write_port", 1)  # 53 ps later: fine
        schedule.validate()
        bad = PortSchedule("synthetic", params.RF_CYCLE_PS)
        bad.add(0, 0.0, Signal.RESET, "reset_port", 1)
        bad.add(0, 4.0, Signal.WEN, "write_port", 1)  # 4 ps < 10 ps
        with pytest.raises(TimingViolationError, match="trails"):
            bad.validate()


class TestNdroSchedule:
    def test_two_source_issue_interval(self):
        schedule = schedule_ndro([Instr(1, (2, 3)), Instr(4, (5, 6))])
        assert schedule.issue_intervals() == [2]

    def test_single_source_issue_interval(self):
        schedule = schedule_ndro([Instr(1, (2,)), Instr(3, (4,))])
        assert schedule.issue_intervals() == [1]

    def test_reset_precedes_wen_by_10ps(self):
        schedule = schedule_ndro([Instr(1, (2, 3))])
        reset = next(e for e in schedule.events if e.signal is Signal.RESET)
        wen = next(e for e in schedule.events if e.signal is Signal.WEN)
        assert wen.time_ps - reset.time_ps == pytest.approx(
            params.RESET_TO_WEN_PS)


class TestHiPerRFSchedule:
    def test_fixed_three_cycle_issue(self):
        schedule = schedule_hiperrf(MIXED)
        assert all(gap == 3 for gap in schedule.issue_intervals())

    def test_write_is_reset_read_then_wen(self):
        schedule = schedule_hiperrf([Instr(1, ())])
        reset_read = schedule.events[0]
        assert reset_read.signal is Signal.REN
        assert "reset" in reset_read.note
        wen = next(e for e in schedule.events if e.signal is Signal.WEN)
        assert wen.cycle == reset_read.cycle + 1

    def test_loopback_one_cycle_after_read(self):
        schedule = schedule_hiperrf([Instr(None, (5,))])
        read = next(e for e in schedule.events if e.signal is Signal.REN)
        loop = next(e for e in schedule.events if e.signal is Signal.LOOPBACK)
        assert loop.cycle == read.cycle + 1
        assert loop.register == read.register

    def test_rar_duplication_single_read(self):
        # R2 = R3 + R3 must read R3 only once (Section IV-D).
        schedule = schedule_hiperrf([Instr(2, (3, 3))])
        reads = [e for e in schedule.events
                 if e.signal is Signal.REN and e.register == 3]
        assert len(reads) == 1


class TestDualBankSchedule:
    def test_cross_bank_two_cycles(self):
        # Sources 2 (even bank) and 3 (odd bank): 2-cycle issue.
        schedule = schedule_dual_bank([Instr(1, (2, 3)), Instr(4, (5, 6))])
        assert schedule.issue_intervals() == [2]

    def test_same_bank_four_cycles(self):
        # Sources 2 and 4 share a bank: 4-cycle issue (Section V-B).
        schedule = schedule_dual_bank([Instr(1, (2, 4)), Instr(3, (5, 6))])
        assert schedule.issue_intervals() == [4]

    def test_reads_split_across_bank_ports(self):
        schedule = schedule_dual_bank([Instr(None, (2, 3))])
        ports = {e.port for e in schedule.events if e.signal is Signal.REN}
        assert ports == {"read_port_b0", "read_port_b1"}

    def test_cross_bank_reads_same_cycle(self):
        schedule = schedule_dual_bank([Instr(None, (2, 3))])
        cycles = [e.cycle for e in schedule.events if e.signal is Signal.REN]
        assert cycles[0] == cycles[1]


class TestIssueCyclesFor:
    def test_baseline(self):
        assert issue_cycles_for("ndro_rf", 1, (2, 3)) == 2
        assert issue_cycles_for("ndro_rf", 1, (2,)) == 1
        assert issue_cycles_for("ndro_rf", 1, ()) == 1
        assert issue_cycles_for("ndro_rf", 1, (3, 3)) == 1  # RAR dedup

    def test_hiperrf_always_three(self):
        assert issue_cycles_for("hiperrf", 1, (2, 3)) == 3
        assert issue_cycles_for("hiperrf", None, ()) == 3

    def test_dual_bank(self):
        assert issue_cycles_for("dual_bank_hiperrf", 1, (2, 3)) == 2
        assert issue_cycles_for("dual_bank_hiperrf", 1, (2, 4)) == 4
        assert issue_cycles_for("dual_bank_hiperrf", 1, (3, 3)) == 2

    def test_ideal_dual_bank_always_two(self):
        assert issue_cycles_for("dual_bank_hiperrf_ideal", 1, (2, 4)) == 2

    def test_unknown_design(self):
        with pytest.raises(ValueError):
            issue_cycles_for("cmos_rf", 1, (2, 3))


class TestRendering:
    def test_render_contains_ports_and_tags(self):
        text = schedule_hiperrf(MIXED).render()
        assert "read_port" in text
        assert "write_port" in text
        assert "REN" in text
        assert "LOOP" in text

    def test_event_str(self):
        schedule = schedule_hiperrf([Instr(1, (2,))])
        assert "REN" in str(schedule.events[0])
