"""Tests for single-event fault injection into the pulse netlists."""

import pytest

from repro.rf.faults import (
    FaultKind,
    inject_hiperrf_fault,
    inject_ndro_fault,
)


class TestHiPerRFFaults:
    def test_dropped_loopback_pulse_corrupts_state(self):
        """The headline fragility: state recycles through the loopback,
        so one lost pulse is a permanent soft error."""
        outcome = inject_hiperrf_fault(FaultKind.DROP_LOOPBACK_PULSE)
        assert outcome.state_corrupted
        assert outcome.read_wrong
        # Exactly one fluxon went missing from one column.
        assert bin(outcome.stored_after ^ outcome.expected).count("1") <= 2

    def test_extra_data_pulse_clamped_by_capacity(self):
        outcome = inject_hiperrf_fault(FaultKind.EXTRA_DATA_PULSE)
        assert not outcome.state_corrupted  # matches the bumped expectation
        assert outcome.stored_after == outcome.expected

    def test_extra_pulse_on_full_column_dissipated(self):
        outcome = inject_hiperrf_fault(FaultKind.EXTRA_DATA_PULSE,
                                       value=0x03)  # column 0 already full
        assert outcome.stored_after == 0x03

    def test_dropped_read_enable_is_safe(self):
        """A lost enable is a transient fault: no state change."""
        outcome = inject_hiperrf_fault(FaultKind.DROP_READ_ENABLE)
        assert not outcome.state_corrupted
        assert outcome.read_value is None


class TestNdroFaults:
    def test_extra_set_pulse_idempotent_when_set(self):
        outcome = inject_ndro_fault(FaultKind.EXTRA_DATA_PULSE, value=0xE5)
        assert outcome.stored_after == 0xE5  # bit 0 already 1: absorbed

    def test_extra_set_pulse_flips_zero_bit(self):
        outcome = inject_ndro_fault(FaultKind.EXTRA_DATA_PULSE, value=0xE4)
        assert outcome.stored_after == 0xE5
        assert not outcome.state_corrupted  # matches the expectation model

    def test_dropped_read_enable_is_safe(self):
        outcome = inject_ndro_fault(FaultKind.DROP_READ_ENABLE)
        assert not outcome.state_corrupted

    def test_loopback_fault_not_applicable(self):
        with pytest.raises(ValueError):
            inject_ndro_fault(FaultKind.DROP_LOOPBACK_PULSE)


class TestAsymmetry:
    def test_only_hiperrf_has_a_read_time_state_hazard(self):
        """The design trade-off in one assertion: the same single-pulse
        loss class that is fatal for HiPerRF does not exist for the
        baseline, whose reads never move the stored fluxons."""
        hiperrf = inject_hiperrf_fault(FaultKind.DROP_LOOPBACK_PULSE)
        assert hiperrf.state_corrupted
        baseline = inject_ndro_fault(FaultKind.DROP_READ_ENABLE)
        assert not baseline.state_corrupted
