"""Pulse-level functional verification of the register file netlists.

This mirrors the paper's Verilog functional verification (Section VI):
write/read every register with assorted patterns, check non-destructive
behaviour, loopback restoration, erase-by-read and overwrites.
"""

import pytest

from repro.errors import ConfigError
from repro.pulse import Engine
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseDualBankHiPerRF, PulseHiPerRF, PulseNdroRF

PATTERNS_8 = [0x00, 0xA5, 0xFF, 0x3C, 0x01, 0x80, 0x55, 0x7E]


class TestPulseNdroRF:
    @pytest.fixture
    def rf(self):
        engine = Engine()
        return PulseNdroRF(engine, RFGeometry(8, 8))

    def test_write_read_all_registers(self, rf):
        t = 0.0
        for r, value in enumerate(PATTERNS_8):
            rf.schedule_write(r, value, t)
            t += rf.op_period_ps
        rf.engine.run(until_ps=t)
        for r, value in enumerate(PATTERNS_8):
            assert rf.read_word(r, t) == value
            t += rf.op_period_ps

    def test_reads_are_non_destructive(self, rf):
        t = 0.0
        rf.schedule_write(3, 0x5A, t)
        t += rf.op_period_ps
        rf.engine.run(until_ps=t)
        for _ in range(4):
            assert rf.read_word(3, t) == 0x5A
            t += rf.op_period_ps

    def test_overwrite(self, rf):
        t = 0.0
        rf.schedule_write(2, 0xFF, t)
        t += rf.op_period_ps
        rf.schedule_write(2, 0x0F, t)
        t += rf.op_period_ps
        rf.engine.run(until_ps=t)
        assert rf.read_word(2, t) == 0x0F

    def test_unwritten_register_reads_zero(self, rf):
        assert rf.read_word(5, 0.0) == 0

    def test_write_isolation(self, rf):
        # Writing one register must not disturb neighbours.
        t = 0.0
        rf.schedule_write(0, 0xFF, t)
        t += rf.op_period_ps
        rf.engine.run(until_ps=t)
        assert rf.stored_word(1) == 0
        assert rf.stored_word(7) == 0

    def test_value_range_checked(self, rf):
        with pytest.raises(ConfigError):
            rf.schedule_write(0, 0x100, 0.0)


class TestPulseHiPerRF:
    @pytest.fixture
    def rf(self):
        engine = Engine()
        return PulseHiPerRF(engine, RFGeometry(8, 8))

    def test_write_read_all_registers(self, rf):
        t = 0.0
        for r, value in enumerate(PATTERNS_8):
            t = rf.write_word(r, value, t)
        assert [rf.stored_word(r) for r in range(8)] == PATTERNS_8
        for r, value in enumerate(PATTERNS_8):
            assert rf.read_word(r, t) == value
            t += 2 * rf.op_period_ps

    def test_loopback_restores_after_each_read(self, rf):
        """The HC-DRO read is destructive; the LoopBuffer must restore it."""
        t = rf.write_word(4, 0xC3, 0.0)
        for _ in range(4):
            assert rf.read_word(4, t) == 0xC3
            t += 2 * rf.op_period_ps
        assert rf.stored_word(4) == 0xC3

    def test_read_without_loopback_erases(self, rf):
        """LoopBuffer reset to 0 dissipates the readout: the erase step."""
        t = rf.write_word(4, 0xC3, 0.0)
        rf.schedule_read(4, t, loopback=False)
        rf.engine.run(until_ps=t + rf.op_period_ps)
        assert rf.stored_word(4) == 0

    def test_overwrite_replaces_value(self, rf):
        t = rf.write_word(2, 0xFF, 0.0)
        t = rf.write_word(2, 0x12, t)
        assert rf.read_word(2, t) == 0x12

    def test_two_bit_cell_packing(self, rf):
        # Register width 8 -> 4 HC-DRO columns, each holding 0-3 fluxons.
        t = rf.write_word(1, 0b11100100, 0.0)  # columns encode 0,1,2,3
        assert [cell.stored_value for cell in rf.cells[1]] == [0, 1, 2, 3]

    def test_unwritten_register_reads_zero(self, rf):
        assert rf.read_word(6, 0.0) == 0

    def test_write_isolation(self, rf):
        t = rf.write_word(3, 0xFF, 0.0)
        assert rf.stored_word(2) == 0
        assert rf.stored_word(4) == 0

    def test_value_range_checked(self, rf):
        with pytest.raises(ConfigError):
            rf.schedule_write(0, 1 << 8, 0.0)

    @pytest.mark.parametrize("value", [0x00, 0x03, 0x30, 0xFC, 0xFF])
    def test_assorted_patterns_roundtrip(self, rf, value):
        t = rf.write_word(5, value, 0.0)
        assert rf.read_word(5, t) == value


class TestPulseDualBankHiPerRF:
    @pytest.fixture
    def rf(self):
        return PulseDualBankHiPerRF(RFGeometry(8, 8))

    def test_parity_routing(self, rf):
        assert rf._locate(0) == (0, 0)
        assert rf._locate(1) == (1, 0)
        assert rf._locate(6) == (0, 3)
        assert rf._locate(7) == (1, 3)

    def test_write_read_all_registers(self, rf):
        t = 0.0
        for r, value in enumerate(PATTERNS_8):
            t = rf.write_word(r, value, t)
        for r, value in enumerate(PATTERNS_8):
            assert rf.read_word(r, t) == value
            t += 2 * rf.op_period_ps

    def test_banks_are_independent(self, rf):
        t0 = rf.write_word(0, 0xAA, 0.0)  # bank 0
        t1 = rf.write_word(1, 0x55, 0.0)  # bank 1: same time is legal
        assert rf.stored_word(0) == 0xAA
        assert rf.stored_word(1) == 0x55

    def test_loopback_within_bank(self, rf):
        t = rf.write_word(5, 0x99, 0.0)
        assert rf.read_word(5, t) == 0x99
        assert rf.stored_word(5) == 0x99

    def test_too_small_geometry_rejected(self):
        with pytest.raises(ConfigError):
            PulseDualBankHiPerRF(RFGeometry(2, 4))
