"""Tests for the component census and structural sub-blocks."""

import pytest

from repro.errors import NetlistError
from repro.rf.census import (
    ComponentCensus,
    demux_census,
    demux_depth,
    fanout_splitters,
    merger_tree_mergers,
)


class TestComponentCensus:
    def test_empty(self):
        census = ComponentCensus()
        assert census.total_cells == 0
        assert census.jj_count() == 0
        assert census.static_power_uw() == 0.0

    def test_add_and_count(self):
        census = ComponentCensus()
        census.add("ndro", 4)
        census.add("splitter")
        assert census.count("ndro") == 4
        assert census.count("splitter") == 1
        assert census.count("merger") == 0
        assert census.jj_count() == 4 * 11 + 3

    def test_add_zero_is_noop(self):
        census = ComponentCensus()
        census.add("ndro", 0)
        assert census.as_dict() == {}

    def test_unknown_cell_rejected_eagerly(self):
        census = ComponentCensus()
        with pytest.raises(Exception):
            census.add("warp_core", 1)

    def test_negative_rejected(self):
        census = ComponentCensus()
        with pytest.raises(NetlistError):
            census.add("ndro", -1)

    def test_merge_times(self):
        a = ComponentCensus({"ndro": 2})
        b = ComponentCensus({"ndro": 1, "merger": 3})
        a.merge(b, times=2)
        assert a.count("ndro") == 4
        assert a.count("merger") == 6

    def test_merge_negative_rejected(self):
        with pytest.raises(NetlistError):
            ComponentCensus().merge(ComponentCensus(), times=-1)

    def test_equality(self):
        assert ComponentCensus({"ndro": 1}) == ComponentCensus({"ndro": 1})
        assert ComponentCensus({"ndro": 1}) != ComponentCensus({"ndro": 2})

    def test_as_dict_sorted(self):
        census = ComponentCensus({"splitter": 1, "merger": 2, "dand": 3})
        assert list(census.as_dict()) == ["dand", "merger", "splitter"]


class TestStructuralBlocks:
    @pytest.mark.parametrize("fanout,expected", [(1, 0), (2, 1), (32, 31)])
    def test_fanout_splitters(self, fanout, expected):
        assert fanout_splitters(fanout) == expected

    def test_fanout_invalid(self):
        with pytest.raises(NetlistError):
            fanout_splitters(0)

    @pytest.mark.parametrize("inputs,expected", [(1, 0), (2, 1), (32, 31)])
    def test_merger_tree(self, inputs, expected):
        assert merger_tree_mergers(inputs) == expected

    def test_demux_ndroc_count(self):
        # A 1-to-n tree needs n-1 routing cells.
        for n in (2, 4, 8, 16, 32):
            assert demux_census(n).count("ndroc") == n - 1

    def test_demux_select_splitters(self):
        # Level k's select bit drives 2^k cells via 2^k - 1 splitters.
        census = demux_census(8)
        assert census.count("splitter") == (1 - 1) + (2 - 1) + (4 - 1)

    def test_demux_depth(self):
        assert demux_depth(32) == 5

    def test_demux_1to2_cost_vs_paper(self):
        # Section III-A: the NDROC-based 1-to-2 DEMUX costs 33 JJs.
        assert demux_census(2).jj_count() == 33

    def test_demux_non_power_of_two_rejected(self):
        with pytest.raises(Exception):
            demux_census(6)
