"""Tests for the alternative-design models (Sections III-A, V, rel. work)."""


from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.alternatives import (
    ShiftRegisterRF,
    TrueTwoPortHiPerRF,
    combinational_demux_census,
)
from repro.rf.census import demux_census

GEO = RFGeometry(32, 32)


class TestTrueTwoPort:
    def test_superlinear_cost(self):
        # Section V: a monolithic 2R2W design "nearly triples" the JJs;
        # our structural model must show a strongly superlinear (>2x)
        # cost versus the single-port design.
        single = HiPerRF(GEO).jj_count()
        two_port = TrueTwoPortHiPerRF(GEO).jj_count()
        assert two_port > 2.0 * single

    def test_banking_beats_two_port(self):
        two_port = TrueTwoPortHiPerRF(GEO)
        dual = DualBankHiPerRF(GEO)
        assert dual.jj_count() < 0.55 * two_port.jj_count()
        assert dual.read_ports == two_port.read_ports == 2

    def test_two_port_slower_readout(self):
        # Shared pins add mergers/splitters on the read path.
        assert TrueTwoPortHiPerRF(GEO).readout_delay_ps() > \
            HiPerRF(GEO).readout_delay_ps()

    def test_loopback_path_exists(self):
        assert TrueTwoPortHiPerRF(GEO).loopback_path() is not None


class TestCombinationalDemux:
    def test_stage_cost_near_paper_estimate(self):
        # Section III-A: ~50 JJs for the combinational 1-to-2 DEMUX.
        stage = combinational_demux_census(2).jj_count()
        assert 40 <= stage <= 55

    def test_ndroc_is_cheaper(self):
        # Paper: the NDROC design is about 60% of the combinational one.
        ndroc = demux_census(2).jj_count()
        comb = combinational_demux_census(2).jj_count()
        assert 0.55 <= ndroc / comb <= 0.80

    def test_tree_scales(self):
        small = combinational_demux_census(4).jj_count()
        large = combinational_demux_census(32).jj_count()
        assert large > small


class TestShiftRegisterRF:
    def test_cheap_in_jjs(self):
        # DRO chains are denser than NDRO but the readout is serial.
        assert ShiftRegisterRF(GEO).jj_count() < HiPerRF(GEO).jj_count()

    def test_serial_readout_dominates(self):
        shift = ShiftRegisterRF(GEO)
        # Rotating a 32-bit word takes >= 32 port cycles.
        assert shift.readout_delay_ps() >= 32 * 53.0
        assert shift.readout_delay_ps() > 5 * HiPerRF(GEO).readout_delay_ps()

    def test_readout_scales_with_width(self):
        narrow = ShiftRegisterRF(RFGeometry(32, 8)).readout_delay_ps()
        wide = ShiftRegisterRF(RFGeometry(32, 64)).readout_delay_ps()
        assert wide > narrow

    def test_still_beats_baseline_on_density(self):
        assert ShiftRegisterRF(GEO).jj_count() < \
            NdroRegisterFile(GEO).jj_count()
