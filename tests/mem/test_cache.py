"""Tests for the cryogenic memory-interface models."""

import pytest

from repro.cpu import CoreConfig, GateLevelPipeline, RFTimingModel
from repro.errors import ConfigError
from repro.isa import Executor, assemble
from repro.mem import DirectMappedCache, FlatMemory
from repro.workloads import get_workload


class TestFlatMemory:
    def test_constant_latency(self):
        memory = FlatMemory(latency_cycles=12)
        assert memory.access(0x100) == 12
        assert memory.access(None) == 12
        assert memory.stats.accesses == 2

    def test_invalid_latency(self):
        with pytest.raises(ConfigError):
            FlatMemory(latency_cycles=-1)


class TestDirectMappedCache:
    def test_miss_then_hit(self):
        cache = DirectMappedCache(lines=4, line_size=16, hit_cycles=2,
                                  miss_cycles=20)
        assert cache.access(0x100) == 20
        assert cache.access(0x104) == 2  # same line
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_conflict_eviction(self):
        cache = DirectMappedCache(lines=2, line_size=16)
        cache.access(0x00)          # line 0
        cache.access(0x20)          # also maps to line 0 (2 lines x 16B)
        assert cache.access(0x00) == cache.miss_cycles  # evicted

    def test_stores_fill_lines(self):
        cache = DirectMappedCache(lines=4, line_size=16)
        cache.access(0x40, is_store=True)
        assert cache.access(0x44) == cache.hit_cycles

    def test_unknown_address_is_miss(self):
        cache = DirectMappedCache()
        assert cache.access(None) == cache.miss_cycles

    def test_flush(self):
        cache = DirectMappedCache(lines=4, line_size=16)
        cache.access(0x100)
        cache.flush()
        assert cache.access(0x100) == cache.miss_cycles

    def test_capacity(self):
        assert DirectMappedCache(lines=64, line_size=16).capacity_bytes == 1024

    @pytest.mark.parametrize("lines,line_size", [(0, 16), (3, 16), (4, 0),
                                                 (4, 3)])
    def test_invalid_geometry(self, lines, line_size):
        with pytest.raises(ConfigError):
            DirectMappedCache(lines=lines, line_size=line_size)

    def test_invalid_latencies(self):
        with pytest.raises(ConfigError):
            DirectMappedCache(hit_cycles=10, miss_cycles=5)


class TestPipelineIntegration:
    def _run(self, memory_model):
        executor = Executor(assemble(get_workload("vvadd").build()))
        ops = list(executor.trace())
        config = CoreConfig()
        pipeline = GateLevelPipeline(RFTimingModel.for_design("ndro_rf"),
                                     config, memory_model=memory_model)
        for op in ops:
            pipeline.feed(op)
        return pipeline.result()

    def test_cache_speeds_up_local_workload(self):
        # vvadd streams through arrays: strong spatial locality.
        flat = self._run(FlatMemory(latency_cycles=24))
        cache = DirectMappedCache(lines=64, line_size=16, hit_cycles=2,
                                  miss_cycles=24)
        cached = self._run(cache)
        assert cached.total_cycles < flat.total_cycles
        assert cache.stats.hit_rate > 0.5

    def test_none_model_uses_flat_config_latency(self):
        flat_model = self._run(FlatMemory(latency_cycles=12))
        default = self._run(None)  # CoreConfig default is also 12
        assert flat_model.total_cycles == default.total_cycles

    def test_stats_accumulate(self):
        cache = DirectMappedCache()
        self._run(cache)
        assert cache.stats.accesses > 0
        assert 0.0 <= cache.stats.hit_rate <= 1.0
