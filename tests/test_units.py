"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestConversions:
    def test_ps_ns_roundtrip(self):
        assert units.ns_to_ps(units.ps_to_ns(1234.5)) == pytest.approx(1234.5)

    def test_ghz_period(self):
        assert units.ghz_to_period_ps(1.0) == pytest.approx(1000.0)
        assert units.ghz_to_period_ps(770.0) == pytest.approx(1.2987, rel=1e-3)

    def test_period_to_ghz_inverse(self):
        for freq in (0.5, 10.0, 770.0):
            assert units.period_ps_to_ghz(
                units.ghz_to_period_ps(freq)) == pytest.approx(freq)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.ghz_to_period_ps(0.0)
        with pytest.raises(ValueError):
            units.period_ps_to_ghz(-1.0)

    def test_uw_to_mw(self):
        assert units.uw_to_mw(7262.17) == pytest.approx(7.26217)


class TestWireDelay:
    def test_paper_ptl_rate(self):
        # Section VI-C: 1 ps per 100 um; the average 262 um wire is 2.62 ps.
        assert units.wire_delay_ps(262.0) == pytest.approx(2.62)

    def test_zero_length(self):
        assert units.wire_delay_ps(0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            units.wire_delay_ps(-1.0)

    def test_custom_rate(self):
        assert units.wire_delay_ps(100.0, ps_per_100um=2.0) == pytest.approx(2.0)


class TestConstants:
    def test_flux_quantum_magnitude(self):
        # PHI0 in mV*ps should be ~2.068.
        assert math.isclose(units.PHI0, 2.067833848, rel_tol=1e-9)


class TestTopLevelExports:
    def test_convenience_imports(self):
        import repro

        design = repro.HiPerRF(repro.RFGeometry(32, 32))
        baseline = repro.NdroRegisterFile(repro.RFGeometry(32, 32))
        comparison = repro.compare_designs(baseline, design)
        assert comparison.jj_percent_of_baseline < 50.0
        assert repro.__version__
