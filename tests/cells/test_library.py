"""Tests for the SFQ cell library."""

import pytest

from repro.cells import (
    CELL_LIBRARY,
    CellKind,
    CellSpec,
    cell_names,
    composite_cost,
    get_cell,
    params,
)
from repro.errors import CellLibraryError


class TestPaperStatedCosts:
    """JJ counts the paper states explicitly."""

    def test_ndro_is_11_jj(self):
        assert get_cell("ndro").jj_count == 11

    def test_hcdro_is_3_jj(self):
        assert get_cell("hcdro").jj_count == 3

    def test_hcdro_density_advantage(self):
        # Section II-E: 2-bit NDRO needs 22 JJs vs 3 for HC-DRO -> 7.3x.
        ndro_2bit = 2 * get_cell("ndro").jj_count
        ratio = ndro_2bit / get_cell("hcdro").jj_count
        assert ratio == pytest.approx(7.33, abs=0.01)

    def test_ndroc_demux_is_33_jj(self):
        assert get_cell("ndroc").jj_count == 33

    def test_and_gate_is_12_jj(self):
        assert get_cell("and").jj_count == 12

    def test_not_gate_is_10_jj(self):
        assert get_cell("not").jj_count == 10

    def test_combinational_demux_estimate(self):
        # Section III-A: a combinational 1-to-2 DEMUX needs ~50 JJs (two
        # ANDs, a NOT, plus signal and clock splitters) and the 33-JJ NDROC
        # design is about 60% of that.
        combinational = (2 * get_cell("and").jj_count
                         + get_cell("not").jj_count
                         + get_cell("splitter").jj_count * 4)
        assert 40 <= combinational <= 55
        assert get_cell("ndroc").jj_count <= 0.75 * combinational


class TestCellSpec:
    def test_jj_per_bit(self):
        assert get_cell("hcdro").jj_per_bit == pytest.approx(1.5)
        assert get_cell("ndro").jj_per_bit == pytest.approx(11.0)

    def test_jj_per_bit_rejected_for_logic(self):
        with pytest.raises(CellLibraryError):
            _ = get_cell("splitter").jj_per_bit

    def test_negative_jj_rejected(self):
        with pytest.raises(CellLibraryError):
            CellSpec("bad", CellKind.LOGIC, -1, 0.0)

    def test_negative_power_rejected(self):
        with pytest.raises(CellLibraryError):
            CellSpec("bad", CellKind.LOGIC, 1, -0.5)

    def test_unknown_cell(self):
        with pytest.raises(CellLibraryError, match="unknown cell"):
            get_cell("flux_capacitor")

    def test_cell_names_sorted_and_complete(self):
        names = cell_names()
        assert names == tuple(sorted(names))
        for required in ("dro", "hcdro", "ndro", "ndroc", "splitter",
                         "merger", "jtl", "dand", "hc_clk", "hc_write",
                         "hc_read", "tff"):
            assert required in names


class TestComposites:
    def test_hc_clk_composition(self):
        spec = get_cell("hc_clk")
        assert spec.kind is CellKind.COMPOSITE
        assert spec.composition == {"splitter": 2, "merger": 2, "jtl": 6}
        expected = (2 * get_cell("splitter").jj_count
                    + 2 * get_cell("merger").jj_count
                    + 6 * get_cell("jtl").jj_count)
        assert spec.jj_count == expected == 28

    def test_hc_write_jj(self):
        assert get_cell("hc_write").jj_count == 23

    def test_hc_read_jj(self):
        assert get_cell("hc_read").jj_count == 24

    def test_composite_power_rolls_up(self):
        spec = get_cell("hc_clk")
        expected = (2 * get_cell("splitter").static_power_uw
                    + 2 * get_cell("merger").static_power_uw
                    + 6 * get_cell("jtl").static_power_uw)
        assert spec.static_power_uw == pytest.approx(expected)


class TestCompositeCost:
    def test_empty_census(self):
        assert composite_cost({}) == (0, 0.0)

    def test_simple_rollup(self):
        jj, power = composite_cost({"ndro": 2, "splitter": 3})
        assert jj == 2 * 11 + 3 * 3
        assert power == pytest.approx(2 * get_cell("ndro").static_power_uw
                                      + 3 * get_cell("splitter").static_power_uw)

    def test_negative_count_rejected(self):
        with pytest.raises(CellLibraryError):
            composite_cost({"ndro": -1})

    def test_unknown_cell_rejected(self):
        with pytest.raises(CellLibraryError):
            composite_cost({"nonsense": 1})


class TestParams:
    def test_cycle_time_is_ndroc_limit(self):
        # Section III-E: the 53 ps NDROC enable separation sets the cycle.
        assert params.RF_CYCLE_PS == params.NDROC_MIN_ENABLE_SEPARATION_PS == 53.0

    def test_propagation_below_cycle(self):
        # 24 ps propagation < 53 ps cycle: the tree is fully pipelinable.
        assert params.NDROC_PROPAGATION_PS < params.NDROC_MIN_ENABLE_SEPARATION_PS

    def test_reset_to_wen_fits_in_cycle(self):
        assert params.RESET_TO_WEN_PS < params.RF_CYCLE_PS

    def test_gate_cycle_relation(self):
        # Section VI-B: 28 ps gate cycle, RF access takes two gate cycles.
        assert params.GATE_CYCLE_PS == 28.0
        assert params.RF_ACCESS_GATE_CYCLES * params.GATE_CYCLE_PS >= params.RF_CYCLE_PS

    def test_every_power_entry_has_a_cell(self):
        for name in params.POWER_UW:
            assert name in CELL_LIBRARY
