"""Cross-layer integration tests: the analytic models, the pulse-level
netlists and the CPU simulator must tell one consistent story."""

import pytest

from repro.cells import params
from repro.cpu import CpuSimulator, RFTimingModel
from repro.isa import Executor, assemble
from repro.pulse import Engine
from repro.rf import HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.netlist import PulseHiPerRF, PulseNdroRF
from repro.workloads import PASS_EXIT_CODE, get_workload


class TestCensusNetlistConsistency:
    """The pulse netlists must instantiate what the census counts."""

    def test_ndro_storage_cells_match(self):
        geometry = RFGeometry(8, 8)
        census = NdroRegisterFile(geometry).census()
        netlist = PulseNdroRF(Engine(), geometry)
        assert sum(len(row) for row in netlist.cells) == census.count("ndro")

    def test_ndro_dand_count_matches(self):
        geometry = RFGeometry(8, 8)
        census = NdroRegisterFile(geometry).census()
        netlist = PulseNdroRF(Engine(), geometry)
        assert sum(len(row) for row in netlist.dands) == census.count("dand")

    def test_hiperrf_storage_cells_match(self):
        geometry = RFGeometry(8, 8)
        census = HiPerRF(geometry).census()
        netlist = PulseHiPerRF(Engine(), geometry)
        assert sum(len(row) for row in netlist.cells) == census.count("hcdro")

    def test_hiperrf_loopbuffer_matches(self):
        geometry = RFGeometry(8, 8)
        census = HiPerRF(geometry).census()
        netlist = PulseHiPerRF(Engine(), geometry)
        # The census counts LoopBuffer NDROs (one per column).
        assert len(netlist.loopbuffer) == census.count("ndro")

    def test_hiperrf_hc_circuit_counts_match(self):
        geometry = RFGeometry(8, 8)
        census = HiPerRF(geometry).census()
        netlist = PulseHiPerRF(Engine(), geometry)
        assert len(netlist.hc_writes) == census.count("hc_write")
        assert len(netlist.hc_reads) == census.count("hc_read")

    def test_demux_ndroc_counts_match(self):
        geometry = RFGeometry(8, 8)
        census = NdroRegisterFile(geometry).census()
        netlist = PulseNdroRF(Engine(), geometry)
        pulse_ndrocs = (netlist.read_demux.ndroc_count
                        + netlist.reset_demux.ndroc_count
                        + netlist.write_demux.ndroc_count)
        assert pulse_ndrocs == census.count("ndroc")


class TestTimingModelConsistency:
    """The CPU's RF timing must derive from the analytic delays."""

    def test_readout_cycles_cover_analytic_delay(self):
        for name, cls in (("ndro_rf", NdroRegisterFile),
                          ("hiperrf", HiPerRF)):
            model = RFTimingModel.for_design(name)
            analytic_ps = cls(RFGeometry(32, 32)).readout_delay_ps()
            model_ps = model.readout_cycles * params.GATE_CYCLE_PS
            assert model_ps >= analytic_ps
            # Quantization never adds more than one full port cycle.
            assert model_ps - analytic_ps < params.RF_CYCLE_PS + \
                params.GATE_CYCLE_PS

    def test_issue_gaps_match_schedule_module(self):
        from repro.rf.timing import issue_cycles_for

        for name in ("ndro_rf", "hiperrf", "dual_bank_hiperrf"):
            model = RFTimingModel.for_design(name)
            for sources in ((), (1,), (1, 2), (1, 3)):
                expected = issue_cycles_for(name, 5, sources) \
                    * params.RF_ACCESS_GATE_CYCLES
                assert model.issue_gap_gates(sources, 5) == expected


class TestFullStack:
    """Assemble -> execute -> time, checked end to end."""

    @pytest.mark.parametrize("design", ["ndro_rf", "hiperrf"])
    def test_workload_through_whole_stack(self, design):
        report = CpuSimulator(design).run_source(
            get_workload("towers").build(), "towers",
            expect_exit_code=PASS_EXIT_CODE)
        assert report.instructions > 1000
        assert 5.0 < report.cpi < 100.0

    def test_identical_functional_results_across_designs(self):
        """Timing must never change architectural results."""
        program = assemble(get_workload("median").build())
        outcomes = set()
        for design in ("ndro_rf", "hiperrf", "dual_bank_hiperrf"):
            report = CpuSimulator(design).run_program(program, "median")
            outcomes.add((report.exit_code, report.instructions))
        assert len(outcomes) == 1

    def test_stall_attribution_sums_are_sane(self):
        executor = Executor(assemble(get_workload("mcf").build()))
        ops = list(executor.trace())
        report = CpuSimulator("hiperrf").run_trace(ops, "mcf")
        stalls = report.stall_cycles
        # Port occupancy alone cannot exceed total cycles; each class is
        # non-negative.
        assert all(v >= 0 for v in stalls.values())
        assert stalls["port"] <= report.total_cycles
