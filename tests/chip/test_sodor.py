"""Tests for the full-chip Sodor JJ budget (Section VI-A)."""

import pytest

from repro.chip import chip_budget, full_chip_comparison
from repro.errors import ConfigError


class TestChipBudget:
    def test_baseline_total_matches_paper(self):
        # Paper: 139,801 JJs with the NDRO RF.
        assert chip_budget("ndro_rf").total_jj == pytest.approx(139_801,
                                                                rel=0.01)

    def test_hiperrf_total_matches_paper(self):
        # Paper: 117,039 JJs with HiPerRF.
        assert chip_budget("hiperrf").total_jj == pytest.approx(117_039,
                                                                rel=0.01)

    def test_headline_16_3_percent(self):
        result = full_chip_comparison()
        assert result["saving_percent"] == pytest.approx(16.3, abs=0.5)

    def test_rf_share_of_chip(self):
        # Section VI-A: "the register file size is about 20% of the total
        # CPU design area using NDRO cells"; in JJ terms the share is a
        # bit higher since storage cells are JJ-dense.
        fraction = chip_budget("ndro_rf").rf_fraction
        assert 0.18 <= fraction <= 0.32

    def test_non_rf_components_identical(self):
        base = chip_budget("ndro_rf")
        hiper = chip_budget("hiperrf")
        assert base.components == hiper.components

    def test_integration_smaller_for_hiperrf(self):
        # HiPerRF's boundary is half as wide (pulse-train columns).
        assert chip_budget("hiperrf").integration_jj < \
            chip_budget("ndro_rf").integration_jj

    def test_dual_bank_budget_between(self):
        base = chip_budget("ndro_rf").total_jj
        hiper = chip_budget("hiperrf").total_jj
        dual = chip_budget("dual_bank_hiperrf").total_jj
        assert hiper < dual < base

    def test_breakdown_sums_to_total(self):
        budget = chip_budget("ndro_rf")
        assert sum(budget.breakdown().values()) == budget.total_jj

    def test_unknown_design(self):
        with pytest.raises(ConfigError):
            chip_budget("cmos_rf")
