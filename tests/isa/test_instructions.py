"""Tests for the RV32I decoder and instruction classification."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError
from repro.isa import decode
from repro.isa import encoding as enc
from repro.isa.assembler import assemble_to_words


def _decode_asm(line: str):
    return decode(assemble_to_words(f"_start:\n    {line}\n")[0])


class TestDecodeBasics:
    def test_addi(self):
        instr = _decode_asm("addi x5, x6, -7")
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.imm) == \
            ("addi", 5, 6, -7)

    def test_add(self):
        instr = _decode_asm("add x1, x2, x3")
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.rs2) == \
            ("add", 1, 2, 3)

    def test_sub_vs_add_funct7(self):
        assert _decode_asm("sub x1, x2, x3").mnemonic == "sub"

    def test_shifts(self):
        assert _decode_asm("slli x1, x2, 5").imm == 5
        assert _decode_asm("srai x1, x2, 31").mnemonic == "srai"

    def test_loads_stores(self):
        load = _decode_asm("lw x7, -8(x3)")
        assert (load.mnemonic, load.rd, load.rs1, load.imm) == ("lw", 7, 3, -8)
        store = _decode_asm("sw x7, 12(x3)")
        assert (store.mnemonic, store.rs2, store.rs1, store.imm) == \
            ("sw", 7, 3, 12)

    def test_branch(self):
        instr = _decode_asm("beq x1, x2, 16")
        assert (instr.mnemonic, instr.imm) == ("beq", 16)

    def test_lui_auipc(self):
        assert _decode_asm("lui x5, 0xFFFFF").imm == 0xFFFFF000
        assert _decode_asm("auipc x5, 1").imm == 0x1000

    def test_jal_jalr(self):
        assert _decode_asm("jal x1, 2048").imm == 2048
        jalr = _decode_asm("jalr x1, x2, -4")
        assert (jalr.mnemonic, jalr.rs1, jalr.imm) == ("jalr", 2, -4)

    def test_system(self):
        assert decode(0x00000073).mnemonic == "ecall"
        assert decode(0x00100073).mnemonic == "ebreak"
        assert decode(0x0000000F).mnemonic == "fence"


class TestDecodeErrors:
    @pytest.mark.parametrize("word", [
        0x00000000,             # all zeros: invalid opcode
        0xFFFFFFFF,             # invalid
        0x00002063,             # branch funct3=2 (undefined)
        0x00005003 | (0b011 << 12),  # load funct3=3 (undefined)
    ])
    def test_invalid_words(self, word):
        with pytest.raises(DecodeError):
            decode(word)

    def test_bad_shift_funct7(self):
        word = enc.encode_r(enc.OP_IMM, 1, 0b101, 2, 3, 0x11)
        with pytest.raises(DecodeError):
            decode(word)


class TestClassification:
    def test_branch_flags(self):
        instr = _decode_asm("bne x1, x2, 8")
        assert instr.is_branch and instr.is_control_flow
        assert not instr.writes_register

    def test_jump_flags(self):
        instr = _decode_asm("jal x1, 8")
        assert instr.is_jump and instr.is_control_flow
        assert instr.writes_register

    def test_store_has_no_destination(self):
        instr = _decode_asm("sw x7, 0(x3)")
        assert instr.is_store
        assert not instr.writes_register
        assert instr.source_registers() == (3, 7)

    def test_x0_not_a_source(self):
        instr = _decode_asm("add x5, x0, x6")
        assert instr.source_registers() == (6,)

    def test_write_to_x0_does_not_count(self):
        instr = _decode_asm("add x0, x1, x2")
        assert not instr.writes_register

    def test_str(self):
        assert "addi" in str(_decode_asm("addi x1, x2, 3"))


class TestRoundtripProperty:
    @given(rd=st.integers(0, 31), rs1=st.integers(0, 31),
           imm=st.integers(-2048, 2047))
    def test_addi_roundtrip(self, rd, rs1, imm):
        word = enc.encode_i(enc.OP_IMM, rd, 0, rs1, imm)
        instr = decode(word)
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.imm) == \
            ("addi", rd, rs1, imm)

    @given(rd=st.integers(0, 31), rs1=st.integers(0, 31),
           rs2=st.integers(0, 31))
    def test_r_type_roundtrip(self, rd, rs1, rs2):
        word = enc.encode_r(enc.OP_REG, rd, 0b100, rs1, rs2, 0)
        instr = decode(word)
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.rs2) == \
            ("xor", rd, rs1, rs2)
