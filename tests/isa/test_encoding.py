"""Tests for RV32I field packing and register naming."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError
from repro.isa import encoding as enc
from repro.isa.encoding import register_number, sign_extend


class TestRegisterNames:
    def test_numeric_names(self):
        assert register_number("x0") == 0
        assert register_number("x31") == 31

    def test_abi_names(self):
        assert register_number("zero") == 0
        assert register_number("ra") == 1
        assert register_number("sp") == 2
        assert register_number("a0") == 10
        assert register_number("t6") == 31

    def test_fp_alias(self):
        assert register_number("fp") == register_number("s0") == 8

    def test_case_and_whitespace(self):
        assert register_number(" A0 ") == 10

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            register_number("x32")
        with pytest.raises(AssemblerError):
            register_number("rax")


class TestSignExtend:
    @pytest.mark.parametrize("value,bits,expected", [
        (0x7FF, 12, 2047),
        (0x800, 12, -2048),
        (0xFFF, 12, -1),
        (0, 12, 0),
        (0xFFFFFFFF, 32, -1),
        (0x7FFFFFFF, 32, 2147483647),
    ])
    def test_known_values(self, value, bits, expected):
        assert sign_extend(value, bits) == expected

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_roundtrip_12bit(self, value):
        assert sign_extend(value & 0xFFF, 12) == value


class TestImmediateCodecs:
    @given(st.integers(min_value=-2048, max_value=2047))
    def test_i_type_roundtrip(self, imm):
        word = enc.encode_i(enc.OP_IMM, 5, 0, 6, imm)
        assert enc.imm_i(word) == imm
        assert enc.field_rd(word) == 5
        assert enc.field_rs1(word) == 6

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_s_type_roundtrip(self, imm):
        word = enc.encode_s(enc.OP_STORE, 2, 3, 4, imm)
        assert enc.imm_s(word) == imm

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_b_type_roundtrip(self, imm):
        offset = imm * 2  # B immediates are even
        word = enc.encode_b(enc.OP_BRANCH, 0, 3, 4, offset)
        assert enc.imm_b(word) == offset

    @given(st.integers(min_value=0, max_value=0xFFFFF))
    def test_u_type_roundtrip(self, imm):
        word = enc.encode_u(enc.OP_LUI, 7, imm)
        assert enc.imm_u(word) == imm << 12

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_j_type_roundtrip(self, imm):
        offset = imm * 2
        word = enc.encode_j(enc.OP_JAL, 1, offset)
        assert enc.imm_j(word) == offset

    def test_odd_branch_offset_rejected(self):
        with pytest.raises(AssemblerError):
            enc.encode_b(enc.OP_BRANCH, 0, 1, 2, 3)

    def test_out_of_range_immediates(self):
        with pytest.raises(AssemblerError):
            enc.encode_i(enc.OP_IMM, 1, 0, 2, 5000)
        with pytest.raises(AssemblerError):
            enc.encode_u(enc.OP_LUI, 1, 1 << 20)
