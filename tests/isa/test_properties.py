"""Property-based tests on the ISA substrate."""

from hypothesis import given, settings, strategies as st

from repro.isa import Executor, assemble, assemble_to_words, decode, \
    disassemble
from repro.isa.encoding import to_s32

REG_NAMES = [f"x{i}" for i in range(32)]
RTYPE = ["add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and"]
ITYPE = ["addi", "slti", "sltiu", "xori", "ori", "andi"]


class TestAssemblerRoundtrips:
    @settings(max_examples=60, deadline=None)
    @given(mnemonic=st.sampled_from(RTYPE),
           rd=st.sampled_from(REG_NAMES), rs1=st.sampled_from(REG_NAMES),
           rs2=st.sampled_from(REG_NAMES))
    def test_rtype_disassemble_reassemble(self, mnemonic, rd, rs1, rs2):
        line = f"{mnemonic} {rd}, {rs1}, {rs2}"
        word = assemble_to_words(f"_start:\n  {line}\n")[0]
        again = assemble_to_words(f"_start:\n  {disassemble(word)}\n")[0]
        assert word == again

    @settings(max_examples=60, deadline=None)
    @given(mnemonic=st.sampled_from(ITYPE),
           rd=st.sampled_from(REG_NAMES), rs1=st.sampled_from(REG_NAMES),
           imm=st.integers(min_value=-2048, max_value=2047))
    def test_itype_fields_survive(self, mnemonic, rd, rs1, imm):
        word = assemble_to_words(f"_start:\n  {mnemonic} {rd}, {rs1}, {imm}\n")[0]
        instr = decode(word)
        assert instr.mnemonic == mnemonic
        assert instr.rd == int(rd[1:])
        assert instr.rs1 == int(rs1[1:])
        assert instr.imm == imm


class TestExecutorSemantics:
    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
           b=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_add_matches_python_mod_arithmetic(self, a, b):
        executor = Executor(assemble(f"""
_start:
    li t0, {a}
    li t1, {b}
    add a0, t0, t1
    li a7, 93
    ecall
"""))
        executor.run()
        assert executor.state.read(10) == (a + b) & 0xFFFFFFFF

    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
           shift=st.integers(min_value=0, max_value=31))
    def test_srai_matches_python(self, a, shift):
        executor = Executor(assemble(f"""
_start:
    li t0, {a}
    srai a0, t0, {shift}
    li a7, 93
    ecall
"""))
        executor.run()
        assert to_s32(executor.state.read(10)) == a >> shift

    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(min_value=0, max_value=0xFFFFFFFF),
           offset=st.sampled_from([0, 4, 8, 60]))
    def test_store_load_roundtrip(self, value, offset):
        executor = Executor(assemble(f"""
_start:
    la t0, buf
    li t1, {value}
    sw t1, {offset}(t0)
    lw a0, {offset}(t0)
    li a7, 93
    ecall
.data
buf: .space 64
"""))
        executor.run()
        assert executor.state.read(10) == value

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(min_value=-1000, max_value=1000),
           b=st.integers(min_value=-1000, max_value=1000))
    def test_blt_agrees_with_python(self, a, b):
        executor = Executor(assemble(f"""
_start:
    li t0, {a}
    li t1, {b}
    li a0, 0
    bge t0, t1, done
    li a0, 1
done:
    li a7, 93
    ecall
"""))
        executor.run()
        assert executor.state.read(10) == (1 if a < b else 0)
