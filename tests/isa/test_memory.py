"""Tests for the sparse memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.isa import Memory


class TestMemory:
    def test_unwritten_reads_zero(self):
        assert Memory().read_word(0x1234_5678 & ~3) == 0

    def test_word_roundtrip(self):
        memory = Memory()
        memory.write_word(0x100, 0xDEADBEEF)
        assert memory.read_word(0x100) == 0xDEADBEEF

    def test_little_endian_layout(self):
        memory = Memory()
        memory.write_word(0x100, 0x11223344)
        assert memory.read_byte(0x100) == 0x44
        assert memory.read_byte(0x103) == 0x11

    def test_signed_byte_read(self):
        memory = Memory()
        memory.write_byte(0x10, 0xFF)
        assert memory.read(0x10, 1, signed=True) == -1
        assert memory.read(0x10, 1, signed=False) == 0xFF

    def test_signed_half_read(self):
        memory = Memory()
        memory.write(0x10, 0x8000, 2)
        assert memory.read(0x10, 2, signed=True) == -32768

    def test_misaligned_rejected(self):
        memory = Memory()
        with pytest.raises(ExecutionError, match="misaligned"):
            memory.read(0x101, 4)
        with pytest.raises(ExecutionError, match="misaligned"):
            memory.write(0x102, 0, 4)

    def test_bad_size_rejected(self):
        with pytest.raises(ExecutionError):
            Memory().read(0x100, 3)

    def test_load_store_counters(self):
        memory = Memory()
        memory.write_word(0x100, 1)
        memory.read_word(0x100)
        memory.read_word(0x100)
        assert memory.stores == 1
        assert memory.loads == 2

    def test_load_image_does_not_count(self):
        memory = Memory()
        memory.load_image({0x100: 0xAB})
        assert memory.stores == 0
        assert memory.read_byte(0x100) == 0xAB

    def test_read_block(self):
        memory = Memory()
        memory.load_image({0x10: 1, 0x11: 2, 0x12: 3})
        assert memory.read_block(0x10, 4) == b"\x01\x02\x03\x00"

    def test_cross_page_access(self):
        memory = Memory()
        memory.write_word(0xFFC, 0xCAFEBABE)  # spans page boundary at 0x1000
        assert memory.read_word(0xFFC) == 0xCAFEBABE

    @given(addr=st.integers(0, 2**30).map(lambda a: a & ~3),
           value=st.integers(0, 0xFFFFFFFF))
    def test_word_roundtrip_property(self, addr, value):
        memory = Memory()
        memory.write_word(addr, value)
        assert memory.read_word(addr) == value
