"""Tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa import assemble, assemble_to_words, decode
from repro.isa.assembler import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE


def one(line: str) -> int:
    return assemble_to_words(f"_start:\n    {line}\n")[0]


class TestBasics:
    def test_entry_defaults_to_start_label(self):
        program = assemble("nop\n_start:\n    nop\n")
        assert program.entry == DEFAULT_TEXT_BASE + 4

    def test_entry_without_start_label(self):
        program = assemble("nop\n")
        assert program.entry == DEFAULT_TEXT_BASE

    def test_comments_ignored(self):
        words = assemble_to_words("# comment\nnop  # trailing\n// c++ style\n")
        assert len(words) == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\n  nop\na:\n  nop\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("mul x1, x2, x3\n")  # no M extension

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add x1, x2\n")

    def test_unresolved_symbol(self):
        with pytest.raises(AssemblerError, match="unresolved"):
            assemble("j nowhere\n")

    def test_instruction_in_data_section_rejected(self):
        with pytest.raises(AssemblerError, match="outside"):
            assemble(".data\nnop\n")


class TestBranchesAndLabels:
    def test_backward_branch(self):
        words = assemble_to_words("loop:\n  nop\n  j loop\n")
        jal = decode(words[1])
        assert jal.imm == -4

    def test_forward_branch(self):
        words = assemble_to_words("  beq x1, x2, done\n  nop\ndone:\n  nop\n")
        assert decode(words[0]).imm == 8

    def test_multiple_labels_same_address(self):
        program = assemble("a:\nb:\n  nop\n")
        assert program.symbols["a"] == program.symbols["b"]


class TestPseudoInstructions:
    def test_nop(self):
        assert one("nop") == 0x00000013

    def test_li_small(self):
        instr = decode(one("li a0, -5"))
        assert (instr.mnemonic, instr.rd, instr.imm) == ("addi", 10, -5)

    def test_li_large_expands_to_two(self):
        words = assemble_to_words("_start:\n  li a0, 0x12345678\n")
        assert len(words) == 2
        lui, addi = (decode(w) for w in words)
        assert lui.mnemonic == "lui"
        assert addi.mnemonic == "addi"
        # lui+addi must reconstruct the constant
        value = (lui.imm + addi.imm) & 0xFFFFFFFF
        assert value == 0x12345678

    @pytest.mark.parametrize("constant", [
        0, 1, -1, 2047, -2048, 2048, -2049, 0x7FFFFFFF, -2147483648,
        0x80000000 - (1 << 32), 0xABCD1234 - (1 << 32)])
    def test_li_reconstructs_any_constant(self, constant):
        from repro.isa import Executor

        program = assemble(f"_start:\n  li a0, {constant}\n"
                           "  li a7, 93\n  ecall\n")
        executor = Executor(program)
        executor.run()
        assert executor.state.read(10) == constant & 0xFFFFFFFF

    def test_mv_not_neg(self):
        assert decode(one("mv a0, a1")).mnemonic == "addi"
        assert decode(one("not a0, a1")).mnemonic == "xori"
        assert decode(one("neg a0, a1")).mnemonic == "sub"

    def test_branch_zero_forms(self):
        assert decode(one("beqz a0, 8")).mnemonic == "beq"
        assert decode(one("bnez a0, 8")).mnemonic == "bne"
        assert decode(one("bltz a0, 8")).mnemonic == "blt"

    def test_swapped_comparison_forms(self):
        bgt = decode(one("bgt a0, a1, 8"))
        assert bgt.mnemonic == "blt"
        assert (bgt.rs1, bgt.rs2) == (11, 10)  # operands swapped

    def test_call_ret(self):
        call = decode(one("call 2048"))
        assert (call.mnemonic, call.rd) == ("jal", 1)
        ret = decode(one("ret"))
        assert (ret.mnemonic, ret.rs1, ret.rd) == ("jalr", 1, 0)

    def test_jr(self):
        jr = decode(one("jr a0"))
        assert (jr.mnemonic, jr.rs1, jr.rd) == ("jalr", 10, 0)


class TestDirectives:
    def test_word_data(self):
        program = assemble(".data\nvals: .word 1, 2, 0xFFFFFFFF\n")
        words = program.words()
        base = program.symbols["vals"]
        assert words[base] == 1
        assert words[base + 4] == 2
        assert words[base + 8] == 0xFFFFFFFF

    def test_data_base(self):
        program = assemble(".data\nx: .word 7\n")
        assert program.symbols["x"] == DEFAULT_DATA_BASE

    def test_byte_and_half(self):
        program = assemble(".data\nb: .byte 0x12, 0x34\nh: .half 0x5678\n")
        assert program.image[program.symbols["b"]] == 0x12
        assert program.image[program.symbols["h"]] == 0x78

    def test_space_zero_filled(self):
        program = assemble(".data\nbuf: .space 8\nafter: .word 1\n")
        assert program.symbols["after"] == program.symbols["buf"] + 8

    def test_align(self):
        program = assemble(".data\na: .byte 1\n.align 2\nb: .word 2\n")
        assert program.symbols["b"] % 4 == 0

    def test_asciz(self):
        program = assemble('.data\ns: .asciz "hi"\n')
        base = program.symbols["s"]
        assert [program.image[base + i] for i in range(3)] == [104, 105, 0]

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bogus 1\n")


class TestHiLoRelocations:
    def test_hi_lo_reconstruct_address(self):
        source = """
_start:
    lui  a0, %hi(target)
    addi a0, a0, %lo(target)
    li   a7, 93
    ecall
.data
target: .word 99
"""
        from repro.isa import Executor

        program = assemble(source)
        executor = Executor(program)
        executor.run()
        assert executor.state.read(10) == program.symbols["target"]


class TestLaPseudo:
    def test_la_loads_symbol_address(self):
        from repro.isa import Executor

        program = assemble("""
_start:
    la   a0, thing
    li   a7, 93
    ecall
.data
.align 2
thing: .word 5
""")
        executor = Executor(program)
        executor.run()
        assert executor.state.read(10) == program.symbols["thing"]
