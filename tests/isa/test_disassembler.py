"""Tests for the disassembler."""

from repro.isa import assemble_to_words, disassemble


def one(line: str) -> str:
    return disassemble(assemble_to_words(f"_start:\n    {line}\n")[0])


class TestDisassemble:
    def test_r_type(self):
        assert one("add t0, t1, t2") == "add t0, t1, t2"

    def test_i_type(self):
        assert one("addi a0, a1, -3") == "addi a0, a1, -3"

    def test_load_store(self):
        assert one("lw a0, 8(sp)") == "lw a0, 8(sp)"
        assert one("sw a0, -4(sp)") == "sw a0, -4(sp)"

    def test_branch(self):
        assert one("beq a0, a1, 16") == "beq a0, a1, 16"

    def test_lui(self):
        assert one("lui a0, 0x12") == "lui a0, 0x12"

    def test_system(self):
        assert one("ecall") == "ecall"
        assert one("fence") == "fence"

    def test_invalid_word_renders_as_data(self):
        assert disassemble(0xFFFFFFFF) == ".word 0xffffffff"

    def test_roundtrip_through_assembler(self):
        # Disassembled text must re-assemble to the same word.
        for line in ("add t0, t1, t2", "addi a0, a1, 42", "lw s0, 0(sp)",
                     "sltu a0, a1, a2", "srai t0, t1, 7"):
            word = assemble_to_words(f"_start:\n  {line}\n")[0]
            again = assemble_to_words(f"_start:\n  {disassemble(word)}\n")[0]
            assert word == again
