"""Tests for the functional RV32I executor."""

import pytest

from repro.errors import ExecutionError
from repro.isa import Executor, HaltReason, assemble


def run_asm(body: str, max_instructions: int = 100_000) -> Executor:
    executor = Executor(assemble(body))
    executor.run(max_instructions=max_instructions)
    return executor


def exit_value(body: str) -> int:
    return run_asm(body).exit_code


class TestArithmetic:
    def test_add_sub(self):
        code = """
_start:
    li t0, 40
    li t1, 2
    add a0, t0, t1
    li a7, 93
    ecall
"""
        assert exit_value(code) == 42

    def test_overflow_wraps(self):
        code = """
_start:
    li t0, 0x7FFFFFFF
    addi a0, t0, 1
    li a7, 93
    ecall
"""
        executor = run_asm(code)
        assert executor.state.read(10) == 0x80000000

    def test_slt_signed_vs_unsigned(self):
        code = """
_start:
    li t0, -1
    li t1, 1
    slt  t2, t0, t1    # -1 < 1 -> 1
    sltu t3, t0, t1    # 0xFFFFFFFF < 1 -> 0
    slli t2, t2, 1
    or   a0, t2, t3
    li a7, 93
    ecall
"""
        assert exit_value(code) == 2

    def test_sra_vs_srl(self):
        code = """
_start:
    li t0, -16
    srai t1, t0, 2
    srli t2, t0, 28
    add a0, t1, t2     # -4 + 15 = 11
    li a7, 93
    ecall
"""
        assert exit_value(code) == 11

    def test_x0_stays_zero(self):
        code = """
_start:
    li t0, 99
    add x0, t0, t0
    mv a0, x0
    li a7, 93
    ecall
"""
        assert exit_value(code) == 0


class TestMemoryOps:
    def test_byte_halfword_sign_extension(self):
        code = """
_start:
    la  t0, data
    lb  t1, 0(t0)      # 0xFF -> -1
    lbu t2, 0(t0)      # 0xFF -> 255
    add a0, t1, t2     # 254
    li a7, 93
    ecall
.data
data: .byte 0xFF
"""
        assert exit_value(code) == 254

    def test_store_load_roundtrip(self):
        code = """
_start:
    la t0, buf
    li t1, 0x1234
    sh t1, 0(t0)
    lh a0, 0(t0)
    li a7, 93
    ecall
.data
buf: .space 4
"""
        assert exit_value(code) == 0x1234

    def test_stack_usage(self):
        code = """
_start:
    addi sp, sp, -8
    li t0, 7
    sw t0, 4(sp)
    lw a0, 4(sp)
    addi sp, sp, 8
    li a7, 93
    ecall
"""
        assert exit_value(code) == 7


class TestControlFlow:
    def test_loop_counts(self):
        code = """
_start:
    li a0, 0
    li t0, 10
loop:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
"""
        assert exit_value(code) == 10

    def test_call_ret(self):
        code = """
_start:
    li a0, 20
    call double
    li a7, 93
    ecall
double:
    add a0, a0, a0
    ret
"""
        assert exit_value(code) == 40

    def test_branch_taken_flag(self):
        executor = Executor(assemble("""
_start:
    li t0, 1
    beqz t0, skip      # not taken
    bnez t0, skip      # taken
    nop
skip:
    li a7, 93
    ecall
"""))
        taken = [op.branch_taken for op in executor.trace()]
        assert taken.count(True) == 1


class TestHaltAndErrors:
    def test_ebreak_halts(self):
        executor = run_asm("_start:\n  ebreak\n")
        assert executor.halt_reason is HaltReason.EBREAK

    def test_instruction_limit(self):
        executor = Executor(assemble("_start:\n  j _start\n"))
        assert executor.run(max_instructions=10) is \
            HaltReason.INSTRUCTION_LIMIT

    def test_step_after_halt_rejected(self):
        executor = run_asm("_start:\n  ebreak\n")
        with pytest.raises(ExecutionError):
            executor.step()

    def test_unsupported_syscall(self):
        with pytest.raises(ExecutionError, match="syscall"):
            run_asm("_start:\n  li a7, 999\n  ecall\n")

    def test_falling_off_program(self):
        with pytest.raises(ExecutionError, match="all-zero"):
            run_asm("_start:\n  nop\n")

    def test_write_char_syscall(self):
        executor = run_asm("""
_start:
    li a0, 72
    li a7, 64
    ecall
    li a0, 105
    ecall
    li a0, 0
    li a7, 93
    ecall
""")
        assert executor.output == "Hi"


class TestRetirementRecords:
    def test_sources_and_destination(self):
        executor = Executor(assemble("""
_start:
    li t0, 1
    li t1, 2
    add t2, t0, t1
    li a7, 93
    li a0, 0
    ecall
"""))
        ops = list(executor.trace())
        add_op = next(op for op in ops if op.instr.mnemonic == "add")
        assert add_op.sources == (5, 6)
        assert add_op.destination == 7

    def test_load_store_flags(self):
        executor = Executor(assemble("""
_start:
    la t0, w
    lw t1, 0(t0)
    sw t1, 0(t0)
    li a7, 93
    li a0, 0
    ecall
.data
w: .word 3
"""))
        ops = list(executor.trace())
        assert any(op.is_load for op in ops)
        assert any(op.is_store for op in ops)
