"""End-to-end ISS property: random straight-line programs vs a Python model.

Hypothesis generates small random ALU programs; a Python interpreter over
the same abstract operations predicts the final register file, and the
assembled program must reproduce it exactly through the full
assemble -> load -> decode -> execute stack.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import Executor, assemble
from repro.isa.encoding import MASK32, to_s32

#: (mnemonic, python evaluator) for the generated instruction set.
_BINOPS = {
    "add": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "xor": lambda a, b: a ^ b,
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "sltu": lambda a, b: 1 if a < b else 0,
    "slt": lambda a, b: 1 if to_s32(a) < to_s32(b) else 0,
}
_SHIFTOPS = {
    "slli": lambda a, sh: (a << sh) & MASK32,
    "srli": lambda a, sh: a >> sh,
    "srai": lambda a, sh: (to_s32(a) >> sh) & MASK32,
}

#: Working registers: t0-t2, s0-s1, s2-s6 - none touched by the exit
#: stub (which clobbers a0/x10 and a7/x17).
_REGS = [5, 6, 7, 8, 9, 18, 19, 20, 21, 22]

_instructions = st.one_of(
    st.tuples(st.just("li"), st.sampled_from(_REGS),
              st.integers(-2048, 2047)),
    st.tuples(st.sampled_from(sorted(_BINOPS)), st.sampled_from(_REGS),
              st.sampled_from(_REGS), st.sampled_from(_REGS)),
    st.tuples(st.sampled_from(sorted(_SHIFTOPS)), st.sampled_from(_REGS),
              st.sampled_from(_REGS), st.integers(0, 31)),
)

programs = st.lists(_instructions, min_size=1, max_size=25)


def _render(program) -> str:
    lines = ["_start:"]
    for instr in program:
        if instr[0] == "li":
            _, rd, imm = instr
            lines.append(f"    li x{rd}, {imm}")
        elif instr[0] in _BINOPS:
            op, rd, rs1, rs2 = instr
            lines.append(f"    {op} x{rd}, x{rs1}, x{rs2}")
        else:
            op, rd, rs1, shamt = instr
            lines.append(f"    {op} x{rd}, x{rs1}, {shamt}")
    lines += ["    li a7, 93", "    li a0, 0", "    ecall"]
    return "\n".join(lines) + "\n"


def _reference(program) -> dict:
    regs = {r: 0 for r in _REGS}
    for instr in program:
        if instr[0] == "li":
            _, rd, imm = instr
            regs[rd] = imm & MASK32
        elif instr[0] in _BINOPS:
            op, rd, rs1, rs2 = instr
            regs[rd] = _BINOPS[op](regs[rs1], regs[rs2])
        else:
            op, rd, rs1, shamt = instr
            regs[rd] = _SHIFTOPS[op](regs[rs1], shamt)
    return regs


class TestRandomPrograms:
    @settings(max_examples=60, deadline=None)
    @given(program=programs)
    def test_executor_matches_reference(self, program):
        executor = Executor(assemble(_render(program)))
        executor.run(max_instructions=1000)
        expected = _reference(program)
        for register, value in expected.items():
            assert executor.state.read(register) == value, \
                f"x{register} diverged for {program}"
