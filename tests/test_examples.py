"""Smoke tests: every example script must run to completion."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script} produced almost no output"


def test_expected_examples_present():
    for name in ("quickstart.py", "design_space.py", "pulse_rf_demo.py",
                 "josim_hcdro.py", "cpu_pipeline_demo.py",
                 "synthesis_tour.py"):
        assert name in EXAMPLES
