"""Tests for the discrete-event pulse engine."""

import pytest

from repro.errors import NetlistError, SimulationError
from repro.pulse import JTL, Probe, Sink, Splitter


class TestRegistration:
    def test_duplicate_names_rejected(self, engine):
        engine.add(JTL("a"))
        with pytest.raises(NetlistError, match="duplicate"):
            engine.add(JTL("a"))

    def test_component_lookup(self, engine):
        jtl = engine.add(JTL("a"))
        assert engine.component("a") is jtl
        with pytest.raises(NetlistError):
            engine.component("missing")

    def test_num_components(self, engine):
        engine.add(JTL("a"))
        engine.add(JTL("b"))
        assert engine.num_components == 2


class TestWiring:
    def test_single_driver_rule(self, engine):
        src = engine.add(JTL("src"))
        a = engine.add(Sink("a"))
        b = engine.add(Sink("b"))
        src.connect("out", a, "in")
        with pytest.raises(NetlistError, match="Splitter"):
            src.connect("out", b, "in")

    def test_unknown_ports_rejected(self, engine):
        src = engine.add(JTL("src"))
        dst = engine.add(Sink("dst"))
        with pytest.raises(NetlistError):
            src.connect("q", dst, "in")
        with pytest.raises(NetlistError):
            src.connect("out", dst, "d")

    def test_negative_wire_delay_rejected(self, engine):
        src = engine.add(JTL("src"))
        dst = engine.add(Sink("dst"))
        with pytest.raises(NetlistError):
            src.connect("out", dst, "in", delay_ps=-1.0)

    def test_unconnected_output_dissipates(self, engine):
        jtl = engine.add(JTL("lonely"))
        engine.schedule(jtl, "in", 0.0)
        assert engine.run() == 1  # the pulse is delivered, output vanishes


class TestEventOrdering:
    def test_pulses_delivered_in_time_order(self, engine):
        probe = engine.add(Probe("p"))
        for t in (30.0, 10.0, 20.0):
            engine.schedule(probe, "in", t)
        engine.run()
        assert probe.times_ps == [10.0, 20.0, 30.0]

    def test_fifo_for_simultaneous_events(self, engine):
        probe = engine.add(Probe("p"))
        engine.schedule(probe, "in", 5.0)
        engine.schedule(probe, "in", 5.0)
        assert engine.run() == 2

    def test_wire_delay_applied(self, engine):
        jtl = engine.add(JTL("j", delay_ps=2.0))
        probe = engine.add(Probe("p"))
        jtl.connect("out", probe, "in", delay_ps=3.5)
        engine.schedule(jtl, "in", 1.0)
        engine.run()
        assert probe.times_ps == [pytest.approx(6.5)]

    def test_run_until(self, engine):
        probe = engine.add(Probe("p"))
        engine.schedule(probe, "in", 10.0)
        engine.schedule(probe, "in", 100.0)
        engine.run(until_ps=50.0)
        assert probe.count == 1
        assert engine.pending_events == 1
        engine.run()
        assert probe.count == 2

    def test_past_scheduling_rejected(self, engine):
        probe = engine.add(Probe("p"))
        engine.schedule(probe, "in", 10.0)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.schedule(probe, "in", 5.0)

    def test_max_events_guard(self, engine):
        # A splitter feeding itself through both outputs would oscillate;
        # emulate runaway with a probe loop.
        a = engine.add(Probe("a"))
        b = engine.add(Probe("b"))
        a.connect("out", b, "in", delay_ps=1.0)
        b.connect("out", a, "in", delay_ps=1.0)
        engine.schedule(a, "in", 0.0)
        with pytest.raises(SimulationError, match="events"):
            engine.run(max_events=100)

    def test_exactly_max_events_is_legal(self, engine):
        """Delivering exactly ``max_events`` pulses must not raise; the
        guard fires only when an (N+1)-th delivery would be needed."""
        probe = engine.add(Probe("p"))
        for t in range(5):
            engine.schedule(probe, "in", float(t))
        assert engine.run(max_events=5) == 5
        for t in range(6):
            engine.schedule(probe, "in", 10.0 + t)
        with pytest.raises(SimulationError, match="exceeded 5 events"):
            engine.run(max_events=5)
        assert probe.count == 10  # 5 + the 5 delivered before the raise

    def test_state_consistent_after_mid_run_error(self, engine):
        """A cell raising mid-run must leave ``total_delivered`` and
        ``now_ps`` reflecting the pulses actually delivered."""
        class Exploding(Probe):
            def on_pulse(self, port, time_ps):
                if time_ps >= 30.0:
                    raise RuntimeError("boom")
                super().on_pulse(port, time_ps)

        bomb = engine.add(Exploding("bomb"))
        for t in (10.0, 20.0, 30.0, 40.0):
            engine.schedule(bomb, "in", t)
        with pytest.raises(RuntimeError):
            engine.run()
        assert engine.total_delivered == 2
        assert engine.now_ps == 30.0
        # The engine stays usable: the remaining pulse is still queued.
        assert engine.pending_events == 1

    def test_total_delivered_accumulates(self, engine):
        probe = engine.add(Probe("p"))
        engine.schedule(probe, "in", 1.0)
        engine.run()
        engine.schedule(probe, "in", 2.0)
        engine.run()
        assert engine.total_delivered == 2

    def test_reset_all_state(self, engine):
        probe = engine.add(Probe("p"))
        engine.schedule(probe, "in", 1.0)
        engine.run()
        engine.reset_all_state()
        assert probe.count == 0

    def test_emit_without_engine(self):
        jtl = JTL("orphan")
        with pytest.raises(SimulationError):
            jtl.emit("out", 0.0)
