"""Property-based tests on pulse-level component invariants."""

from hypothesis import given, settings, strategies as st

from repro.pulse import (
    DAND,
    Engine,
    HCClk,
    HCDRO,
    HCWrite,
    MergeTree,
    NdrocDemux,
    Probe,
    PulseCounter,
    SplitTree,
)


class TestFanoutConservation:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=64),
           pulses=st.integers(min_value=1, max_value=4))
    def test_split_tree_delivers_every_pulse_everywhere(self, n, pulses):
        engine = Engine()
        tree = SplitTree(engine, "t", n)
        probes = []
        for i in range(n):
            probe = engine.add(Probe(f"p{i}"))
            tree.connect_output(i, probe, "in")
            probes.append(probe)
        for k in range(pulses):
            comp, port = tree.inp
            engine.schedule(comp, port, k * 50.0)
        engine.run()
        assert all(probe.count == pulses for probe in probes)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=64))
    def test_merge_tree_conserves_well_spaced_pulses(self, n):
        engine = Engine()
        tree = MergeTree(engine, "m", n)
        probe = engine.add(Probe("p"))
        comp, port = tree.out
        comp.connect(port, probe, "in")
        for i in range(n):
            jcomp, jport = tree.inputs[i]
            engine.schedule(jcomp, jport, i * 60.0)
        engine.run()
        assert probe.count == n

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=64))
    def test_tree_component_counts_match_census_formulas(self, n):
        engine = Engine()
        split = SplitTree(engine, "s", n)
        merge = MergeTree(engine, "m", n)
        assert split.splitter_count == max(n - 1, 0)
        assert merge.merger_count == max(n - 1, 0)


class TestStorageProperties:
    @settings(max_examples=40, deadline=None)
    @given(writes=st.integers(min_value=0, max_value=8),
           reads=st.integers(min_value=0, max_value=8))
    def test_hcdro_fluxon_conservation(self, writes, reads):
        """stored + emitted == min(writes, capacity) for any sequence."""
        engine = Engine()
        cell = engine.add(HCDRO("c"))
        probe = engine.add(Probe("p"))
        cell.connect("q", probe, "in")
        t = 0.0
        for _ in range(writes):
            engine.schedule(cell, "d", t)
            t += 10.0
        t += 50.0
        for _ in range(reads):
            engine.schedule(cell, "clk", t)
            t += 10.0
        engine.run()
        deposited = min(writes, 3)
        assert cell.stored_value + probe.count == deposited
        assert probe.count == min(reads, deposited)

    @settings(max_examples=40, deadline=None)
    @given(value=st.integers(min_value=0, max_value=3))
    def test_hcwrite_hcdro_counter_roundtrip(self, value):
        """HC-WRITE -> HC-DRO -> drain -> counter recovers any 2-bit value."""
        engine = Engine()
        hcw = HCWrite(engine, "w")
        cell = engine.add(HCDRO("c"))
        hcc = HCClk(engine, "k")
        counter = engine.add(PulseCounter("cnt", bits=2))
        hcw.connect_output(cell, "d")
        hcc.connect_output(cell, "clk")
        cell.connect("q", counter, "in")
        if value & 1:
            engine.schedule(*hcw.b0, 0.0)
        if value & 2:
            engine.schedule(*hcw.b1, 0.0)
        engine.run()
        engine.schedule(*hcc.inp, 200.0)
        engine.run()
        assert counter.count == value

    @settings(max_examples=20, deadline=None)
    @given(pulses=st.integers(min_value=0, max_value=15),
           bits=st.integers(min_value=1, max_value=4))
    def test_counter_counts_modulo(self, pulses, bits):
        engine = Engine()
        counter = engine.add(PulseCounter("c", bits=bits))
        for k in range(pulses):
            engine.schedule(counter, "in", k * 10.0)
        engine.run()
        assert counter.count == pulses % (2 ** bits)


class TestDemuxProperties:
    @settings(max_examples=20, deadline=None)
    @given(k=st.integers(min_value=1, max_value=5),
           data=st.data())
    def test_demux_routes_exactly_one_leaf(self, k, data):
        n = 2 ** k
        address = data.draw(st.integers(min_value=0, max_value=n - 1))
        engine = Engine()
        demux = NdrocDemux(engine, "dm", n)
        probes = []
        for i in range(n):
            probe = engine.add(Probe(f"l{i}"))
            comp, port = demux.leaf(i)
            comp.connect(port, probe, "in")
            probes.append(probe)
        demux.apply_select(address, 0.0)
        demux.fire(5.0)
        engine.run()
        counts = [probe.count for probe in probes]
        assert sum(counts) == 1
        assert counts[address] == 1


class TestDandProperties:
    @settings(max_examples=40, deadline=None)
    @given(gap=st.floats(min_value=0.0, max_value=40.0))
    def test_window_semantics(self, gap):
        engine = Engine()
        dand = engine.add(DAND("d", hold_window_ps=10.0))
        probe = engine.add(Probe("p"))
        dand.connect("out", probe, "in")
        engine.schedule(dand, "a", 0.0)
        engine.schedule(dand, "b", gap)
        engine.run()
        assert probe.count == (1 if gap <= 10.0 else 0)
