"""Tests for the build-once compiled netlist cache."""

from __future__ import annotations

import pytest

from repro.pulse import Engine, Probe
from repro.pulse.cache import CompiledNetlistCache
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseDualBankHiPerRF, PulseHiPerRF, PulseNdroRF


@pytest.fixture
def cache():
    return CompiledNetlistCache()


def _probe_builder():
    engine = Engine()
    probe = engine.add(Probe("p"))
    return engine, probe


class TestBuildOnce:
    def test_miss_builds_and_compiles(self, cache):
        engine, probe = cache.build_once("k", _probe_builder)
        assert engine.compiled is not None
        assert probe.engine is engine
        assert cache.stats() == {"entries": 1, "hits": 0, "misses": 1}

    def test_hit_returns_same_instance_reset(self, cache):
        engine, probe = cache.build_once("k", _probe_builder)
        engine.schedule(probe, "in", 5.0)
        engine.run()
        assert probe.count == 1 and engine.now_ps == 5.0

        engine2, probe2 = cache.build_once("k", _probe_builder)
        assert engine2 is engine and probe2 is probe
        assert probe2.count == 0
        assert engine2.now_ps == 0.0
        assert engine2.total_delivered == 0
        assert engine2.pending_events == 0
        assert cache.hits == 1

    def test_hit_discards_pending_events(self, cache):
        engine, probe = cache.build_once("k", _probe_builder)
        engine.schedule(probe, "in", 99.0)  # never run: still queued
        engine2, _ = cache.build_once("k", _probe_builder)
        assert engine2.pending_events == 0

    def test_distinct_keys_distinct_instances(self, cache):
        engine_a, _ = cache.build_once("a", _probe_builder)
        engine_b, _ = cache.build_once("b", _probe_builder)
        assert engine_a is not engine_b
        assert len(cache) == 2 and "a" in cache and "b" in cache

    def test_clear_forgets_everything(self, cache):
        cache.build_once("k", _probe_builder)
        cache.clear()
        assert len(cache) == 0
        engine, _ = cache.build_once("k", _probe_builder)
        assert cache.stats() == {"entries": 1, "hits": 0, "misses": 1}
        assert engine.compiled is not None


class TestCachedFactories:
    def test_hiperrf_roundtrip_after_reuse(self, cache):
        geometry = RFGeometry(8, 8)
        rf = PulseHiPerRF.build_cached(geometry, 600.0, cache=cache)
        done = rf.write_word(2, 0xC3, 50.0)
        assert rf.read_word(2, done + 50.0) == 0xC3

        again = PulseHiPerRF.build_cached(geometry, 600.0, cache=cache)
        assert again is rf
        assert again.stored_word(2) == 0  # pristine state
        done = again.write_word(2, 0x3C, 50.0)
        assert again.read_word(2, done + 50.0) == 0x3C
        assert cache.stats()["misses"] == 1

    def test_key_separates_topology_and_semantics(self, cache):
        small = PulseNdroRF.build_cached(RFGeometry(4, 4), 400.0, cache=cache)
        large = PulseNdroRF.build_cached(RFGeometry(8, 8), 400.0, cache=cache)
        lenient = PulseNdroRF.build_cached(
            RFGeometry(4, 4), 400.0, strict_timing=False, cache=cache)
        assert small is not large and small is not lenient
        assert not lenient.engine.strict_timing
        assert cache.stats() == {"entries": 3, "hits": 0, "misses": 3}

    def test_build_key_is_stable_and_distinct(self):
        key = PulseHiPerRF.build_key(RFGeometry(8, 8), 600.0)
        assert key == PulseHiPerRF.build_key(RFGeometry(8, 8), 600.0)
        assert key != PulseHiPerRF.build_key(RFGeometry(8, 8), 400.0)
        assert key != PulseNdroRF.build_key(RFGeometry(8, 8), 600.0)
        assert hash(key)  # usable as a dict key

    def test_dual_bank_banks_cached_separately(self, cache):
        geometry = RFGeometry(8, 8)
        dual = PulseDualBankHiPerRF.build_cached(geometry, cache=cache)
        assert dual.banks[0] is not dual.banks[1]
        done = dual.write_word(5, 0x1D, 50.0)
        assert dual.read_word(5, done + 50.0) == 0x1D

        again = PulseDualBankHiPerRF.build_cached(geometry, cache=cache)
        assert again.banks[0] is dual.banks[0]
        assert again.stored_word(5) == 0
        assert cache.stats()["misses"] == 2  # one per bank
        assert cache.stats()["hits"] == 2


class TestCheckout:
    """Concurrent jobs on one cached netlist (the service dispatch path)."""

    def test_checkout_yields_pristine_engine(self, cache):
        with cache.checkout("k", _probe_builder) as (engine, probe):
            engine.schedule(probe, "in", 5.0)
            engine.run()
            assert probe.count == 1
        with cache.checkout("k", _probe_builder) as (engine2, probe2):
            assert engine2 is engine
            assert probe2.count == 0 and engine2.now_ps == 0.0

    def test_interleaved_jobs_do_not_leak_state(self, cache):
        """Two threads hammer one cached register file; every checkout
        must see pristine state and read back exactly its own writes."""
        import threading

        geometry = RFGeometry(4, 4)
        barrier = threading.Barrier(2)
        errors = []

        def job(value):
            try:
                barrier.wait(5)
                for _ in range(10):
                    lease = PulseHiPerRF.checkout_cached(
                        geometry, 600.0, cache=cache)
                    with lease as rf:
                        assert rf.stored_word(1) == 0  # no leaked state
                        assert rf.stored_word(2) == 0
                        done = rf.write_word(1, value, 50.0)
                        assert rf.read_word(1, done + 50.0) == value
            except Exception as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        threads = [threading.Thread(target=job, args=(v,))
                   for v in (0x5, 0xA)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert errors == []
        assert cache.stats()["misses"] == 1  # one build served every lease

    def test_distinct_keys_checkout_concurrently(self, cache):
        """A lease on one key must not block a different key."""
        with cache.checkout("a", _probe_builder) as (engine_a, _):
            with cache.checkout("b", _probe_builder) as (engine_b, _):
                assert engine_a is not engine_b

    def test_module_level_checkout_uses_default_cache(self):
        from repro.pulse import cache as cache_module

        cache_module.clear()
        with cache_module.checkout("svc-test", _probe_builder) as (engine, _):
            assert engine.compiled is not None
        assert "svc-test" in cache_module.DEFAULT_CACHE
        cache_module.clear()

    def test_clear_resets_locks_and_entries(self, cache):
        with cache.checkout("k", _probe_builder):
            pass
        cache.clear()
        assert len(cache) == 0
        with cache.checkout("k", _probe_builder) as (engine, _):
            assert engine.compiled is not None
        assert cache.stats()["misses"] == 1
