"""Cross-tier equivalence: reference vs compiled vs batched lanes.

Every scenario drives the *same* per-lane program three ways:

* live on a fresh reference engine (one engine per lane - the ground
  truth),
* as captured stimulus lanes through ``run_lanes(tier="compiled")``
  (sequential snapshot/restore replay),
* as the same lanes through ``run_lanes(tier="batched")`` (one shared
  vectorized event wheel).

The tiers must agree on *everything*, per lane: error type and text,
delivered-event count, final clock, the full delivery trace (order, not
just content), probe pulse times and component state.  Lane counts
cover L in {1, 2, 7, 64}, lanes retire unevenly, and strict-timing
faults and per-lane ``max_events`` exhaustion hit only some lanes of a
batch.
"""

from __future__ import annotations

import pytest

from repro.pulse import (
    DRO,
    Engine,
    HCDRO,
    JTL,
    Probe,
    SplitTree,
    capture_stimulus,
    install_lane,
    run_lanes,
)
from repro.pulse.demux import NdrocDemux
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseHiPerRF, PulseNdroRF

LANE_COUNTS = (1, 2, 7, 64)


# -- harness ------------------------------------------------------------


def _reference_outcome(build, program, lane: int, strict: bool):
    engine = Engine(strict_timing=strict)
    handle = build(engine)
    engine.trace = []
    error = None
    try:
        program(engine, handle, lane)
    except Exception as exc:  # noqa: BLE001 - compared, not hidden
        error = (type(exc).__name__, str(exc))
    probes = {name: list(comp.times_ps)
              for name, comp in engine._components.items()
              if isinstance(comp, Probe)}
    return {
        "error": error,
        "trace": list(engine.trace),
        "delivered": engine.total_delivered,
        "now_ps": engine.now_ps,
        "probes": probes,
    }


def assert_tiers_match(build, program, lanes: int,
                       strict: bool = True) -> list:
    """Run ``lanes`` lanes of one scenario on all three tiers."""
    references = [_reference_outcome(build, program, lane, strict)
                  for lane in range(lanes)]

    engine = Engine(strict_timing=strict)
    handle = build(engine)
    compiled = engine.compile()
    stimuli = []
    for lane in range(lanes):
        with capture_stimulus(engine) as capture:
            program(engine, handle, lane)
        stimuli.append(capture.stimulus())

    sequential = run_lanes(compiled, stimuli, tier="compiled", trace=True)
    batched = run_lanes(compiled, stimuli, tier="batched", trace=True)

    # Batched vs compiled: full LaneOutcome equality (state columns,
    # pending events, probes, traces, errors - everything).
    assert batched == sequential

    # Both lane tiers vs the per-lane reference ground truth.
    for reference, outcome in zip(references, batched):
        assert outcome.error == reference["error"]
        assert outcome.delivered == reference["delivered"]
        assert outcome.now_ps == reference["now_ps"]
        assert outcome.trace == reference["trace"]
        install_lane(compiled, outcome)
        lane_probes = {name: list(comp.times_ps)
                       for name, comp in engine._components.items()
                       if isinstance(comp, Probe)}
        assert lane_probes == reference["probes"]
    return batched


# -- netlist builders and per-lane programs -----------------------------


def build_jtl_chain(engine):
    stages = [engine.add(JTL(f"j{i}", delay_ps=1.5 + 0.25 * (i % 3)))
              for i in range(20)]
    for a, b in zip(stages, stages[1:]):
        a.connect("out", b, "in", delay_ps=0.5)
    probe = engine.add(Probe("end"))
    stages[-1].connect("out", probe, "in")
    return stages[0], probe


def program_jtl(engine, handle, lane):
    """Lane k injects k+1 pulses: every lane retires at a different time."""
    head, _ = handle
    for i in range(lane + 1):
        engine.schedule(head, "in", 10.0 + 7.0 * i)
    engine.run()


def build_dro_column(engine):
    cells = [engine.add(DRO(f"col.c{i}")) for i in range(8)]
    data_tree = SplitTree(engine, "col.data", 8)
    clk_tree = SplitTree(engine, "col.clk", 8)
    for i, cell in enumerate(cells):
        comp, port = data_tree.outputs[i]
        comp.connect(port, cell, "d", delay_ps=1.0)
        comp, port = clk_tree.outputs[i]
        comp.connect(port, cell, "clk", delay_ps=1.0)
        probe = engine.add(Probe(f"col.p{i}"))
        cell.connect("q", probe, "in")
    return data_tree, clk_tree


def program_dro_column(engine, handle, lane):
    data_tree, clk_tree = handle
    t = 10.0
    for _ in range(1 + lane % 5):  # store/read round count varies per lane
        engine.schedule(*data_tree.inp, t)
        engine.schedule(*clk_tree.inp, t + 40.0)
        t += 100.0
    engine.run(until_ps=t)


def build_hcdro(engine):
    cell = engine.add(HCDRO("hc"))
    probe = engine.add(Probe("out"))
    cell.connect("q", probe, "in", delay_ps=1.0)
    return cell, probe


def program_hcdro(engine, handle, lane):
    """Store (lane % 4) fluxons, then read four times."""
    cell, _ = handle
    spacing = cell.min_pulse_spacing_ps
    t = 10.0
    for _ in range(lane % 4):
        engine.schedule(cell, "d", t)
        t += spacing
    for _ in range(4):
        engine.schedule(cell, "clk", t)
        t += spacing
    engine.run()


def program_hcdro_faulty(engine, handle, lane):
    """Even lanes violate the HC-DRO pulse spacing; odd lanes are clean."""
    cell, _ = handle
    spacing = cell.min_pulse_spacing_ps
    engine.schedule(cell, "d", 10.0)
    if lane % 2 == 0:
        engine.schedule(cell, "d", 11.0)  # far too close: strict error
    else:
        engine.schedule(cell, "d", 10.0 + spacing)
        engine.schedule(cell, "clk", 10.0 + 2 * spacing)
    engine.run()


def build_demux(engine):
    demux = NdrocDemux(engine, "dx", 8)
    for leaf in range(8):
        probe = engine.add(Probe(f"leaf{leaf}"))
        comp, port = demux.leaf(leaf)
        comp.connect(port, probe, "in")
    return demux


def program_demux(engine, handle, lane):
    demux = handle
    t = 50.0
    for address in ((lane * 3 + i) % 8 for i in range(1 + lane % 3)):
        demux.apply_select(address, t)
        demux.fire(t + 30.0)
        demux.apply_reset(t + 120.0)
        t += 200.0
    engine.run()


def build_hiperrf(engine):
    return PulseHiPerRF(engine, RFGeometry(4, 8))


def program_hiperrf(engine, rf, lane):
    """Write a lane-dependent word, read it back restoringly."""
    register = lane % 4
    value = (0x35 + 0x49 * lane) & 0xFF
    t = rf.write_word(register, value, 0.0)
    settle = rf.schedule_read(register, t, loopback=True)
    rf._broadcast(rf.hcr_read_tree, settle + 5.0)
    rf._broadcast(rf.hcr_reset_tree, settle + 15.0)
    engine.run(until_ps=t + 2 * rf.op_period_ps)


def program_hiperrf_budget(engine, rf, lane):
    """Odd lanes exhaust a tiny per-lane event budget mid-flight."""
    rf.schedule_write(lane % 4, 0xA, 50.0)
    if lane % 2:
        engine.run(max_events=100)
    else:
        engine.run(until_ps=2 * rf.op_period_ps)


def build_ndrorf(engine):
    return PulseNdroRF(engine, RFGeometry(4, 8), 400.0)


def program_ndrorf(engine, rf, lane):
    register = lane % 4
    value = (0x1F * (lane + 1)) & 0xFF
    rf.schedule_write(register, value, 0.0)
    engine.run(until_ps=rf.op_period_ps)
    rf.read_word(register, rf.op_period_ps + 50.0)


SCENARIOS = {
    "jtl_chain": (build_jtl_chain, program_jtl, True),
    "dro_column": (build_dro_column, program_dro_column, True),
    "hcdro": (build_hcdro, program_hcdro, True),
    "demux": (build_demux, program_demux, True),
    "hiperrf": (build_hiperrf, program_hiperrf, True),
    "ndro_rf": (build_ndrorf, program_ndrorf, True),
}


# -- the suite ----------------------------------------------------------


class TestCrossTierEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("lanes", LANE_COUNTS)
    def test_all_netlists_all_lane_counts(self, name, lanes):
        build, program, strict = SCENARIOS[name]
        if lanes == 64 and name in ("hiperrf", "ndro_rf"):
            pytest.skip("64 reference builds of a full RF are too slow "
                        "for tier-1; covered at L<=7")
        assert_tiers_match(build, program, lanes, strict)

    @pytest.mark.parametrize("lanes", (2, 7))
    def test_strict_timing_faults_per_lane(self, lanes):
        outcomes = assert_tiers_match(build_hcdro, program_hcdro_faulty,
                                      lanes)
        for outcome in outcomes:
            if outcome.lane % 2 == 0:
                assert outcome.error is not None
                assert outcome.error[0] == "TimingViolationError"
                assert "1.00 ps apart" in outcome.error[1]
            else:
                assert outcome.error is None

    def test_lenient_mode_dissipates_identically(self):
        outcomes = assert_tiers_match(build_hcdro, program_hcdro_faulty,
                                      4, strict=False)
        assert all(outcome.error is None for outcome in outcomes)

    @pytest.mark.parametrize("lanes", (2, 7))
    def test_max_events_exhaustion_per_lane(self, lanes):
        outcomes = assert_tiers_match(build_hiperrf,
                                      program_hiperrf_budget, lanes)
        for outcome in outcomes:
            if outcome.lane % 2:
                assert outcome.error is not None
                assert outcome.error[0] == "SimulationError"
                assert outcome.delivered == 100
            else:
                assert outcome.error is None


class TestTierSelection:
    def _stimuli(self, engine, handle, lanes):
        stimuli = []
        for lane in range(lanes):
            with capture_stimulus(engine) as capture:
                program_hcdro(engine, handle, lane)
            stimuli.append(capture.stimulus())
        return stimuli

    def test_env_lane_cap_chunks_identically(self, monkeypatch):
        engine = Engine(strict_timing=True)
        handle = build_hcdro(engine)
        compiled = engine.compile()
        stimuli = self._stimuli(engine, handle, 7)
        whole = run_lanes(compiled, stimuli, tier="batched", trace=True)
        monkeypatch.setenv("REPRO_PULSE_LANES", "3")
        chunked = run_lanes(compiled, stimuli, trace=True)
        assert chunked == whole

    def test_env_off_selects_compiled(self, monkeypatch):
        engine = Engine(strict_timing=True)
        handle = build_hcdro(engine)
        compiled = engine.compile()
        stimuli = self._stimuli(engine, handle, 3)
        expected = run_lanes(compiled, stimuli, tier="compiled")
        monkeypatch.setenv("REPRO_PULSE_LANES", "off")
        assert run_lanes(compiled, stimuli) == expected

    def test_on_error_raise_carries_lane_index(self):
        engine = Engine(strict_timing=True)
        handle = build_hcdro(engine)
        compiled = engine.compile()
        stimuli = []
        for lane in range(3):
            with capture_stimulus(engine) as capture:
                program_hcdro_faulty(engine, handle, lane)
            stimuli.append(capture.stimulus())
        with pytest.raises(Exception, match="lane 0:"):
            run_lanes(compiled, stimuli, tier="batched", on_error="raise")


class TestWavePathEquivalence:
    """Both wave admission paths (vectorized and scalar-fallback) agree."""

    @pytest.mark.parametrize("wave_min", ("1", "100000"))
    def test_wave_min_env(self, monkeypatch, wave_min):
        monkeypatch.setenv("REPRO_PULSE_WAVE_MIN", wave_min)
        assert_tiers_match(build_hiperrf, program_hiperrf, 4)
