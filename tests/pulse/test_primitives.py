"""Tests for JTL, PTL, splitter, merger and DAND primitives."""

import pytest

from repro.errors import NetlistError
from repro.pulse import DAND, JTL, PTL, Merger, Probe, Splitter


class TestJTL:
    def test_delay(self, engine):
        jtl = engine.add(JTL("j", delay_ps=3.0))
        probe = engine.add(Probe("p"))
        jtl.connect("out", probe, "in")
        engine.schedule(jtl, "in", 10.0)
        engine.run()
        assert probe.times_ps == [13.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(NetlistError):
            JTL("j", delay_ps=-1.0)


class TestPTL:
    def test_paper_rate(self, engine):
        # 262 um at 1 ps / 100 um = 2.62 ps (Section VI-C).
        ptl = engine.add(PTL("w", length_um=262.0))
        assert ptl.delay_ps == pytest.approx(2.62)

    def test_propagation(self, engine):
        ptl = engine.add(PTL("w", length_um=100.0))
        probe = engine.add(Probe("p"))
        ptl.connect("out", probe, "in")
        engine.schedule(ptl, "in", 0.0)
        engine.run()
        assert probe.times_ps == [pytest.approx(1.0)]


class TestSplitter:
    def test_duplicates_pulse(self, engine):
        spl = engine.add(Splitter("s"))
        p0 = engine.add(Probe("p0"))
        p1 = engine.add(Probe("p1"))
        spl.connect("out0", p0, "in")
        spl.connect("out1", p1, "in")
        engine.schedule(spl, "in", 0.0)
        engine.run()
        assert p0.count == p1.count == 1
        assert p0.times_ps == p1.times_ps


class TestMerger:
    def test_merges_two_streams(self, engine):
        mrg = engine.add(Merger("m"))
        probe = engine.add(Probe("p"))
        mrg.connect("out", probe, "in")
        engine.schedule(mrg, "in0", 0.0)
        engine.schedule(mrg, "in1", 50.0)
        engine.run()
        assert probe.count == 2

    def test_dead_time_dissipates_second_pulse(self, engine):
        # Figure 3b: pulses arriving too close produce a single output.
        mrg = engine.add(Merger("m", dead_time_ps=5.0))
        probe = engine.add(Probe("p"))
        mrg.connect("out", probe, "in")
        engine.schedule(mrg, "in0", 0.0)
        engine.schedule(mrg, "in1", 2.0)
        engine.run()
        assert probe.count == 1
        assert mrg.dissipated == 1

    def test_reset_state(self, engine):
        mrg = engine.add(Merger("m", dead_time_ps=5.0))
        engine.schedule(mrg, "in0", 0.0)
        engine.run()
        mrg.reset_state()
        assert mrg.dissipated == 0


class TestDAND:
    def test_coincidence_fires(self, engine):
        dand = engine.add(DAND("d", hold_window_ps=10.0))
        probe = engine.add(Probe("p"))
        dand.connect("out", probe, "in")
        engine.schedule(dand, "a", 0.0)
        engine.schedule(dand, "b", 6.0)
        engine.run()
        assert probe.count == 1

    def test_lone_pulse_decays(self, engine):
        dand = engine.add(DAND("d", hold_window_ps=10.0))
        probe = engine.add(Probe("p"))
        dand.connect("out", probe, "in")
        engine.schedule(dand, "a", 0.0)
        engine.run()
        assert probe.count == 0

    def test_pulses_outside_window_do_not_fire(self, engine):
        # Figure 7b: inputs outside the hold time produce no output.
        dand = engine.add(DAND("d", hold_window_ps=10.0))
        probe = engine.add(Probe("p"))
        dand.connect("out", probe, "in")
        engine.schedule(dand, "a", 0.0)
        engine.schedule(dand, "b", 25.0)
        engine.run()
        assert probe.count == 0

    def test_consumed_pulses_cannot_double_fire(self, engine):
        dand = engine.add(DAND("d", hold_window_ps=10.0))
        probe = engine.add(Probe("p"))
        dand.connect("out", probe, "in")
        engine.schedule(dand, "a", 0.0)
        engine.schedule(dand, "b", 5.0)
        engine.schedule(dand, "b", 9.0)  # 'a' already consumed
        engine.run()
        assert probe.count == 1

    def test_train_gating(self, engine):
        # Three WEN pulses, two data pulses: exactly two outputs.
        dand = engine.add(DAND("d", hold_window_ps=10.0))
        probe = engine.add(Probe("p"))
        dand.connect("out", probe, "in")
        for k in range(3):
            engine.schedule(dand, "a", k * 10.0)
        for k in range(2):
            engine.schedule(dand, "b", k * 10.0)
        engine.run()
        assert probe.count == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(NetlistError):
            DAND("d", hold_window_ps=0.0)
