"""Tests for netlist export."""

import json


from repro.pulse import Engine, HCClk, Probe
from repro.pulse.export import (
    engine_graph,
    engine_to_dot,
    engine_to_json,
    network_to_dot,
)
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseHiPerRF
from repro.synth import build_kogge_stone_adder


def small_engine():
    engine = Engine()
    hc = HCClk(engine, "hc")
    probe = engine.add(Probe("p"))
    hc.connect_output(probe, "in")
    return engine


class TestEngineExport:
    def test_graph_counts(self):
        engine = small_engine()
        graph = engine_graph(engine)
        assert len(graph["nodes"]) == engine.num_components
        # HC-CLK internal wiring: every non-terminal output is connected.
        assert len(graph["edges"]) >= engine.num_components - 2

    def test_json_roundtrip(self):
        payload = json.loads(engine_to_json(small_engine()))
        assert {node["kind"] for node in payload["nodes"]} >= \
            {"Splitter", "Merger", "JTL", "Probe"}

    def test_dot_structure(self):
        dot = engine_to_dot(small_engine(), "hcclk")
        assert dot.startswith("digraph hcclk {")
        assert dot.rstrip().endswith("}")
        assert '"hc.m2" -> "p"' in dot

    def test_full_rf_exports(self):
        engine = Engine()
        PulseHiPerRF(engine, RFGeometry(4, 4))
        graph = engine_graph(engine)
        kinds = {node["kind"] for node in graph["nodes"]}
        assert {"HCDRO", "NDRO", "NDROC", "DAND"} <= kinds
        assert len(graph["edges"]) > 100


class TestNetworkExport:
    def test_adder_dot(self):
        dot = network_to_dot(build_kogge_stone_adder(4))
        assert "digraph ks_adder4" in dot
        assert "rank=same" in dot
        assert dot.count("->") > 30
