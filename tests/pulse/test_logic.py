"""Tests for clocked SFQ logic gates (gate-level clocking, Section II-A)."""

import pytest

from repro.errors import NetlistError
from repro.pulse import Engine, Probe
from repro.pulse.logic import (
    ClockedAnd,
    ClockedBuffer,
    ClockedNot,
    ClockedOr,
    ClockedXor,
)


def evaluate(gate_cls, a, b=None):
    engine = Engine()
    gate = engine.add(gate_cls("g"))
    probe = engine.add(Probe("p"))
    gate.connect("out", probe, "in")
    if a:
        engine.schedule(gate, "a", 0.0)
    if b:
        engine.schedule(gate, "b", 0.0)
    engine.schedule(gate, "clk", 10.0)
    engine.run()
    return probe.count


class TestTruthTables:
    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 0),
                                              (1, 0, 0), (1, 1, 1)])
    def test_and(self, a, b, expected):
        assert evaluate(ClockedAnd, a, b) == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1),
                                              (1, 0, 1), (1, 1, 1)])
    def test_or(self, a, b, expected):
        assert evaluate(ClockedOr, a, b) == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1),
                                              (1, 0, 1), (1, 1, 0)])
    def test_xor(self, a, b, expected):
        assert evaluate(ClockedXor, a, b) == expected

    @pytest.mark.parametrize("a,expected", [(0, 1), (1, 0)])
    def test_not(self, a, expected):
        assert evaluate(ClockedNot, a) == expected

    @pytest.mark.parametrize("a,expected", [(0, 0), (1, 1)])
    def test_buffer(self, a, expected):
        assert evaluate(ClockedBuffer, a) == expected


class TestClockSemantics:
    def test_state_clears_after_clock(self):
        """Arming pulses do not leak into the next clock period."""
        engine = Engine()
        gate = engine.add(ClockedAnd("g"))
        probe = engine.add(Probe("p"))
        gate.connect("out", probe, "in")
        engine.schedule(gate, "a", 0.0)
        engine.schedule(gate, "b", 0.0)
        engine.schedule(gate, "clk", 10.0)   # fires: 1
        engine.schedule(gate, "a", 20.0)     # only a in the next period
        engine.schedule(gate, "clk", 30.0)   # does not fire
        engine.run()
        assert probe.count == 1
        assert gate.evaluations == 2

    def test_not_emits_every_empty_period(self):
        """The inverter's defining SFQ behaviour: a pulse per clock with
        no input - which is why NOT gates need clock lines at all."""
        engine = Engine()
        gate = engine.add(ClockedNot("n"))
        probe = engine.add(Probe("p"))
        gate.connect("out", probe, "in")
        for k in range(3):
            engine.schedule(gate, "clk", 10.0 + 20.0 * k)
        engine.run()
        assert probe.count == 3

    def test_unary_gate_rejects_b(self):
        engine = Engine()
        gate = engine.add(ClockedNot("n"))
        engine.schedule(gate, "b", 0.0)
        with pytest.raises(NetlistError):
            engine.run()

    def test_reset_state(self):
        engine = Engine()
        gate = engine.add(ClockedAnd("g"))
        engine.schedule(gate, "a", 0.0)
        engine.run()
        gate.reset_state()
        assert gate.evaluations == 0
