"""Tests for pipelined DEMUX operation at the 53 ps cycle (Section III-E)."""

import pytest

from repro.cells import params
from repro.errors import TimingViolationError
from repro.pulse import Engine, NdrocDemux, Probe
from repro.pulse.demux import PipelinedDemuxDriver


def build(engine, n):
    demux = NdrocDemux(engine, "dm", n)
    probes = []
    for i in range(n):
        probe = engine.add(Probe(f"leaf{i}"))
        comp, port = demux.leaf(i)
        comp.connect(port, probe, "in")
        probes.append(probe)
    return demux, probes


class TestPipelinedOperation:
    def test_back_to_back_ops_route_correctly(self):
        engine = Engine()
        demux, probes = build(engine, 16)
        addresses = [3, 11, 3, 0, 15, 8, 7, 12, 1, 14]
        PipelinedDemuxDriver(demux).run_stream(addresses)
        engine.run()
        assert [p.count for p in probes] == \
            [addresses.count(i) for i in range(16)]

    def test_full_rate_is_one_op_per_cycle(self):
        engine = Engine()
        demux, probes = build(engine, 8)
        # Two consecutive ops to the same leaf: outputs one cycle apart.
        PipelinedDemuxDriver(demux).run_stream([5, 5])
        engine.run()
        times = probes[5].times_ps
        assert len(times) == 2
        assert times[1] - times[0] == pytest.approx(
            params.NDROC_MIN_ENABLE_SEPARATION_PS)

    def test_strict_timing_holds_at_53ps(self):
        """The 53 ps stream must not trip the NDROC separation check."""
        engine = Engine(strict_timing=True)
        demux, probes = build(engine, 32)
        addresses = list(range(32))
        PipelinedDemuxDriver(demux).run_stream(addresses)
        engine.run()  # raises TimingViolationError on any violation
        assert all(p.count == 1 for p in probes)

    def test_overclocking_trips_the_constraint(self):
        """Below 53 ps the root NDROC must reject the stream."""
        engine = Engine(strict_timing=True)
        demux, probes = build(engine, 8)
        driver = PipelinedDemuxDriver(demux, cycle_ps=40.0)
        driver.run_stream([1, 2, 3])
        with pytest.raises(TimingViolationError):
            engine.run()

    def test_long_stream(self):
        engine = Engine()
        demux, probes = build(engine, 8)
        addresses = [(7 * k + 3) % 8 for k in range(64)]
        PipelinedDemuxDriver(demux).run_stream(addresses)
        engine.run()
        assert [p.count for p in probes] == \
            [addresses.count(i) for i in range(8)]


class TestPerLevelAccess:
    def test_per_level_reset_only_clears_that_level(self):
        engine = Engine()
        demux, probes = build(engine, 8)
        # Select address 7 (all levels set), then reset only level 0.
        demux.apply_select(7, 0.0)
        engine.run()
        demux.reset_arrives_at(0, 50.0)
        engine.run()
        # Firing now routes 0b011 at levels 1..2 but 0 at the root: the
        # pulse lands on leaf 3 (root complement, rest true).
        demux.fire(100.0)
        engine.run()
        assert probes[3].count == 1
        assert probes[7].count == 0
