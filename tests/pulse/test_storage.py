"""Tests for DRO, HC-DRO, NDRO and NDROC storage cell semantics."""

import pytest

from repro.errors import TimingViolationError
from repro.pulse import DRO, HCDRO, NDRO, NDROC, Engine, Probe


def _probe_output(engine, cell, out_port="q"):
    probe = engine.add(Probe(f"{cell.name}.probe"))
    cell.connect(out_port, probe, "in")
    return probe


class TestDRO:
    def test_store_and_destructive_read(self, engine):
        cell = engine.add(DRO("dro"))
        probe = _probe_output(engine, cell)
        engine.schedule(cell, "d", 0.0)
        engine.schedule(cell, "clk", 20.0)
        engine.schedule(cell, "clk", 40.0)  # second read: nothing left
        engine.run()
        assert probe.count == 1
        assert not cell.stored

    def test_second_write_dissipated(self, engine):
        cell = engine.add(DRO("dro"))
        engine.schedule(cell, "d", 0.0)
        engine.schedule(cell, "d", 20.0)
        engine.run()
        assert cell.stored
        assert cell.dissipated == 1

    def test_read_empty_cell_is_silent(self, engine):
        cell = engine.add(DRO("dro"))
        probe = _probe_output(engine, cell)
        engine.schedule(cell, "clk", 0.0)
        engine.run()
        assert probe.count == 0


class TestHCDRO:
    def test_stores_up_to_three_fluxons(self, engine):
        cell = engine.add(HCDRO("hc"))
        for k in range(3):
            engine.schedule(cell, "d", k * 10.0)
        engine.run()
        assert cell.stored_value == 3

    def test_fourth_fluxon_dissipated(self, engine):
        cell = engine.add(HCDRO("hc"))
        for k in range(4):
            engine.schedule(cell, "d", k * 10.0)
        engine.run()
        assert cell.stored_value == 3
        assert cell.dissipated == 1

    def test_each_clk_pops_one_fluxon(self, engine):
        cell = engine.add(HCDRO("hc"))
        probe = _probe_output(engine, cell)
        for k in range(2):
            engine.schedule(cell, "d", k * 10.0)
        for k in range(3):
            engine.schedule(cell, "clk", 100.0 + k * 10.0)
        engine.run()
        assert probe.count == 2  # only two fluxons were stored
        assert cell.stored_value == 0

    @pytest.mark.parametrize("value", [0, 1, 2, 3])
    def test_two_bit_roundtrip(self, engine, value):
        cell = engine.add(HCDRO("hc"))
        probe = _probe_output(engine, cell)
        for k in range(value):
            engine.schedule(cell, "d", k * 10.0)
        for k in range(3):
            engine.schedule(cell, "clk", 200.0 + k * 10.0)
        engine.run()
        assert probe.count == value

    def test_spacing_violation_strict(self):
        engine = Engine(strict_timing=True)
        cell = engine.add(HCDRO("hc"))
        engine.schedule(cell, "d", 0.0)
        engine.schedule(cell, "d", 4.0)  # < 10 ps apart
        with pytest.raises(TimingViolationError):
            engine.run()

    def test_spacing_violation_lenient_dissipates(self):
        engine = Engine(strict_timing=False)
        cell = engine.add(HCDRO("hc"))
        engine.schedule(cell, "d", 0.0)
        engine.schedule(cell, "d", 4.0)
        engine.run()
        assert cell.stored_value == 1
        assert cell.dissipated == 1

    def test_exact_10ps_spacing_accepted(self, engine):
        cell = engine.add(HCDRO("hc"))
        for k in range(3):
            engine.schedule(cell, "d", k * 10.0)
        engine.run()
        assert cell.stored_value == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HCDRO("hc", capacity=0)


class TestNDRO:
    def test_non_destructive_read(self, engine):
        cell = engine.add(NDRO("n"))
        probe = _probe_output(engine, cell, "out")
        engine.schedule(cell, "set", 0.0)
        for k in range(5):
            engine.schedule(cell, "clk", 20.0 + 10 * k)
        engine.run()
        assert probe.count == 5
        assert cell.stored

    def test_reset_clears(self, engine):
        cell = engine.add(NDRO("n"))
        probe = _probe_output(engine, cell, "out")
        engine.schedule(cell, "set", 0.0)
        engine.schedule(cell, "reset", 10.0)
        engine.schedule(cell, "clk", 20.0)
        engine.run()
        assert probe.count == 0

    def test_redundant_set_and_reset_dissipate(self, engine):
        cell = engine.add(NDRO("n"))
        engine.schedule(cell, "set", 0.0)
        engine.schedule(cell, "set", 5.0)
        engine.schedule(cell, "reset", 10.0)
        engine.schedule(cell, "reset", 15.0)
        engine.run()
        assert cell.dissipated == 2

    def test_read_empty_is_silent(self, engine):
        cell = engine.add(NDRO("n"))
        probe = _probe_output(engine, cell, "out")
        engine.schedule(cell, "clk", 0.0)
        engine.run()
        assert probe.count == 0


class TestNDROC:
    def test_complementary_routing(self, engine):
        cell = engine.add(NDROC("c"))
        true_probe = engine.add(Probe("t"))
        comp_probe = engine.add(Probe("f"))
        cell.connect("out0", true_probe, "in")
        cell.connect("out1", comp_probe, "in")
        # Clear cell: CLK exits the complement output.
        engine.schedule(cell, "clk", 0.0)
        engine.run()
        assert (true_probe.count, comp_probe.count) == (0, 1)
        # Set cell: CLK exits the true output, state is kept.
        engine.schedule(cell, "set", 100.0)
        engine.schedule(cell, "clk", 200.0)
        engine.schedule(cell, "clk", 300.0)
        engine.run()
        assert (true_probe.count, comp_probe.count) == (2, 1)

    def test_enable_separation_enforced(self):
        # Section III-E: two enables must be >= 53 ps apart.
        engine = Engine(strict_timing=True)
        cell = engine.add(NDROC("c"))
        engine.schedule(cell, "clk", 0.0)
        engine.schedule(cell, "clk", 30.0)
        with pytest.raises(TimingViolationError):
            engine.run()

    def test_53ps_separation_accepted(self, engine):
        cell = engine.add(NDROC("c"))
        engine.schedule(cell, "clk", 0.0)
        engine.schedule(cell, "clk", 53.0)
        assert engine.run() == 2

    def test_lenient_mode_dissipates(self):
        engine = Engine(strict_timing=False)
        cell = engine.add(NDROC("c"))
        engine.schedule(cell, "clk", 0.0)
        engine.schedule(cell, "clk", 30.0)
        engine.run()
        assert cell.dissipated == 1

    def test_propagation_delay(self, engine):
        cell = engine.add(NDROC("c"))
        probe = engine.add(Probe("p"))
        cell.connect("out1", probe, "in")
        engine.schedule(cell, "clk", 0.0)
        engine.run()
        assert probe.times_ps == [pytest.approx(24.0)]
