"""Structural consistency: composite pulse circuits vs census decomposition.

The cell library charges HC-CLK / HC-WRITE / HC-READ as fixed primitive
bundles (``repro.cells.params``); the pulse-level builders assemble the
same circuits from real components.  These tests count the instantiated
primitives and assert they match the census decomposition, so Table I's
roll-up and the functional netlists can never drift apart.
"""

from repro.cells import get_cell, params
from repro.pulse import Engine, HCClk, HCRead, HCWrite
from repro.pulse.counters import PulseCounter
from repro.pulse.primitives import JTL, Merger, Splitter


def census_of(engine: Engine) -> dict:
    counts: dict = {}
    for name in engine._components:
        kind = type(engine.component(name)).__name__
        counts[kind] = counts.get(kind, 0) + 1
    return counts


class TestHCClkStructure:
    def test_matches_census_decomposition(self):
        engine = Engine()
        HCClk(engine, "hc")
        counts = census_of(engine)
        assert counts["Splitter"] == params.HC_CLK_SPLITTERS
        assert counts["Merger"] == params.HC_CLK_MERGERS
        assert counts["JTL"] == params.HC_CLK_JTLS

    def test_jj_count_agrees(self):
        engine = Engine()
        HCClk(engine, "hc")
        counts = census_of(engine)
        jj = (counts["Splitter"] * get_cell("splitter").jj_count
              + counts["Merger"] * get_cell("merger").jj_count
              + counts["JTL"] * get_cell("jtl").jj_count)
        assert jj == get_cell("hc_clk").jj_count


class TestHCWriteStructure:
    def test_matches_census_decomposition(self):
        engine = Engine()
        HCWrite(engine, "hw")
        counts = census_of(engine)
        assert counts["Splitter"] == params.HC_WRITE_SPLITTERS
        assert counts["Merger"] == params.HC_WRITE_MERGERS
        # The two zero-delay entry JTLs are wiring conveniences, not
        # delay elements; the census charges only the sized chains.
        sized_jtls = sum(
            1 for name in engine._components
            if isinstance(engine.component(name), JTL)
            and engine.component(name).delay_ps > 0.0)
        assert sized_jtls == params.HC_WRITE_JTLS


class TestHCReadStructure:
    def test_behavioural_counter_capacity(self):
        engine = Engine()
        hcr = HCRead(engine, "hr")
        assert isinstance(hcr.counter, PulseCounter)
        assert hcr.counter.bits == 2  # two cascaded TFF stages

    def test_census_charges_tffs(self):
        spec = get_cell("hc_read")
        assert spec.composition["tff"] == params.HC_READ_TFFS
