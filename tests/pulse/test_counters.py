"""Tests for T-flip-flop and pulse counter components."""

import pytest

from repro.pulse import Probe, PulseCounter, TFF


class TestTFF:
    def test_carry_every_second_pulse(self, engine):
        tff = engine.add(TFF("t"))
        carry = engine.add(Probe("c"))
        tff.connect("carry", carry, "in")
        for k in range(6):
            engine.schedule(tff, "t", k * 10.0)
        engine.run()
        assert carry.count == 3

    def test_q_readout_non_destructive(self, engine):
        tff = engine.add(TFF("t"))
        q = engine.add(Probe("q"))
        tff.connect("q", q, "in")
        engine.schedule(tff, "t", 0.0)
        engine.schedule(tff, "read", 10.0)
        engine.schedule(tff, "read", 20.0)
        engine.run()
        assert q.count == 2
        assert tff.q_state

    def test_reset(self, engine):
        tff = engine.add(TFF("t"))
        engine.schedule(tff, "t", 0.0)
        engine.schedule(tff, "reset", 10.0)
        engine.run()
        assert not tff.q_state


class TestPulseCounter:
    @pytest.mark.parametrize("pulses", [0, 1, 2, 3])
    def test_counts_and_reads_out(self, engine, pulses):
        counter = engine.add(PulseCounter("c", bits=2))
        b0 = engine.add(Probe("b0"))
        b1 = engine.add(Probe("b1"))
        counter.connect("b0", b0, "in")
        counter.connect("b1", b1, "in")
        for k in range(pulses):
            engine.schedule(counter, "in", k * 10.0)
        engine.schedule(counter, "read", 100.0)
        engine.run()
        assert b0.count == (pulses & 1)
        assert b1.count == ((pulses >> 1) & 1)

    def test_wraps_modulo(self, engine):
        counter = engine.add(PulseCounter("c", bits=2))
        for k in range(5):
            engine.schedule(counter, "in", k * 10.0)
        engine.run()
        assert counter.count == 1
        assert counter.wrapped == 1

    def test_reset_clears(self, engine):
        counter = engine.add(PulseCounter("c", bits=2))
        engine.schedule(counter, "in", 0.0)
        engine.schedule(counter, "reset", 10.0)
        engine.run()
        assert counter.count == 0

    def test_read_is_non_destructive(self, engine):
        counter = engine.add(PulseCounter("c", bits=2))
        engine.schedule(counter, "in", 0.0)
        engine.schedule(counter, "in", 10.0)
        engine.schedule(counter, "read", 50.0)
        engine.run()
        assert counter.count == 2

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            PulseCounter("c", bits=0)
