"""Merger arbitration of exactly simultaneous pulses must be deterministic.

The physical confluence buffer has no defined winner for two pulses in
the same instant; the model must not let event-queue insertion order
decide instead.  Policy: exactly one output pulse, ``in0`` wins the
attribution, and the tie is counted so test benches can detect it.
"""

from repro.pulse import Engine, Merger, Sink


def _run_tie(first_port, second_port):
    engine = Engine()
    merger = engine.add(Merger("m", dead_time_ps=5.0))
    sink = engine.add(Sink("s"))
    merger.connect("out", sink, "in")
    engine.inject(merger, first_port, 100.0)
    engine.inject(merger, second_port, 100.0)
    engine.run()
    return merger, sink


def test_simultaneous_pulses_emit_exactly_once():
    merger, sink = _run_tie("in0", "in1")
    assert sink.count == 1
    assert merger.dissipated == 1
    assert merger.simultaneous_arrivals == 1


def test_in0_wins_regardless_of_delivery_order():
    for order in (("in0", "in1"), ("in1", "in0")):
        merger, sink = _run_tie(*order)
        assert merger.winner_port == "in0", order
        assert sink.count == 1
        assert merger.simultaneous_arrivals == 1


def test_distinct_pulses_inside_dead_time_keep_first_winner():
    engine = Engine()
    merger = engine.add(Merger("m", dead_time_ps=5.0))
    sink = engine.add(Sink("s"))
    merger.connect("out", sink, "in")
    engine.inject(merger, "in1", 100.0)
    engine.inject(merger, "in0", 102.0)  # inside dead time, not a tie
    engine.run()
    assert sink.count == 1
    assert merger.winner_port == "in1"
    assert merger.dissipated == 1
    assert merger.simultaneous_arrivals == 0


def test_well_separated_pulses_both_pass():
    engine = Engine()
    merger = engine.add(Merger("m", dead_time_ps=5.0))
    sink = engine.add(Sink("s"))
    merger.connect("out", sink, "in")
    engine.inject(merger, "in1", 100.0)
    engine.inject(merger, "in0", 120.0)
    engine.run()
    assert sink.count == 2
    assert merger.winner_port == "in0"
    assert merger.dissipated == 0


def test_reset_state_clears_arbitration_bookkeeping():
    merger, _sink = _run_tie("in0", "in1")
    merger.reset_state()
    assert merger.winner_port == ""
    assert merger.simultaneous_arrivals == 0
    assert merger.dissipated == 0
