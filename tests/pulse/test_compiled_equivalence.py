"""Reference-vs-compiled backend equivalence.

Every test drives the *identical* stimulus through a freshly built
reference engine and a compiled one and requires bit-identical
observables: the full pulse trace (time, component, port - which pins
down delivery *order*, not just content), final component state, the
delivered-event count and the simulation clock.  This is the contract
that lets ``Engine.compile()`` be dropped into any existing driver.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import TimingViolationError
from repro.pulse import JTL, Engine, HCDRO, Probe
from repro.pulse.demux import NdrocDemux
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseHiPerRF


def run_mirrored(build, stimulate, strict_timing: bool = True):
    """Run one scenario on both backends and compare all observables.

    ``build(engine)`` constructs the netlist and returns a handle;
    ``stimulate(engine, handle)`` drives it and returns whatever the
    scenario wants compared.  Returns the reference outcome.
    """
    outcomes = []
    for compiled in (False, True):
        engine = Engine(strict_timing=strict_timing)
        handle = build(engine)
        engine.trace = []
        if compiled:
            engine.compile()
        error = None
        try:
            result = stimulate(engine, handle)
        except Exception as exc:  # noqa: BLE001 - compared, not hidden
            error = (type(exc).__name__, str(exc))
            result = None
        outcomes.append({
            "result": result,
            "error": error,
            "trace": list(engine.trace),
            "delivered": engine.total_delivered,
            "now_ps": engine.now_ps,
        })
    reference, compiled_outcome = outcomes
    assert compiled_outcome["error"] == reference["error"]
    assert compiled_outcome["result"] == reference["result"]
    assert compiled_outcome["delivered"] == reference["delivered"]
    assert compiled_outcome["now_ps"] == reference["now_ps"]
    assert compiled_outcome["trace"] == reference["trace"]
    return reference


class TestJTLChains:
    def test_long_chain_preserves_times(self):
        def build(engine):
            stages = [engine.add(JTL(f"j{i}", delay_ps=1.5 + 0.25 * (i % 3)))
                      for i in range(50)]
            for a, b in zip(stages, stages[1:]):
                a.connect("out", b, "in", delay_ps=0.5)
            probe = engine.add(Probe("end"))
            stages[-1].connect("out", probe, "in")
            return stages[0], probe

        def stimulate(engine, handle):
            head, probe = handle
            for t in (10.0, 11.0, 250.0, 251.5):
                engine.schedule(head, "in", t)
            engine.run()
            return tuple(probe.times_ps)

        outcome = run_mirrored(build, stimulate)
        assert len(outcome["result"]) == 4

    def test_simultaneous_fan_in_order(self):
        """Two chains converging on one probe at the same instant must
        deliver in schedule order on both backends."""
        def build(engine):
            a = engine.add(JTL("a", delay_ps=4.0))
            b = engine.add(JTL("b", delay_ps=4.0))
            probe = engine.add(Probe("p"))
            sink = engine.add(Probe("q"))
            a.connect("out", probe, "in")
            b.connect("out", sink, "in")
            return a, b

        def stimulate(engine, handle):
            a, b = handle
            engine.schedule(b, "in", 1.0)
            engine.schedule(a, "in", 1.0)
            return engine.run()

        run_mirrored(build, stimulate)


class TestDemuxTrees:
    def test_select_fire_cycles(self):
        def build(engine):
            demux = NdrocDemux(engine, "dx", 8)
            probes = []
            for leaf in range(8):
                probe = engine.add(Probe(f"leaf{leaf}"))
                comp, port = demux.leaf(leaf)
                comp.connect(port, probe, "in")
                probes.append(probe)
            return demux, probes

        def stimulate(engine, handle):
            demux, probes = handle
            t = 50.0
            for address in (0, 5, 3, 7, 5):
                demux.apply_select(address, t)
                demux.fire(t + 30.0)
                demux.apply_reset(t + 120.0)
                t += 200.0
            engine.run()
            return tuple(tuple(p.times_ps) for p in probes)

        outcome = run_mirrored(build, stimulate)
        counts = [len(times) for times in outcome["result"]]
        assert counts[5] == 2 and sum(counts) == 5


class TestHCDROStorage:
    def test_multi_fluxon_store_and_drain(self):
        def build(engine):
            cell = engine.add(HCDRO("hc"))
            probe = engine.add(Probe("out"))
            cell.connect("q", probe, "in", delay_ps=1.0)
            return cell, probe

        def stimulate(engine, handle):
            cell, probe = handle
            spacing = cell.min_pulse_spacing_ps
            t = 10.0
            for _ in range(3):
                engine.schedule(cell, "d", t)
                t += spacing
            for _ in range(4):  # one read more than stored
                engine.schedule(cell, "clk", t)
                t += spacing
            engine.run()
            return cell.fluxons, cell.dissipated, tuple(probe.times_ps)

        outcome = run_mirrored(build, stimulate)
        fluxons, _, times = outcome["result"]
        assert fluxons == 0 and len(times) == 3

    def test_strict_timing_violation_identical(self):
        """A spacing violation must raise the same error, after the same
        number of delivered events, on both backends."""
        def build(engine):
            return engine.add(HCDRO("hc"))

        def stimulate(engine, cell):
            engine.schedule(cell, "d", 10.0)
            engine.schedule(cell, "d", 11.0)  # far too close
            engine.run()

        outcome = run_mirrored(build, stimulate)
        name, message = outcome["error"]
        assert name == TimingViolationError.__name__
        assert "1.00 ps apart" in message
        assert outcome["delivered"] == 1  # the raising pulse is not counted

    def test_lenient_mode_dissipates_identically(self):
        def build(engine):
            return engine.add(HCDRO("hc"))

        def stimulate(engine, cell):
            engine.schedule(cell, "d", 10.0)
            engine.schedule(cell, "d", 11.0)
            engine.run()
            return cell.fluxons, cell.dissipated

        outcome = run_mirrored(build, stimulate, strict_timing=False)
        assert outcome["result"] == (1, 1)


class TestFullRegisterFile:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_op_mix(self, seed):
        """Property-style: a random read/write mix over an 8x8 HiPerRF
        (HC-DRO cells, LoopBuffer loopback, DEMUX ports, DAND write
        coincidence) is trace-identical across backends."""
        def build(engine):
            return PulseHiPerRF(engine, RFGeometry(8, 8))

        def stimulate(engine, rf):
            rng = random.Random(seed)
            t = engine.now_ps + 50.0
            vals = {}
            observed = []
            for _ in range(10):
                if vals and rng.random() < 0.5:
                    addr = rng.choice(sorted(vals))
                    value = rf.read_word(addr, t)
                    assert value == vals[addr]
                    observed.append(("r", addr, value))
                else:
                    addr = rng.randrange(8)
                    vals[addr] = rng.getrandbits(8)
                    rf.write_word(addr, vals[addr], t)
                    observed.append(("w", addr, vals[addr]))
                t = engine.now_ps + 50.0
            stored = tuple(rf.stored_word(a) for a in sorted(vals))
            return tuple(observed), stored

        outcome = run_mirrored(build, stimulate)
        assert outcome["trace"], "op mix must generate traffic"

    def test_max_events_interrupt_identical(self):
        """Hitting the event budget mid-flight leaves both backends in
        the same (delivered, now) state with the same error."""
        def build(engine):
            return PulseHiPerRF(engine, RFGeometry(4, 4))

        def stimulate(engine, rf):
            rf.schedule_write(2, 0xA, 50.0)
            engine.run(max_events=100)

        outcome = run_mirrored(build, stimulate)
        assert outcome["error"][0] == "SimulationError"
        assert outcome["delivered"] == 100


class TestSnapshotRestore:
    def test_restore_replays_identically(self):
        engine = Engine(strict_timing=True)
        rf = PulseHiPerRF(engine, RFGeometry(4, 4))
        compiled = engine.compile()
        engine.trace = []

        done = rf.write_word(1, 0x7, 50.0)
        snap = compiled.snapshot()
        trace_mark = len(engine.trace)

        assert rf.read_word(1, done + 50.0) == 0x7
        first_tail = engine.trace[trace_mark:]
        assert rf.stored_word(1) == 0x7  # loopback restored the value

        compiled.restore(snap)
        del engine.trace[trace_mark:]
        assert rf.stored_word(1) == 0x7
        assert rf.read_word(1, done + 50.0) == 0x7
        assert engine.trace[trace_mark:] == first_tail

    def test_pristine_restore_matches_fresh_build(self):
        def build():
            engine = Engine(strict_timing=True)
            return PulseHiPerRF(engine, RFGeometry(4, 4))

        def exercise(rf):
            rf.write_word(3, 0x5, 50.0)
            rf.engine.trace = []
            value = rf.read_word(3, rf.engine.now_ps + 50.0)
            return value, list(rf.engine.trace)

        rf = build()
        compiled = rf.engine.compile()
        pristine = compiled.snapshot()
        first = exercise(rf)
        compiled.restore(pristine)
        assert rf.engine.total_delivered == 0
        assert rf.stored_word(3) == 0
        second = exercise(rf)
        assert first == second


class TestLintViews:
    def test_compiled_netlist_still_lints(self):
        """``repro.lint`` lowers through components(); compiling must
        not change what it sees."""
        from repro.lint.graph import graph_from_engine

        engine = Engine(strict_timing=True)
        rf = PulseHiPerRF(engine, RFGeometry(4, 4))
        before = graph_from_engine(engine, "hiperrf", rf.external_inputs())
        engine.compile()
        after = graph_from_engine(engine, "hiperrf", rf.external_inputs())
        assert sorted(before.nodes) == sorted(after.nodes)
        assert len(after.nodes) == engine.num_components
