"""Tests for the HC-CLK, HC-WRITE and HC-READ composites (Figure 10)."""

import pytest

from repro.cells import params
from repro.pulse import HCClk, HCDRO, HCRead, HCWrite, Probe
from repro.pulse.monitor import train_spacings


class TestHCClk:
    def test_one_pulse_becomes_three(self, engine):
        hc = HCClk(engine, "hc")
        probe = engine.add(Probe("p"))
        hc.connect_output(probe, "in")
        engine.schedule(*hc.inp, 0.0)
        engine.run()
        assert probe.count == 3

    def test_train_spacing_meets_hcdro_requirement(self, engine):
        hc = HCClk(engine, "hc")
        probe = engine.add(Probe("p"))
        hc.connect_output(probe, "in")
        engine.schedule(*hc.inp, 0.0)
        engine.run()
        for gap in train_spacings(probe.times_ps):
            assert gap == pytest.approx(params.HC_PULSE_SPACING_PS, abs=1e-6)

    def test_train_can_drain_full_hcdro(self, engine):
        hc = HCClk(engine, "hc")
        cell = engine.add(HCDRO("cell"))
        probe = engine.add(Probe("p"))
        hc.connect_output(cell, "clk")
        cell.connect("q", probe, "in")
        for k in range(3):
            engine.schedule(cell, "d", k * 10.0)
        engine.run()
        engine.schedule(*hc.inp, 100.0)
        engine.run()
        assert probe.count == 3
        assert cell.stored_value == 0

    def test_two_trains_independent(self, engine):
        hc = HCClk(engine, "hc")
        probe = engine.add(Probe("p"))
        hc.connect_output(probe, "in")
        engine.schedule(*hc.inp, 0.0)
        engine.schedule(*hc.inp, 100.0)
        engine.run()
        assert probe.count == 6


class TestHCWrite:
    @pytest.mark.parametrize("value", [0, 1, 2, 3])
    def test_pulse_count_encodes_value(self, engine, value):
        hw = HCWrite(engine, "hw")
        probe = engine.add(Probe("p"))
        hw.connect_output(probe, "in")
        if value & 1:
            engine.schedule(*hw.b0, 0.0)
        if value & 2:
            engine.schedule(*hw.b1, 0.0)
        engine.run()
        assert probe.count == value

    def test_train_spacing(self, engine):
        hw = HCWrite(engine, "hw")
        probe = engine.add(Probe("p"))
        hw.connect_output(probe, "in")
        engine.schedule(*hw.b0, 0.0)
        engine.schedule(*hw.b1, 0.0)
        engine.run()
        for gap in train_spacings(probe.times_ps):
            assert gap == pytest.approx(params.HC_PULSE_SPACING_PS, abs=1e-6)

    @pytest.mark.parametrize("value", [0, 1, 2, 3])
    def test_write_then_storage_roundtrip(self, engine, value):
        # HC-WRITE output can be stored directly in an HC-DRO cell.
        hw = HCWrite(engine, "hw")
        cell = engine.add(HCDRO("cell"))
        hw.connect_output(cell, "d")
        if value & 1:
            engine.schedule(*hw.b0, 0.0)
        if value & 2:
            engine.schedule(*hw.b1, 0.0)
        engine.run()
        assert cell.stored_value == value


class TestHCRead:
    @pytest.mark.parametrize("value", [0, 1, 2, 3])
    def test_counts_train_into_bits(self, engine, value):
        hcr = HCRead(engine, "hcr")
        b0 = engine.add(Probe("b0"))
        b1 = engine.add(Probe("b1"))
        hcr.connect_b0(b0, "in")
        hcr.connect_b1(b1, "in")
        for k in range(value):
            engine.schedule(*hcr.inp, k * 10.0)
        engine.schedule(*hcr.read, 100.0)
        engine.run()
        assert b0.count == (value & 1)
        assert b1.count == ((value >> 1) & 1)
        assert hcr.value == value


class TestEndToEndSerdes:
    @pytest.mark.parametrize("value", [0, 1, 2, 3])
    def test_write_store_drain_count(self, engine, value):
        """Full 2-bit datapath: HC-WRITE -> HC-DRO -> HC-CLK drain -> HC-READ."""
        hw = HCWrite(engine, "hw")
        cell = engine.add(HCDRO("cell"))
        hc = HCClk(engine, "hc")
        hcr = HCRead(engine, "hcr")
        hw.connect_output(cell, "d")
        hc.connect_output(cell, "clk")
        cell.connect("q", hcr.inp[0], hcr.inp[1])
        if value & 1:
            engine.schedule(*hw.b0, 0.0)
        if value & 2:
            engine.schedule(*hw.b1, 0.0)
        engine.run()
        engine.schedule(*hc.inp, 200.0)
        engine.run()
        assert hcr.value == value
        assert cell.stored_value == 0
