"""Tests for probes and pulse-train decoding helpers."""


from repro.pulse import Probe
from repro.pulse.monitor import train_spacings, train_value


class TestProbe:
    def test_transparent_forwarding(self, engine):
        first = engine.add(Probe("a"))
        second = engine.add(Probe("b"))
        first.connect("out", second, "in")
        engine.schedule(first, "in", 5.0)
        engine.run()
        assert first.times_ps == second.times_ps == [5.0]

    def test_window_query(self, engine):
        probe = engine.add(Probe("p"))
        for t in (1.0, 5.0, 9.0, 15.0):
            engine.schedule(probe, "in", t)
        engine.run()
        assert probe.pulses_in_window(4.0, 10.0) == [5.0, 9.0]
        assert probe.pulses_in_window(20.0, 30.0) == []

    def test_window_is_half_open(self, engine):
        probe = engine.add(Probe("p"))
        engine.schedule(probe, "in", 10.0)
        engine.run()
        assert probe.pulses_in_window(10.0, 11.0) == [10.0]
        assert probe.pulses_in_window(9.0, 10.0) == []

    def test_clear_and_reset(self, engine):
        probe = engine.add(Probe("p"))
        engine.schedule(probe, "in", 1.0)
        engine.run()
        probe.clear()
        assert probe.count == 0
        engine.schedule(probe, "in", 2.0)
        engine.run()
        probe.reset_state()
        assert probe.times_ps == []


class TestTrainHelpers:
    def test_train_value_is_length(self):
        assert train_value([]) == 0
        assert train_value([1.0, 11.0, 21.0]) == 3

    def test_spacings_sorted(self):
        assert train_spacings([30.0, 10.0, 20.0]) == [10.0, 10.0]

    def test_spacings_empty_and_single(self):
        assert train_spacings([]) == []
        assert train_spacings([5.0]) == []
