"""Tests for the NDROC tree DEMUX and splitter/merger tree builders."""

import pytest

from repro.errors import NetlistError
from repro.pulse import Engine, MergeTree, NdrocDemux, Probe, SplitTree


def _attach_probes(engine, demux):
    probes = []
    for i in range(demux.num_outputs):
        probe = engine.add(Probe(f"leaf{i}"))
        comp, port = demux.leaf(i)
        comp.connect(port, probe, "in")
        probes.append(probe)
    return probes


class TestSplitTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 32])
    def test_reaches_all_outputs(self, engine, n):
        tree = SplitTree(engine, f"t{n}", n)
        probes = []
        for i in range(n):
            probe = engine.add(Probe(f"p{i}"))
            tree.connect_output(i, probe, "in")
            probes.append(probe)
        engine.schedule(*tree.inp, 0.0)
        engine.run()
        assert all(p.count == 1 for p in probes)

    def test_splitter_count(self, engine):
        assert SplitTree(engine, "t", 8).splitter_count == 7
        assert SplitTree(Engine(), "t", 1).splitter_count == 0

    def test_invalid_fanout(self, engine):
        with pytest.raises(NetlistError):
            SplitTree(engine, "t", 0)


class TestMergeTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 8])
    def test_all_inputs_reach_output(self, engine, n):
        tree = MergeTree(engine, f"m{n}", n)
        probe = engine.add(Probe("p"))
        comp, port = tree.out
        comp.connect(port, probe, "in")
        for i in range(n):
            jcomp, jport = tree.inputs[i]
            engine.schedule(jcomp, jport, i * 60.0)
        engine.run()
        assert probe.count == n

    def test_merger_count(self, engine):
        assert MergeTree(engine, "m", 8).merger_count == 7

    def test_invalid_width(self, engine):
        with pytest.raises(NetlistError):
            MergeTree(engine, "m", 0)


class TestNdrocDemux:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_routes_every_address(self, n):
        from repro.pulse import Engine as E

        engine = E()
        demux = NdrocDemux(engine, "dm", n)
        probes = _attach_probes(engine, demux)
        t = 0.0
        for address in range(n):
            demux.apply_select(address, t)
            demux.fire(t + 5.0)
            demux.apply_reset(t + 150.0)
            engine.run()
            t += 200.0
        assert [p.count for p in probes] == [1] * n

    def test_exactly_one_leaf_fires(self, engine):
        demux = NdrocDemux(engine, "dm", 8)
        probes = _attach_probes(engine, demux)
        demux.apply_select(5, 0.0)
        demux.fire(5.0)
        engine.run()
        assert [p.count for p in probes] == [0, 0, 0, 0, 0, 1, 0, 0]

    def test_without_reset_stale_select_misroutes(self, engine):
        # The paper (Section III-A): RESET must be asserted after each
        # demux operation or a stale '1' corrupts the next selection.
        demux = NdrocDemux(engine, "dm", 4)
        probes = _attach_probes(engine, demux)
        demux.apply_select(3, 0.0)
        demux.fire(5.0)
        engine.run()
        # Address 0 without an intervening reset: stale bits route to 3.
        demux.apply_select(0, 100.0)
        demux.fire(105.0)
        engine.run()
        assert probes[3].count == 2
        assert probes[0].count == 0

    def test_ndroc_count(self, engine):
        assert NdrocDemux(engine, "dm", 32).ndroc_count == 31

    def test_depth(self, engine):
        assert NdrocDemux(engine, "dm", 16).depth == 4

    def test_propagation_latency(self, engine):
        demux = NdrocDemux(engine, "dm", 8)
        probes = _attach_probes(engine, demux)
        demux.apply_select(0, 0.0)
        demux.fire(10.0)
        engine.run()
        # Three NDROC levels at 24 ps each.
        assert probes[0].times_ps == [pytest.approx(10.0 + 3 * 24.0)]

    def test_address_out_of_range(self, engine):
        demux = NdrocDemux(engine, "dm", 8)
        with pytest.raises(NetlistError):
            demux.apply_select(8, 0.0)
        with pytest.raises(NetlistError):
            demux.leaf(-1)

    def test_too_small(self, engine):
        with pytest.raises(NetlistError):
            NdrocDemux(engine, "dm", 1)
