"""Splitter/merger tree scaling: depth, element count, census, lint.

The paper's port structures are nothing but these trees at various
fan-outs, so the builders must stay correct from the degenerate n=1 case
through non-power-of-two widths up to the 64-leaf trees a 32x32 register
file needs.
"""

import math

import pytest

from repro.cells import get_cell
from repro.lint import graph_from_engine, run_structural_passes, run_timing_passes
from repro.pulse import Engine, MergeTree, Sink, SplitTree
from repro.pulse.splittree import NetlistError

FANOUTS = (1, 2, 5, 64)


def _expected_depth(n):
    return math.ceil(math.log2(n)) if n > 1 else 0


@pytest.mark.parametrize("n", FANOUTS)
def test_split_tree_shape(n):
    engine = Engine()
    tree = SplitTree(engine, "t", n)
    assert tree.num_outputs == n
    assert len(tree.outputs) == n
    assert tree.splitter_count == (n - 1 if n > 1 else 0)
    assert tree.depth == _expected_depth(n)


@pytest.mark.parametrize("n", FANOUTS)
def test_split_tree_delivers_one_pulse_per_leaf(n):
    engine = Engine()
    tree = SplitTree(engine, "t", n)
    sinks = [engine.add(Sink(f"s{i}")) for i in range(n)]
    for i, sink in enumerate(sinks):
        tree.connect_output(i, sink, "in")
    comp, port = tree.inp
    engine.inject(comp, port, 0.0)
    engine.run()
    assert all(sink.count == 1 for sink in sinks)


@pytest.mark.parametrize("n", FANOUTS)
def test_merge_tree_shape(n):
    engine = Engine()
    tree = MergeTree(engine, "m", n)
    assert tree.num_inputs == n
    assert len(tree.inputs) == n
    assert tree.merger_count == (n - 1 if n > 1 else 0)
    assert tree.depth == _expected_depth(n)


@pytest.mark.parametrize("n", FANOUTS)
def test_tree_jj_census_matches_cell_library(n):
    engine = Engine()
    split = SplitTree(engine, "t", n)
    merge = MergeTree(engine, "m", n)
    split_jj = split.splitter_count * get_cell("splitter").jj_count
    merge_jj = merge.merger_count * get_cell("merger").jj_count
    if n > 1:
        assert split_jj == (n - 1) * get_cell("splitter").jj_count
        assert merge_jj == (n - 1) * get_cell("merger").jj_count
    else:
        assert split_jj == merge_jj == 0


@pytest.mark.parametrize("n", FANOUTS)
def test_split_tree_lints_clean(n):
    engine = Engine()
    tree = SplitTree(engine, "t", n)
    graph = graph_from_engine(engine, f"split{n}", tree.external_inputs())
    assert not run_structural_passes(graph)
    assert not run_timing_passes(graph)


@pytest.mark.parametrize("n", FANOUTS)
def test_merge_tree_lints_clean(n):
    engine = Engine()
    tree = MergeTree(engine, "m", n)
    graph = graph_from_engine(engine, f"merge{n}", tree.external_inputs())
    assert not run_structural_passes(graph)
    assert not run_timing_passes(graph)


def test_zero_width_trees_are_rejected():
    engine = Engine()
    with pytest.raises(NetlistError):
        SplitTree(engine, "t", 0)
    with pytest.raises(NetlistError):
        MergeTree(engine, "m", 0)
