"""Cell table, mapper and node round-trip fidelity."""

import pytest

from repro.interchange import (
    CellMap,
    InterchangeError,
    build_node,
    cell_spec,
    fmt_value,
    node_params,
)
from repro.interchange.cells import SPECS_BY_KIND, parse_value
from repro.lint.graph import graph_from_engine
from repro.pulse import Engine
from repro.pulse.counters import TFF, PulseCounter
from repro.pulse.logic import ClockedAnd, ClockedNot
from repro.pulse.monitor import Probe
from repro.pulse.primitives import DAND, JTL, PTL, Merger, Sink, Splitter
from repro.pulse.storage import DRO, HCDRO, NDRO, NDROC


def _one_of_each_engine():
    engine = Engine()
    engine.add(Splitter("u.split", delay_ps=5.0))
    engine.add(Merger("u.merge", delay_ps=3.0, dead_time_ps=7.0))
    engine.add(JTL("u.jtl", delay_ps=2.5))
    engine.add(PTL("u.ptl", length_um=250.0))
    engine.add(Probe("u.probe"))
    engine.add(Sink("u.sink"))
    engine.add(DAND("u.dand"))
    engine.add(ClockedAnd("u.and2"))
    engine.add(ClockedNot("u.not1"))
    engine.add(DRO("u.dro"))
    engine.add(HCDRO("u.hcdro"))
    engine.add(NDRO("u.ndro"))
    engine.add(NDROC("u.ndroc"))
    engine.add(TFF("u.tff"))
    engine.add(PulseCounter("u.cnt", bits=3))
    return engine


@pytest.mark.parametrize("kind", sorted(SPECS_BY_KIND))
def test_every_kind_has_canonical_cell_name(kind):
    spec = cell_spec(kind)
    assert spec.cell_name.startswith("SFQ_")
    assert CellMap().resolve(spec.cell_name) == kind


def test_build_node_reproduces_every_lowered_node():
    """The cornerstone contract: build_node(node_params(n)) == n."""
    graph = graph_from_engine(_one_of_each_engine(), "unit")
    assert len(graph.nodes) == 15
    for node in graph.nodes.values():
        rebuilt = build_node(node.kind, node.name, node_params(node))
        assert rebuilt == node, node.name


def test_counter_ports_follow_bits_param():
    spec = cell_spec("counter")
    inputs, outputs = spec.ports({"bits": 4})
    assert inputs == ("in", "read", "reset")
    assert outputs == ("b0", "b1", "b2", "b3")
    node = build_node("counter", "c", {"bits": 4, "delay_ps": 1.5})
    assert node.outputs == outputs
    assert len(node.arcs) == 4
    assert node_params(node)["bits"] == 4


def test_unary_clocked_gate_data_ports_follow_arity():
    unary = build_node("clocked_gate", "g", {"arity": 1})
    binary = build_node("clocked_gate", "g", {"arity": 2})
    assert unary.data_ports == frozenset({"a"})
    assert binary.data_ports == frozenset({"a", "b"})
    assert node_params(unary)["arity"] == 1


def test_non_uniform_arc_delays_are_rejected():
    node = build_node("tff", "t", {"delay_ps": 2.0})
    node.arcs = (node.arcs[0], type(node.arcs[0])("read", "q", 9.0))
    with pytest.raises(InterchangeError, match="non-uniform"):
        node_params(node)


def test_cellmap_aliases_resolve_case_insensitively():
    cmap = CellMap()
    assert cmap.resolve("splitt") == "splitter"
    assert cmap.resolve("DFFT") == "dro"
    assert cmap.resolve("cbuff") == "merger"
    assert cmap.resolve("NOPE") is None


def test_cellmap_register_alias_validates_kind():
    cmap = CellMap()
    cmap.register_alias("ACME_SPL", "splitter")
    assert cmap.resolve("acme_spl") == "splitter"
    with pytest.raises(InterchangeError):
        cmap.register_alias("X", "not_a_kind")


def test_fmt_value_is_a_fixed_point():
    for value in (0.0, 5.0, 2.3, 1 / 3, 6.625, 1e-4, 53.0, 0.30000000000004):
        once = fmt_value(value)
        again = fmt_value(float(parse_value(once)))
        assert once == again, value
    assert fmt_value(7) == "7"
    assert fmt_value(True) == "1"


def test_unknown_kind_raises_with_catalog():
    with pytest.raises(InterchangeError, match="known kinds"):
        cell_spec("flux_capacitor")
