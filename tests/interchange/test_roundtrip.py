"""Round-trip properties: emit -> parse -> emit byte-stable, LVS clean,
and parsed graphs pass the full SFQ001-SFQ016 catalog."""

import itertools

import pytest

from repro.interchange import (
    INTERCHANGE_DESIGNS,
    design_graphs,
    emit_spice,
    emit_verilog,
    lvs,
    parse_spice,
    parse_verilog,
    round_trip_lvs,
)
from repro.lint.designs import lint_graph
from repro.rf import RFGeometry

GEOMETRY = RFGeometry(4, 4)

_EMITTERS = {"verilog": (emit_verilog, parse_verilog),
             "spice": (emit_spice, parse_spice)}


def _cases():
    for name, fmt in itertools.product(INTERCHANGE_DESIGNS, _EMITTERS):
        yield pytest.param(name, fmt, id=f"{name}-{fmt}")


@pytest.mark.parametrize("name,fmt", _cases())
def test_roundtrip_is_lvs_clean(name, fmt):
    for graph in design_graphs(name, GEOMETRY):
        report = round_trip_lvs(graph, fmt)
        assert report.ok, report.render()
        assert report.matched == len(graph.nodes)
        assert report.unmapped_cells == ()


@pytest.mark.parametrize("name,fmt", _cases())
def test_emit_parse_emit_is_byte_stable(name, fmt):
    emit, parse = _EMITTERS[fmt]
    for graph in design_graphs(name, GEOMETRY):
        first = emit(graph)
        reparsed = parse(first)[0]
        assert emit(reparsed.graph) == first


@pytest.mark.parametrize("name,fmt", _cases())
def test_parsed_graphs_pass_the_rule_catalog(name, fmt):
    emit, parse = _EMITTERS[fmt]
    for graph in design_graphs(name, GEOMETRY):
        parsed = parse(emit(graph))[0]
        report = lint_graph(parsed.graph)
        assert report.errors == [], report.render(verbose=True)
        assert report.warnings == [], report.render(verbose=True)


@pytest.mark.parametrize("name", INTERCHANGE_DESIGNS)
def test_cross_format_equivalence(name):
    """Verilog and SPICE round-trips reconstruct the same structure."""
    for graph in design_graphs(name, GEOMETRY):
        via_verilog = parse_verilog(emit_verilog(graph))[0].graph
        via_spice = parse_spice(emit_spice(graph))[0].graph
        report = lvs(via_verilog, via_spice)
        assert report.ok, report.render()


def test_dual_bank_emits_two_modules_in_one_file():
    graphs = design_graphs("dual_bank_hiperrf", GEOMETRY)
    assert len(graphs) == 2
    text = "".join(emit_verilog(g) for g in graphs)
    results = parse_verilog(text)
    assert [r.graph.name for r in results] == [g.name for g in graphs]
    for golden, result in zip(graphs, results):
        assert lvs(golden, result.graph).ok


def test_externals_survive_the_round_trip():
    """Including driven+external pins, which travel as pragmas."""
    for graph in design_graphs("ndro_rf", GEOMETRY):
        driven_external = [r for r in graph.externals if graph.drivers(r)]
        assert driven_external, "fixture should exercise the pragma path"
        for fmt in _EMITTERS:
            emit, parse = _EMITTERS[fmt]
            parsed = parse(emit(graph))[0]
            assert parsed.graph.externals == graph.externals


def test_wire_delays_survive_the_round_trip():
    """Nonzero edge delays travel as comment pragmas in both formats."""
    from repro.interchange import build_node
    from repro.lint.graph import CircuitGraph, PortRef

    graph = CircuitGraph("delayed")
    graph.add_node(build_node("jtl", "a", {"delay_ps": 2.0}))
    graph.add_node(build_node("sink", "b", {}))
    graph.add_edge(PortRef("a", "out"), PortRef("b", "in"), delay_ps=3.75)
    graph.mark_external(PortRef("a", "in"))
    golden = {(str(e.src), str(e.dst)): e.delay_ps for e in graph.edges}
    for fmt in _EMITTERS:
        emit, parse = _EMITTERS[fmt]
        text = emit(graph)
        assert "delay_ps=3.75" in text
        parsed = parse(text)[0]
        got = {(str(e.src), str(e.dst)): e.delay_ps
               for e in parsed.graph.edges}
        assert got == golden
