"""End-to-end tests for ``python -m repro.interchange``."""

import json

import pytest

from repro.interchange.cli import detect_format, main, run_lvs_gate
from repro.rf import RFGeometry

GEOMETRY = "4x4"


def test_detect_format():
    assert detect_format(".SUBCKT top a b\n.ends\n") == "spice"
    assert detect_format("  .subckt top\n") == "spice"
    assert detect_format("module \\top ();\nendmodule\n") == "verilog"


def test_emit_writes_verilog_to_stdout(capsys):
    assert main(["emit", "--design", "split_tree",
                 "--geometry", GEOMETRY]) == 0
    out = capsys.readouterr().out
    assert out.startswith("// repro.interchange format=verilog")
    assert "endmodule" in out


def test_emit_writes_spice_to_file(tmp_path, capsys):
    deck = tmp_path / "hp.cir"
    assert main(["emit", "--design", "hiperrf", "--geometry", GEOMETRY,
                 "--format", "spice", "-o", str(deck)]) == 0
    assert capsys.readouterr().out == ""
    text = deck.read_text()
    assert text.startswith("* repro.interchange format=spice")
    assert ".subckt hiperrf" in text


def test_parse_clean_netlist_exits_zero(tmp_path, capsys):
    deck = tmp_path / "hp.v"
    main(["emit", "--design", "hiperrf", "--geometry", GEOMETRY,
          "-o", str(deck)])
    capsys.readouterr()
    assert main(["parse", str(deck)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_parse_flags_unknown_cells_as_sfq018(tmp_path, capsys):
    deck = tmp_path / "foreign.cir"
    deck.write_text(
        ".subckt foreign ext:src.in\n"
        "Xsrc ext:src.in n:src.out n:src2 SPLITT delay_ps=5\n"
        "Xq n:src.out nc:q.clk n:q.q DFFT\n"
        "Xmyst n:src2\n"
        "+ MYSTERY_CELL\n"
        "Xs n:q.q SFQ_SINK\n"
        ".ends foreign\n")
    assert main(["parse", str(deck), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {issue["rule"] for issue in payload["issues"]}
    assert "SFQ018" in rules
    sfq018 = [i for i in payload["issues"] if i["rule"] == "SFQ018"]
    assert any("MYSTERY_CELL" in i["message"] for i in sfq018)
    # --fail-on never still prints but exits clean.
    assert main(["parse", str(deck), "--fail-on", "never"]) == 0


def test_lvs_gate_is_clean_for_builtin_designs(capsys):
    assert main(["lvs", "--design", "split_tree", "--design", "merge_tree",
                 "--geometry", GEOMETRY]) == 0
    out = capsys.readouterr().out
    assert "4/4 round-trips clean" in out


def test_lvs_gate_with_mutations_json_report(tmp_path, capsys):
    report_path = tmp_path / "lvs.json"
    rc = main(["lvs", "--design", "merge_tree", "--geometry", GEOMETRY,
               "--with-mutations", "--json", "--report", str(report_path)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == json.loads(report_path.read_text())
    assert payload["geometry"] == GEOMETRY
    assert payload["summary"]["ok"] is True
    assert payload["summary"]["clean"] == payload["summary"]["roundtrips"]
    assert payload["summary"]["detected"] == payload["summary"]["mutations"]
    assert {entry["format"] for entry in payload["roundtrips"]} == {
        "verilog", "spice"}


def test_lvs_files_cross_format(tmp_path, capsys):
    vlog = tmp_path / "hp.v"
    cir = tmp_path / "hp.cir"
    main(["emit", "--design", "hiperrf", "--geometry", GEOMETRY,
          "-o", str(vlog)])
    main(["emit", "--design", "hiperrf", "--geometry", GEOMETRY,
          "--format", "spice", "-o", str(cir)])
    capsys.readouterr()
    assert main(["lvs", "--files", str(vlog), str(cir)]) == 0
    assert "clean (176/176 instances matched" in capsys.readouterr().out


def test_lvs_files_detects_a_doctored_candidate(tmp_path, capsys):
    golden = tmp_path / "g.v"
    main(["emit", "--design", "split_tree", "--geometry", GEOMETRY,
          "-o", str(golden)])
    text = golden.read_text()
    doctored = tmp_path / "c.v"
    lines = [line for line in text.splitlines()
             if "\\st.sink3 " not in line]
    doctored.write_text("\n".join(lines) + "\n")
    capsys.readouterr()
    assert main(["lvs", "--files", str(golden), str(doctored)]) == 1
    assert "missing-instance" in capsys.readouterr().out


def test_run_lvs_gate_skips_inapplicable_mutations():
    payload = run_lvs_gate(["split_tree"], RFGeometry(4, 4),
                           ("verilog",), with_mutations=True)
    skipped = [entry for entry in payload["mutations"]
               if entry["detected"] is None]
    assert skipped, "pin_swap cannot apply to a pure splitter tree"
    assert payload["summary"]["ok"] is True
    assert all(entry["mutation"] == "pin_swap" for entry in skipped)


def test_bad_geometry_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["emit", "--design", "hiperrf", "--geometry", "lots"])
    assert excinfo.value.code == 2
    assert "bad geometry" in capsys.readouterr().err


def test_unreadable_file_exits_two(capsys):
    assert main(["parse", "/nonexistent/netlist.v"]) == 2
    assert "error:" in capsys.readouterr().err
