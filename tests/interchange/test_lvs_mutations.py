"""Seeded-defect detection (satellite 3) plus targeted LVS unit tests.

Every mutation family must be *detected* by the round-trip LVS gate and
the report must localise it with the right mismatch kind.
"""

import itertools

import pytest

from repro.interchange import (
    MUTATIONS,
    apply_mutation,
    build_node,
    design_graphs,
    lvs,
    mutated_roundtrip,
)
from repro.lint.graph import CircuitGraph, PortRef
from repro.rf import RFGeometry

GEOMETRY = RFGeometry(4, 4)

# The mismatch kinds each defect family is allowed to surface as.
EXPECTED_KINDS = {
    "pin_swap": {"pin-swap"},
    "drop_wire": {"missing-wire"},
    "extra_instance": {"extra-instance", "extra-wire"},
    "rename_net": {"missing-wire", "extra-wire"},
}


def _cases():
    for name, fmt, mutation in itertools.product(
            ("ndro_rf", "hiperrf"), ("verilog", "spice"), MUTATIONS):
        yield pytest.param(name, fmt, mutation,
                           id=f"{name}-{fmt}-{mutation}")


@pytest.mark.parametrize("name,fmt,mutation", _cases())
def test_seeded_mutation_is_detected_and_localised(name, fmt, mutation):
    graph = design_graphs(name, GEOMETRY)[0]
    report, description = mutated_roundtrip(graph, mutation, fmt, seed=7)
    assert not report.ok, f"{mutation} went undetected: {description}"
    kinds = {m.kind for m in report.mismatches}
    assert kinds & EXPECTED_KINDS[mutation], (
        f"{mutation} surfaced as {kinds}, expected one of "
        f"{EXPECTED_KINDS[mutation]}: {report.render()}")
    # The report must localise: the description names the mutated
    # object, and at least one mismatch anchors to a real instance.
    assert description
    assert all(m.obj for m in report.mismatches)


@pytest.mark.parametrize("mutation", MUTATIONS)
def test_mutations_are_deterministic_per_seed(mutation):
    graph = design_graphs("hiperrf", GEOMETRY)[0]
    if mutation == "rename_net":
        _, first = mutated_roundtrip(graph, mutation, "verilog", seed=3)
        _, second = mutated_roundtrip(graph, mutation, "verilog", seed=3)
    else:
        _, first = apply_mutation(graph, mutation, seed=3)
        _, second = apply_mutation(graph, mutation, seed=3)
    assert first == second


def test_sfq017_issues_carry_the_mismatch_detail():
    graph = design_graphs("hiperrf", GEOMETRY)[0]
    report, _ = mutated_roundtrip(graph, "drop_wire", "spice", seed=1)
    issues = report.to_issues("hiperrf")
    assert issues
    assert all(issue.rule_id == "SFQ017" for issue in issues)
    assert any("missing-wire" in issue.message for issue in issues)


# -- hand-built graphs exercising the remaining mismatch taxonomy -----------


def _unit(wire_delay_ps=0.0):
    graph = CircuitGraph("unit")
    graph.add_node(build_node("jtl", "a", {"delay_ps": 2.0}))
    graph.add_node(build_node("sink", "b", {}))
    graph.add_edge(PortRef("a", "out"), PortRef("b", "in"),
                   delay_ps=wire_delay_ps)
    graph.mark_external(PortRef("a", "in"))
    return graph


def _pair():
    """Two structurally identical two-node graphs."""
    return [_unit(), _unit()]


def test_identical_graphs_are_clean():
    golden, candidate = _pair()
    report = lvs(golden, candidate)
    assert report.ok and report.matched == 2


def test_kind_mismatch():
    golden, candidate = _pair()
    candidate.nodes["a"] = build_node("ptl", "a", {"delay_ps": 2.0})
    report = lvs(golden, candidate)
    assert {m.kind for m in report.mismatches} == {"kind-mismatch"}


def test_param_mismatch():
    golden, candidate = _pair()
    candidate.nodes["a"].params["delay_ps"] = 9.0
    report = lvs(golden, candidate)
    assert any(m.kind == "param-mismatch" and m.obj == "a"
               for m in report.mismatches)


def test_delay_mismatch_on_a_shared_wire():
    report = lvs(_unit(), _unit(wire_delay_ps=4.5))
    assert any(m.kind == "delay-mismatch" for m in report.mismatches)


def test_delay_tolerance_absorbs_float_noise():
    assert lvs(_unit(), _unit(wire_delay_ps=1e-9)).ok


def test_external_mismatch():
    golden, candidate = _pair()
    candidate.externals.discard(PortRef("a", "in"))
    report = lvs(golden, candidate)
    assert any(m.kind == "external-mismatch" and m.obj == "a"
               for m in report.mismatches)


def test_missing_instance():
    golden, candidate = _pair()
    del candidate.nodes["b"]
    candidate.edges.clear()
    report = lvs(golden, candidate)
    assert any(m.kind == "missing-instance" and m.obj == "b"
               for m in report.mismatches)


def test_unmapped_cells_are_reported_as_sfq018():
    golden, candidate = _pair()
    report = lvs(golden, candidate,
                 unmapped_cells=[("x1", "MYSTERY_CELL")])
    assert not report.ok
    issues = report.to_issues("unit")
    assert any(issue.rule_id == "SFQ018" and "MYSTERY_CELL" in issue.message
               for issue in issues)


def test_mismatches_sort_stably_by_kind_then_object():
    golden, candidate = _pair()
    del candidate.nodes["b"]
    candidate.edges.clear()
    candidate.nodes["a"].params["delay_ps"] = 9.0
    report = lvs(golden, candidate)
    ordered = report.sorted_mismatches()
    assert ordered == sorted(
        ordered, key=lambda m: (m.kind != "missing-instance",))
