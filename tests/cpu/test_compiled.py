"""Exact-equivalence suite: compiled tape replay vs the reference pipeline.

The compiled tier (:mod:`repro.cpu.compiled`) must be integer-identical
to :class:`~repro.cpu.pipeline.GateLevelPipeline` - total cycles, CPI,
per-reason stall attribution, branch/load counters - for every register
file design, with and without a stateful memory model.  This suite holds
it to that oracle over the full Figure 14 workload list and randomized
programs driven by the deterministic workload-generator LCG.
"""

import pytest

from repro.cpu import CoreConfig, GateLevelPipeline, OpTape, RFTimingModel
from repro.cpu.compiled import (
    COMPILED_ENV_VAR,
    compiled_enabled,
    replay,
    replay_tape,
    replay_tape_reference,
)
from repro.cpu.rf_model import RF_DESIGN_NAMES
from repro.errors import ConfigError, ExecutionError
from repro.experiments.figure14 import FIGURE14_WORKLOADS
from repro.isa import Executor, Instruction, assemble
from repro.isa.executor import ExecutedOp
from repro.mem import DirectMappedCache
from repro.workloads import PASS_EXIT_CODE, get_workload
from repro.workloads.generator import Lcg

SCALE = 0.3
MAX_INSTRUCTIONS = 60_000


def result_key(result):
    """Every integer the acceptance criteria compare, plus the CPI."""
    return (result.instructions, result.total_cycles, result.cpi,
            result.stalls.as_dict(), result.branches_taken, result.loads)


def small_cache():
    return DirectMappedCache(lines=16, line_size=16, hit_cycles=2,
                             miss_cycles=40)


@pytest.fixture(scope="module")
def figure14_tapes():
    tapes = {}
    for name in FIGURE14_WORKLOADS:
        program = assemble(get_workload(name).build(SCALE))
        tapes[name] = OpTape.from_program(
            program, max_instructions=MAX_INSTRUCTIONS)
    return tapes


class TestFigure14Equivalence:
    @pytest.mark.parametrize("design", RF_DESIGN_NAMES)
    def test_flat_memory(self, figure14_tapes, design):
        config = CoreConfig()
        rf = RFTimingModel.for_design(design, config)
        for name, tape in figure14_tapes.items():
            assert tape.exit_code == PASS_EXIT_CODE, name
            compiled = replay_tape(tape, rf, config)
            reference = replay_tape_reference(tape, rf, config)
            assert result_key(compiled) == result_key(reference), name

    @pytest.mark.parametrize("design", RF_DESIGN_NAMES)
    def test_memory_model(self, figure14_tapes, design):
        # A stateful model: hit/miss history makes access latencies
        # order-dependent, so equality also proves the interaction order.
        config = CoreConfig()
        rf = RFTimingModel.for_design(design, config)
        for name, tape in figure14_tapes.items():
            compiled = replay_tape(tape, rf, config,
                                   memory_model=small_cache())
            reference = replay_tape_reference(tape, rf, config,
                                              memory_model=small_cache())
            assert result_key(compiled) == result_key(reference), name

    def test_tape_matches_live_pipeline(self):
        """Lowering through a tape loses nothing the timing engine reads."""
        config = CoreConfig()
        for name in ("qsort", "towers"):
            program = assemble(get_workload(name).build(SCALE))
            for design in ("ndro_rf", "dual_bank_hiperrf"):
                rf = RFTimingModel.for_design(design, config)
                live = GateLevelPipeline(rf, config)
                for op in Executor(program).trace(
                        max_instructions=MAX_INSTRUCTIONS):
                    live.feed(op)
                tape = OpTape.from_program(
                    program, max_instructions=MAX_INSTRUCTIONS)
                assert result_key(replay_tape(tape, rf, config)) == \
                    result_key(live.result()), (name, design)


def random_program(seed: int, body_ops: int = 40, iterations: int = 25) -> str:
    """A terminating random kernel: ALU ops, loads/stores, forward branches."""
    rng = Lcg(seed=seed)
    pool = ("t0", "t1", "t2", "t3", "t4", "t5", "t6",
            "a2", "a3", "a4", "a5", "s3", "s4", "s5")
    lines = [".text", "_start:", "    la   s2, buf", "    li   s0, 0",
             f"    li   s1, {iterations}", "loop:"]
    for i in range(body_ops):
        kind = rng.next() % 8
        rd = pool[rng.next() % len(pool)]
        rs1 = pool[rng.next() % len(pool)]
        rs2 = pool[rng.next() % len(pool)]
        if kind < 3:
            mnemonic = ("add", "xor", "and")[kind]
            lines.append(f"    {mnemonic}  {rd}, {rs1}, {rs2}")
        elif kind < 5:
            lines.append(f"    addi {rd}, {rs1}, {rng.next() % 64}")
        elif kind == 5:
            lines.append(f"    lw   {rd}, {4 * (rng.next() % 8)}(s2)")
        elif kind == 6:
            lines.append(f"    sw   {rs1}, {4 * (rng.next() % 8)}(s2)")
        else:
            lines.append(f"    beq  {rs1}, {rs2}, skip_{i}")
            lines.append(f"    addi {rd}, {rd}, 1")
            lines.append(f"skip_{i}:")
    lines += ["    addi s0, s0, 1", "    blt  s0, s1, loop",
              "    li   a0, 42", "    li   a7, 93", "    ecall",
              ".data", "buf:"]
    lines += [f"    .word {rng.next()}" for _ in range(8)]
    return "\n".join(lines)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(1, 9))
    def test_all_designs_both_speculation_modes(self, seed):
        tape = OpTape.from_program(assemble(random_program(seed)),
                                   max_instructions=50_000)
        assert tape.exit_code == PASS_EXIT_CODE
        for spec in (True, False):
            config = CoreConfig(fall_through_speculation=spec)
            for design in RF_DESIGN_NAMES:
                rf = RFTimingModel.for_design(design, config)
                assert result_key(replay_tape(tape, rf, config)) == \
                    result_key(replay_tape_reference(tape, rf, config)), \
                    (design, spec)

    @pytest.mark.parametrize("seed", (3, 7))
    def test_memory_model(self, seed):
        tape = OpTape.from_program(assemble(random_program(seed)),
                                   max_instructions=50_000)
        config = CoreConfig()
        for design in RF_DESIGN_NAMES:
            rf = RFTimingModel.for_design(design, config)
            compiled = replay_tape(tape, rf, config,
                                   memory_model=small_cache())
            reference = replay_tape_reference(tape, rf, config,
                                              memory_model=small_cache())
            assert result_key(compiled) == result_key(reference), design


class TestTierDispatch:
    def _tape(self):
        ops = [ExecutedOp(pc=i, instr=Instruction("add", rd=1, rs1=2),
                          sources=(2,), destination=1, branch_taken=False,
                          is_load=False, is_store=False)
               for i in range(4)]
        return OpTape.from_ops(ops)

    def test_explicit_tiers_agree(self):
        tape = self._tape()
        rf = RFTimingModel.for_design("hiperrf")
        config = CoreConfig()
        assert result_key(replay(tape, rf, config, tier="compiled")) == \
            result_key(replay(tape, rf, config, tier="reference"))

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigError, match="tier"):
            replay(self._tape(), RFTimingModel.for_design("ndro_rf"),
                   CoreConfig(), tier="vectorized")

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv(COMPILED_ENV_VAR, raising=False)
        assert compiled_enabled()
        for value in ("0", "off", "FALSE", "no"):
            monkeypatch.setenv(COMPILED_ENV_VAR, value)
            assert not compiled_enabled()
        monkeypatch.setenv(COMPILED_ENV_VAR, "1")
        assert compiled_enabled()

    def test_tape_wider_than_register_file_rejected(self):
        ops = [ExecutedOp(pc=0, instr=Instruction("add", rd=40, rs1=2),
                          sources=(2,), destination=40, branch_taken=False,
                          is_load=False, is_store=False)]
        tape = OpTape.from_ops(ops, num_registers=64)
        with pytest.raises(ExecutionError, match="register"):
            replay_tape(tape, RFTimingModel.for_design("ndro_rf"),
                        CoreConfig())
