"""Equivalence suite: lane-batched tape replay vs the compiled oracle.

The batched tier (:mod:`repro.cpu.batched`) must return, per lane, a
:class:`~repro.cpu.pipeline.PipelineResult` integer-equal in every
field to a sequential :func:`~repro.cpu.compiled.replay_tape` of that
lane.  This suite holds it to that oracle over the Figure 14 workload
list, the full design space, both speculation modes, mixed-``CoreConfig``
lane pools at several widths, the stateful-memory-model scalar fallback
(including a *shared* model instance, which proves the lane access
order), the int64 kernel path, tier/env resolution and the per-tape
memoizations.
"""

import pytest

from repro.cpu import CoreConfig, OpTape, RFTimingModel
from repro.cpu import batched
from repro.cpu.batched import (
    LANES_ENV_VAR,
    Lane,
    lanes_for_designs,
    replay_lanes,
    resolve_lanes_tier,
)
from repro.cpu.compiled import design_tables, replay_tape
from repro.cpu.rf_model import RF_DESIGN_NAMES
from repro.errors import ConfigError, ExecutionError
from repro.experiments.figure14 import FIGURE14_WORKLOADS
from repro.isa import assemble
from repro.mem import DirectMappedCache
from repro.workloads import PASS_EXIT_CODE, get_workload

SCALE = 0.3
MAX_INSTRUCTIONS = 60_000


def result_key(result):
    """Every integer the acceptance criteria compare, plus the CPI."""
    return (result.instructions, result.total_cycles, result.cpi,
            result.stalls.as_dict(), result.branches_taken, result.loads)


def small_cache():
    return DirectMappedCache(lines=16, line_size=16, hit_cycles=2,
                             miss_cycles=40)


def oracle(tape, lanes):
    """Sequential compiled replay of every lane, in lane order."""
    return [replay_tape(tape, lane.rf, lane.config,
                        memory_model=lane.memory_model) for lane in lanes]


def assert_lanes_match(tape, lanes, name=""):
    got = replay_lanes(tape, lanes, tier="batched")
    want = oracle(tape, lanes)
    assert len(got) == len(lanes)
    for index, (g, w) in enumerate(zip(got, want)):
        assert result_key(g) == result_key(w), (name, index,
                                                lanes[index].rf.name)


def lane_pool(count):
    """A deterministic mixed pool: designs x configs, cycled to ``count``.

    The configs cover both speculation modes and three memory
    latencies, so any prefix wider than a few lanes already mixes
    ``CoreConfig`` values inside one kernel call.
    """
    configs = (
        CoreConfig(),
        CoreConfig(fall_through_speculation=False),
        CoreConfig(memory_latency=4),
        CoreConfig(memory_latency=48, fall_through_speculation=False),
        CoreConfig(memory_latency=24),
    )
    pool = []
    for i in range(count):
        design = RF_DESIGN_NAMES[i % len(RF_DESIGN_NAMES)]
        config = configs[(i // len(RF_DESIGN_NAMES)) % len(configs)]
        pool.append(Lane(RFTimingModel.for_design(design, config), config))
    return pool


@pytest.fixture(scope="module")
def figure14_tapes():
    tapes = {}
    for name in FIGURE14_WORKLOADS:
        program = assemble(get_workload(name).build(SCALE))
        tapes[name] = OpTape.from_program(
            program, max_instructions=MAX_INSTRUCTIONS)
    return tapes


@pytest.fixture(scope="module")
def some_tapes(figure14_tapes):
    """Three tapes for the wider (lane-count x config) sweeps."""
    names = list(figure14_tapes)[:3]
    return {name: figure14_tapes[name] for name in names}


class TestFigure14Equivalence:
    def test_whole_design_space_one_batch(self, figure14_tapes):
        """One batch over every design, on every Figure 14 workload."""
        lanes = lanes_for_designs(RF_DESIGN_NAMES)
        for name, tape in figure14_tapes.items():
            assert tape.exit_code == PASS_EXIT_CODE, name
            assert_lanes_match(tape, lanes, name)

    def test_no_speculation_design_space(self, figure14_tapes):
        """The nospec redirect class (branch-not-taken also redirects)."""
        config = CoreConfig(fall_through_speculation=False)
        lanes = lanes_for_designs(RF_DESIGN_NAMES, config)
        for name, tape in figure14_tapes.items():
            assert_lanes_match(tape, lanes, name)

    @pytest.mark.parametrize("width", [1, 2, 6, 32])
    def test_mixed_config_lane_widths(self, some_tapes, width):
        """Mixed CoreConfig pools at the acceptance lane counts."""
        lanes = lane_pool(width)
        for name, tape in some_tapes.items():
            assert_lanes_match(tape, lanes, name)

    def test_mixed_speculation_in_one_batch(self, some_tapes):
        """Spec and nospec lanes of the same design share a kernel call
        (the masked redirect class)."""
        spec = CoreConfig()
        nospec = CoreConfig(fall_through_speculation=False)
        lanes = [Lane(RFTimingModel.for_design(d, c), c)
                 for d in ("hiperrf", "dual_bank_hiperrf")
                 for c in (spec, nospec)]
        for name, tape in some_tapes.items():
            assert_lanes_match(tape, lanes, name)

    def test_int64_kernel_path(self, some_tapes, monkeypatch):
        """Force the time-bound dtype choice to int64; results must not
        change (the int32 fast path is an optimization, not semantics)."""
        lanes = lane_pool(6)
        monkeypatch.setattr(batched, "_INT32_BOUND", 1)
        for name, tape in some_tapes.items():
            assert_lanes_match(tape, lanes, name)


class TestMemoryModelFallback:
    def test_memory_lanes_match_scalar(self, some_tapes):
        """Lanes with private stateful models (order-dependent latency)."""
        config = CoreConfig()
        for name, tape in some_tapes.items():
            lanes = [Lane(RFTimingModel.for_design(d, config), config,
                          memory_model=small_cache())
                     for d in ("ndro_rf", "hiperrf")]
            got = replay_lanes(tape, lanes, tier="batched")
            want = [replay_tape(tape, lane.rf, lane.config,
                                memory_model=small_cache())
                    for lane in lanes]
            for g, w in zip(got, want):
                assert result_key(g) == result_key(w), name

    def test_shared_model_sees_ascending_lane_order(self, some_tapes):
        """One cache instance shared by three lanes: its hit/miss history
        depends on the replay order, so equality with a sequential sweep
        over a twin instance proves the documented ascending-lane order."""
        config = CoreConfig()
        designs = ("ndro_rf", "hiperrf", "dual_bank_hiperrf")
        for name, tape in some_tapes.items():
            shared = small_cache()
            lanes = [Lane(RFTimingModel.for_design(d, config), config,
                          memory_model=shared) for d in designs]
            got = replay_lanes(tape, lanes, tier="batched")
            twin = small_cache()
            want = [replay_tape(tape, lane.rf, lane.config,
                                memory_model=twin) for lane in lanes]
            for g, w in zip(got, want):
                assert result_key(g) == result_key(w), name

    def test_mixed_vector_and_memory_lanes_keep_order(self, some_tapes):
        """Scalar-fallback lanes interleaved with vector lanes must land
        back in their original slots."""
        config = CoreConfig()
        for name, tape in some_tapes.items():
            lanes = [
                Lane(RFTimingModel.for_design("hiperrf", config), config),
                Lane(RFTimingModel.for_design("ndro_rf", config), config,
                     memory_model=small_cache()),
                Lane(RFTimingModel.for_design("dual_bank_hiperrf", config),
                     config),
                Lane(RFTimingModel.for_design("hiperrf", config), config,
                     memory_model=small_cache()),
            ]
            got = replay_lanes(tape, lanes, tier="batched")
            want = [replay_tape(tape, lane.rf, lane.config,
                                memory_model=(small_cache()
                                              if lane.memory_model
                                              else None))
                    for lane in lanes]
            for g, w in zip(got, want):
                assert result_key(g) == result_key(w), name


class TestValidationAndTiers:
    def test_validation_error_carries_lane_index(self, some_tapes):
        """A lane whose register file is too small for the tape names
        itself; healthy lanes before it do not mask the error."""
        tape = next(iter(some_tapes.values()))
        wide = CoreConfig()
        narrow = CoreConfig(num_registers=8)
        lanes = [
            Lane(RFTimingModel.for_design("hiperrf", wide), wide),
            Lane(RFTimingModel.for_design("hiperrf", narrow), narrow),
        ]
        with pytest.raises(ExecutionError, match=r"lane 1 \(hiperrf\)"):
            replay_lanes(tape, lanes)

    def test_resolve_tier_env_vocabulary(self, monkeypatch):
        for raw in ("off", "0", "compiled", "sequential", "-3"):
            monkeypatch.setenv(LANES_ENV_VAR, raw)
            assert resolve_lanes_tier() == ("compiled", None)
        for raw in ("", "on", "batched", "auto"):
            monkeypatch.setenv(LANES_ENV_VAR, raw)
            assert resolve_lanes_tier() == ("batched", None)
        monkeypatch.setenv(LANES_ENV_VAR, "8")
        assert resolve_lanes_tier() == ("batched", 8)
        monkeypatch.delenv(LANES_ENV_VAR)
        assert resolve_lanes_tier() == ("batched", None)

    def test_resolve_tier_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(LANES_ENV_VAR, "warp")
        with pytest.raises(ConfigError, match="REPRO_CPU_LANES"):
            resolve_lanes_tier()

    def test_explicit_tier_overrides_env(self, monkeypatch):
        monkeypatch.setenv(LANES_ENV_VAR, "off")
        assert resolve_lanes_tier("batched") == ("batched", None)
        monkeypatch.setenv(LANES_ENV_VAR, "on")
        assert resolve_lanes_tier("compiled") == ("compiled", None)
        with pytest.raises(ConfigError, match="unknown CPU lane tier"):
            resolve_lanes_tier("turbo")

    def test_lane_cap_chunks_match_full_batch(self, some_tapes,
                                              monkeypatch):
        """A cap of 2 splits 6 lanes into three kernel calls; results
        must be identical to the uncapped batch."""
        lanes = lane_pool(6)
        name, tape = next(iter(some_tapes.items()))
        full = [result_key(r) for r in replay_lanes(tape, lanes,
                                                    tier="batched")]
        monkeypatch.setenv(LANES_ENV_VAR, "2")
        capped = [result_key(r) for r in replay_lanes(tape, lanes)]
        assert capped == full

    def test_compiled_tier_env_matches_batched(self, some_tapes,
                                               monkeypatch):
        lanes = lanes_for_designs(RF_DESIGN_NAMES)
        name, tape = next(iter(some_tapes.items()))
        batch = [result_key(r) for r in replay_lanes(tape, lanes,
                                                     tier="batched")]
        monkeypatch.setenv(LANES_ENV_VAR, "off")
        scalar = [result_key(r) for r in replay_lanes(tape, lanes)]
        assert scalar == batch


class TestMemoization:
    def test_design_tables_lru_returns_cached_arrays(self, some_tapes):
        tape = next(iter(some_tapes.values()))
        rf = RFTimingModel.for_design("hiperrf", CoreConfig())
        first = design_tables(tape, rf)
        again = design_tables(tape, rf)
        assert first[0] is again[0] and first[1] is again[1]

    def test_content_fingerprint_is_stable_and_content_keyed(self):
        program = assemble(get_workload("vvadd").build(SCALE))
        a = OpTape.from_program(program, max_instructions=MAX_INSTRUCTIONS)
        b = OpTape.from_program(program, max_instructions=MAX_INSTRUCTIONS)
        assert a.content_fingerprint() == a.content_fingerprint()
        assert a.content_fingerprint() == b.content_fingerprint()
        other = assemble(get_workload("towers").build(SCALE))
        c = OpTape.from_program(other, max_instructions=MAX_INSTRUCTIONS)
        assert c.content_fingerprint() != a.content_fingerprint()

    def test_tape_statics_memoized_on_fingerprint(self, some_tapes):
        tape = next(iter(some_tapes.values()))
        first = batched._tape_statics(tape, "none")
        again = batched._tape_statics(tape, "none")
        assert first is again
        assert batched._tape_statics(tape, "all") is not first
