"""Tests for the gate-level pipeline timing engine."""

import pytest

from repro.cpu import CoreConfig, GateLevelPipeline, RFTimingModel
from repro.errors import ConfigError, ExecutionError
from repro.isa import Instruction
from repro.isa.executor import ExecutedOp


def op(mnemonic="add", rd=None, srcs=(), branch=False, load=False,
       store=False):
    instr = Instruction(mnemonic, rd=rd,
                        rs1=srcs[0] if srcs else None,
                        rs2=srcs[1] if len(srcs) > 1 else None)
    return ExecutedOp(pc=0, instr=instr, sources=tuple(srcs),
                      destination=rd, branch_taken=branch, is_load=load,
                      is_store=store)


def pipeline(design="ndro_rf", **config_kwargs):
    config = CoreConfig(**config_kwargs)
    return GateLevelPipeline(RFTimingModel.for_design(design, config), config)


class TestConfig:
    def test_defaults(self):
        config = CoreConfig()
        assert config.execute_depth == 28
        assert config.gate_cycle_ps == 28.0

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(fetch_depth=-1)

    def test_ps_to_gate_cycles(self):
        config = CoreConfig()
        assert config.ps_to_gate_cycles(28.0) == 1
        assert config.ps_to_gate_cycles(29.0) == 2
        assert config.ps_to_gate_cycles(177.5) == 7


class TestRegisterFileBounds:
    def test_out_of_range_source_rejected(self):
        with pytest.raises(ExecutionError, match="out of range"):
            pipeline("ndro_rf").feed(op(rd=1, srcs=(32,)))

    def test_out_of_range_destination_rejected(self):
        with pytest.raises(ExecutionError, match="out of range"):
            pipeline("ndro_rf").feed(op(rd=40, srcs=()))

    def test_wider_register_file_accepted(self):
        pipe = pipeline("ndro_rf", num_registers=64)
        pipe.feed(op(rd=40, srcs=()))
        assert pipe.result().instructions == 1

    def test_zero_register_config_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(num_registers=0)


class TestIndependentStream:
    def test_issue_rate_bound_by_port_gap(self):
        pipe = pipeline("hiperrf")
        issues = [pipe.feed(op(rd=i + 1, srcs=())) for i in range(10)]
        gaps = [b - a for a, b in zip(issues, issues[1:])]
        assert all(gap == 6 for gap in gaps)  # 3 RF cycles x 2 gates

    def test_baseline_issues_faster(self):
        base = pipeline("ndro_rf")
        issues = [base.feed(op(rd=i + 1, srcs=())) for i in range(10)]
        gaps = [b - a for a, b in zip(issues, issues[1:])]
        assert all(gap == 2 for gap in gaps)


class TestRawDependencies:
    def test_dependent_waits_for_writeback(self):
        pipe = pipeline("ndro_rf")
        pipe.feed(op(rd=5, srcs=()))
        t = pipe.feed(op(rd=6, srcs=(5,)))
        config = CoreConfig()
        rf = RFTimingModel.for_design("ndro_rf", config)
        expected = (0 + rf.rf_cycle_gates + config.execute_depth
                    + config.writeback_depth)
        assert t == expected

    def test_independent_not_stalled(self):
        pipe = pipeline("ndro_rf")
        pipe.feed(op(rd=5, srcs=()))
        t = pipe.feed(op(rd=6, srcs=(7,)))
        assert t == 2  # just the port gap

    def test_raw_stall_attributed(self):
        pipe = pipeline("ndro_rf")
        pipe.feed(op(rd=5, srcs=()))
        pipe.feed(op(rd=6, srcs=(5,)))
        assert pipe.result().stalls.raw > 0

    def test_x0_never_tracked(self):
        # source_registers() excludes x0; a stream via x0 never stalls.
        pipe = pipeline("ndro_rf")
        pipe.feed(op(rd=5, srcs=()))
        t = pipe.feed(op(rd=6, srcs=()))
        assert t == 2


class TestLoopbackHazards:
    def test_reread_stalls_on_hiperrf(self):
        pipe = pipeline("hiperrf")
        pipe.feed(op(rd=None, srcs=(3,), store=True))
        t = pipe.feed(op(rd=None, srcs=(3,), store=True))
        rf = RFTimingModel.for_design("hiperrf")
        assert t == rf.loopback_busy_gates()
        assert pipe.result().stalls.loopback > 0

    def test_no_loopback_stall_on_baseline(self):
        pipe = pipeline("ndro_rf")
        pipe.feed(op(rd=None, srcs=(3,), store=True))
        pipe.feed(op(rd=None, srcs=(3,), store=True))
        assert pipe.result().stalls.loopback == 0

    def test_different_registers_no_loopback_stall(self):
        pipe = pipeline("hiperrf")
        pipe.feed(op(rd=None, srcs=(3,), store=True))
        t = pipe.feed(op(rd=None, srcs=(4,), store=True))
        assert t == 6  # just the port gap


class TestBranches:
    def test_taken_branch_redirects_front_end(self):
        pipe = pipeline("ndro_rf")
        pipe.feed(op("jal", rd=1, srcs=(), branch=True))
        t = pipe.feed(op(rd=5, srcs=()))
        config = CoreConfig()
        rf = RFTimingModel.for_design("ndro_rf", config)
        redirect = (rf.rf_cycle_gates + config.execute_depth
                    + config.branch_redirect_penalty)
        assert t == redirect
        assert pipe.result().stalls.branch > 0

    def test_not_taken_branch_flows_through(self):
        pipe = pipeline("ndro_rf")
        pipe.feed(op("beq", rd=None, srcs=(1, 2), branch=False))
        t = pipe.feed(op(rd=5, srcs=()))
        assert t == 4  # port gap of the 2-source branch

    def test_stall_on_branch_without_speculation(self):
        pipe = pipeline("ndro_rf", fall_through_speculation=False)
        pipe.feed(op("beq", rd=None, srcs=(1, 2), branch=False))
        t = pipe.feed(op(rd=5, srcs=()))
        assert t > 4


class TestLoads:
    def test_load_adds_memory_latency(self):
        fast = pipeline("ndro_rf", memory_latency=0)
        slow = pipeline("ndro_rf", memory_latency=20)
        for pipe in (fast, slow):
            pipe.feed(op("lw", rd=5, srcs=(2,), load=True))
            pipe.feed(op(rd=6, srcs=(5,)))
        assert slow.result().total_cycles == fast.result().total_cycles + 20
        assert slow.result().loads == 1


class TestResultAccounting:
    def test_cpi_computation(self):
        pipe = pipeline("ndro_rf")
        for i in range(4):
            pipe.feed(op(rd=i + 1, srcs=()))
        result = pipe.result()
        assert result.instructions == 4
        assert result.cpi == result.total_cycles / 4

    def test_empty_result(self):
        assert pipeline("ndro_rf").result().cpi == 0.0

    def test_stall_breakdown_dict(self):
        breakdown = pipeline("ndro_rf").result().stalls.as_dict()
        assert set(breakdown) == {"port", "raw", "loopback", "branch"}


class TestStallAttribution:
    def test_loopback_reason_tracked(self):
        pipe = pipeline("hiperrf")
        pipe.feed(op(rd=None, srcs=(3,), store=True))
        pipe.feed(op(rd=None, srcs=(3,), store=True))
        result = pipe.result()
        assert result.stalls.loopback > 0
        assert result.stalls.raw == 0

    def test_raw_beats_loopback_when_producer_later(self):
        """A register both loopback-busy and freshly written: the later
        constraint (the write-back) owns the stall attribution."""
        pipe = pipeline("hiperrf")
        pipe.feed(op(rd=None, srcs=(3,), store=True))  # loopback on r3
        pipe.feed(op(rd=3, srcs=()))                   # writes r3 later
        pipe.feed(op(rd=None, srcs=(3,), store=True))  # stalls on the write
        assert pipe.result().stalls.raw > 0

    def test_branch_attribution(self):
        pipe = pipeline("ndro_rf")
        pipe.feed(op("jal", rd=1, srcs=(), branch=True))
        pipe.feed(op(rd=5, srcs=()))
        breakdown = pipe.result().stalls
        assert breakdown.branch > 0
        assert breakdown.total() == sum(breakdown.as_dict().values())


class TestMemoryModelHook:
    def test_custom_memory_model_consulted(self):
        class CountingModel:
            def __init__(self):
                self.calls = []

            def access(self, address, is_store=False):
                self.calls.append((address, is_store))
                return 5

        model = CountingModel()
        from repro.cpu import GateLevelPipeline, RFTimingModel

        pipe = GateLevelPipeline(RFTimingModel.for_design("ndro_rf"),
                                 CoreConfig(), memory_model=model)
        pipe.feed(op("lw", rd=5, srcs=(2,), load=True))
        pipe.feed(op("sw", rd=None, srcs=(2, 5), store=True))
        assert model.calls == [(None, False), (None, True)]
