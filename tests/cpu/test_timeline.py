"""Tests for the pipeline timeline recorder and CPU CLI."""

import pytest

from repro.cpu.__main__ import main as cpu_main
from repro.cpu.timeline import (
    RecordingPipeline,
    record_timeline,
    render_waterfall,
)
from repro.cpu import RFTimingModel
from repro.isa import Executor, assemble
from repro.workloads import get_workload


def ops_for(name="vvadd", scale=0.5):
    executor = Executor(assemble(get_workload(name).build(scale)))
    return list(executor.trace())


class TestRecordingPipeline:
    def test_records_every_instruction(self):
        ops = ops_for()
        pipeline = RecordingPipeline(RFTimingModel.for_design("ndro_rf"))
        for op in ops[:50]:
            pipeline.feed(op)
        assert len(pipeline.records) == 50

    def test_anchor_ordering(self):
        records = record_timeline(iter(ops_for()), design="hiperrf", limit=40)
        for record in records:
            assert record.issue <= record.operands_ready
            assert record.operands_ready < record.execute_done
            assert record.execute_done < record.writeback
            assert record.span > 0

    def test_issue_times_monotone(self):
        records = record_timeline(iter(ops_for()), design="ndro_rf", limit=40)
        issues = [r.issue for r in records]
        assert issues == sorted(issues)

    def test_timing_matches_parent_engine(self):
        """Recording must not change the timing outcomes."""
        from repro.cpu import GateLevelPipeline

        ops = ops_for()
        plain = GateLevelPipeline(RFTimingModel.for_design("hiperrf"))
        recording = RecordingPipeline(RFTimingModel.for_design("hiperrf"))
        for op in ops:
            plain.feed(op)
            recording.feed(op)
        assert plain.result().total_cycles == recording.result().total_cycles


class TestWaterfall:
    def test_render(self):
        records = record_timeline(iter(ops_for()), limit=10)
        text = render_waterfall(records)
        assert "gate cycles" in text
        assert "W" in text and "E" in text

    def test_empty(self):
        assert "empty" in render_waterfall([])


class TestCpuCli:
    def test_workload_run(self, capsys):
        assert cpu_main(["--workload", "vvadd", "--design", "ndro_rf",
                         "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "exit code 42" in out
        assert "ndro_rf" in out

    def test_waterfall_flag(self, capsys):
        assert cpu_main(["--workload", "towers", "--design", "hiperrf",
                         "--scale", "0.5", "--waterfall"]) == 0
        assert "gate cycles" in capsys.readouterr().out

    def test_source_file(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("_start:\n  li a0, 0\n  li a7, 93\n  ecall\n")
        assert cpu_main([str(source), "--design", "ndro_rf"]) == 0
        assert "exit code 0" in capsys.readouterr().out

    def test_requires_exactly_one_input(self):
        with pytest.raises(SystemExit):
            cpu_main([])
        with pytest.raises(SystemExit):
            cpu_main(["x.s", "--workload", "vvadd"])

    def test_waterfall_needs_design(self):
        with pytest.raises(SystemExit):
            cpu_main(["--workload", "vvadd", "--waterfall"])
