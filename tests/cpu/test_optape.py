"""Tests for op-tape lowering and the on-disk trace cache."""

import pytest

from repro.cpu import CoreConfig, OpTape, TraceCache, tape_for_program
from repro.cpu.optape import program_digest
from repro.errors import ExecutionError
from repro.isa import Executor, Instruction, assemble
from repro.isa.executor import ExecutedOp
from repro.workloads import PASS_EXIT_CODE, get_workload

SIMPLE = """
_start:
    li   s0, 0
    li   s1, 20
loop:
    addi s0, s0, 1
    blt  s0, s1, loop
    li   a0, 42
    li   a7, 93
    ecall
"""

INFINITE = "_start:\n  j _start\n"


def make_op(rd=None, srcs=(), branch=False, taken=False, load=False,
            store=False, addr=None, pc=0):
    instr = Instruction("beq" if branch else "add", rd=rd,
                        rs1=srcs[0] if srcs else None,
                        rs2=srcs[1] if len(srcs) > 1 else None)
    return ExecutedOp(pc=pc, instr=instr, sources=tuple(srcs),
                      destination=rd, branch_taken=taken, is_load=load,
                      is_store=store, mem_address=addr)


class TestLowering:
    def test_roundtrip_preserves_timing_view(self):
        program = assemble(get_workload("towers").build(0.3))
        original = list(Executor(program).trace(max_instructions=60_000))
        tape = OpTape.from_program(program, max_instructions=60_000)
        replayed = list(tape.iter_ops())
        assert len(replayed) == len(original) == tape.instructions
        for orig, back in zip(original, replayed):
            assert back.sources == tuple(dict.fromkeys(orig.sources))
            assert back.destination == orig.destination
            assert back.branch_taken == orig.branch_taken
            assert back.instr.is_branch == orig.instr.is_branch
            assert back.is_load == orig.is_load
            assert back.is_store == orig.is_store
            assert back.mem_address == orig.mem_address

    def test_exit_metadata_captured(self):
        tape = OpTape.from_program(assemble(SIMPLE))
        assert tape.exit_code == PASS_EXIT_CODE
        assert not tape.hit_instruction_limit

    def test_signatures_deduplicate(self):
        ops = [make_op(rd=1, srcs=(2, 3)) for _ in range(10)]
        tape = OpTape.from_ops(ops)
        assert tape.instructions == 10
        assert tape.signature_count == 1
        assert tape.signatures() == [((2, 3), 1)]

    def test_rar_sources_deduplicated(self):
        tape = OpTape.from_ops([make_op(rd=1, srcs=(4, 4))])
        assert tape.signatures() == [((4,), 1)]

    def test_out_of_range_register_rejected(self):
        with pytest.raises(ExecutionError, match="register 33"):
            OpTape.from_ops([make_op(rd=33, srcs=())])
        with pytest.raises(ExecutionError, match="register 40"):
            OpTape.from_ops([make_op(rd=1, srcs=(40,))])

    def test_too_many_sources_rejected(self):
        op = make_op(rd=1, srcs=(2, 3))
        bad = ExecutedOp(pc=op.pc, instr=op.instr, sources=(2, 3, 4),
                         destination=1, branch_taken=False, is_load=False,
                         is_store=False)
        with pytest.raises(ExecutionError, match="sources"):
            OpTape.from_ops([bad])

    def test_empty_tape(self):
        tape = OpTape.from_ops([])
        assert tape.instructions == 0
        assert tape.signature_count == 0
        assert list(tape.iter_ops()) == []


class TestProgramDigest:
    def test_stable(self):
        program = assemble(SIMPLE)
        assert program_digest(program, 1000, 32) == \
            program_digest(program, 1000, 32)

    def test_inputs_distinguish(self):
        program = assemble(SIMPLE)
        other = assemble(SIMPLE.replace("20", "21"))
        base = program_digest(program, 1000, 32)
        assert program_digest(other, 1000, 32) != base
        assert program_digest(program, 2000, 32) != base
        assert program_digest(program, 1000, 64) != base


class TestTraceCache:
    def test_roundtrip(self, tmp_path):
        cache = TraceCache(tmp_path)
        program = assemble(SIMPLE)
        tape = OpTape.from_program(program, max_instructions=5_000)
        digest = program_digest(program, 5_000, 32)
        cache.put(digest, tape)
        loaded = cache.get(digest)
        assert loaded is not None
        assert loaded.instructions == tape.instructions
        assert loaded.exit_code == tape.exit_code
        assert loaded.halt_reason == tape.halt_reason
        assert loaded.max_instructions == 5_000
        assert (loaded.sig == tape.sig).all()
        assert (loaded.flags == tape.flags).all()
        assert (loaded.sig_srcs == tape.sig_srcs).all()
        assert (loaded.sig_dest == tape.sig_dest).all()
        assert (loaded.mem_addr == tape.mem_addr).all()

    def test_missing_entry_is_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache._path("f" * 64)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz archive")
        assert cache.get("f" * 64) is None

    def test_digest_mismatch_is_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        tape = OpTape.from_program(assemble(SIMPLE))
        cache.put("a" * 64, tape)
        cache._path("a" * 64).rename(cache._path("b" * 64))
        assert cache.get("b" * 64) is None


class TestTapeForProgram:
    def test_warm_cache_skips_functional_pass(self, tmp_path, monkeypatch):
        program = assemble(SIMPLE)
        cache = TraceCache(tmp_path)
        first = tape_for_program(program, max_instructions=5_000, cache=cache)
        lowered = []
        original = OpTape.from_program
        monkeypatch.setattr(
            OpTape, "from_program",
            classmethod(lambda cls, *a, **kw: (lowered.append(1),
                                               original(*a, **kw))[1]))
        second = tape_for_program(program, max_instructions=5_000,
                                  cache=cache)
        assert lowered == []  # served from disk, no executor run
        assert cache.hits == 1
        assert second.instructions == first.instructions

    def test_path_argument_coerced(self, tmp_path):
        program = assemble(SIMPLE)
        tape_for_program(program, cache=tmp_path)
        again = TraceCache(tmp_path)
        assert again.get(program_digest(program, 2_000_000, 32)) is not None

    def test_strict_truncation_raises_but_caches(self, tmp_path):
        program = assemble(INFINITE)
        cache = TraceCache(tmp_path)
        with pytest.raises(ExecutionError, match="100-instruction limit"):
            tape_for_program(program, max_instructions=100, cache=cache,
                             workload_name="infinite")
        with pytest.raises(ExecutionError, match="100-instruction limit"):
            tape_for_program(program, max_instructions=100, cache=cache,
                             workload_name="infinite")
        assert cache.hits == 1  # second failure came from the cached tape

    def test_lenient_truncation_returns_prefix(self):
        tape = tape_for_program(assemble(INFINITE), max_instructions=100,
                                strict=False)
        assert tape.instructions == 100
        assert tape.hit_instruction_limit
        assert tape.exit_code is None


class TestSimulatorIntegration:
    def test_simulate_program_uses_trace_cache(self, tmp_path):
        from repro.cpu import simulate_program

        program = assemble(SIMPLE)
        cache = TraceCache(tmp_path)
        cold = simulate_program(program, trace_cache=cache)
        warm = simulate_program(program, trace_cache=cache)
        assert cache.hits == 1
        for design in cold:
            assert cold[design].total_cycles == warm[design].total_cycles

    def test_config_register_count_flows_into_digest(self, tmp_path):
        from repro.cpu import simulate_program

        program = assemble(SIMPLE)
        cache = TraceCache(tmp_path)
        simulate_program(program, trace_cache=cache)
        simulate_program(program, trace_cache=cache,
                         config=CoreConfig(num_registers=64))
        assert cache.hits == 0  # different register bound, different tape
