"""Tests for the dependency-spreading list scheduler."""

import pytest

from repro.cpu.scheduler import (
    IrOp,
    list_schedule,
    mean_raw_distance,
    raw_distance_profile,
    render_asm,
)
from repro.errors import ConfigError
from repro.isa import Executor, assemble
from repro.workloads import PASS_EXIT_CODE
from repro.workloads.schedulable import build_schedulable_kernel


def chain(prefix: str, length: int = 3):
    """A serial dependence chain r0 -> r1 -> ... within one prefix."""
    ops = [IrOp(f"li {prefix}0", dest=f"{prefix}0")]
    for i in range(1, length):
        ops.append(IrOp(f"op {prefix}{i}", dest=f"{prefix}{i}",
                        srcs=(f"{prefix}{i - 1}",)))
    return ops


class TestDependences:
    def test_raw_preserved(self):
        ops = chain("a")
        scheduled = list_schedule(ops)
        position = {op.text: i for i, op in enumerate(scheduled)}
        assert position["li a0"] < position["op a1"] < position["op a2"]

    def test_war_preserved(self):
        ops = [
            IrOp("use x", srcs=("x",)),
            IrOp("write x", dest="x"),
        ]
        scheduled = list_schedule(ops)
        assert scheduled[0].text == "use x"

    def test_waw_preserved(self):
        ops = [
            IrOp("write1 x", dest="x"),
            IrOp("write2 x", dest="x"),
            IrOp("read x", srcs=("x",)),
        ]
        scheduled = list_schedule(ops)
        texts = [op.text for op in scheduled]
        assert texts.index("write1 x") < texts.index("write2 x")
        assert texts.index("write2 x") < texts.index("read x")

    def test_is_a_permutation(self):
        ops = chain("a") + chain("b") + chain("c")
        scheduled = list_schedule(ops)
        assert sorted(op.text for op in scheduled) == \
            sorted(op.text for op in ops)


class TestDistanceImprovement:
    def test_interleaving_spreads_chains(self):
        ops = chain("a") + chain("b") + chain("c")
        assert mean_raw_distance(list_schedule(ops)) > \
            mean_raw_distance(ops)

    def test_single_chain_cannot_improve(self):
        ops = chain("a", length=5)
        assert mean_raw_distance(list_schedule(ops)) == \
            pytest.approx(mean_raw_distance(ops))

    def test_profile(self):
        ops = [IrOp("a", dest="x"), IrOp("b", dest="y"),
               IrOp("c", srcs=("x",))]
        assert raw_distance_profile(ops) == [2]

    def test_empty_profile(self):
        assert raw_distance_profile([IrOp("a", dest="x")]) == []
        assert mean_raw_distance([IrOp("a", dest="x")]) == float("inf")

    def test_render(self):
        assert render_asm([IrOp("nop")]) == "    nop"


class TestScheduledKernel:
    @pytest.mark.parametrize("scheduled", [False, True])
    def test_kernel_self_checks(self, scheduled):
        source = build_schedulable_kernel(scheduled=scheduled)
        executor = Executor(assemble(source))
        executor.run(max_instructions=200_000)
        assert executor.exit_code == PASS_EXIT_CODE

    def test_scheduling_preserves_semantics(self):
        """Both orders must retire identical architectural results."""
        exits = set()
        for scheduled in (False, True):
            source = build_schedulable_kernel(scheduled=scheduled)
            executor = Executor(assemble(source))
            executor.run(max_instructions=200_000)
            exits.add(executor.exit_code)
        assert exits == {PASS_EXIT_CODE}

    def test_invalid_unroll(self):
        with pytest.raises(ConfigError):
            build_schedulable_kernel(unroll=9)
