"""Tests for the CPU simulator glue and CPI statistics."""

import pytest

from repro.cpu import CoreConfig, CpuSimulator, simulate_program
from repro.cpu.stats import CpiReport, cpi_overhead_percent, geometric_mean
from repro.errors import ExecutionError
from repro.isa import Executor, assemble

SIMPLE = """
_start:
    li   s0, 0
    li   s1, 50
loop:
    addi s0, s0, 1
    blt  s0, s1, loop
    li   a0, 0
    li   a7, 93
    ecall
"""


class TestCpuSimulator:
    def test_runs_source(self):
        report = CpuSimulator("ndro_rf").run_source(SIMPLE, "simple")
        assert report.instructions > 100
        assert report.cpi > 1.0

    def test_exit_code_check(self):
        with pytest.raises(ExecutionError, match="exit code"):
            CpuSimulator("ndro_rf").run_source(SIMPLE, "simple",
                                               expect_exit_code=42)

    def test_instruction_limit(self):
        with pytest.raises(ExecutionError, match="limit"):
            CpuSimulator("ndro_rf").run_source(
                "_start:\n  j _start\n", "infinite", max_instructions=100)

    def test_simulate_program_shares_trace(self):
        reports = simulate_program(assemble(SIMPLE))
        instr_counts = {r.instructions for r in reports.values()}
        assert len(instr_counts) == 1  # same functional trace for all

    def test_design_ordering_on_simple_loop(self):
        reports = simulate_program(assemble(SIMPLE))
        # HiPerRF is the slowest; the banked designs recover most of it.
        # (Dual-bank can even beat the baseline on cross-bank operand
        # pairs because its two read ports fetch both operands at once.)
        assert reports["ndro_rf"].cpi <= reports["hiperrf"].cpi
        assert reports["dual_bank_hiperrf_ideal"].cpi <= \
            reports["dual_bank_hiperrf"].cpi
        assert reports["dual_bank_hiperrf"].cpi <= reports["hiperrf"].cpi

    def test_run_trace_enforces_instruction_cap(self):
        ops = list(Executor(assemble(SIMPLE)).trace(max_instructions=10_000))
        sim = CpuSimulator("ndro_rf")
        report = sim.run_trace(ops, "simple", max_instructions=len(ops))
        assert report.instructions == len(ops)
        with pytest.raises(ExecutionError, match="limit"):
            sim.run_trace(ops, "simple", max_instructions=len(ops) - 1)

    def test_tiers_agree(self):
        program = assemble(SIMPLE)
        compiled = simulate_program(program, tier="compiled")
        reference = simulate_program(program, tier="reference")
        for design in compiled:
            assert compiled[design].total_cycles == \
                reference[design].total_cycles
            assert compiled[design].stall_cycles == \
                reference[design].stall_cycles

    def test_custom_config(self):
        fast = CpuSimulator("ndro_rf", CoreConfig(execute_depth=4))
        slow = CpuSimulator("ndro_rf", CoreConfig(execute_depth=28))
        assert fast.run_source(SIMPLE).cpi < slow.run_source(SIMPLE).cpi


class TestStats:
    def _report(self, workload, cpi):
        return CpiReport(workload=workload, design="x", instructions=100,
                         total_cycles=int(cpi * 100), cpi=cpi,
                         stall_cycles={})

    def test_overhead_percent(self):
        base = self._report("w", 20.0)
        cand = self._report("w", 22.0)
        assert cpi_overhead_percent(base, cand) == pytest.approx(10.0)

    def test_workload_mismatch(self):
        with pytest.raises(ValueError):
            cpi_overhead_percent(self._report("a", 10), self._report("b", 10))

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            cpi_overhead_percent(self._report("w", 0.0), self._report("w", 1))

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
