"""Tests for the per-design RF timing model."""

import pytest

from repro.cpu import RFTimingModel
from repro.cpu.rf_model import RF_DESIGN_NAMES
from repro.errors import ConfigError


class TestConstruction:
    @pytest.mark.parametrize("name", RF_DESIGN_NAMES)
    def test_all_designs_build(self, name):
        model = RFTimingModel.for_design(name)
        assert model.readout_cycles > 0

    def test_unknown_design(self):
        with pytest.raises(ConfigError):
            RFTimingModel.for_design("sram")

    def test_readout_quantized_in_port_cycles(self):
        # 53 ps port cycles are 2 gate cycles; readout must be a multiple.
        for name in RF_DESIGN_NAMES:
            model = RFTimingModel.for_design(name)
            assert model.readout_cycles % model.rf_cycle_gates == 0

    def test_readout_ordering(self):
        base = RFTimingModel.for_design("ndro_rf").readout_cycles
        hiper = RFTimingModel.for_design("hiperrf").readout_cycles
        dual = RFTimingModel.for_design("dual_bank_hiperrf").readout_cycles
        # Table III: baseline < dual-bank < HiPerRF; after 53 ps
        # quantization the dual-bank collapses onto the baseline.
        assert base <= dual < hiper

    def test_forwarding_only_on_baseline(self):
        assert RFTimingModel.for_design("ndro_rf").supports_forwarding
        for name in RF_DESIGN_NAMES[1:]:
            assert not RFTimingModel.for_design(name).supports_forwarding

    def test_loopback_only_on_hiperrf_family(self):
        assert not RFTimingModel.for_design("ndro_rf").has_loopback
        for name in RF_DESIGN_NAMES[1:]:
            assert RFTimingModel.for_design(name).has_loopback

    def test_wire_aware_variant_is_slower(self):
        dry = RFTimingModel.for_design("hiperrf")
        wet = RFTimingModel.for_design("hiperrf", include_wire_delays=True)
        assert wet.readout_cycles >= dry.readout_cycles


class TestIssueGaps:
    def test_baseline_gaps(self):
        model = RFTimingModel.for_design("ndro_rf")
        assert model.issue_gap_gates((1, 2), 3) == 4   # 2 RF cycles
        assert model.issue_gap_gates((1,), 3) == 2
        assert model.issue_gap_gates((), 3) == 2
        assert model.issue_gap_gates((1, 1), 3) == 2   # RAR dedup

    def test_hiperrf_always_three_cycles(self):
        model = RFTimingModel.for_design("hiperrf")
        for sources in ((), (1,), (1, 2), (1, 1)):
            assert model.issue_gap_gates(sources, 3) == 6

    def test_dual_bank_gaps(self):
        model = RFTimingModel.for_design("dual_bank_hiperrf")
        assert model.issue_gap_gates((1, 2), 3) == 4   # cross bank
        assert model.issue_gap_gates((1, 3), 2) == 8   # same bank
        assert model.issue_gap_gates((2,), 3) == 4

    def test_ideal_dual_bank_never_serialises(self):
        model = RFTimingModel.for_design("dual_bank_hiperrf_ideal")
        assert model.issue_gap_gates((1, 3), 2) == 4


class TestReadSlots:
    def test_baseline_consecutive(self):
        model = RFTimingModel.for_design("ndro_rf")
        assert model.read_slots_gates((1, 2)) == (0, 2)
        assert model.read_slots_gates((1,)) == (0,)

    def test_hiperrf_after_reset_read(self):
        model = RFTimingModel.for_design("hiperrf")
        assert model.read_slots_gates((1, 2)) == (2, 4)

    def test_dual_bank_parallel_when_cross_bank(self):
        model = RFTimingModel.for_design("dual_bank_hiperrf")
        assert model.read_slots_gates((1, 2)) == (2, 2)
        assert model.read_slots_gates((1, 3)) == (2, 6)

    def test_rar_dedup(self):
        model = RFTimingModel.for_design("hiperrf")
        assert model.read_slots_gates((3, 3)) == (2,)

    def test_empty(self):
        model = RFTimingModel.for_design("ndro_rf")
        assert model.read_slots_gates(()) == ()

    def test_loopback_busy(self):
        model = RFTimingModel.for_design("hiperrf")
        assert model.loopback_busy_gates() == \
            2 * model.rf_cycle_gates + model.loopback_cycles
        assert RFTimingModel.for_design("ndro_rf").loopback_busy_gates() == 0
