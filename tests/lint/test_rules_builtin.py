"""Tier-1 gate: every built-in design must lint clean.

This is the same invocation CI runs (``python -m repro.lint``); if a
netlist builder change introduces a structural or timing violation,
these tests fail before any simulation-level test notices.
"""

import json

import pytest

from repro.lint import (
    BUILTIN_DESIGNS,
    RULES,
    LintReport,
    Severity,
    lint_all,
    lint_design,
    make_issue,
)
from repro.lint.cli import main
from repro.lint.rules import catalog_text


@pytest.mark.parametrize("name", BUILTIN_DESIGNS)
def test_builtin_design_lints_clean(name):
    report = lint_design(name)
    assert report.errors == [], report.render(verbose=True)
    assert report.warnings == [], report.render(verbose=True)
    assert report.analysed, "driver must record what it analysed"


def test_lint_all_merges_every_design():
    report = lint_all()
    assert report.errors == []
    joined = " ".join(report.analysed)
    for name in BUILTIN_DESIGNS:
        assert name in joined


def test_cli_default_invocation_passes():
    assert main([]) == 0


def test_cli_json_output_parses(capsys):
    assert main(["--design", "ndro_rf", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 0
    assert payload["issues"] == []
    assert any("ndro_rf" in entry for entry in payload["analysed"])


def test_cli_list_rules_covers_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_catalog_ids_are_contiguous_and_stable():
    ids = sorted(RULES)
    assert ids[0] == "SFQ001"
    numbers = [int(rule_id[3:]) for rule_id in ids]
    assert numbers == list(range(1, len(ids) + 1))
    assert len(ids) >= 16


def test_catalog_text_lists_every_rule():
    text = catalog_text()
    assert len(text.splitlines()) == len(RULES)


def test_severity_ordering_gates_reports():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert Severity.parse("Error") is Severity.ERROR
    with pytest.raises(ValueError):
        Severity.parse("fatal")
    report = LintReport()
    assert report.worst_severity() is None
    report.add(make_issue("SFQ003", "x.in", "dangling"))
    assert report.worst_severity() is Severity.WARNING
    report.add(make_issue("SFQ001", "x.out", "fanout"))
    assert report.worst_severity() is Severity.ERROR


def test_render_mentions_rule_and_location():
    report = LintReport()
    report.add(make_issue("SFQ001", "rf.spl.out0", "drives 2 wires",
                          design="demo"))
    text = report.render()
    assert "SFQ001" in text
    assert "demo::rf.spl.out0" in text
    assert "1 error(s)" in text
