"""Deliberately broken netlists must trip the right rules.

Each fixture violates exactly one invariant; together they cover the
graph-level rule IDs SFQ001-SFQ009.  Where the pulse engine itself
refuses to build the illegal topology (fan-out, double-driving), the
fixture constructs the IR graph directly - expressing violations is what
the IR is for.
"""

from repro.lint import (
    Arc,
    CircuitGraph,
    GraphNode,
    LintConfig,
    NodeClass,
    PortRef,
    graph_from_engine,
    run_structural_passes,
    run_timing_passes,
)
from repro.pulse import DAND, DRO, JTL, Engine, Merger, Splitter


def _jtl_node(name):
    return GraphNode(name, "jtl", NodeClass.INTERCONNECT,
                     ("in",), ("out",), arcs=(Arc("in", "out", 2.0),))


def _rule_ids(issues):
    return {issue.rule_id for issue in issues}


def test_sfq001_unsplit_fanout():
    graph = CircuitGraph("fanout")
    graph.add_node(_jtl_node("a"))
    graph.add_node(_jtl_node("b"))
    graph.add_node(_jtl_node("c"))
    graph.add_edge(PortRef("a", "out"), PortRef("b", "in"))
    graph.add_edge(PortRef("a", "out"), PortRef("c", "in"))
    graph.mark_external(PortRef("a", "in"))
    assert "SFQ001" in _rule_ids(run_structural_passes(graph))


def test_sfq002_multiply_driven_input():
    graph = CircuitGraph("shared")
    graph.add_node(_jtl_node("a"))
    graph.add_node(_jtl_node("b"))
    graph.add_node(_jtl_node("c"))
    graph.add_edge(PortRef("a", "out"), PortRef("c", "in"))
    graph.add_edge(PortRef("b", "out"), PortRef("c", "in"))
    graph.mark_external(PortRef("a", "in"))
    graph.mark_external(PortRef("b", "in"))
    assert "SFQ002" in _rule_ids(run_structural_passes(graph))


def test_sfq003_dangling_logic_input_is_error():
    engine = Engine()
    feed = engine.add(JTL("feed", delay_ps=0.0))
    gate = engine.add(DAND("gate"))
    feed.connect("out", gate, "a")
    # gate.b is neither wired nor external: the DAND can never fire.
    graph = graph_from_engine(engine, "halfdand", [(feed, "in")])
    issues = run_structural_passes(graph)
    found = [i for i in issues if i.rule_id == "SFQ003"]
    assert found and all(str(i.severity) == "error" for i in found)


def test_sfq004_unclocked_storage():
    engine = Engine()
    feed = engine.add(JTL("feed", delay_ps=0.0))
    cell = engine.add(DRO("cell"))
    feed.connect("out", cell, "d")
    graph = graph_from_engine(engine, "noclk", [(feed, "in")])
    issues = run_structural_passes(graph)
    assert any(i.rule_id == "SFQ004" and "cell.clk" in i.obj for i in issues)


def test_sfq005_merger_reconvergence_inside_dead_time():
    engine = Engine()
    spl = engine.add(Splitter("spl"))
    slow = engine.add(JTL("slow", delay_ps=2.0))
    mrg = engine.add(Merger("mrg", dead_time_ps=5.0))
    spl.connect("out0", mrg, "in0")
    spl.connect("out1", slow, "in")
    slow.connect("out", mrg, "in1")
    graph = graph_from_engine(engine, "race", [(spl, "in")])
    issues = run_timing_passes(graph)
    assert any(i.rule_id == "SFQ005" and i.obj == "mrg" for i in issues)


def test_sfq005_clean_when_skew_exceeds_dead_time():
    engine = Engine()
    spl = engine.add(Splitter("spl"))
    slow = engine.add(JTL("slow", delay_ps=30.0))
    mrg = engine.add(Merger("mrg", dead_time_ps=5.0))
    spl.connect("out0", mrg, "in0")
    spl.connect("out1", slow, "in")
    slow.connect("out", mrg, "in1")
    graph = graph_from_engine(engine, "ok", [(spl, "in")])
    assert not run_timing_passes(graph)


def test_sfq006_interconnect_ring():
    engine = Engine()
    ring = [engine.add(JTL(f"j{i}", delay_ps=3.0)) for i in range(3)]
    ring[0].connect("out", ring[1], "in")
    ring[1].connect("out", ring[2], "in")
    ring[2].connect("out", ring[0], "in")
    graph = graph_from_engine(engine, "ring")
    issues = run_structural_passes(graph)
    ring_issues = [i for i in issues if i.rule_id == "SFQ006"]
    assert len(ring_issues) == 1
    assert "cycle" in ring_issues[0].message


def test_sfq006_not_triggered_by_storage_loop():
    # Feedback through a DRO data pin is the HiPerRF loopback idiom; the
    # stored fluxon waits for a strobe, so the loop cannot oscillate.
    engine = Engine()
    cell = engine.add(DRO("cell"))
    back = engine.add(JTL("back", delay_ps=3.0))
    cell.connect("q", back, "in")
    back.connect("out", cell, "d")
    graph = graph_from_engine(engine, "loopback", [(cell, "clk")])
    assert not any(i.rule_id == "SFQ006"
                   for i in run_structural_passes(graph))


def test_sfq008_clock_data_race():
    engine = Engine()
    spl = engine.add(Splitter("spl"))
    skew = engine.add(JTL("skew", delay_ps=1.0))
    cell = engine.add(DRO("cell"))
    spl.connect("out0", cell, "d")
    spl.connect("out1", skew, "in")
    skew.connect("out", cell, "clk")
    graph = graph_from_engine(engine, "drace", [(spl, "in")])
    issues = run_timing_passes(graph, LintConfig(race_margin_ps=5.0))
    assert any(i.rule_id == "SFQ008" and i.obj == "cell" for i in issues)


def test_sfq009_coincidence_unsatisfiable():
    engine = Engine()
    spl = engine.add(Splitter("spl"))
    late = engine.add(JTL("late", delay_ps=50.0))
    gate = engine.add(DAND("gate"))  # 10 ps hold window
    spl.connect("out0", gate, "a")
    spl.connect("out1", late, "in")
    late.connect("out", gate, "b")
    graph = graph_from_engine(engine, "nevereq", [(spl, "in")])
    issues = run_timing_passes(graph)
    assert any(i.rule_id == "SFQ009" and i.obj == "gate" for i in issues)


def test_sfq009_skipped_for_independent_inputs():
    # b has its own external driver: coincidence becomes a scheduling
    # question the static analysis must not prejudge.
    engine = Engine()
    feed_a = engine.add(JTL("fa", delay_ps=0.0))
    feed_b = engine.add(JTL("fb", delay_ps=50.0))
    gate = engine.add(DAND("gate"))
    feed_a.connect("out", gate, "a")
    feed_b.connect("out", gate, "b")
    graph = graph_from_engine(engine, "sched",
                              [(feed_a, "in"), (feed_b, "in")])
    assert not any(i.rule_id == "SFQ009"
                   for i in run_timing_passes(graph))


def test_fixture_suite_covers_at_least_five_rules():
    """The acceptance bar: broken fixtures trip >= 5 distinct rule IDs."""
    tripped = set()

    graph = CircuitGraph("fan")
    graph.add_node(_jtl_node("a"))
    graph.add_node(_jtl_node("b"))
    graph.add_node(_jtl_node("c"))
    graph.add_edge(PortRef("a", "out"), PortRef("b", "in"))
    graph.add_edge(PortRef("a", "out"), PortRef("c", "in"))
    graph.add_edge(PortRef("b", "out"), PortRef("c", "in"))
    graph.mark_external(PortRef("a", "in"))
    tripped |= _rule_ids(run_structural_passes(graph))

    engine = Engine()
    spl = engine.add(Splitter("spl"))
    near = engine.add(JTL("near", delay_ps=1.0))
    mrg = engine.add(Merger("mrg", dead_time_ps=5.0))
    cell = engine.add(DRO("cell"))
    gate = engine.add(DAND("gate"))
    far = engine.add(JTL("far", delay_ps=80.0))
    spl.connect("out0", mrg, "in0")
    spl.connect("out1", near, "in")
    near.connect("out", mrg, "in1")
    mrg.connect("out", cell, "d")
    cell.connect("q", gate, "a")
    far.connect("out", gate, "b")
    # cell.clk and far.in left unwired and undeclared on purpose.
    broken = graph_from_engine(engine, "kitchen", [(spl, "in")])
    tripped |= _rule_ids(run_structural_passes(broken))
    tripped |= _rule_ids(run_timing_passes(broken))

    assert len(tripped) >= 5, sorted(tripped)
