"""Deck (SFQ010-SFQ012) and gate-network (SFQ013-SFQ014) rules."""

from repro.josim.circuit import Circuit
from repro.lint import check_deck, check_network
from repro.synth.netlist import GateNetwork


def _ids(issues):
    return {issue.rule_id for issue in issues}


def _biased_jtl_deck():
    ckt = Circuit()
    ckt.jj("J1", "n1", "gnd", critical_current_ua=115.0)
    ckt.inductor("L1", "n1", "n2", inductance_ph=2.0)
    ckt.jj("J2", "n2", "gnd", critical_current_ua=115.0)
    ckt.bias("IB1", "n1")
    ckt.bias("IB2", "n2")
    return ckt


def test_clean_deck_has_no_findings():
    assert check_deck(_biased_jtl_deck(), "jtl") == []


def test_sfq010_floating_node():
    ckt = _biased_jtl_deck()
    ckt.inductor("L9", "n2", "nowhere", inductance_ph=2.0)
    issues = check_deck(ckt, "jtl")
    assert "SFQ010" in _ids(issues)
    assert any(i.obj == "nowhere" for i in issues)


def test_sfq011_shorted_element():
    ckt = _biased_jtl_deck()
    # The element constructor rejects pos == neg, so emulate a deck that
    # decayed after construction (e.g. node merging gone wrong).
    ckt.elements[1].neg = ckt.elements[1].pos
    issues = check_deck(ckt, "jtl")
    assert any(i.rule_id == "SFQ011" and i.obj == "L1" for i in issues)


def test_sfq012_unbiased_junctions():
    ckt = Circuit()
    ckt.jj("J1", "n1", "gnd", critical_current_ua=115.0)
    ckt.inductor("L1", "n1", "gnd", inductance_ph=2.0)
    issues = check_deck(ckt, "cold")
    assert "SFQ012" in _ids(issues)


def _tiny_network():
    net = GateNetwork("tiny")
    a = net.add_input("a")
    b = net.add_input("b")
    g = net.add_and(a, b, "g")
    net.add_output(g, "y")
    return net


def test_clean_network_has_no_findings():
    assert check_network(_tiny_network()) == []


def test_sfq013_dangling_gate():
    net = _tiny_network()
    net.add_xor(net.primary_inputs[0], net.primary_inputs[1], "dead")
    issues = check_network(net)
    assert any(i.rule_id == "SFQ013" and "dead" in i.obj for i in issues)


def test_sfq014_unbalanced_fanin():
    net = GateNetwork("skewed")
    a = net.add_input("a")
    b = net.add_input("b")
    deep = net.add_and(a, b, "deep")          # level 1
    top = net.add_or(deep, a, "top")          # inputs at levels 1 and 0
    net.add_output(top, "y")
    issues = check_network(net)
    assert any(i.rule_id == "SFQ014" and "top" in i.obj for i in issues)


def test_balanced_network_after_buffering_is_clean():
    net = GateNetwork("balanced")
    a = net.add_input("a")
    b = net.add_input("b")
    deep = net.add_and(a, b, "deep")
    pad = net.add_buf(a, "pad")               # DRO balancing buffer
    top = net.add_or(deep, pad, "top")
    net.add_output(top, "y")
    assert check_network(net) == []
