"""Inline ``# lint: disable=`` directive parsing and report filtering."""

from repro.lint import LintReport, Suppression, make_issue, parse_suppressions
from repro.lint.suppress import suppressions_from_file


def test_parse_single_directive():
    found = parse_suppressions("x = 1  # lint: disable=SFQ005\n")
    assert found == [Suppression("SFQ005", None)]


def test_parse_multiple_entries_and_globs():
    text = "# lint: disable=SFQ003[hp.lb*],SFQ005, SFQ007\n"
    found = parse_suppressions(text)
    assert Suppression("SFQ003", "hp.lb*") in found
    assert Suppression("SFQ005", None) in found
    assert Suppression("SFQ007", None) in found


def test_parse_ignores_malformed_entries():
    assert parse_suppressions("# lint: disable=banana\n") == []
    assert parse_suppressions("# nothing here\n") == []


def test_glob_scopes_the_suppression():
    scoped = Suppression("SFQ003", "hp.lb*")
    assert scoped.matches(make_issue("SFQ003", "hp.lb3", "m"))
    assert not scoped.matches(make_issue("SFQ003", "hp.out0", "m"))
    assert not scoped.matches(make_issue("SFQ005", "hp.lb3", "m"))


def test_apply_suppressions_keeps_audit_trail():
    report = LintReport()
    report.add(make_issue("SFQ005", "hp.wmrg0", "expected reconvergence"))
    report.add(make_issue("SFQ001", "hp.spl.out0", "real bug"))
    report.apply_suppressions([Suppression("SFQ005", None)])
    assert [i.rule_id for i in report.issues] == ["SFQ001"]
    assert [i.rule_id for i in report.suppressed] == ["SFQ005"]
    # The rendered summary still accounts for the suppressed finding.
    assert "1 suppressed" in report.render()


def test_suppressions_from_file(tmp_path):
    module = tmp_path / "builder.py"
    module.write_text(
        "# a builder module\n"
        "merger = None  # lint: disable=SFQ005[demo.*]\n",
        encoding="utf-8")
    found = suppressions_from_file(module)
    assert found == [Suppression("SFQ005", "demo.*")]
