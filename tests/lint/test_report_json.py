"""JSON report schema, stable ordering and suppression provenance."""

import json

from repro.lint.cli import main
from repro.lint.report import LintIssue, LintReport, Severity
from repro.lint.suppress import parse_suppressions


def _report():
    report = LintReport()
    report.analysed.append("demo")
    report.add(LintIssue("SFQ005", Severity.WARNING, "b.merge",
                         "unprotected merge", design="demo"))
    report.add(LintIssue("SFQ001", Severity.ERROR, "z.split",
                         "illegal fan-out", design="demo"))
    report.add(LintIssue("SFQ001", Severity.ERROR, "a.split",
                         "illegal fan-out", design="demo"))
    report.add(LintIssue("SFQ012", Severity.INFO, "m.probe",
                         "probe present", design="demo"))
    return report


def test_sorted_issues_orders_by_severity_then_anchor():
    ordered = _report().sorted_issues()
    assert [(i.rule_id, i.obj) for i in ordered] == [
        ("SFQ001", "a.split"),
        ("SFQ001", "z.split"),
        ("SFQ005", "b.merge"),
        ("SFQ012", "m.probe"),
    ]


def test_json_issues_carry_catalog_title_and_severity():
    payload = json.loads(_report().to_json())
    assert payload["analysed"] == ["demo"]
    assert [i["rule"] for i in payload["issues"]] == [
        "SFQ001", "SFQ001", "SFQ005", "SFQ012"]
    first = payload["issues"][0]
    assert first["rule_title"]
    assert first["rule_severity"] == "error"
    assert payload["summary"] == {"errors": 2, "warnings": 1, "infos": 1}


def test_suppressed_entries_carry_provenance():
    report = _report()
    rules = parse_suppressions(
        "# build notes\n# lint: disable=SFQ005[b.*]\n", source="demo.py")
    report.apply_suppressions(rules)
    assert [i.rule_id for i in report.suppressed] == ["SFQ005"]
    payload = json.loads(report.to_json())
    assert len(payload["suppressed"]) == 1
    origin = payload["suppressed"][0]["suppressed_by"]
    assert origin == {
        "source": "demo.py",
        "line": 2,
        "directive": "# lint: disable=SFQ005[b.*]",
    }


def test_suppression_without_provenance_is_null():
    class Anonymous:
        def matches(self, issue):
            return issue.rule_id == "SFQ012"

    report = _report()
    report.apply_suppressions([Anonymous()])
    payload = json.loads(report.to_json())
    assert payload["suppressed"][0]["suppressed_by"] is None


def test_merge_keeps_provenance_alignment():
    left = _report()
    left.apply_suppressions(parse_suppressions(
        "# lint: disable=SFQ012", source="left.py"))
    right = _report()
    right.suppressed.append(right.issues.pop())  # suppressed, origin unknown
    left.merge(right)
    payload = json.loads(left.to_json())
    origins = [entry["suppressed_by"] for entry in payload["suppressed"]]
    assert origins[0]["source"] == "left.py"
    assert origins[1] is None


def test_cli_json_is_deterministic_and_fail_on_info_gates(capsys):
    assert main(["--geometry", "4x4", "--format", "json"]) == 0
    first = capsys.readouterr().out
    assert main(["--geometry", "4x4", "--format", "json"]) == 0
    assert capsys.readouterr().out == first
    # INFO findings exist (probe notes), so gating on info must trip.
    payload = json.loads(first)
    if payload["summary"]["infos"]:
        assert main(["--geometry", "4x4", "--fail-on", "info"]) == 1
        capsys.readouterr()
    assert main(["--geometry", "4x4", "--fail-on", "never"]) == 0
