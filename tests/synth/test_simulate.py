"""Pulse-level functional verification of synthesised gate networks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.synth import GateNetwork, build_kogge_stone_adder, \
    build_logic_unit
from repro.synth.simulate import PulseNetworkSimulator, simulate_network


def bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def value(bit_list):
    return sum(bit << i for i, bit in enumerate(bit_list))


class TestSmallNetworks:
    def test_single_and(self):
        network = GateNetwork("and")
        a = network.add_input("a")
        b = network.add_input("b")
        network.add_output(network.add_and(a, b))
        assert simulate_network(network, [1, 1]) == [1]
        assert simulate_network(network, [1, 0]) == [0]

    def test_mux(self):
        network = GateNetwork("mux")
        s = network.add_input("s")
        d0 = network.add_input("d0")
        d1 = network.add_input("d1")
        network.add_output(network.add_mux2(s, d0, d1))
        # select=0 takes d0; select=1 takes d1.
        assert simulate_network(network, [0, 1, 0]) == [1]
        assert simulate_network(network, [1, 1, 0]) == [0]
        assert simulate_network(network, [1, 0, 1]) == [1]

    def test_fanout_through_splitters(self):
        network = GateNetwork("fan")
        a = network.add_input("a")
        inv = network.add_not(a)
        network.add_output(network.add_and(inv, inv))  # same source twice
        assert simulate_network(network, [0]) == [1]

    def test_wrong_input_count(self):
        network = GateNetwork("x")
        network.add_input("a")
        with pytest.raises(ConfigError):
            simulate_network(network, [1, 0])


class TestAdderPulseLevel:
    @pytest.fixture(scope="class")
    def simulator(self):
        return PulseNetworkSimulator(build_kogge_stone_adder(4))

    def test_exhaustive_4bit(self, simulator):
        """All 256 input pairs through the pulse-level adder."""
        for a in range(16):
            for b in range(16):
                out = simulator.evaluate(bits(a, 4) + bits(b, 4))
                assert value(out[:4]) == (a + b) % 16, (a, b)
                assert out[4] == (a + b) // 16, (a, b)

    def test_reusable_across_evaluations(self, simulator):
        assert value(simulator.evaluate(bits(9, 4) + bits(3, 4))[:4]) == 12
        assert value(simulator.evaluate(bits(0, 4) + bits(0, 4))[:4]) == 0


class TestLogicUnitPulseLevel:
    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(0, 15), b=st.integers(0, 15),
           sel=st.sampled_from([(0, 0), (1, 0), (0, 1)]))
    def test_matches_boolean_model(self, a, b, sel):
        network = build_logic_unit(4)
        out = simulate_network(network, bits(a, 4) + bits(b, 4) + list(sel))
        expected = {(0, 0): a & b, (1, 0): a | b, (0, 1): a ^ b}[sel]
        assert value(out) == expected
