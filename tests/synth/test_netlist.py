"""Tests for the gate-network IR."""

import pytest

from repro.errors import NetlistError
from repro.synth import GateKind, GateNetwork


def tiny():
    network = GateNetwork("tiny")
    a = network.add_input("a")
    b = network.add_input("b")
    x = network.add_xor(a, b, "x")
    y = network.add_and(x, b, "y")
    network.add_output(y, "out")
    return network, (a, b, x, y)


class TestConstruction:
    def test_gate_ids_sequential(self):
        network, (a, b, x, y) = tiny()
        assert [g.gate_id for g in network.gates] == list(range(5))

    def test_unknown_input_rejected(self):
        network = GateNetwork("bad")
        with pytest.raises(NetlistError):
            network.add_and(0, 1)

    def test_primary_lists(self):
        network, (a, b, x, y) = tiny()
        assert network.primary_inputs == [a, b]
        assert len(network.primary_outputs) == 1


class TestAnalysis:
    def test_levels(self):
        network, (a, b, x, y) = tiny()
        levels = network.levels()
        assert levels[a] == levels[b] == 0
        assert levels[x] == 1
        assert levels[y] == 2

    def test_depth(self):
        network, _ = tiny()
        assert network.depth() == 2

    def test_fanouts(self):
        network, (a, b, x, y) = tiny()
        fanouts = network.fanouts()
        assert fanouts[b] == 2  # feeds x and y
        assert fanouts[a] == 1
        assert fanouts[y] == 1  # the output marker

    def test_gate_count(self):
        network, _ = tiny()
        assert network.gate_count() == 2
        assert network.gate_count(GateKind.XOR) == 1

    def test_wide_or_is_logarithmic(self):
        network = GateNetwork("wide")
        sources = network.add_inputs(16, "i")
        out = network.add_wide_or(sources)
        network.add_output(out)
        assert network.depth() == 4

    def test_wide_or_empty_rejected(self):
        with pytest.raises(NetlistError):
            GateNetwork("w").add_wide_or([])

    def test_mux2_depth(self):
        network = GateNetwork("mux")
        s = network.add_input("s")
        d0 = network.add_input("d0")
        d1 = network.add_input("d1")
        network.add_output(network.add_mux2(s, d0, d1))
        # select -> not -> and -> or = 3 levels on the select path.
        assert network.depth() == 3
