"""Tests for the SFQ synthesis passes."""


from repro.synth import GateNetwork, build_execute_stage, synthesize
from repro.synth.pipeline import BUFFER_JJ, SPLITTER_JJ


def unbalanced_network():
    """b reaches the AND one level later than a's path: needs 1 buffer."""
    network = GateNetwork("unbal")
    a = network.add_input("a")
    b = network.add_input("b")
    deep = network.add_not(a, "n1")        # level 1
    gate = network.add_and(deep, b, "g")   # level 2; b is level 0
    network.add_output(gate)
    return network


class TestSynthesisPasses:
    def test_balancing_buffer_count(self):
        report = synthesize(unbalanced_network())
        assert report.balancing_buffers == 1
        assert report.balancing_jj == BUFFER_JJ

    def test_balanced_network_needs_no_buffers(self):
        network = GateNetwork("bal")
        a = network.add_input("a")
        b = network.add_input("b")
        gate = network.add_and(a, b)
        network.add_output(gate)
        report = synthesize(network)
        assert report.balancing_buffers == 0

    def test_splitter_insertion(self):
        network = GateNetwork("fan")
        a = network.add_input("a")
        x = network.add_not(a, "x")
        one = network.add_not(x)
        two = network.add_not(x)
        three = network.add_not(x)
        # x drives 3 sinks: 2 splitters; the three NOT outputs are
        # unbalanced only through the OUTPUT markers.
        network.add_output(one)
        network.add_output(two)
        network.add_output(three)
        report = synthesize(network)
        assert report.splitters == 2
        assert report.splitter_jj == 2 * SPLITTER_JJ

    def test_output_wave_balancing(self):
        """Primary outputs are padded to the block's full depth."""
        network = GateNetwork("skew")
        a = network.add_input("a")
        shallow = network.add_not(a)         # depth 1
        deep = network.add_not(network.add_not(network.add_not(a)))  # 4? no:
        network.add_output(shallow)
        network.add_output(deep)
        report = synthesize(network)
        # a fans out (splitters), shallow output needs padding to depth.
        assert report.balancing_buffers >= report.depth - 1

    def test_clock_tree_counts_buffers_too(self):
        report = synthesize(unbalanced_network())
        assert report.clocked_cells == report.logic_gates \
            + report.balancing_buffers

    def test_total_jj_is_sum(self):
        report = synthesize(build_execute_stage(8))
        assert report.total_jj == (report.logic_jj + report.splitter_jj
                                   + report.balancing_jj
                                   + report.clock_tree_jj)

    def test_latency(self):
        report = synthesize(unbalanced_network())
        assert report.latency_ps == report.depth * 28.0

    def test_describe(self):
        text = synthesize(unbalanced_network()).describe()
        assert "depth" in text and "balancing" in text


class TestDepthScaling:
    def test_wider_execute_is_deeper(self):
        assert build_execute_stage(32).depth() > \
            build_execute_stage(8).depth()

    def test_balancing_overhead_substantial(self):
        # The classic RSFQ observation: path balancing costs a large
        # fraction of the logic budget in wide datapaths.
        report = synthesize(build_execute_stage(32))
        assert report.balancing_overhead > 0.3
