"""Functional and structural tests for the datapath block generators.

The gate networks are structural, but they can be *evaluated* by
propagating boolean values through the DAG - which lets us verify the
adder really adds before trusting its synthesised depth.
"""

import pytest

from repro.synth import (
    GateKind,
    GateNetwork,
    build_alu,
    build_comparator,
    build_execute_stage,
    build_kogge_stone_adder,
    build_logic_unit,
    build_shifter,
)


def evaluate(network: GateNetwork, input_values):
    """Propagate booleans through the DAG; returns output bit list."""
    values = {}
    input_iter = iter(input_values)
    for gate in network.gates:
        if gate.kind is GateKind.INPUT:
            values[gate.gate_id] = next(input_iter)
        elif gate.kind is GateKind.OUTPUT:
            values[gate.gate_id] = values[gate.inputs[0]]
        elif gate.kind is GateKind.AND:
            values[gate.gate_id] = values[gate.inputs[0]] & values[gate.inputs[1]]
        elif gate.kind is GateKind.OR:
            values[gate.gate_id] = values[gate.inputs[0]] | values[gate.inputs[1]]
        elif gate.kind is GateKind.XOR:
            values[gate.gate_id] = values[gate.inputs[0]] ^ values[gate.inputs[1]]
        elif gate.kind is GateKind.NOT:
            values[gate.gate_id] = 1 - values[gate.inputs[0]]
        elif gate.kind is GateKind.BUF:
            values[gate.gate_id] = values[gate.inputs[0]]
    return [values[out] for out in network.primary_outputs]


def bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bit_list):
    return sum(bit << i for i, bit in enumerate(bit_list))


class TestAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (7, 9), (255, 1),
                                     (0xDEAD, 0xBEEF), (0xFFFF, 0xFFFF)])
    def test_addition(self, a, b):
        width = 16
        network = build_kogge_stone_adder(width)
        outputs = evaluate(network, bits(a, width) + bits(b, width))
        total = from_bits(outputs[:width])
        carry = outputs[width]
        assert total == (a + b) % (1 << width)
        assert carry == ((a + b) >> width) & 1

    @pytest.mark.parametrize("a,b", [(5, 3), (3, 5), (0, 0), (0xFFFF, 1)])
    def test_subtraction(self, a, b):
        width = 16
        network = build_kogge_stone_adder(width, with_subtract=True)
        outputs = evaluate(network, bits(a, width) + bits(b, width) + [1])
        assert from_bits(outputs[:width]) == (a - b) % (1 << width)

    def test_add_mode_of_subtractor(self):
        width = 8
        network = build_kogge_stone_adder(width, with_subtract=True)
        outputs = evaluate(network, bits(100, width) + bits(55, width) + [0])
        assert from_bits(outputs[:width]) == 155

    def test_logarithmic_depth(self):
        # Parallel-prefix: depth grows ~2 levels per doubling, not ~w.
        d16 = build_kogge_stone_adder(16).depth()
        d32 = build_kogge_stone_adder(32).depth()
        assert d32 - d16 <= 3
        assert d32 < 32  # decisively better than ripple


class TestLogicUnit:
    @pytest.mark.parametrize("sel,expected", [
        ((0, 0), 0xA5A5 & 0x0F0F),
        ((1, 0), 0xA5A5 | 0x0F0F),
        ((0, 1), 0xA5A5 ^ 0x0F0F),
        ((1, 1), 0xA5A5 ^ 0x0F0F),
    ])
    def test_operations(self, sel, expected):
        width = 16
        network = build_logic_unit(width)
        outputs = evaluate(network, bits(0xA5A5, width) + bits(0x0F0F, width)
                           + [sel[0], sel[1]])
        assert from_bits(outputs) == expected


class TestShifter:
    @pytest.mark.parametrize("value,shift", [(0x8000, 0), (0x8000, 3),
                                             (0xFFFF, 15), (0x1234, 4)])
    def test_logical_right_shift(self, value, shift):
        width = 16
        network = build_shifter(width)
        shift_bits = [(shift >> k) & 1 for k in range(4)]
        outputs = evaluate(network, bits(value, width) + shift_bits + [0])
        assert from_bits(outputs) == value >> shift

    def test_sign_fill(self):
        width = 16
        network = build_shifter(width)
        outputs = evaluate(network,
                           bits(0x8000, width) + [1, 0, 0, 0] + [1])
        assert from_bits(outputs) == (0x8000 >> 1) | 0x8000


class TestComparator:
    @pytest.mark.parametrize("a,b,unsigned,expected", [
        (3, 5, 1, 1), (5, 3, 1, 0), (5, 5, 1, 0),
        (0xFFFF, 1, 1, 0),            # unsigned: 65535 > 1
        (0xFFFF, 1, 0, 1),            # signed: -1 < 1
        (1, 0xFFFF, 0, 0),            # signed: 1 > -1
        (0x8000, 0x7FFF, 0, 1),       # signed: most-negative < max
    ])
    def test_less_than(self, a, b, unsigned, expected):
        width = 16
        network = build_comparator(width)
        outputs = evaluate(network,
                           bits(a, width) + bits(b, width) + [unsigned])
        assert outputs[0] == expected


class TestAluDepth:
    def test_alu_depth_near_paper(self):
        report_depth = build_alu(32).depth()
        assert 20 <= report_depth <= 30

    def test_execute_stage_depth_matches_paper(self):
        # Section VI-B: "The execution stage of the RISC-V core is 28
        # stages deep."  Our synthesised datapath must land within a
        # couple of stages.
        depth = build_execute_stage(32).depth()
        assert abs(depth - 28) <= 2

    def test_invalid_width(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            build_alu(24)
