"""Tests for the compiler-scheduling study."""

import pytest

from repro.experiments import scheduling


class TestSchedulingStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return scheduling.run()

    def test_raw_distance_improves(self, result):
        ir = result["_ir"]
        assert ir["scheduled_mean_raw_distance"] > \
            2 * ir["naive_mean_raw_distance"]

    def test_scheduling_speeds_up_every_design(self, result):
        for design in result["naive"]:
            assert result["scheduled"][design] < \
                0.6 * result["naive"][design], design

    def test_big_speedup_on_deep_pipeline(self, result):
        # The 28-deep execute stage makes spreading worth >2x here.
        speedup = result["naive"]["ndro_rf"] / result["scheduled"]["ndro_rf"]
        assert speedup > 2.0

    def test_ordering_preserved_in_both(self, result):
        for variant in ("naive", "scheduled"):
            assert result[variant]["hiperrf"] >= \
                result[variant]["dual_bank_hiperrf"] - 0.01

    def test_render(self, result):
        text = scheduling.render(result)
        assert "spreading RAW dependencies" in text
        assert "speedup" in text
