"""SingleFlight semantics and the cached_call/cached_map rewiring."""

from __future__ import annotations

import threading

import pytest

from repro.experiments.parallel import (
    SINGLE_FLIGHT,
    ResultCache,
    SingleFlight,
    cached_call,
    cached_map,
)


class TestSingleFlightCore:
    def test_do_returns_value_and_unregisters(self):
        flight = SingleFlight()
        assert flight.do("k", lambda: 41) == 41
        assert flight.in_flight() == 0
        # keys unregister on completion: later calls compute fresh
        assert flight.do("k", lambda: 42) == 42
        assert flight.leads == 2
        assert flight.waits == 0

    def test_concurrent_same_key_computes_once(self):
        flight = SingleFlight()
        gate = threading.Event()
        calls = []
        results = []

        def compute():
            calls.append(1)
            gate.wait(5)
            return "value"

        def leader():
            results.append(flight.do("k", compute))

        def waiter():
            while flight.in_flight() == 0:  # until the leader claims
                pass
            results.append(flight.do("k", lambda: "never"))

        threads = [threading.Thread(target=leader),
                   threading.Thread(target=waiter)]
        threads[0].start()
        threads[1].start()
        while flight.waits == 0 and threads[0].is_alive():
            pass
        gate.set()
        for thread in threads:
            thread.join(10)
        assert results == ["value", "value"]
        assert calls == [1]
        assert flight.leads == 1
        assert flight.waits == 1

    def test_leader_exception_propagates_to_waiters(self):
        flight = SingleFlight()
        leader, handle = flight.begin("k")
        assert leader
        errors = []

        def waiter():
            is_leader, shared = flight.begin("k")
            assert not is_leader
            try:
                flight.wait(shared)
            except RuntimeError as exc:
                errors.append(str(exc))

        thread = threading.Thread(target=waiter)
        thread.start()
        while flight.waits == 0:
            pass
        flight.finish("k", handle, exception=RuntimeError("boom"))
        thread.join(10)
        assert errors == ["boom"]
        with pytest.raises(RuntimeError, match="boom"):
            flight.wait(handle)

    def test_begin_after_finish_leads_again(self):
        flight = SingleFlight()
        leader, handle = flight.begin("k")
        flight.finish("k", handle, value=1)
        leader_again, handle2 = flight.begin("k")
        assert leader_again
        assert handle2 is not handle
        flight.finish("k", handle2, value=2)


class TestCachedCallCollapse:
    def test_concurrent_identical_calls_compute_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        gate = threading.Event()
        started = threading.Event()
        calls = []
        results = []

        def fn():
            calls.append(1)
            started.set()
            gate.wait(5)
            return 7

        def racer():
            results.append(cached_call("ns", {"k": 1}, fn, cache=cache))

        threads = [threading.Thread(target=racer) for _ in range(4)]
        threads[0].start()
        started.wait(5)
        for thread in threads[1:]:
            thread.start()
        while SINGLE_FLIGHT.in_flight() == 0 and any(
                t.is_alive() for t in threads):
            pass
        gate.set()
        for thread in threads:
            thread.join(10)
        assert results == [7, 7, 7, 7]
        assert calls == [1]  # one computation, shared by every racer
        assert cache.get("ns", {"k": 1}) == 7


class TestCachedMapCollapse:
    def test_overlapping_sweeps_never_duplicate_a_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        gate = threading.Event()
        lock = threading.Lock()
        calls = []

        def fn(x):
            with lock:
                calls.append(x)
            gate.wait(5)
            return x * 10

        outputs = {}

        def sweep(name, points):
            outputs[name] = cached_map("ns", fn, points,
                                       workers=1, cache=cache)

        waits_before = SINGLE_FLIGHT.waits  # the counter is process-global
        a = threading.Thread(target=sweep, args=("a", [1, 2, 3]))
        b = threading.Thread(target=sweep, args=("b", [2, 3, 4]))
        a.start()
        while not calls:  # sweep a is computing its first point
            pass
        b.start()
        # release the gate only once b is a registered waiter on a's keys
        while SINGLE_FLIGHT.waits == waits_before and b.is_alive():
            pass
        gate.set()
        a.join(10)
        b.join(10)
        assert outputs["a"] == [10, 20, 30]
        assert outputs["b"] == [20, 30, 40]
        # overlap keys 2 and 3 computed exactly once across both sweeps
        assert sorted(calls) == [1, 2, 3, 4]

    def test_failed_dispatch_releases_waiters(self, tmp_path):
        cache = ResultCache(tmp_path)
        gate = threading.Event()
        failures = []

        def fn(x):
            gate.wait(5)
            raise ValueError(f"bad {x}")

        def sweep():
            try:
                cached_map("ns", fn, [5], workers=1, cache=cache)
            except ValueError as exc:
                failures.append(str(exc))

        waits_before = SINGLE_FLIGHT.waits  # the counter is process-global
        a = threading.Thread(target=sweep)
        b = threading.Thread(target=sweep)
        a.start()
        while SINGLE_FLIGHT.in_flight() == 0 and a.is_alive():
            pass
        b.start()
        while SINGLE_FLIGHT.waits == waits_before and b.is_alive():
            pass
        gate.set()
        a.join(10)
        b.join(10)
        # the leader's exception reached both sweeps; nobody hung
        assert failures == ["bad 5", "bad 5"]

    def test_in_call_duplicates_share_one_slot(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def fn(x):
            calls.append(x)
            return x + 1

        result = cached_map("ns", fn, [9, 9, 9], workers=1, cache=cache)
        assert result == [10, 10, 10]
        assert calls == [9]
