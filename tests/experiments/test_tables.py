"""Shape tests for Tables I-IV against the paper's published values.

The acceptance criterion (DESIGN.md Section 5): orderings and
percent-of-baseline ratios must match; absolute values within a few
percent of the proprietary-library numbers.
"""

import pytest

from repro.experiments import paper_data, table1, table2, table3, table4
from repro.experiments.report import ComparisonRow, format_table, \
    max_abs_delta_percent


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run()

    def test_absolute_values_close(self, result):
        for design, cells in result.items():
            for label, cell in cells.items():
                assert cell["jj"] == pytest.approx(cell["paper_jj"], rel=0.09), \
                    f"{design} {label}"

    def test_percent_of_baseline_32x32(self, result):
        # Paper: HiPerRF 43.93%, dual-banked 46.55%.
        assert result["hiperrf"]["32x32"]["percent_of_baseline"] == \
            pytest.approx(43.93, abs=1.5)
        assert result["dual_bank_hiperrf"]["32x32"]["percent_of_baseline"] == \
            pytest.approx(46.55, abs=1.5)

    def test_ratio_ordering_across_sizes(self, result):
        ratios = [result["hiperrf"][g]["percent_of_baseline"]
                  for g in paper_data.GEOMETRY_LABELS]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_render(self, result):
        text = table1.render(result)
        assert "Table I" in text
        assert "HiPerRF" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run()

    def test_absolute_values_close(self, result):
        for design, cells in result.items():
            for label, cell in cells.items():
                assert cell["power_uw"] == pytest.approx(
                    cell["paper_power_uw"], rel=0.05), f"{design} {label}"

    def test_percent_of_baseline_32x32(self, result):
        # Paper: HiPerRF 53.85%, dual-banked 56.15%.
        assert result["hiperrf"]["32x32"]["percent_of_baseline"] == \
            pytest.approx(53.85, abs=2.0)
        assert result["dual_bank_hiperrf"]["32x32"]["percent_of_baseline"] == \
            pytest.approx(56.15, abs=2.0)

    def test_render(self, result):
        assert "Table II" in table2.render(result)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run()

    def test_absolute_values_close(self, result):
        for design, cells in result.items():
            for label, cell in cells.items():
                assert cell["delay_ps"] == pytest.approx(
                    cell["paper_delay_ps"], rel=0.08), f"{design} {label}"

    def test_hiperrf_overhead_shrinks_with_size(self, result):
        overheads = [result["hiperrf"][g]["percent_of_baseline"]
                     for g in paper_data.GEOMETRY_LABELS]
        assert overheads[0] > overheads[1] > overheads[2]

    def test_dual_bank_8_percent_at_32x32(self, result):
        # Paper: 108.33% of baseline.
        assert result["dual_bank_hiperrf"]["32x32"]["percent_of_baseline"] == \
            pytest.approx(108.33, abs=3.0)

    def test_render(self, result):
        assert "Table III" in table3.render(result)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run()

    def test_readout_matches(self, result):
        for design, cell in result.items():
            assert cell["readout_ps"] == pytest.approx(
                cell["paper_readout_ps"], rel=0.03), design

    def test_loopback_matches(self, result):
        for design in ("hiperrf", "dual_bank_hiperrf"):
            cell = result[design]
            assert cell["loopback_ps"] == pytest.approx(
                cell["paper_loopback_ps"], rel=0.05), design

    def test_baseline_no_loopback(self, result):
        assert result["ndro_rf"]["loopback_ps"] is None

    def test_render(self, result):
        assert "Table IV" in table4.render(result)


class TestReportHelpers:
    def test_comparison_row_delta(self):
        row = ComparisonRow("x", measured=110.0, paper=100.0)
        assert row.delta_percent == pytest.approx(10.0)
        assert ComparisonRow("x", 1.0).delta_percent is None

    def test_format_table(self):
        text = format_table("T", [ComparisonRow("a", 1.0, 2.0, unit="ps")])
        assert "T" in text and "a [ps]" in text and "-50.0%" in text

    def test_max_abs_delta(self):
        rows = [ComparisonRow("a", 105.0, 100.0),
                ComparisonRow("b", 90.0, 100.0)]
        assert max_abs_delta_percent(rows) == pytest.approx(10.0)
        assert max_abs_delta_percent([ComparisonRow("c", 1.0)]) == 0.0
