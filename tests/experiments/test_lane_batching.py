"""Lane-batched sweeps elaborate their netlist exactly once.

The skew and fault studies replay every trial as a stimulus lane over
one cached build; the compiled-netlist cache's hit/miss counters are
the build spy.  The sweeps must also be tier-independent: forcing the
sequential compiled oracle gives the identical outcomes.
"""

from __future__ import annotations

from repro.experiments import fault_study, skew
from repro.pulse.cache import DEFAULT_CACHE
from repro.rf.geometry import RFGeometry

SMALL = RFGeometry(4, 8)  # 2 fault kinds x 4 registers x 4 columns


class TestSingleBuildPerSweep:
    def test_skew_sweep_builds_once(self):
        DEFAULT_CACHE.clear()
        rows = skew.run([-4.0, 0.0, 4.0])
        assert len(rows) == 3
        assert DEFAULT_CACHE.stats()["misses"] == 1

    def test_restore_ok_reuses_the_cached_build(self):
        DEFAULT_CACHE.clear()
        assert skew.restore_ok(0.0)
        assert skew.restore_ok(2.0)
        stats = DEFAULT_CACHE.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_fault_sweep_builds_once(self):
        DEFAULT_CACHE.clear()
        outcomes = fault_study.run_sweep(geometry=SMALL)
        assert len(outcomes) == 2 * 4 * 4
        assert DEFAULT_CACHE.stats()["misses"] == 1


class TestSweepTierEquivalence:
    def test_fault_sweep_tiers_agree(self):
        batched = fault_study.run_sweep(tier="batched", geometry=SMALL)
        compiled = fault_study.run_sweep(tier="compiled", geometry=SMALL)
        assert batched == compiled
        summary = fault_study.sweep_summary(batched)
        assert summary["drop_loopback_pulse"]["trials"] == 16
        assert summary["extra_data_pulse"]["trials"] == 16
        # A dropped loopback pulse corrupts whenever the struck column
        # held fluxons; an extra data pulse only bumps the count.
        assert summary["drop_loopback_pulse"]["state_corrupted"] > 0
        assert summary["extra_data_pulse"]["state_corrupted"] == 0

    def test_skew_tiers_agree(self):
        skews = [-4.0, 0.0, 8.0]
        assert skew.run(skews, tier="batched") == \
            skew.run(skews, tier="compiled")
