"""Tests for the runner's --json machine-readable output."""

import json

import pytest

from repro.experiments.runner import main


def run_json(args, capsys):
    assert main(args + ["--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestJsonOutput:
    def test_table1_payload(self, capsys):
        payload = run_json(["table1"], capsys)
        cell = payload["table1"]["hiperrf"]["32x32"]
        assert cell["paper_jj"] == 16133.0
        assert cell["jj"] == pytest.approx(16133, rel=0.02)

    def test_multiple_experiments(self, capsys):
        payload = run_json(["table3", "fullchip"], capsys)
        assert set(payload) == {"table3", "fullchip"}
        assert payload["fullchip"]["saving_percent"] == \
            pytest.approx(16.3, abs=0.5)

    def test_dataclasses_serialise(self, capsys):
        payload = run_json(["faults"], capsys)
        outcomes = payload["faults"]
        assert isinstance(outcomes, list)
        assert outcomes[0]["fault"] == "drop_loopback_pulse"

    def test_enum_values_flattened(self, capsys):
        payload = run_json(["faults"], capsys)
        for outcome in payload["faults"]:
            assert "FaultKind" not in str(outcome["fault"])

    def test_unsupported_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["figure14", "--json"])

    def test_scaling_rows(self, capsys):
        payload = run_json(["scaling"], capsys)
        assert len(payload["scaling"]) == 7
        assert payload["scaling"][0]["num_registers"] == 4.0
