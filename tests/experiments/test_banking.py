"""Tests for the banking scaling study."""

import pytest

from repro.experiments import banking


class TestBankingStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return banking.run(scale=0.4, max_instructions=150_000)

    def test_sweep_covers_expected_banks(self, rows):
        assert [row["banks"] for row in rows] == [1.0, 2.0, 4.0, 8.0]

    def test_jj_premium_monotone(self, rows):
        premiums = [row["jj_premium"] for row in rows]
        assert premiums == sorted(premiums)
        assert premiums[0] == pytest.approx(0.0)

    def test_readout_monotone_decreasing(self, rows):
        delays = [row["readout_ps"] for row in rows]
        assert delays == sorted(delays, reverse=True)

    def test_cpi_overhead_improves_with_banks(self, rows):
        overheads = [row["cpi_overhead_percent"] for row in rows]
        assert overheads == sorted(overheads, reverse=True)

    def test_two_banks_is_the_knee(self, rows):
        """Going 1 -> 2 banks buys more CPI per JJ than 2 -> 4."""
        by_banks = {row["banks"]: row for row in rows}
        gain_12 = (by_banks[1.0]["cpi_overhead_percent"]
                   - by_banks[2.0]["cpi_overhead_percent"])
        cost_12 = by_banks[2.0]["jj_premium"] - by_banks[1.0]["jj_premium"]
        gain_24 = (by_banks[2.0]["cpi_overhead_percent"]
                   - by_banks[4.0]["cpi_overhead_percent"])
        cost_24 = by_banks[4.0]["jj_premium"] - by_banks[2.0]["jj_premium"]
        assert gain_12 / cost_12 > gain_24 / cost_24

    def test_render(self, rows):
        text = banking.render(rows)
        assert "Banking scaling study" in text
        assert "knee" in text
