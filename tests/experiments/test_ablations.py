"""Tests for the ablation studies."""

import pytest

from repro.experiments import ablations
from repro.rf import HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.alternatives import SingleBitLoopbackRF


class TestDualBitAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.dual_bit_ablation()

    def test_single_bit_sits_between(self, result):
        assert result["hiperrf_jj"] < result["single_bit_loopback_jj"] \
            < result["baseline_jj"]

    def test_savings_decompose(self, result):
        total = (result["loopback_idea_saving_percent"]
                 + result["dual_bit_extra_saving_percent"])
        assert total == pytest.approx(result["total_saving_percent"],
                                      abs=0.01)

    def test_both_ideas_contribute(self, result):
        assert result["loopback_idea_saving_percent"] > 15.0
        assert result["dual_bit_extra_saving_percent"] > 15.0


class TestSingleBitLoopbackDesign:
    def test_readout_faster_than_hiperrf(self):
        # No HC-CLK train or HC-READ counter on the path.
        geometry = RFGeometry(32, 32)
        assert SingleBitLoopbackRF(geometry).readout_delay_ps() < \
            HiPerRF(geometry).readout_delay_ps()

    def test_still_slower_than_baseline(self):
        geometry = RFGeometry(32, 32)
        assert SingleBitLoopbackRF(geometry).readout_delay_ps() > \
            NdroRegisterFile(geometry).readout_delay_ps()

    def test_has_loopback_path(self):
        assert SingleBitLoopbackRF(RFGeometry(32, 32)).loopback_path() \
            is not None

    def test_storage_is_dro(self):
        census = SingleBitLoopbackRF(RFGeometry(16, 16)).census()
        assert census.count("dro") == 256
        assert census.count("hcdro") == 0
        assert census.count("hc_clk") == 0


class TestBankPolicyAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.bank_policy_ablation(scale=0.4,
                                              max_instructions=150_000)

    def test_policy_spectrum_ordered(self, result):
        ideal = result["dual_bank_hiperrf_ideal_overhead_percent"]
        parity = result["dual_bank_hiperrf_overhead_percent"]
        worst = result["dual_bank_hiperrf_worst_overhead_percent"]
        assert ideal <= parity <= worst

    def test_any_banking_beats_no_banking(self, result):
        assert result["dual_bank_hiperrf_worst_overhead_percent"] <= \
            result["hiperrf_overhead_percent"] + 0.5

    def test_render(self, result):
        text = ablations.render({"dual_bit": ablations.dual_bit_ablation(),
                                 "bank_policy": result})
        assert "Ablation studies" in text
        assert "always same-bank" in text
