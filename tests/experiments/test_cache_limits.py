"""On-disk cache byte budgets, LRU eviction, and publish-path races."""

from __future__ import annotations

import json
import os
import threading

import numpy as np

from repro.cpu.optape import OpTape, TraceCache
from repro.experiments.parallel import (
    MAX_BYTES_ENV_VAR,
    ResultCache,
    cache_max_bytes,
    enforce_cache_limit,
)


def _set_mtime(path, seconds):
    os.utime(path, (seconds, seconds))


def _tape(n=4):
    return OpTape(
        sig=np.arange(n, dtype=np.int32),
        flags=np.zeros(n, dtype=np.uint8),
        mem_addr=np.zeros(n, dtype=np.int64),
        sig_srcs=np.zeros((n, 2), dtype=np.int16),
        sig_dest=np.zeros(n, dtype=np.int16),
        max_instructions=100,
        num_registers=16,
        exit_code=0,
        halt_reason=None,
    )


class TestCacheMaxBytesEnv:
    def test_unset_means_unlimited(self, monkeypatch):
        monkeypatch.delenv(MAX_BYTES_ENV_VAR, raising=False)
        assert cache_max_bytes() == 0

    def test_garbage_and_negative_mean_unlimited(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "lots")
        assert cache_max_bytes() == 0
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "-5")
        assert cache_max_bytes() == 0

    def test_positive_value(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "12345")
        assert cache_max_bytes() == 12345


class TestResultCacheEviction:
    def test_oldest_entries_evicted_first(self, tmp_path):
        cache = ResultCache(tmp_path)  # unlimited while seeding
        for index in range(4):
            cache.put("ns", {"k": index}, {"v": index})
            _set_mtime(cache._path("ns", {"k": index}), 1_000 + index)
        entry = cache._path("ns", {"k": 0}).stat().st_size
        # room for roughly two entries: the two oldest must go
        cache.max_bytes = 2 * entry + 1
        cache.put("ns", {"k": 99}, {"v": 99})
        _set_mtime(cache._path("ns", {"k": 99}), 2_000)
        survivors = {index for index in (0, 1, 2, 3, 99)
                     if cache.get("ns", {"k": index}) is not None}
        assert 99 in survivors  # newest always survives
        assert 0 not in survivors and 1 not in survivors
        assert cache.evictions >= 2

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put("ns", {"k": index}, {"v": index})
            _set_mtime(cache._path("ns", {"k": index}), 1_000 + index)
        assert cache.get("ns", {"k": 0}) == {"v": 0}  # touch: now newest
        entry = cache._path("ns", {"k": 0}).stat().st_size
        cache.max_bytes = 2 * entry + 1
        cache.put("ns", {"k": 9}, {"v": 9})
        # key 0 was hit after seeding, so the cold keys 1/2 evict first
        assert cache.get("ns", {"k": 0}) == {"v": 0}
        assert cache.get("ns", {"k": 9}) == {"v": 9}

    def test_zero_budget_means_unlimited(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=0)
        for index in range(10):
            cache.put("ns", {"k": index}, {"v": index})
        assert cache.evictions == 0
        assert all(cache.get("ns", {"k": index}) is not None
                   for index in range(10))

    def test_size_bytes_tracks_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.size_bytes() == 0
        cache.put("ns", {"k": 1}, {"v": 1})
        assert cache.size_bytes() == cache._path("ns", {"k": 1}).stat().st_size

    def test_enforce_limit_counts_evictions(self, tmp_path):
        for index in range(3):
            path = tmp_path / f"{index}.json"
            path.write_text("x" * 100)
            _set_mtime(path, 1_000 + index)
        assert enforce_cache_limit(tmp_path, ".json", 150) == 2
        assert not (tmp_path / "0.json").exists()
        assert (tmp_path / "2.json").exists()


class TestTraceCacheEviction:
    def test_oldest_tapes_evicted_first(self, tmp_path):
        cache = TraceCache(tmp_path)
        for index in range(3):
            cache.put(f"digest{index}", _tape())
            _set_mtime(cache._path(f"digest{index}"), 1_000 + index)
        entry = cache._path("digest0").stat().st_size
        cache.max_bytes = 2 * entry + 1
        cache.put("fresh", _tape())
        _set_mtime(cache._path("fresh"), 2_000)
        assert cache.get("fresh") is not None
        assert cache.get("digest0") is None  # coldest tape went first
        assert cache.evictions >= 1

    def test_budget_ignores_json_neighbours(self, tmp_path):
        """Shared REPRO_CACHE_DIR: npz budget must not evict results."""
        results = ResultCache(tmp_path)
        results.put("ns", {"k": 1}, {"v": 1})
        tapes = TraceCache(tmp_path, max_bytes=1)  # evict every tape
        tapes.put("digest", _tape())
        assert results.get("ns", {"k": 1}) == {"v": 1}


class TestPublishRaces:
    def test_racing_writers_same_key_both_succeed(self, tmp_path):
        cache = ResultCache(tmp_path)
        barrier = threading.Barrier(8)
        errors = []

        def writer(value):
            try:
                barrier.wait(5)
                for _ in range(20):
                    cache.put("ns", {"k": "hot"}, {"v": value})
            except Exception as exc:  # noqa: BLE001 - record any failure
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(index,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []
        # the entry is whole valid JSON from one writer, never torn
        entry = json.loads(cache._path("ns", {"k": "hot"}).read_text())
        assert entry["value"] in [{"v": index} for index in range(8)]
        assert not list(tmp_path.rglob("*.tmp"))  # no leaked tmp files

    def test_torn_json_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ns", {"k": 1}, {"v": 1})
        path = cache._path("ns", {"k": 1})
        path.write_text('{"key": {"k": 1}, "value"')  # simulate torn write
        assert cache.get("ns", {"k": 1}) is None
        cache.put("ns", {"k": 1}, {"v": 2})  # recovery: overwrite in place
        assert cache.get("ns", {"k": 1}) == {"v": 2}

    def test_torn_npz_degrades_to_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("digest", _tape())
        path = cache._path("digest")
        payload = path.read_bytes()
        path.write_bytes(payload[:len(payload) // 2])  # truncated publish
        assert cache.get("digest") is None
        cache.put("digest", _tape())
        assert cache.get("digest") is not None

    def test_racing_tape_writers_same_digest(self, tmp_path):
        cache = TraceCache(tmp_path)
        barrier = threading.Barrier(4)
        errors = []

        def writer():
            try:
                barrier.wait(5)
                for _ in range(10):
                    cache.put("shared", _tape())
            except Exception as exc:  # noqa: BLE001 - record any failure
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []
        assert cache.get("shared") is not None
