"""Tests for the hiperrf-experiments CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestRunnerCli:
    def test_registry_covers_paper_and_extensions(self):
        paper = {"table1", "table2", "table3", "table4", "fullchip",
                 "figure14", "figure15", "timing", "josim"}
        extensions = {"scaling", "wire_cpi", "alternatives", "ablations",
                      "margins", "montecarlo", "synthesis", "memory",
                      "energy", "banking", "skew", "faults", "scheduling",
                      "profiles"}
        assert paper <= set(EXPERIMENTS)
        assert extensions <= set(EXPERIMENTS)

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table3", "fullchip"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "Full-chip" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_every_fast_experiment_renders(self, capsys):
        # The cheap analytic experiments must all render cleanly.
        assert main(["table1", "table2", "table3", "table4", "fullchip",
                     "figure15", "timing", "scaling", "alternatives"]) == 0
        out = capsys.readouterr().out
        assert len(out) > 2000
