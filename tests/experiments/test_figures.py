"""Shape tests for Figures 14/15, the timing figures and the analog study."""

import pytest

from repro.experiments import figure14, figure15, fullchip, josim_cells, \
    timing_figs
from repro.experiments import paper_data


class TestFigure14:
    @pytest.fixture(scope="class")
    def result(self):
        # Scale 0.6 keeps the sweep quick while preserving the profile.
        return figure14.run(scale=0.6, max_instructions=300_000)

    def test_all_workloads_present(self, result):
        assert len(result.baseline_cpi) == 12

    def test_baseline_cpi_near_paper(self, result):
        # Paper: "about 30 cycles averaged across all the benchmarks".
        assert 18.0 <= result.average_baseline_cpi() <= 38.0

    def test_average_overheads_near_paper(self, result):
        # Paper: HiPerRF +9.8%, dual-banked +3.6%, ideal +2.3%.
        assert result.average_overhead("hiperrf") == pytest.approx(9.8, abs=3.0)
        assert result.average_overhead("dual_bank_hiperrf") == \
            pytest.approx(3.6, abs=2.5)
        assert result.average_overhead("dual_bank_hiperrf_ideal") == \
            pytest.approx(2.3, abs=2.5)

    def test_ordering(self, result):
        hiper = result.average_overhead("hiperrf")
        dual = result.average_overhead("dual_bank_hiperrf")
        ideal = result.average_overhead("dual_bank_hiperrf_ideal")
        assert hiper > dual > ideal

    def test_dual_bank_recovers_majority_of_overhead(self, result):
        hiper = result.average_overhead("hiperrf")
        dual = result.average_overhead("dual_bank_hiperrf")
        assert dual < 0.65 * hiper

    def test_render(self, result):
        text = figure14.render(result)
        assert "Figure 14" in text
        assert "mcf" in text and "average" in text

    def test_render_columns_aligned(self, result):
        """Header names fill their full 20-char cells, so every design
        column lines up with its data (an 18-char truncation once left
        the long 'dual_bank_hiperrf_ideal' header two cells short)."""
        lines = figure14.render(result).splitlines()
        header = lines[2]
        designs = list(result.overhead_percent)
        prefix = len(f"{'benchmark':12s} {'base CPI':>9s}")
        assert len(header) == prefix + 21 * len(designs)
        for j, design in enumerate(designs):
            cell = header[prefix + 21 * j:prefix + 21 * (j + 1)]
            assert cell.strip() == design[:20]
        n_rows = len(result.baseline_cpi)
        table = lines[4:4 + n_rows] + [lines[5 + n_rows]]   # rows + average
        for row in table:
            assert len(row) == len(header)
            for j in range(len(designs)):
                assert row[prefix + 21 * (j + 1) - 1] == "%"


class TestFigure15:
    def test_loopback_wire_short(self):
        result = figure15.run()
        assert result["longest_wire_delay_ps"] == pytest.approx(
            paper_data.FIGURE15_LONGEST_LOOPBACK_WIRE_PS, abs=1.5)
        assert result["longest_wire_delay_ps"] < result["decoder_latency_ps"]

    def test_render(self):
        text = figure15.render()
        assert "Figure 15" in text and "loopbuffer_ndro" in text

    def test_loopback_read_sweep_lanes(self):
        """The functional companion: N restoring reads keep the value,
        and the lane batch agrees with the sequential oracle."""
        counts = [1, 2, 5]
        rows = figure15.loopback_read_sweep(counts, tier="batched")
        assert rows == figure15.loopback_read_sweep(counts,
                                                    tier="compiled")
        for row in rows:
            assert row["reads_ok"] == 1.0
            assert row["restored"] == 1.0


class TestFullChip:
    def test_result(self):
        result = fullchip.run()
        assert result["saving_percent"] == pytest.approx(16.3, abs=0.5)

    def test_render(self):
        text = fullchip.render()
        assert "Full-chip" in text and "register_file" in text


class TestTimingFigs:
    def test_schedules_validate_and_render(self):
        schedules = timing_figs.run()
        assert set(schedules) == {"figure8_ndro", "figure11_hiperrf",
                                  "figure12_dual_bank"}
        text = timing_figs.render(schedules)
        assert "figure11_hiperrf" in text and "LOOP" in text

    def test_issue_patterns(self):
        schedules = timing_figs.run()
        assert all(i == 3 for i in
                   schedules["figure11_hiperrf"].issue_intervals())
        assert all(i in (2, 4) for i in
                   schedules["figure12_dual_bank"].issue_intervals())


class TestJosimExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return josim_cells.run()

    def test_capacity_curve(self, rows):
        for row in rows:
            expected = min(row["writes"], paper_data.HCDRO_CAPACITY_FLUXONS)
            assert row["stored"] == expected
            assert row["output_pulses"] == expected
            assert row["left_after_reads"] == 0

    def test_render_reports_reproduced(self, rows):
        assert "REPRODUCED" in josim_cells.render(rows)
