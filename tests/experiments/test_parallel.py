"""Tests for the shared experiment fan-out and on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import (
    ResultCache,
    WORKERS_ENV_VAR,
    cached_call,
    cached_map,
    parallel_map,
    resolve_workers,
    stable_key,
)


def _square(x):
    return x * x


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_var_used(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_workers() == 5

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        assert resolve_workers() >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestParallelMap:
    def test_order_preserved(self):
        assert parallel_map(_square, [3, 1, 2], workers=2) == [9, 1, 4]

    def test_serial_path(self):
        assert parallel_map(_square, [4], workers=1) == [16]
        assert parallel_map(_square, [], workers=8) == []

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError(f"bad {x}")

        with pytest.raises(ValueError, match="bad 1"):
            parallel_map(boom, [1, 2], workers=1)


class TestStableKey:
    def test_deterministic_and_order_insensitive(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})
        assert stable_key([1, 2]) != stable_key([2, 1])

    def test_frozen_dataclasses_supported(self):
        from repro.cpu.config import CoreConfig

        assert stable_key(CoreConfig()) == stable_key(CoreConfig())

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            stable_key(object())


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ns", {"k": 1}) is None
        cache.put("ns", {"k": 1}, {"v": 2.5})
        assert cache.get("ns", {"k": 1}) == {"v": 2.5}
        assert cache.hits == 1 and cache.misses == 1

    def test_namespaces_are_disjoint(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", "key", 1)
        cache.put("b", "key", 2)
        assert cache.get("a", "key") == 1
        assert cache.get("b", "key") == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ns", "key", 1)
        path = cache._path("ns", "key")
        path.write_text("{not json")
        assert cache.get("ns", "key") is None
        cache.put("ns", "key", 2)  # overwriting heals the entry
        assert cache.get("ns", "key") == 2

    def test_entries_record_their_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ns", {"scale": 0.5}, [1, 2])
        entry = json.loads(cache._path("ns", {"scale": 0.5}).read_text())
        assert entry["key"] == {"scale": 0.5}

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache.from_env()
        assert cache is not None and cache.root == tmp_path


class TestCachedCall:
    def test_second_call_skips_compute(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"answer": 42}

        assert cached_call("ns", {"q": 1}, compute, cache=cache)["answer"] == 42
        assert cached_call("ns", {"q": 1}, compute, cache=cache)["answer"] == 42
        assert len(calls) == 1

    def test_no_cache_always_computes(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        calls = []

        def compute():
            calls.append(1)
            return 1

        cached_call("ns", {}, compute)
        cached_call("ns", {}, compute)
        assert len(calls) == 2


class TestCachedMap:
    def test_only_misses_computed(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cached_map("ns", _square, [1, 2, 3], workers=1, cache=cache)
        assert first == [1, 4, 9]
        # Second sweep overlaps the first: only the new point computes.
        second = cached_map("ns", _square, [2, 3, 4], workers=1, cache=cache)
        assert second == [4, 9, 16]
        files = list((tmp_path / "ns").glob("*.json"))
        assert len(files) == 4

    def test_duplicates_computed_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def tracked(x):
            calls.append(x)
            return x + 1

        assert cached_map("ns", tracked, [5, 5, 5],
                          workers=1, cache=cache) == [6, 6, 6]
        assert calls == [5]

    def test_custom_keys(self, tmp_path):
        cache = ResultCache(tmp_path)

        class Opaque:
            def __init__(self, value):
                self.value = value

        points = [Opaque(2), Opaque(3)]
        result = cached_map("ns", lambda p: p.value * 10, points,
                            keys=[{"v": 2}, {"v": 3}], workers=1, cache=cache)
        assert result == [20, 30]
        assert cache.get("ns", {"v": 2}) == 20

    def test_key_count_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="keys"):
            cached_map("ns", _square, [1, 2], keys=[1],
                       workers=1, cache=ResultCache(tmp_path))

    def test_without_cache_degrades_to_parallel_map(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cached_map("ns", _square, [2, 3], workers=1) == [4, 9]


class TestExperimentIntegration:
    def test_scaling_cached_rerun_identical(self, tmp_path):
        from repro.experiments import scaling

        cache = ResultCache(tmp_path)
        cold = scaling.run(workers=1, cache=cache)
        warm = scaling.run(workers=1, cache=cache)
        assert cold == warm
        assert cache.hits >= len(scaling.SWEEP)

    def test_josim_sweep_reexports(self):
        from repro.josim import sweep

        assert sweep.resolve_workers(2) == 2
        assert sweep.sweep_map(_square, [2], workers=1) == [4]
        assert sweep.WORKERS_ENV_VAR == WORKERS_ENV_VAR
