"""Tests for the loopback skew-tolerance study."""

import pytest

from repro.experiments import skew


class TestSkewStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return skew.run([-12.0, -4.0, 0.0, 8.0, 20.0])

    def test_nominal_alignment_restores(self, rows):
        by_skew = {row["skew_ps"]: row["restored"] for row in rows}
        assert by_skew[0.0] == 1.0

    def test_small_skew_tolerated(self, rows):
        by_skew = {row["skew_ps"]: row["restored"] for row in rows}
        assert by_skew[-4.0] == 1.0
        assert by_skew[8.0] == 1.0

    def test_large_skew_corrupts(self, rows):
        by_skew = {row["skew_ps"]: row["restored"] for row in rows}
        assert by_skew[-12.0] == 0.0
        assert by_skew[20.0] == 0.0

    def test_window_accounting(self, rows):
        window = skew.working_window_ps(rows)
        assert window["low_ps"] <= -4.0
        assert window["high_ps"] >= 8.0
        assert window["width_ps"] == \
            window["high_ps"] - window["low_ps"]

    def test_window_scale_is_the_hold_time(self, rows):
        # The working window must be on the order of the 10 ps DAND hold
        # window - not arbitrarily wide, not vanishing.
        window = skew.working_window_ps(rows)
        assert 5.0 <= window["width_ps"] <= 40.0

    def test_render(self, rows):
        text = skew.render(rows)
        assert "working window" in text
        assert "CORRUPT" in text
