"""Tests for the extension experiments: scaling, wire-CPI, alternatives."""

import pytest

from repro.experiments import alternatives, scaling, wire_cpi


class TestScaling:
    @pytest.fixture(scope="class")
    def rows(self):
        return scaling.run()

    def test_jj_ratio_monotone_decreasing(self, rows):
        ratios = [row["jj_ratio"] for row in rows]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))

    def test_power_ratio_monotone_decreasing(self, rows):
        ratios = [row["power_ratio"] for row in rows]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))

    def test_delay_overhead_approaches_baseline(self, rows):
        # Section VI-A: "even the readout delay overhead will eventually
        # match the baseline with a larger size".
        ratios = [row["delay_ratio"] for row in rows]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 1.20
        assert all(ratio > 1.0 for ratio in ratios)  # but never beats it

    def test_dual_bank_delay_closer_to_baseline(self, rows):
        for row in rows:
            assert row["dual_delay_ratio"] < row["delay_ratio"]

    def test_render(self, rows):
        text = scaling.render(rows)
        assert "Scaling study" in text and "256x64" in text


class TestWireCpi:
    @pytest.fixture(scope="class")
    def result(self):
        return wire_cpi.run(scale=0.4, max_instructions=150_000)

    def test_wires_slow_everything_slightly(self, result):
        for design, row in result.items():
            assert 0.0 <= row["cpi_shift_percent"] <= 8.0, design

    def test_relative_overhead_shift_within_paper_bound(self, result):
        # Section VI-C: "the CPI performance impact is at most 1%".
        shifts = wire_cpi.overhead_shift(result)
        for design, shift in shifts.items():
            assert abs(shift) <= 1.2, design

    def test_render(self, result):
        text = wire_cpi.render(result)
        assert "at most 1%" in text


class TestAlternativesExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return alternatives.run()

    def test_two_port_superlinear(self, result):
        assert result["two_port_ratio"] > 2.0
        assert result["dual_bank_ratio"] < 1.15

    def test_demux_claim(self, result):
        assert result["ndroc_demux_stage_jj"] == 33
        assert 0.55 <= result["demux_stage_ratio"] <= 0.80

    def test_shift_register_tradeoff(self, result):
        assert result["shift_register_jj"] < result["single_port_jj"]
        assert result["shift_register_readout_ps"] > \
            5 * result["hiperrf_readout_ps"]

    def test_render(self, result):
        text = alternatives.render(result)
        assert "nearly triples" in text
