"""Tests for the energy and memory-sensitivity extension experiments."""

import pytest

from repro.experiments import energy, memory_sensitivity


class TestEnergyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return energy.run("vvadd")

    def test_traffic_counted(self, result):
        traffic = result["_traffic"]
        assert traffic["reads"] > 100
        assert traffic["writes"] > 50

    def test_all_designs_present(self, result):
        for design in ("ndro_rf", "hiperrf", "dual_bank_hiperrf"):
            assert result[design]["workload_total_fj"] > 0

    def test_hiperrf_workload_energy_higher(self, result):
        # Loopback writes make the HC-DRO designs dynamically costlier.
        assert result["hiperrf"]["workload_total_fj"] > \
            result["ndro_rf"]["workload_total_fj"]

    def test_static_power_column_matches_table2(self, result):
        assert result["hiperrf"]["static_power_uw"] == \
            pytest.approx(3944, abs=60)

    def test_render(self, result):
        text = energy.render(result, workload="vvadd")
        assert "Dynamic RF energy" in text


class TestMemorySensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return memory_sensitivity.run(scale=0.4, max_instructions=120_000)

    def test_all_memory_configs_present(self, result):
        assert set(result) == {"flat_12_cycles", "flat_48_cycles",
                               "cryo_buffer_1kb"}

    def test_overhead_band_is_stable(self, result):
        overheads = [row["hiperrf_overhead_percent"]
                     for row in result.values()]
        assert max(overheads) - min(overheads) < 3.0
        assert all(4.0 < o < 15.0 for o in overheads)

    def test_slower_memory_raises_absolute_cpi(self, result):
        assert result["flat_48_cycles"]["baseline_cpi"] > \
            result["flat_12_cycles"]["baseline_cpi"]

    def test_cache_helps_vs_equally_slow_flat(self, result):
        # The cryo buffer fronts a 48-cycle memory; locality must win
        # back most of the gap to the 12-cycle flat model.
        assert result["cryo_buffer_1kb"]["baseline_cpi"] < \
            result["flat_48_cycles"]["baseline_cpi"]

    def test_render(self, result):
        assert "robust" in memory_sensitivity.render(result)
