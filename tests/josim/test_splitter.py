"""Analog verification of the splitter cell (Figure 3a)."""


from repro.josim import TransientSolver, junction_fluxons
from repro.josim.cells import build_splitter_cell


def run_with_pulses(times, amplitude=600.0, duration=None):
    handles = build_splitter_cell()
    for index, start in enumerate(times):
        handles.circuit.pulse(f"P{index}", "in", start_ps=start,
                              amplitude_ua=amplitude, width_ps=3.0)
    end = duration or (max(times, default=0.0) + 50.0)
    result = TransientSolver(handles.circuit, timestep_ps=0.05).run(end)
    return result


class TestAnalogSplitter:
    def test_one_pulse_reaches_both_outputs(self):
        result = run_with_pulses([20.0])
        assert junction_fluxons(result, "J1") == 1
        assert junction_fluxons(result, "JA") == 1
        assert junction_fluxons(result, "JB") == 1

    def test_no_input_no_output(self):
        result = run_with_pulses([], duration=60.0)
        for junction in ("J1", "JA", "JB"):
            assert junction_fluxons(result, junction) == 0

    def test_pulse_train_reproduced_on_both_branches(self):
        result = run_with_pulses([20.0, 60.0, 100.0])
        assert junction_fluxons(result, "JA") == 3
        assert junction_fluxons(result, "JB") == 3

    def test_branch_symmetry(self):
        result = run_with_pulses([20.0, 60.0])
        assert junction_fluxons(result, "JA") == \
            junction_fluxons(result, "JB")
