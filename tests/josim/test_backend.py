"""Array-backend seam: resolution rules and the generic LU kernel.

The ``numpy-lu`` backend exists so the fallback LU kernel — the path a
namespace without a native batched ``solve`` would take — is
continuously tested against LAPACK on every run, both directly and
end-to-end through the batched solver.
"""

import numpy as np
import pytest

import repro.josim.backend as backend_mod
from repro.errors import ConfigError
from repro.josim import BatchedTransientSolver
from repro.josim.backend import (
    ArrayBackend,
    BACKEND_ENV_VAR,
    available_backends,
    get_backend,
    lu_solve_lanes,
    register_backend,
)
from repro.josim.cells import build_jtl_stage


def _jtl_deck(bias_fraction=0.7):
    handles = build_jtl_stage(bias_fraction=bias_fraction)
    handles.circuit.pulse("PIN", handles.input_node, start_ps=10.0,
                          amplitude_ua=500.0)
    return handles.circuit


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"
        assert get_backend().xp is np

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy-lu")
        assert get_backend().name == "numpy-lu"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy-lu")
        assert get_backend("numpy").name == "numpy"

    def test_name_is_case_and_space_insensitive(self):
        assert get_backend("  NumPy ").name == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError, match="unknown josim array backend"):
            get_backend("not-a-backend")

    def test_cupy_unavailable_raises_actionable_error(self):
        try:
            import cupy  # noqa: F401
            pytest.skip("cupy installed - unavailability path not testable")
        except ImportError:
            pass
        backend_mod._CACHE.pop("cupy", None)
        with pytest.raises(ConfigError, match="cupy is not installed"):
            get_backend("cupy")

    def test_available_backends_lists_known_names(self):
        names = available_backends()
        assert {"numpy", "numpy-lu", "cupy"} <= set(names)

    def test_register_backend_round_trip(self):
        marker = get_backend("numpy")
        try:
            register_backend(
                "test-alias",
                lambda: ArrayBackend(name="test-alias", xp=np,
                                     solve_lanes=marker.solve_lanes,
                                     to_numpy=marker.to_numpy,
                                     from_numpy=marker.from_numpy))
            assert get_backend("test-alias").name == "test-alias"
        finally:
            backend_mod._FACTORIES.pop("test-alias", None)
            backend_mod._CACHE.pop("test-alias", None)

    def test_register_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            register_backend("  ", lambda: get_backend("numpy"))


class TestLUKernel:
    def test_matches_lapack_on_random_batch(self):
        rng = np.random.default_rng(42)
        a = rng.standard_normal((64, 6, 6)) + 6.0 * np.eye(6)
        b = rng.standard_normal((64, 6))
        x = lu_solve_lanes(np, a, b)
        np.testing.assert_allclose(x, np.linalg.solve(a, b[..., None])[..., 0],
                                   atol=1e-10)

    def test_pivoting_handles_zero_leading_diagonal(self):
        # Leading entry zero in every lane: elimination without partial
        # pivoting would divide by zero immediately.
        a = np.array([[[0.0, 1.0], [1.0, 0.0]],
                      [[0.0, 2.0], [3.0, 1.0]]])
        b = np.array([[2.0, 3.0], [4.0, 5.0]])
        x = lu_solve_lanes(np, a, b)
        np.testing.assert_allclose(x, np.linalg.solve(a, b[..., None])[..., 0],
                                   atol=1e-12)

    def test_singular_lane_raises(self):
        a = np.stack([np.eye(3), np.zeros((3, 3))])
        b = np.ones((2, 3))
        with pytest.raises(np.linalg.LinAlgError):
            lu_solve_lanes(np, a, b)

    def test_inputs_not_mutated(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((4, 3, 3)) + 3.0 * np.eye(3)
        b = rng.standard_normal((4, 3))
        a_copy, b_copy = a.copy(), b.copy()
        lu_solve_lanes(np, a, b)
        np.testing.assert_array_equal(a, a_copy)
        np.testing.assert_array_equal(b, b_copy)


class TestSolverSeam:
    def test_numpy_lu_backend_matches_default_end_to_end(self):
        circuits = [_jtl_deck(0.6), _jtl_deck(0.7), _jtl_deck(0.75)]
        default = BatchedTransientSolver(
            circuits, timestep_ps=0.05).run(60.0)
        circuits = [_jtl_deck(0.6), _jtl_deck(0.7), _jtl_deck(0.75)]
        via_lu = BatchedTransientSolver(
            circuits, timestep_ps=0.05, backend="numpy-lu").run(60.0)
        for lane in range(3):
            max_dphi = float(np.max(np.abs(
                default[lane].phases - via_lu[lane].phases)))
            assert max_dphi <= 1e-9, f"lane {lane}: {max_dphi:.3e}"

    def test_unknown_backend_surfaces_at_run(self):
        solver = BatchedTransientSolver([_jtl_deck()], backend="bogus")
        with pytest.raises(ConfigError, match="unknown josim array backend"):
            solver.run(20.0)
