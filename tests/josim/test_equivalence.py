"""Compiled-stamp solver vs per-element reference assembly.

The vectorized hot path must be a pure optimisation: for the JTL, DRO
and HC-DRO stimulus decks the trajectories of both backends must agree
to 1e-9 in phase and produce identical fluxon counts.
"""

import numpy as np
import pytest

from repro.josim import TransientSolver
from repro.josim.cells import (
    RECOMMENDED_READ_PULSE_UA,
    RECOMMENDED_WRITE_PULSE_UA,
    build_dro_cell,
    build_hcdro_cell,
    build_jtl_stage,
)
from repro.josim.fluxon import junction_fluxons


def _jtl_deck():
    handles = build_jtl_stage()
    handles.circuit.pulse("PIN", handles.input_node, start_ps=10.0)
    return handles.circuit, 60.0, ["J1", "J2"]


def _dro_deck():
    handles = build_dro_cell()
    ckt = handles.circuit
    ckt.pulse("W0", handles.input_node, start_ps=20.0,
              amplitude_ua=RECOMMENDED_WRITE_PULSE_UA, width_ps=3.0)
    ckt.pulse("R0", handles.clock_node, start_ps=80.0,
              amplitude_ua=RECOMMENDED_READ_PULSE_UA, width_ps=3.0)
    return ckt, 130.0, ["J1", "J2", "J3"]


def _hcdro_deck():
    handles = build_hcdro_cell()
    ckt = handles.circuit
    for k in range(3):
        ckt.pulse(f"W{k}", handles.input_node, start_ps=20.0 + 25.0 * k,
                  amplitude_ua=RECOMMENDED_WRITE_PULSE_UA, width_ps=3.0)
    for k in range(4):
        ckt.pulse(f"R{k}", handles.clock_node, start_ps=130.0 + 25.0 * k,
                  amplitude_ua=RECOMMENDED_READ_PULSE_UA, width_ps=3.0)
    return ckt, 260.0, ["J1", "J2", "J3"]


DECKS = {"jtl": _jtl_deck, "dro": _dro_deck, "hcdro": _hcdro_deck}


@pytest.mark.parametrize("deck_name", sorted(DECKS))
def test_compiled_matches_reference(deck_name):
    circuit, duration_ps, junctions = DECKS[deck_name]()
    fast = TransientSolver(circuit, timestep_ps=0.05).run(duration_ps)
    reference = TransientSolver(circuit, timestep_ps=0.05,
                                reference=True).run(duration_ps)

    assert fast.times_ps.shape == reference.times_ps.shape
    max_dphi = float(np.max(np.abs(fast.phases - reference.phases)))
    assert max_dphi <= 1e-9, f"{deck_name}: max |dphi| = {max_dphi:.3e}"
    for jj in junctions:
        assert (junction_fluxons(fast, jj)
                == junction_fluxons(reference, jj)), jj


def test_reference_flag_roundtrip():
    circuit, duration_ps, _ = _jtl_deck()
    assert TransientSolver(circuit).reference is False
    assert TransientSolver(circuit, reference=True).reference is True
    # The compiled solver recompiles when the circuit grows after
    # construction (e.g. a testbench stamping stimulus pulses late).
    solver = TransientSolver(circuit)
    circuit.pulse("LATE", "in", start_ps=30.0, amplitude_ua=100.0,
                  width_ps=2.0)
    grown = solver.run(duration_ps)
    reference = TransientSolver(circuit, reference=True).run(duration_ps)
    assert float(np.max(np.abs(grown.phases - reference.phases))) <= 1e-9
