"""Tests for the parallel sweep engine and its run-cache."""

import pytest

from repro.josim import sweep
from repro.josim.sweep import (
    HCDROConfig,
    clear_run_cache,
    resolve_workers,
    run_cache_size,
    run_configs,
    simulate_hcdro,
    sweep_map,
)

#: The cheapest possible run: no stimulus, just bias settling.
EMPTY = HCDROConfig(writes=0, reads=0)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_run_cache()
    yield
    clear_run_cache()


def _square(x):
    return x * x


class TestSweepMap:
    def test_serial_preserves_order(self):
        assert sweep_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        values = list(range(8))
        assert sweep_map(_square, values, workers=2) == [v * v for v in values]

    def test_empty_and_single(self):
        assert sweep_map(_square, [], workers=4) == []
        assert sweep_map(_square, [5], workers=4) == [25]

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            sweep_map(_reciprocal, [1, 0], workers=1)


def _reciprocal(x):
    return 1.0 / x


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "5")
        assert resolve_workers(None) == 5

    def test_bad_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "lots")
        assert resolve_workers(None) >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1


class TestRunCache:
    def test_repeat_config_simulated_once(self):
        first = simulate_hcdro(EMPTY)
        assert run_cache_size() == 1
        again = simulate_hcdro(EMPTY)
        assert again is first
        assert run_cache_size() == 1

    def test_run_configs_dedupes_batch(self):
        summaries = run_configs([EMPTY, EMPTY, EMPTY], workers=1)
        assert run_cache_size() == 1
        assert len(summaries) == 3
        assert summaries[0] == summaries[1] == summaries[2]

    def test_clear(self):
        simulate_hcdro(EMPTY)
        clear_run_cache()
        assert run_cache_size() == 0


class TestRunConfigs:
    def test_deterministic_ordering(self):
        configs = [HCDROConfig(writes=1, reads=1),
                   EMPTY,
                   HCDROConfig(writes=1, reads=1)]
        summaries = run_configs(configs, workers=1)
        assert [s.config for s in summaries] == configs

    def test_parallel_matches_serial(self):
        configs = [EMPTY, HCDROConfig(writes=1, reads=1)]
        serial = run_configs(configs, workers=1)
        clear_run_cache()
        parallel = run_configs(configs, workers=2)
        assert [(s.stored_after_writes, s.stored_at_end, s.output_pulses)
                for s in serial] == \
               [(s.stored_after_writes, s.stored_at_end, s.output_pulses)
                for s in parallel]

    def test_summary_verdicts(self):
        empty, written = run_configs(
            [EMPTY, HCDROConfig(writes=1, reads=4)], workers=1)
        assert empty.stored_after_writes == 0
        assert empty.correct
        assert written.stored_after_writes == 1
        assert written.output_pulses == 1
        assert written.popped == 1
        assert written.correct
