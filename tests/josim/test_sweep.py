"""Tests for the parallel sweep engine, batched dispatch and run-cache."""

import pytest

import repro.experiments.parallel as parallel_mod
from repro.josim import sweep
from repro.josim.sweep import (
    HCDROConfig,
    batch_lane_limit,
    clear_run_cache,
    resolve_workers,
    run_cache_size,
    run_configs,
    simulate_hcdro,
    simulate_hcdro_batch,
    sweep_map,
    topology_key,
)

#: The cheapest possible run: no stimulus, just bias settling.
EMPTY = HCDROConfig(writes=0, reads=0)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_run_cache()
    yield
    clear_run_cache()


def _square(x):
    return x * x


class TestSweepMap:
    def test_serial_preserves_order(self):
        assert sweep_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        values = list(range(8))
        assert sweep_map(_square, values, workers=2) == [v * v for v in values]

    def test_empty_and_single(self):
        assert sweep_map(_square, [], workers=4) == []
        assert sweep_map(_square, [5], workers=4) == [25]

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            sweep_map(_reciprocal, [1, 0], workers=1)


def _reciprocal(x):
    return 1.0 / x


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "5")
        assert resolve_workers(None) == 5

    def test_bad_env_var_ignored(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "lots")
        assert resolve_workers(None) >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1


class TestRunCache:
    def test_repeat_config_simulated_once(self):
        first = simulate_hcdro(EMPTY)
        assert run_cache_size() == 1
        again = simulate_hcdro(EMPTY)
        assert again is first
        assert run_cache_size() == 1

    def test_run_configs_dedupes_batch(self):
        summaries = run_configs([EMPTY, EMPTY, EMPTY], workers=1)
        assert run_cache_size() == 1
        assert len(summaries) == 3
        assert summaries[0] == summaries[1] == summaries[2]

    def test_clear(self):
        simulate_hcdro(EMPTY)
        clear_run_cache()
        assert run_cache_size() == 0


class TestRunConfigs:
    def test_deterministic_ordering(self):
        configs = [HCDROConfig(writes=1, reads=1),
                   EMPTY,
                   HCDROConfig(writes=1, reads=1)]
        summaries = run_configs(configs, workers=1)
        assert [s.config for s in summaries] == configs

    def test_parallel_matches_serial(self):
        configs = [EMPTY, HCDROConfig(writes=1, reads=1)]
        serial = run_configs(configs, workers=1)
        clear_run_cache()
        parallel = run_configs(configs, workers=2)
        assert [(s.stored_after_writes, s.stored_at_end, s.output_pulses)
                for s in serial] == \
               [(s.stored_after_writes, s.stored_at_end, s.output_pulses)
                for s in parallel]

    def test_summary_verdicts(self):
        empty, written = run_configs(
            [EMPTY, HCDROConfig(writes=1, reads=4)], workers=1)
        assert empty.stored_after_writes == 0
        assert empty.correct
        assert written.stored_after_writes == 1
        assert written.output_pulses == 1
        assert written.popped == 1
        assert written.correct


class _PoolTripwire:
    """Stand-in for ProcessPoolExecutor that fails the test if built."""

    def __init__(self, *args, **kwargs):
        raise AssertionError(
            "ProcessPoolExecutor constructed with one resolved worker")


class TestSingleWorkerNeverSpawnsPool:
    """Regression for the 1-CPU dispatch rule: when the resolved worker
    count is 1 (explicit argument, REPRO_SWEEP_WORKERS=1, or a 1-CPU
    host) no process pool may ever be constructed — serial and batched
    execution happen in-process."""

    @pytest.fixture(autouse=True)
    def _tripwire(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor",
                            _PoolTripwire)

    def test_sweep_map_env_var(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "1")
        assert sweep_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_sweep_map_explicit_argument(self):
        assert sweep_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_sweep_map_one_cpu_host(self, monkeypatch):
        monkeypatch.delenv(sweep.WORKERS_ENV_VAR, raising=False)
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        assert sweep_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_run_configs_env_var(self, monkeypatch):
        monkeypatch.setenv(sweep.WORKERS_ENV_VAR, "1")
        configs = [EMPTY, HCDROConfig(writes=0, reads=0, settle_ps=25.0),
                   HCDROConfig(writes=1, reads=1)]
        summaries = run_configs(configs)
        assert [s.config for s in summaries] == configs

    def test_run_configs_single_group_in_process(self):
        """Even with many workers requested, one dispatch group runs
        in-process — a pool cannot help a single batch."""
        configs = [EMPTY, HCDROConfig(writes=0, reads=0, settle_ps=25.0)]
        summaries = run_configs(configs, workers=8)
        assert [s.config for s in summaries] == configs


class TestBatchedDispatch:
    def test_topology_key_groups_by_counts_and_timestep(self):
        base = HCDROConfig(writes=2, reads=4)
        assert topology_key(base) == (2, 4, 0.05)
        assert topology_key(base) == topology_key(
            HCDROConfig(writes=2, reads=4, j2_bias_ua=70.0,
                        read_amplitude_ua=400.0, settle_ps=50.0))
        assert topology_key(base) != topology_key(
            HCDROConfig(writes=3, reads=4))
        assert topology_key(base) != topology_key(
            HCDROConfig(writes=2, reads=4, timestep_ps=0.1))

    def test_batch_lane_limit_env(self, monkeypatch):
        monkeypatch.delenv(sweep.BATCH_ENV_VAR, raising=False)
        assert batch_lane_limit() == sweep._DEFAULT_BATCH_LANES
        monkeypatch.setenv(sweep.BATCH_ENV_VAR, "7")
        assert batch_lane_limit() == 7
        monkeypatch.setenv(sweep.BATCH_ENV_VAR, "0")
        assert batch_lane_limit() == 0
        monkeypatch.setenv(sweep.BATCH_ENV_VAR, "off")
        assert batch_lane_limit() == 0
        monkeypatch.setenv(sweep.BATCH_ENV_VAR, "nonsense")
        assert batch_lane_limit() == sweep._DEFAULT_BATCH_LANES

    def test_batched_matches_scalar_summaries(self, monkeypatch):
        """The batched dispatch path and the scalar path must agree on
        every summary — the scalar solver is the equivalence oracle."""
        configs = [HCDROConfig(writes=1, reads=2),
                   HCDROConfig(writes=1, reads=2, j2_bias_ua=73.0),
                   HCDROConfig(writes=0, reads=2),
                   HCDROConfig(writes=1, reads=2,
                               read_amplitude_ua=460.0)]
        batched = run_configs(configs, workers=1)
        clear_run_cache()
        monkeypatch.setenv(sweep.BATCH_ENV_VAR, "0")
        scalar = run_configs(configs, workers=1)
        assert [(s.stored_after_writes, s.stored_at_end, s.output_pulses)
                for s in batched] == \
               [(s.stored_after_writes, s.stored_at_end, s.output_pulses)
                for s in scalar]

    def test_lane_cap_chunks_large_groups(self, monkeypatch):
        monkeypatch.setenv(sweep.BATCH_ENV_VAR, "2")
        configs = [HCDROConfig(writes=0, reads=0,
                               settle_ps=20.0 + 5.0 * k)
                   for k in range(5)]
        groups = sweep._group_pending(configs)
        assert [len(g) for g in groups] == [2, 2, 1]
        summaries = run_configs(configs, workers=1)
        assert [s.config for s in summaries] == configs
        assert all(s.correct for s in summaries)

    def test_simulate_batch_bypasses_cache_layer(self):
        configs = [HCDROConfig(writes=0, reads=0),
                   HCDROConfig(writes=0, reads=0, settle_ps=25.0)]
        summaries = simulate_hcdro_batch(configs)
        assert [s.config for s in summaries] == configs
        assert run_cache_size() == 0  # caching is run_configs' job


class TestRunCacheBound:
    def test_capacity_env(self, monkeypatch):
        monkeypatch.setenv(sweep.CACHE_SIZE_ENV_VAR, "2")
        assert sweep._cache_capacity() == 2
        monkeypatch.setenv(sweep.CACHE_SIZE_ENV_VAR, "0")
        assert sweep._cache_capacity() == 0
        monkeypatch.setenv(sweep.CACHE_SIZE_ENV_VAR, "junk")
        assert sweep._cache_capacity() == sweep._DEFAULT_CACHE_SIZE

    def test_eviction_keeps_result_ordering(self, monkeypatch):
        """With a cache smaller than the sweep, results still come back
        element-for-element in input order (the local result map, not
        the evicting cache, feeds the return list)."""
        monkeypatch.setenv(sweep.CACHE_SIZE_ENV_VAR, "2")
        configs = [HCDROConfig(writes=0, reads=0,
                               settle_ps=20.0 + 5.0 * k)
                   for k in range(4)]
        summaries = run_configs(configs, workers=1)
        assert [s.config for s in summaries] == configs
        assert run_cache_size() == 2
        # Least-recently-used entries were evicted; the most recent two
        # survive.
        assert list(sweep._RUN_CACHE) == configs[-2:]

    def test_eviction_is_lru_not_fifo(self, monkeypatch):
        monkeypatch.setenv(sweep.CACHE_SIZE_ENV_VAR, "2")
        a = HCDROConfig(writes=0, reads=0, settle_ps=20.0)
        b = HCDROConfig(writes=0, reads=0, settle_ps=25.0)
        c = HCDROConfig(writes=0, reads=0, settle_ps=35.0)
        simulate_hcdro(a)
        simulate_hcdro(b)
        simulate_hcdro(a)  # touch a: b is now least recently used
        simulate_hcdro(c)
        assert set(sweep._RUN_CACHE) == {a, c}

    def test_repeat_sweep_recomputes_evicted_points_correctly(
            self, monkeypatch):
        monkeypatch.setenv(sweep.CACHE_SIZE_ENV_VAR, "1")
        configs = [HCDROConfig(writes=0, reads=0, settle_ps=20.0),
                   HCDROConfig(writes=0, reads=0, settle_ps=25.0)]
        first = run_configs(configs, workers=1)
        second = run_configs(configs, workers=1)
        assert [(s.config, s.correct) for s in first] == \
               [(s.config, s.correct) for s in second]
