"""Tests for the HC-DRO operating-margin analysis."""

import pytest

from repro.josim.margins import (
    MarginPoint,
    point_is_correct,
    sweep_read_amplitude,
    working_margin_percent,
)
from repro.josim.cells import RECOMMENDED_J2_BIAS_UA, \
    RECOMMENDED_READ_PULSE_UA


class TestOperatingPoint:
    def test_nominal_point_works(self):
        assert point_is_correct(RECOMMENDED_READ_PULSE_UA,
                                RECOMMENDED_J2_BIAS_UA,
                                write_counts=(0, 3))

    def test_gross_overdrive_fails(self):
        # A hugely overdriven read pops fluxons that were never stored.
        assert not point_is_correct(RECOMMENDED_READ_PULSE_UA * 1.5,
                                    RECOMMENDED_J2_BIAS_UA,
                                    write_counts=(0,))


class TestMarginAccounting:
    def _points(self, verdicts):
        return [MarginPoint(RECOMMENDED_READ_PULSE_UA * scale,
                            RECOMMENDED_J2_BIAS_UA, ok)
                for scale, ok in verdicts]

    def test_symmetric_window(self):
        points = self._points([(0.9, False), (0.95, True), (1.0, True),
                               (1.05, True), (1.1, False)])
        assert working_margin_percent(points) == pytest.approx(5.0)

    def test_failed_nominal_gives_zero(self):
        points = self._points([(0.95, True), (1.0, False), (1.05, True)])
        assert working_margin_percent(points) == 0.0

    def test_missing_nominal_gives_zero(self):
        # Every tested point works, but the nominal point itself was
        # never swept: the window around nominal is unknown, not "all
        # of it".  The seed guard silently fell through here.
        points = self._points([(0.90, True), (0.95, True), (1.05, True),
                               (1.10, True)])
        assert working_margin_percent(points) == 0.0

    def test_no_points_gives_zero(self):
        assert working_margin_percent([]) == 0.0

    def test_asymmetric_window_takes_minimum(self):
        points = self._points([(0.9, True), (0.95, True), (1.0, True),
                               (1.05, True), (1.1, False)])
        assert working_margin_percent(points) == pytest.approx(5.0)


class TestSweep:
    def test_small_sweep_has_working_nominal(self):
        points = sweep_read_amplitude(scales=(1.0,))
        assert len(points) == 1
        assert points[0].correct
