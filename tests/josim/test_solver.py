"""Tests for the phase-domain transient solver core."""

import math

import numpy as np
import pytest

from repro.errors import NetlistError, SimulationError
from repro.josim import Circuit, TransientSolver
from repro.josim.elements import KAPPA, JosephsonJunction, PulseCurrent


class TestCircuit:
    def test_ground_aliases(self):
        ckt = Circuit()
        assert ckt.node("gnd") == ckt.node("0") == ckt.node("GND") == 0

    def test_node_allocation(self):
        ckt = Circuit()
        a = ckt.node("a")
        b = ckt.node("b")
        assert a != b
        assert ckt.node("a") == a
        assert ckt.num_nodes == 2

    def test_duplicate_element_rejected(self):
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd")
        with pytest.raises(NetlistError):
            ckt.jj("J1", "b", "gnd")

    def test_element_lookup(self):
        ckt = Circuit()
        jj = ckt.jj("J1", "a", "gnd")
        assert ckt.element("J1") is jj
        with pytest.raises(NetlistError):
            ckt.element("J9")

    def test_validate_empty(self):
        with pytest.raises(NetlistError):
            Circuit().validate()

    def test_validate_floating(self):
        ckt = Circuit()
        ckt.inductor("L1", "a", "b", inductance_ph=10.0)
        with pytest.raises(NetlistError, match="ground"):
            ckt.validate()


class TestElementValidation:
    def test_self_short_rejected(self):
        with pytest.raises(ValueError):
            JosephsonJunction("J", 1, 1)

    def test_bad_ic(self):
        with pytest.raises(ValueError):
            JosephsonJunction("J", 1, 0, critical_current_ua=-5.0)

    def test_overdamped_default(self):
        jj = JosephsonJunction("J", 1, 0)
        assert jj.stewart_mccumber < 1.5

    def test_pulse_window(self):
        pulse = PulseCurrent("P", 1, 0, start_ps=10.0, amplitude_ua=100.0,
                             width_ps=4.0)
        assert pulse.value_at(5.0) == 0.0
        assert pulse.value_at(12.0) == pytest.approx(100.0)
        assert pulse.value_at(20.0) == 0.0
        assert pulse.charge_area == pytest.approx(200.0)


class TestSolverBasics:
    def test_rl_relaxation(self):
        """Bias into L parallel R: all current ends up in the inductor."""
        ckt = Circuit()
        ckt.inductor("L1", "a", "gnd", inductance_ph=10.0)
        ckt.resistor("R1", "a", "gnd", resistance_ohm=1.0)
        ckt.bias("IB", "a", current_ua=50.0, ramp_ps=2.0)
        result = TransientSolver(ckt, timestep_ps=0.05).run(200.0)
        assert result.inductor_current_ua("L1")[-1] == pytest.approx(50.0, rel=1e-3)

    def test_subcritical_bias_no_switching(self):
        """A JJ biased below Ic must settle at a static phase, not rotate."""
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd", critical_current_ua=100.0)
        ckt.bias("IB", "a", current_ua=70.0)
        result = TransientSolver(ckt, timestep_ps=0.05).run(100.0)
        final = result.junction_phase("J1")[-1]
        assert final == pytest.approx(math.asin(0.7), abs=0.02)

    def test_supercritical_bias_rotates(self):
        """Above Ic the junction enters the voltage state (phase runs)."""
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd", critical_current_ua=100.0)
        ckt.bias("IB", "a", current_ua=150.0)
        result = TransientSolver(ckt, timestep_ps=0.05).run(100.0)
        assert result.junction_phase("J1")[-1] > 4 * math.pi

    def test_voltage_is_kappa_phidot(self):
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd", critical_current_ua=100.0)
        ckt.bias("IB", "a", current_ua=150.0)
        result = TransientSolver(ckt, timestep_ps=0.05).run(50.0)
        # Average voltage ~ KAPPA * d(phi)/dt over the run.
        dphi = result.junction_phase("J1")[-1] - result.junction_phase("J1")[0]
        span = result.times_ps[-1] - result.times_ps[0]
        avg_v = np.mean(result.node_voltage_mv("a")[5:])
        assert avg_v == pytest.approx(KAPPA * dphi / span, rel=0.15)

    def test_invalid_timestep(self):
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd")
        with pytest.raises(SimulationError):
            TransientSolver(ckt, timestep_ps=0.0)

    def test_invalid_duration(self):
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd")
        with pytest.raises(SimulationError):
            TransientSolver(ckt).run(0.0)

    def test_inductor_current_type_check(self):
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd")
        result = TransientSolver(ckt, timestep_ps=0.1).run(1.0)
        with pytest.raises(SimulationError):
            result.inductor_current_ua("J1")


class TestRecording:
    def _biased_jj(self):
        ckt = Circuit()
        ckt.jj("J1", "a", "gnd", critical_current_ua=100.0)
        ckt.bias("IB", "a", current_ua=150.0)
        return ckt

    def test_final_step_recorded_on_uneven_stride(self):
        """50 ps / 0.05 ps = 1000 steps; 1000 % 7 != 0 must still record
        the last step so the series ends at the true end of the run."""
        ckt = self._biased_jj()
        dense = TransientSolver(ckt, timestep_ps=0.05).run(50.0)
        sparse = TransientSolver(ckt, timestep_ps=0.05).run(
            50.0, record_every=7)
        assert sparse.times_ps[-1] == pytest.approx(dense.times_ps[-1])
        assert sparse.phases[-1] == pytest.approx(dense.phases[-1])
        assert sparse.velocities[-1] == pytest.approx(dense.velocities[-1])

    def test_even_stride_has_no_duplicate_final_row(self):
        ckt = self._biased_jj()
        result = TransientSolver(ckt, timestep_ps=0.05).run(
            50.0, record_every=10)
        # 1000 steps / 10 per record + the t=0 row.
        assert len(result.times_ps) == 101
        assert result.times_ps[-1] == pytest.approx(50.0)

    def test_invalid_record_every(self):
        ckt = self._biased_jj()
        with pytest.raises(SimulationError):
            TransientSolver(ckt, timestep_ps=0.05).run(1.0, record_every=0)


class TestSourceTableFallback:
    """`_run_compiled` precomputes a (steps x nodes) source table unless
    the run is too long (`_SOURCE_TABLE_LIMIT`); the per-step fallback
    must produce the same trajectories."""

    def _deck(self):
        ckt = Circuit()
        ckt.inductor("LIN", "in", "a", inductance_ph=2.0)
        ckt.jj("J1", "a", "gnd", critical_current_ua=100.0)
        ckt.bias("IB", "a", current_ua=70.0, ramp_ps=5.0)
        ckt.pulse("PIN", "in", start_ps=10.0, amplitude_ua=500.0,
                  width_ps=4.0)
        return ckt

    def test_fallback_matches_table_path(self, monkeypatch):
        import repro.josim.solver as solver_mod

        table = TransientSolver(self._deck(), timestep_ps=0.05).run(60.0)
        monkeypatch.setattr(solver_mod, "_SOURCE_TABLE_LIMIT", 0)
        fallback = TransientSolver(self._deck(), timestep_ps=0.05).run(60.0)
        max_dphi = float(np.max(np.abs(table.phases - fallback.phases)))
        assert max_dphi <= 1e-12, f"max |dphi| = {max_dphi:.3e}"
        max_dv = float(np.max(np.abs(
            table.velocities - fallback.velocities)))
        assert max_dv <= 1e-9

    def test_limit_actually_gates_the_table(self, monkeypatch):
        """Guard that the monkeypatched limit really selects the
        fallback branch (so the equality above is not table-vs-table)."""
        import repro.josim.solver as solver_mod

        calls = []
        original = solver_mod._CompiledStamps.source_vector

        def counting(self, t):
            calls.append(t)
            return original(self, t)

        monkeypatch.setattr(solver_mod._CompiledStamps, "source_vector",
                            counting)
        TransientSolver(self._deck(), timestep_ps=0.05).run(5.0)
        assert not calls  # table path: no per-step calls
        monkeypatch.setattr(solver_mod, "_SOURCE_TABLE_LIMIT", 0)
        TransientSolver(self._deck(), timestep_ps=0.05).run(5.0)
        assert len(calls) == 100  # one per step


class TestTestbenchSingleUse:
    def test_second_run_rejected(self):
        from repro.josim.testbench import HCDROTestbench

        bench = HCDROTestbench()
        bench.run(writes=0, reads=0)
        with pytest.raises(SimulationError, match="already ran"):
            bench.run(writes=0, reads=0)
