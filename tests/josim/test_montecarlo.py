"""Monte Carlo yield tier: sampling determinism, invariance, oracle.

The contract under test: the same ``(spreads, samples, seed)`` triple
produces bitwise-identical parameter multipliers and identical yield
numbers no matter how the lanes are sharded, chunked or spread across
workers — and every batched lane remains a faithful stand-in for the
scalar solver (1e-9 phase bar).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.josim.cells import build_hcdro_cell
from repro.josim.montecarlo import (
    SpreadSpec,
    YieldConfig,
    apply_multipliers,
    hcdro_parameter_specs,
    main,
    run_yield_analysis,
    sample_multipliers,
    verify_against_scalar,
)
from repro.josim.solver import CHUNK_ENV_VAR


#: Small-but-nontrivial study used by the invariance tests: 18 lanes.
SMALL = YieldConfig(samples=6, seed=97, read_scales=(0.95, 1.0, 1.05))


def _report_key(report):
    """Everything in a report that must be invariant to scheduling."""
    return (report.yield_percent, report.scale_yield,
            report.margin_mean_percent, report.margin_p5_percent,
            report.margin_p50_percent, report.margin_p95_percent,
            report.sensitivity)


class TestParameterSpecs:
    def test_hcdro_parameters_enumerated(self):
        labels = {spec.label for spec in hcdro_parameter_specs()}
        assert labels == {"J1.ic", "J2.ic", "J3.ic",
                          "L1.l", "L2.l", "L3.l", "LOUT.l",
                          "IB1.bias", "IB2.bias"}

    def test_zero_sigma_class_is_omitted(self):
        specs = hcdro_parameter_specs(SpreadSpec(sigma_l=0.0))
        assert all(spec.kind != "l" for spec in specs)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError, match="sigma_ic"):
            SpreadSpec(sigma_ic=-0.1)


class TestSampling:
    def test_same_seed_bitwise_identical(self):
        specs = hcdro_parameter_specs()
        first = sample_multipliers(specs, 100, seed=5)
        second = sample_multipliers(specs, 100, seed=5)
        assert first.shape == (100, len(specs))
        np.testing.assert_array_equal(first, second)

    def test_different_seed_differs(self):
        specs = hcdro_parameter_specs()
        assert not np.array_equal(sample_multipliers(specs, 10, seed=1),
                                  sample_multipliers(specs, 10, seed=2))

    def test_multipliers_clipped_positive(self):
        specs = hcdro_parameter_specs(SpreadSpec(sigma_ic=50.0,
                                                 sigma_l=50.0,
                                                 sigma_bias=50.0))
        multipliers = sample_multipliers(specs, 200, seed=3)
        assert float(multipliers.min()) >= 0.05

    def test_apply_multipliers_updates_derived_constants(self):
        handles = build_hcdro_cell()
        specs = hcdro_parameter_specs()
        row = np.ones(len(specs))
        row[[spec.label for spec in specs].index("L2.l")] = 1.5
        baseline_inv_l = handles.circuit.element("L2").inv_l
        apply_multipliers(handles, specs, row)
        assert handles.circuit.element("L2").inv_l == pytest.approx(
            baseline_inv_l / 1.5)

    def test_apply_multipliers_row_length_checked(self):
        handles = build_hcdro_cell()
        with pytest.raises(ConfigError, match="entries"):
            apply_multipliers(handles, hcdro_parameter_specs(), np.ones(2))


class TestSchedulingInvariance:
    def test_shard_size_does_not_change_results(self):
        reference = run_yield_analysis(SMALL, workers=1)
        resharded = run_yield_analysis(
            dataclasses.replace(SMALL, shard_lanes=4), workers=1)
        assert _report_key(resharded) == _report_key(reference)

    def test_solver_chunk_does_not_change_results(self, monkeypatch):
        reference = run_yield_analysis(SMALL, workers=1)
        monkeypatch.setenv(CHUNK_ENV_VAR, "3")
        chunked = run_yield_analysis(SMALL, workers=1)
        assert _report_key(chunked) == _report_key(reference)

    def test_worker_count_does_not_change_results(self):
        reference = run_yield_analysis(
            dataclasses.replace(SMALL, shard_lanes=5), workers=1)
        fanned = run_yield_analysis(
            dataclasses.replace(SMALL, shard_lanes=5), workers=2)
        assert _report_key(fanned) == _report_key(reference)

    def test_same_seed_same_report(self):
        assert (_report_key(run_yield_analysis(SMALL, workers=1))
                == _report_key(run_yield_analysis(SMALL, workers=1)))


class TestScalarOracle:
    def test_batched_lanes_match_scalar_oracle(self):
        """Acceptance bar: >= 32 sampled lanes, max |dphi| <= 1e-9."""
        config = YieldConfig(samples=11, seed=13,
                             read_scales=(0.95, 1.0, 1.05))
        deviation = verify_against_scalar(config, lanes=32)
        assert deviation <= 1e-9, f"max |dphi| = {deviation:.3e}"


class TestRollups:
    def test_report_shapes_and_ranges(self):
        report = run_yield_analysis(SMALL, workers=1)
        assert 0.0 <= report.yield_percent <= 100.0
        assert set(report.scale_yield) == {0.95, 1.0, 1.05}
        assert report.margin_p5_percent <= report.margin_p50_percent
        assert report.margin_p50_percent <= report.margin_p95_percent
        labels = {spec.label for spec in hcdro_parameter_specs()}
        assert set(report.sensitivity) == labels

    def test_zero_spread_yields_100_percent(self):
        config = YieldConfig(
            samples=2, seed=1,
            spreads=SpreadSpec(sigma_ic=0.0, sigma_l=0.0, sigma_bias=0.0),
            read_scales=(1.0,))
        report = run_yield_analysis(config, workers=1)
        assert report.yield_percent == 100.0
        assert report.sensitivity == {}

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="samples"):
            YieldConfig(samples=0)
        with pytest.raises(ConfigError, match="read_scales"):
            YieldConfig(read_scales=())
        with pytest.raises(ConfigError, match="record_every"):
            YieldConfig(record_every=0)


class TestCLI:
    def test_json_output(self, capsys):
        code = main(["--samples", "3", "--seed", "2", "--scales", "1.0",
                     "--workers", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples"] == 3
        assert payload["lanes"] == 3
        assert 0.0 <= payload["yield_percent"] <= 100.0

    def test_human_output_with_verify(self, capsys):
        code = main(["--samples", "3", "--seed", "2", "--scales", "1.0",
                     "--workers", "1", "--verify", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "parametric yield" in out
        assert "scalar-oracle max |dphi|" in out

    def test_bad_scales_exits_nonzero(self, capsys):
        assert main(["--scales", "abc"]) == 2
        assert "bad --scales" in capsys.readouterr().err


class TestLintCleanliness:
    def test_sampled_testbench_decks_pass_lint(self):
        """Every deck the MC driver builds must satisfy the deck rules."""
        from repro.josim.montecarlo import _build_lane
        from repro.lint import check_deck

        config = YieldConfig(samples=4, seed=21)
        specs = hcdro_parameter_specs()
        multipliers = sample_multipliers(specs, config.samples, config.seed)
        for sample in range(config.samples):
            handles, _, _ = _build_lane(config, specs, multipliers[sample],
                                        read_scale=1.0)
            issues = check_deck(handles.circuit, name=f"mc-sample-{sample}")
            assert issues == [], [str(issue) for issue in issues]
