"""Analog verification of the paper's Section II-D claims: JTL propagation,
DRO single-fluxon storage and HC-DRO 0-3 fluxon storage with destructive,
one-pop-per-clock readout."""

import pytest

from repro.josim import (
    TransientSolver,
    build_dro_cell,
    build_jtl_stage,
    junction_fluxons,
    loop_fluxons,
)
from repro.josim.cells import (
    EFFECTIVE_HCDRO_PARAMS,
    PAPER_HCDRO_PARAMS,
    RECOMMENDED_READ_PULSE_UA,
    RECOMMENDED_WRITE_PULSE_UA,
)
from repro.josim.testbench import HCDROTestbench


class TestJTL:
    def test_pulse_propagates(self):
        handles = build_jtl_stage()
        handles.circuit.pulse("PIN", "in", start_ps=20.0,
                              amplitude_ua=600.0, width_ps=3.0)
        result = TransientSolver(handles.circuit, timestep_ps=0.05).run(60.0)
        assert junction_fluxons(result, "J1") == 1
        assert junction_fluxons(result, "J2") == 1

    def test_no_input_no_output(self):
        handles = build_jtl_stage()
        result = TransientSolver(handles.circuit, timestep_ps=0.05).run(60.0)
        assert junction_fluxons(result, "J1") == 0
        assert junction_fluxons(result, "J2") == 0

    def test_two_pulses_two_fluxons(self):
        handles = build_jtl_stage()
        for k in range(2):
            handles.circuit.pulse(f"PIN{k}", "in", start_ps=20.0 + 25.0 * k,
                                  amplitude_ua=600.0, width_ps=3.0)
        result = TransientSolver(handles.circuit, timestep_ps=0.05).run(100.0)
        assert junction_fluxons(result, "J2") == 2


class TestDROCell:
    def test_stores_single_fluxon(self):
        handles = build_dro_cell()
        handles.circuit.pulse("PD", "d", start_ps=20.0,
                              amplitude_ua=RECOMMENDED_WRITE_PULSE_UA,
                              width_ps=3.0)
        result = TransientSolver(handles.circuit, timestep_ps=0.05).run(80.0)
        assert loop_fluxons(result, "J1", "J2") == 1

    def test_second_pulse_rejected(self):
        handles = build_dro_cell()
        for k in range(2):
            handles.circuit.pulse(f"PD{k}", "d", start_ps=20.0 + 25.0 * k,
                                  amplitude_ua=RECOMMENDED_WRITE_PULSE_UA,
                                  width_ps=3.0)
        result = TransientSolver(handles.circuit, timestep_ps=0.05).run(110.0)
        assert loop_fluxons(result, "J1", "J2") == 1


class TestHCDROCell:
    """The headline Section II-D behaviour, at the analog level."""

    @pytest.mark.parametrize("writes", [0, 1, 2, 3])
    def test_stores_up_to_three(self, writes):
        report = HCDROTestbench().run(writes=writes, reads=0)
        assert report.stored_after_writes == writes

    def test_capacity_saturates_at_three(self):
        report = HCDROTestbench().run(writes=5, reads=0)
        assert report.stored_after_writes == 3

    @pytest.mark.parametrize("writes", [1, 2, 3])
    def test_reads_pop_exactly_stored_count(self, writes):
        report = HCDROTestbench().run(writes=writes, reads=4)
        assert report.output_pulses == writes
        assert report.stored_at_end == 0

    def test_empty_reads_are_silent(self):
        report = HCDROTestbench().run(writes=0, reads=3)
        assert report.output_pulses == 0
        assert report.stored_at_end == 0

    def test_each_read_pops_one(self):
        report = HCDROTestbench().run(writes=3, reads=1)
        assert report.output_pulses == 1
        assert report.stored_at_end == 2

    def test_read_amplitude_margin(self):
        """The drive point has margin: +/-5% amplitude still works."""
        for scale in (0.95, 1.05):
            bench = HCDROTestbench(
                read_amplitude_ua=RECOMMENDED_READ_PULSE_UA * scale)
            report = bench.run(writes=2, reads=3)
            assert report.output_pulses == 2
            assert report.stored_at_end == 0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            HCDROTestbench().run(writes=-1)


class TestParameterSets:
    def test_paper_parameters_recorded(self):
        # Section II-D quotes these values for the robust 2-bit cell.
        assert PAPER_HCDRO_PARAMS["l2_ph"] == 20.0
        assert PAPER_HCDRO_PARAMS["j1_ua"] == 115.0
        assert PAPER_HCDRO_PARAMS["j2_ua"] == 111.0

    def test_effective_set_differs_only_in_storage_inductance(self):
        differing = {k for k in PAPER_HCDRO_PARAMS
                     if PAPER_HCDRO_PARAMS[k] != EFFECTIVE_HCDRO_PARAMS[k]}
        assert differing == {"l2_ph"}


class TestDROReadout:
    """Analog destructive readout of the single-fluxon DRO cell."""

    def _run(self, writes, reads):
        from repro.josim.cells import RECOMMENDED_READ_PULSE_UA

        handles = build_dro_cell()
        t = 20.0
        for k in range(writes):
            handles.circuit.pulse(f"PD{k}", "d", start_ps=t,
                                  amplitude_ua=RECOMMENDED_WRITE_PULSE_UA,
                                  width_ps=3.0)
            t += 25.0
        read_start = t + 30.0
        for k in range(reads):
            handles.circuit.pulse(f"PC{k}", "clk",
                                  start_ps=read_start + 25.0 * k,
                                  amplitude_ua=RECOMMENDED_READ_PULSE_UA,
                                  width_ps=3.0)
        end = read_start + 25.0 * reads + 30.0
        result = TransientSolver(handles.circuit, timestep_ps=0.05).run(end)
        return (loop_fluxons(result, "J1", "J2"),
                junction_fluxons(result, "J3"))

    def test_single_read_pops_the_fluxon(self):
        stored, out = self._run(writes=1, reads=1)
        assert out == 1
        assert stored == 0

    def test_second_read_is_silent(self):
        """Destructive readout: there is nothing left to read."""
        stored, out = self._run(writes=1, reads=2)
        assert out == 1
        assert stored == 0

    def test_read_of_empty_cell_is_silent(self):
        stored, out = self._run(writes=0, reads=2)
        assert out == 0
        assert stored == 0
