"""Batched lane-parallel solver vs the compiled scalar oracle.

The batched backend must be a pure optimisation: for same-topology
lane batches of the JTL, DRO and HC-DRO decks every per-lane trajectory
must agree with a scalar `TransientSolver` run of the identical circuit
to 1e-9 in phase, with the same recording contract (uneven strides,
final-step recording, per-lane durations) and the same
`SimulationError` behaviour — except that batched errors additionally
name the failing lane and its label.
"""

import math

import numpy as np
import pytest

import repro.josim.solver as solver_mod
from repro.errors import SimulationError
from repro.josim import BatchedTransientSolver, TransientSolver
from repro.josim.cells import (
    RECOMMENDED_READ_PULSE_UA,
    RECOMMENDED_WRITE_PULSE_UA,
    build_dro_cell,
    build_hcdro_cell,
    build_jtl_stage,
)
from repro.josim.fluxon import junction_fluxons
from repro.josim.solver import topology_signature
from repro.josim.sweep import HCDROConfig
from repro.josim.testbench import HCDROTestbench, run_hcdro_batch


def _jtl_deck(bias_fraction=0.7, ic_ua=100.0, amplitude_ua=500.0):
    handles = build_jtl_stage(bias_fraction=bias_fraction, ic_ua=ic_ua)
    handles.circuit.pulse("PIN", handles.input_node, start_ps=10.0,
                          amplitude_ua=amplitude_ua)
    return handles.circuit


def _dro_deck(write_scale=1.0, read_scale=1.0):
    handles = build_dro_cell()
    ckt = handles.circuit
    ckt.pulse("W0", handles.input_node, start_ps=20.0,
              amplitude_ua=RECOMMENDED_WRITE_PULSE_UA * write_scale,
              width_ps=3.0)
    ckt.pulse("R0", handles.clock_node, start_ps=80.0,
              amplitude_ua=RECOMMENDED_READ_PULSE_UA * read_scale,
              width_ps=3.0)
    return ckt


def _hcdro_deck(read_scale=1.0, bias_ua=75.0):
    handles = build_hcdro_cell(j2_bias_ua=bias_ua)
    ckt = handles.circuit
    for k in range(3):
        ckt.pulse(f"W{k}", handles.input_node, start_ps=20.0 + 25.0 * k,
                  amplitude_ua=RECOMMENDED_WRITE_PULSE_UA, width_ps=3.0)
    for k in range(4):
        ckt.pulse(f"R{k}", handles.clock_node, start_ps=130.0 + 25.0 * k,
                  amplitude_ua=RECOMMENDED_READ_PULSE_UA * read_scale,
                  width_ps=3.0)
    return ckt


#: (deck factory, lane parameter tuples, duration, junctions to count)
LANE_DECKS = {
    "jtl": (_jtl_deck, [(0.6,), (0.7,), (0.75,)], 60.0, ["J1", "J2"]),
    "dro": (_dro_deck, [(0.95, 1.0), (1.0, 1.0), (1.05, 0.97)], 130.0,
            ["J1", "J2", "J3"]),
    "hcdro": (_hcdro_deck, [(0.95, 73.0), (1.0, 75.0), (1.05, 77.0)],
              260.0, ["J1", "J2", "J3"]),
}


def _assert_lanes_match_scalar(factory, lane_params, duration, junctions,
                               record_every=1, durations=None):
    circuits = [factory(*params) for params in lane_params]
    batched = BatchedTransientSolver(circuits, timestep_ps=0.05).run(
        durations if durations is not None else duration,
        record_every=record_every)
    for lane, params in enumerate(lane_params):
        lane_duration = (durations[lane] if durations is not None
                         else duration)
        scalar = TransientSolver(factory(*params), timestep_ps=0.05).run(
            lane_duration, record_every=record_every)
        assert batched[lane].times_ps.shape == scalar.times_ps.shape
        np.testing.assert_allclose(batched[lane].times_ps,
                                   scalar.times_ps)
        max_dphi = float(np.max(np.abs(
            batched[lane].phases - scalar.phases)))
        assert max_dphi <= 1e-9, f"lane {lane}: max |dphi| = {max_dphi:.3e}"
        for jj in junctions:
            assert (junction_fluxons(batched[lane], jj)
                    == junction_fluxons(scalar, jj)), (lane, jj)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("deck_name", sorted(LANE_DECKS))
    def test_lanes_match_scalar(self, deck_name):
        factory, lane_params, duration, junctions = LANE_DECKS[deck_name]
        _assert_lanes_match_scalar(factory, lane_params, duration,
                                   junctions)

    def test_uneven_lane_durations_retire_early(self):
        """Lanes with shorter programs retire and still match scalar."""
        factory, lane_params, _, junctions = LANE_DECKS["jtl"]
        _assert_lanes_match_scalar(factory, lane_params, None, junctions,
                                   durations=[40.0, 60.0, 25.0])

    def test_uneven_recording_stride(self):
        """record_every that doesn't divide the step count still records
        each lane's true final step."""
        factory, lane_params, _, junctions = LANE_DECKS["jtl"]
        _assert_lanes_match_scalar(factory, lane_params, None, junctions,
                                   record_every=7,
                                   durations=[40.0, 60.0, 25.0])

    def test_single_lane_batch(self):
        factory, lane_params, duration, junctions = LANE_DECKS["dro"]
        _assert_lanes_match_scalar(factory, lane_params[:1], duration,
                                   junctions)

    def test_batched_source_fallback_matches_table(self, monkeypatch):
        """Forcing the per-step source path must not change trajectories."""
        circuits = [_jtl_deck(0.7), _jtl_deck(0.65)]
        table = BatchedTransientSolver(circuits, timestep_ps=0.05).run(60.0)
        monkeypatch.setattr(solver_mod, "_SOURCE_TABLE_LIMIT", 0)
        circuits = [_jtl_deck(0.7), _jtl_deck(0.65)]
        fallback = BatchedTransientSolver(
            circuits, timestep_ps=0.05).run(60.0)
        for lane in range(2):
            max_dphi = float(np.max(np.abs(
                table[lane].phases - fallback[lane].phases)))
            assert max_dphi <= 1e-12, f"lane {lane}: {max_dphi:.3e}"


class TestChunkedExecution:
    """Lane chunking must be invisible except for peak memory."""

    def test_chunk_env_parsing(self, monkeypatch):
        monkeypatch.delenv(solver_mod.CHUNK_ENV_VAR, raising=False)
        assert solver_mod.chunk_lane_limit() == 2048
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "17")
        assert solver_mod.chunk_lane_limit() == 17
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "off")
        assert solver_mod.chunk_lane_limit() == 0
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "-3")
        assert solver_mod.chunk_lane_limit() == 0
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "nonsense")
        assert solver_mod.chunk_lane_limit() == 2048

    def test_chunked_hcdro_matches_scalar(self, monkeypatch):
        """A chunk smaller than the batch leaves the 1e-9 bar intact."""
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "2")
        factory, lane_params, duration, junctions = LANE_DECKS["hcdro"]
        _assert_lanes_match_scalar(factory, lane_params, duration,
                                   junctions)

    def test_chunked_matches_unchunked(self, monkeypatch):
        factory, lane_params, duration, _ = LANE_DECKS["dro"]
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "off")
        whole = BatchedTransientSolver(
            [factory(*p) for p in lane_params], timestep_ps=0.05,
        ).run(duration)
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "1")
        chunked = BatchedTransientSolver(
            [factory(*p) for p in lane_params], timestep_ps=0.05,
        ).run(duration)
        for lane in range(len(lane_params)):
            max_dphi = float(np.max(np.abs(
                whole[lane].phases - chunked[lane].phases)))
            assert max_dphi <= 1e-12, f"lane {lane}: {max_dphi:.3e}"

    def test_stamps_built_per_chunk(self, monkeypatch):
        """Peak stamp width is the chunk size, not the batch size."""
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "2")
        widths = []
        original = solver_mod._BatchedStamps

        class SpyStamps(original):
            def __init__(self, circuits, h, structure, backend=None):
                widths.append(len(circuits))
                super().__init__(circuits, h, structure, backend)

        monkeypatch.setattr(solver_mod, "_BatchedStamps", SpyStamps)
        circuits = [_jtl_deck(0.6 + 0.02 * k) for k in range(5)]
        BatchedTransientSolver(circuits, timestep_ps=0.05).run(40.0)
        assert widths == [2, 2, 1]

    def test_run_reduced_streams_in_lane_order(self, monkeypatch):
        monkeypatch.setenv(solver_mod.CHUNK_ENV_VAR, "2")
        circuits = [_jtl_deck(0.6 + 0.02 * k) for k in range(5)]
        full = BatchedTransientSolver(circuits, timestep_ps=0.05).run(40.0)
        circuits = [_jtl_deck(0.6 + 0.02 * k) for k in range(5)]
        seen = []

        def reduce(lane, result):
            seen.append(lane)
            return float(result.phases[-1].max())

        reduced = BatchedTransientSolver(
            circuits, timestep_ps=0.05).run_reduced(40.0, reduce)
        assert seen == [0, 1, 2, 3, 4]
        assert reduced == [float(r.phases[-1].max()) for r in full]

    def test_source_table_limit_accounts_for_chunk_lanes(self, monkeypatch):
        """Three lanes must trip a limit one lane fits under — and the
        per-step fallback must reproduce the table path's trajectories."""
        circuits = [_jtl_deck(0.6), _jtl_deck(0.7), _jtl_deck(0.75)]
        table = BatchedTransientSolver(circuits, timestep_ps=0.05).run(60.0)

        calls = []
        original = solver_mod._BatchedStamps.source_residual

        def spy(self, times):
            calls.append(np.size(times))
            return original(self, times)

        monkeypatch.setattr(solver_mod._BatchedStamps, "source_residual",
                            spy)
        # 60 ps / 0.05 ps = 1200 steps x 4 nodes: one lane needs 4800
        # table entries, three lanes 14400 - set the limit between.
        monkeypatch.setattr(solver_mod, "_SOURCE_TABLE_LIMIT", 5000)
        circuits = [_jtl_deck(0.6), _jtl_deck(0.7), _jtl_deck(0.75)]
        fallback = BatchedTransientSolver(
            circuits, timestep_ps=0.05).run(60.0)
        assert len(calls) > 100, "expected per-step source evaluation"
        assert max(calls) == 1, "fallback must evaluate one step at a time"
        for lane in range(3):
            max_dphi = float(np.max(np.abs(
                table[lane].phases - fallback[lane].phases)))
            assert max_dphi <= 1e-12, f"lane {lane}: {max_dphi:.3e}"


class TestTopologySignature:
    def test_parameter_changes_keep_signature(self):
        assert (topology_signature(_jtl_deck(0.6, ic_ua=80.0))
                == topology_signature(_jtl_deck(0.75, ic_ua=120.0)))

    def test_different_topologies_differ(self):
        assert (topology_signature(_jtl_deck())
                != topology_signature(_dro_deck()))

    def test_structure_compiled_once_per_signature(self):
        solver_mod.clear_structure_cache()
        first = BatchedTransientSolver([_jtl_deck(0.6), _jtl_deck(0.7)])
        second = BatchedTransientSolver([_jtl_deck(0.75)])
        assert first._structure is second._structure
        assert len(solver_mod._STRUCTURE_CACHE) == 1


class TestBatchedValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            BatchedTransientSolver([])

    def test_mixed_topologies_rejected(self):
        with pytest.raises(SimulationError, match="lane 1.*topology"):
            BatchedTransientSolver([_jtl_deck(), _dro_deck()])

    def test_label_count_must_match(self):
        with pytest.raises(SimulationError, match="labels"):
            BatchedTransientSolver([_jtl_deck(), _jtl_deck(0.6)],
                                   labels=["only-one"])

    def test_invalid_timestep_and_duration(self):
        with pytest.raises(SimulationError):
            BatchedTransientSolver([_jtl_deck()], timestep_ps=0.0)
        with pytest.raises(SimulationError):
            BatchedTransientSolver([_jtl_deck()]).run(0.0)
        with pytest.raises(SimulationError):
            BatchedTransientSolver([_jtl_deck()]).run(
                [10.0], record_every=0)


class TestBatchedErrorReporting:
    def test_poisoned_lane_is_named(self):
        """A lane that cannot converge names itself; the error message
        carries the lane index and its label."""
        circuits = [_jtl_deck(0.7),
                    _jtl_deck(0.7, amplitude_ua=float("nan")),
                    _jtl_deck(0.65)]
        solver = BatchedTransientSolver(
            circuits, timestep_ps=0.05,
            labels=["good-a", "poisoned", "good-b"])
        with pytest.raises(SimulationError, match=r"lane 1 \(poisoned\)"):
            solver.run(60.0)

    def test_healthy_lanes_unaffected_by_poison_topology(self):
        """The same healthy lane parameters run fine without the poison
        lane — the failure above is the poisoned lane's, not the batch
        machinery's."""
        results = BatchedTransientSolver(
            [_jtl_deck(0.7), _jtl_deck(0.65)], timestep_ps=0.05).run(60.0)
        assert len(results) == 2
        for result in results:
            assert junction_fluxons(result, "J2") == 1


class TestBatchedTestbench:
    def test_batch_matches_scalar_testbench(self):
        configs = [HCDROConfig(writes=2, reads=3),
                   HCDROConfig(writes=2, reads=3,
                               read_amplitude_ua=1.05
                               * RECOMMENDED_READ_PULSE_UA),
                   HCDROConfig(writes=2, reads=3, j2_bias_ua=73.0)]
        reports = run_hcdro_batch(configs)
        for config, report in zip(configs, reports):
            bench = HCDROTestbench(
                handles=build_hcdro_cell(j2_bias_ua=config.j2_bias_ua),
                write_amplitude_ua=config.write_amplitude_ua,
                read_amplitude_ua=config.read_amplitude_ua,
                pulse_width_ps=config.pulse_width_ps,
                pulse_spacing_ps=config.pulse_spacing_ps,
                timestep_ps=config.timestep_ps)
            scalar = bench.run(writes=config.writes, reads=config.reads,
                               settle_ps=config.settle_ps)
            assert report.stored_after_writes == scalar.stored_after_writes
            assert report.stored_at_end == scalar.stored_at_end
            assert report.output_pulses == scalar.output_pulses
            max_dphi = float(np.max(np.abs(
                report.result.phases - scalar.result.phases)))
            assert max_dphi <= 1e-9

    def test_run_batch_classmethod_delegates(self):
        reports = HCDROTestbench.run_batch(
            [HCDROConfig(writes=1, reads=2),
             HCDROConfig(writes=1, reads=2, j2_bias_ua=74.0)])
        assert [r.stored_after_writes for r in reports] == [1, 1]
        assert [r.output_pulses for r in reports] == [1, 1]

    def test_empty_batch_is_empty(self):
        assert run_hcdro_batch([]) == []

    def test_mismatched_stimulus_counts_rejected(self):
        with pytest.raises(SimulationError, match="lane 1.*writes"):
            run_hcdro_batch([HCDROConfig(writes=1, reads=2),
                             HCDROConfig(writes=2, reads=2)])

    def test_mismatched_timestep_rejected(self):
        with pytest.raises(SimulationError, match="lane 1.*timestep"):
            run_hcdro_batch([HCDROConfig(writes=0, reads=0),
                             HCDROConfig(writes=0, reads=0,
                                         timestep_ps=0.1)])

    def test_poisoned_config_named_in_error(self):
        """One bad operating point in a batch must be identifiable from
        the exception alone: lane index plus the config repr."""
        poison = HCDROConfig(writes=1, reads=1,
                             write_amplitude_ua=float("nan"))
        with pytest.raises(SimulationError) as excinfo:
            run_hcdro_batch([HCDROConfig(writes=1, reads=1), poison])
        message = str(excinfo.value)
        assert "lane 1" in message
        assert "HCDROConfig" in message
        assert "nan" in message

    def test_uneven_settle_times_share_a_batch(self):
        """settle/spacing are lane data: lanes with different durations
        run in one batch and match their scalar equivalents."""
        configs = [HCDROConfig(writes=1, reads=1, settle_ps=20.0),
                   HCDROConfig(writes=1, reads=1, settle_ps=40.0)]
        reports = run_hcdro_batch(configs)
        durations = [r.result.times_ps[-1] for r in reports]
        assert durations[0] == pytest.approx(20.0 + 25.0 + 20.0 + 25.0
                                             + 20.0)
        assert durations[1] == pytest.approx(20.0 + 25.0 + 40.0 + 25.0
                                             + 40.0)
        for report in reports:
            assert report.stored_after_writes == 1
            assert report.output_pulses == 1


def test_batched_phase_physics_sane():
    """A supercritically biased lane rotates; a subcritical lane locks —
    batching must not couple lanes."""
    def biased(ic, bias):
        from repro.josim import Circuit

        ckt = Circuit()
        ckt.jj("J1", "a", "gnd", critical_current_ua=ic)
        ckt.bias("IB", "a", current_ua=bias)
        return ckt

    results = BatchedTransientSolver(
        [biased(100.0, 150.0), biased(100.0, 70.0)],
        timestep_ps=0.05).run(100.0)
    assert results[0].junction_phase("J1")[-1] > 4 * math.pi
    assert results[1].junction_phase("J1")[-1] == pytest.approx(
        math.asin(0.7), abs=0.02)
