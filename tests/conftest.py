"""Shared fixtures for the HiPerRF reproduction test suite."""

from __future__ import annotations

import pytest

from repro.pulse import Engine
from repro.rf.geometry import RFGeometry


@pytest.fixture
def engine() -> Engine:
    """A fresh strict-timing pulse engine."""
    return Engine(strict_timing=True)


@pytest.fixture
def geo8() -> RFGeometry:
    """A small register file geometry used by pulse-level tests."""
    return RFGeometry(8, 8)


@pytest.fixture(params=[RFGeometry(4, 4), RFGeometry(16, 16), RFGeometry(32, 32)],
                ids=["4x4", "16x16", "32x32"])
def paper_geometry(request) -> RFGeometry:
    """The three geometries the paper's tables evaluate."""
    return request.param
