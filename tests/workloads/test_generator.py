"""Tests for the workload data generators and shared assembly fragments."""

import pytest

from repro.isa import Executor, assemble
from repro.workloads.generator import (
    EXIT_STUBS,
    MUL_SUBROUTINE,
    words_directive,
)


class TestWordsDirective:
    def test_renders_word_lines(self):
        text = words_directive([1, 2, 3])
        assert text.strip() == ".word 1, 2, 3"

    def test_wraps_at_eight(self):
        text = words_directive(list(range(10)))
        assert text.count(".word") == 2

    def test_masks_to_32_bits(self):
        text = words_directive([-1])
        assert "4294967295" in text

    def test_empty(self):
        assert words_directive([]) == ""

    def test_assembles(self):
        program = assemble(".data\nv:\n" + words_directive([7, 8]) + "\n")
        words = program.words()
        base = program.symbols["v"]
        assert words[base] == 7 and words[base + 4] == 8


class TestMulSubroutine:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 99), (123, 456),
                                     (0xFFFF, 0xFFFF), (65535, 3)])
    def test_matches_python_multiply(self, a, b):
        source = f"""
_start:
    li a0, {a}
    li a1, {b}
    call __mulsi3
    li a7, 93
    ecall
{MUL_SUBROUTINE}
"""
        executor = Executor(assemble(source))
        executor.run()
        assert executor.state.read(10) == (a * b) & 0xFFFFFFFF


class TestExitStubs:
    def test_pass_and_fail_paths(self):
        for target, expected in (("__pass", 42), ("__fail", 1)):
            source = f"_start:\n  j {target}\n{EXIT_STUBS}"
            executor = Executor(assemble(source))
            executor.run()
            assert executor.exit_code == expected
