"""Functional verification of every benchmark workload."""

import pytest

from repro.errors import ConfigError
from repro.isa import Executor, assemble
from repro.workloads import (
    PASS_EXIT_CODE,
    all_workloads,
    get_workload,
    workload_names,
)
from repro.workloads.generator import Lcg


class TestRegistry:
    def test_workload_count(self):
        # 11 riscv-tests kernels + 4 SPEC 2006 stand-ins; Figure 14 uses
        # the paper's 12-entry subset (see repro.experiments.figure14).
        assert len(workload_names()) == 15

    def test_figure14_subset_registered(self):
        from repro.experiments.figure14 import FIGURE14_WORKLOADS

        assert len(FIGURE14_WORKLOADS) == 12
        for name in FIGURE14_WORKLOADS:
            assert get_workload(name) is not None

    def test_categories(self):
        categories = {w.category for w in all_workloads()}
        assert categories == {"riscv-tests", "spec2006"}

    def test_spec_benchmarks_present(self):
        # The paper ran 429.mcf, 458.sjeng, 462.libquantum, 999.specrand.
        for name in ("mcf", "sjeng", "libquantum", "specrand"):
            assert get_workload(name).category == "spec2006"

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            get_workload("linpack")

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            get_workload("vvadd").build(scale=0)


class TestSelfChecking:
    @pytest.mark.parametrize("name", workload_names())
    def test_workload_passes(self, name):
        program = assemble(get_workload(name).build())
        executor = Executor(program)
        executor.run(max_instructions=500_000)
        assert executor.exit_code == PASS_EXIT_CODE, \
            f"{name} failed its self-check (exit {executor.exit_code})"

    @pytest.mark.parametrize("name", ["vvadd", "qsort", "mcf", "libquantum"])
    def test_workloads_scale(self, name):
        program = assemble(get_workload(name).build(scale=2.0))
        executor = Executor(program)
        executor.run(max_instructions=2_000_000)
        assert executor.exit_code == PASS_EXIT_CODE

    @pytest.mark.parametrize("name", workload_names())
    def test_deterministic_source(self, name):
        workload = get_workload(name)
        assert workload.build() == workload.build()


class TestLcg:
    def test_deterministic(self):
        assert Lcg(seed=5).sequence(10) == Lcg(seed=5).sequence(10)

    def test_fifteen_bit_outputs(self):
        assert all(0 <= v < (1 << 15) for v in Lcg().sequence(1000))

    def test_matches_assembly_implementation(self):
        """The specrand kernel passing proves the asm LCG matches this one;
        spot-check the first draws here for a direct cross-check."""
        rng = Lcg(seed=1)
        first = rng.next()
        # state = 1 * 1103515245 + 12345; output = (state >> 16) & 0x7FFF
        expected = ((1103515245 + 12345) >> 16) & 0x7FFF
        assert first == expected
