"""Tests for trace profiling and the workload dependency characters."""

import pytest

from repro.isa import Executor, assemble
from repro.workloads.analysis import (
    TraceProfile,
    profile_trace,
    profile_workload,
)


def profile_of(source: str) -> TraceProfile:
    executor = Executor(assemble(source))
    return profile_trace(executor.trace())


class TestProfileMechanics:
    def test_instruction_classes(self):
        profile = profile_of("""
_start:
    la   t0, w
    lw   t1, 0(t0)
    sw   t1, 0(t0)
    add  t2, t1, t1
    beqz t2, skip
skip:
    li   a0, 0
    li   a7, 93
    ecall
.data
w: .word 0
""")
        assert profile.loads == 1
        assert profile.stores == 1
        assert profile.branches == 1

    def test_raw_distance(self):
        profile = profile_of("""
_start:
    li   t0, 1
    addi t1, t0, 1
    nop
    nop
    addi t2, t0, 2
    li   a0, 0
    li   a7, 93
    ecall
""")
        # t0 produced at index 0 (after li expansion it's still 1 instr),
        # consumed at distances 1 and 4.
        assert profile.raw_distances[1] >= 1
        assert profile.raw_distances[4] >= 1

    def test_reread_distance(self):
        profile = profile_of("""
_start:
    li   t0, 1
    addi t1, t0, 1
    addi t2, t0, 2
    li   a0, 0
    li   a7, 93
    ecall
""")
        assert profile.reread_distances[1] >= 1

    def test_same_bank_pairs(self):
        profile = profile_of("""
_start:
    li   t0, 1
    li   t2, 2
    add  t1, t0, t2    # x5,x7: both odd -> same bank
    li   a0, 0
    li   a7, 93
    ecall
""")
        assert profile.two_source_ops == 1
        assert profile.same_bank_pairs == 1
        assert profile.same_bank_pair_fraction == 1.0

    def test_empty_profile_derived_values(self):
        profile = TraceProfile()
        assert profile.load_fraction == 0.0
        assert profile.mean_raw_distance() is None
        assert profile.raw_distance_at_most(2) == 0.0
        assert profile.reread_within(2) == 0.0
        assert profile.same_bank_pair_fraction == 0.0

    def test_summary_keys(self):
        summary = profile_workload("vvadd").summary()
        for key in ("instructions", "load_fraction", "branch_fraction",
                    "mean_raw_distance", "raw_within_2", "reread_within_2",
                    "same_bank_pair_fraction"):
            assert key in summary


class TestWorkloadCharacters:
    """The synthetic SPEC stand-ins must show their namesakes' profiles."""

    @pytest.fixture(scope="class")
    def profiles(self):
        names = ("mcf", "sjeng", "libquantum", "specrand", "vvadd",
                 "dhrystone", "towers")
        return {name: profile_workload(name) for name in names}

    def test_mcf_is_load_heavy(self, profiles):
        # Pointer chasing: the highest load fraction in the SPEC set.
        assert profiles["mcf"].load_fraction > 0.15
        assert profiles["mcf"].load_fraction > \
            profiles["sjeng"].load_fraction

    def test_sjeng_is_branch_heavy(self, profiles):
        assert profiles["sjeng"].branch_fraction > 0.25
        assert profiles["sjeng"].branch_fraction > \
            profiles["mcf"].branch_fraction

    def test_specrand_tight_recurrence(self, profiles):
        # The LCG chain keeps dependencies close.
        assert profiles["specrand"].raw_distance_at_most(3) > 0.4

    def test_mcf_high_register_reuse(self, profiles):
        # The chase re-reads its pointer register constantly (loopback
        # exposure), more than the streaming libquantum kernel.
        assert profiles["mcf"].reread_within(2) > \
            profiles["vvadd"].reread_within(2)

    def test_every_profile_nonempty(self, profiles):
        for name, profile in profiles.items():
            assert profile.instructions > 100, name
