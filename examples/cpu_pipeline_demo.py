"""CPU demo: where do the cycles go on an SFQ gate-pipelined core?

Runs the synthetic 429.mcf stand-in (pointer-chasing - the worst case for
loopback hazards) on all four register file configurations and breaks the
stall cycles down by cause, reproducing the Section VI-B narrative:
HiPerRF pays for loopback waits and slower readout; banking recovers most
of it.

Run:  python examples/cpu_pipeline_demo.py
"""

from repro.cpu import CpuSimulator
from repro.cpu.rf_model import RF_DESIGN_NAMES
from repro.isa import Executor, assemble
from repro.workloads import PASS_EXIT_CODE, get_workload


def main() -> None:
    workload = get_workload("mcf")
    program = assemble(workload.build())

    executor = Executor(program)
    ops = list(executor.trace())
    assert executor.exit_code == PASS_EXIT_CODE
    print(f"workload: {workload.name} - {workload.description}")
    print(f"retired {len(ops)} instructions "
          f"({sum(1 for op in ops if op.is_load)} loads, "
          f"{sum(1 for op in ops if op.branch_taken)} taken branches)\n")

    print(f"{'design':26s} {'CPI':>7s} {'port':>8s} {'RAW':>8s} "
          f"{'loopback':>9s} {'branch':>8s}")
    print("-" * 72)
    baseline_cpi = None
    for design in RF_DESIGN_NAMES:
        report = CpuSimulator(design).run_trace(ops, workload.name)
        if baseline_cpi is None:
            baseline_cpi = report.cpi
        stalls = report.stall_cycles
        marker = "" if design == "ndro_rf" else \
            f"  ({100 * (report.cpi / baseline_cpi - 1):+.1f}%)"
        print(f"{design:26s} {report.cpi:7.2f} {stalls['port']:>8d} "
              f"{stalls['raw']:>8d} {stalls['loopback']:>9d} "
              f"{stalls['branch']:>8d}{marker}")

    print("\nNotes: 28 ps gate cycles, 28-stage execute, 53 ps register "
          "file port cycles.")
    print("Loopback stalls only exist on the HC-DRO designs: a just-read "
          "register is unreadable until its value recycles through the "
          "LoopBuffer.")


if __name__ == "__main__":
    main()
