"""Synthesis tour: deriving the paper's 28-stage execute depth.

The paper takes two numbers from qPalace synthesis: the 28 ps gate cycle
and the 28-stage gate-level depth of the execute block.  This example
re-derives the depth from first principles: the RV32I execute datapath
is generated as a gate network, then run through the SFQ synthesis
passes (splitter insertion, DRO path balancing, clock distribution).

Run:  python examples/synthesis_tour.py
"""

from repro.synth import (
    build_execute_stage,
    build_kogge_stone_adder,
    build_logic_unit,
    build_shifter,
    synthesize,
)


def main() -> None:
    print("SFQ synthesis of the RV32I execute stage (32-bit)\n")
    for label, network in [
        ("Kogge-Stone adder/subtractor",
         build_kogge_stone_adder(32, with_subtract=True)),
        ("logic unit (AND/OR/XOR + mux)", build_logic_unit(32)),
        ("barrel shifter", build_shifter(32)),
        ("full execute stage", build_execute_stage(32)),
    ]:
        report = synthesize(network)
        print(f"{label}:")
        print(report.describe())
        print()

    execute = synthesize(build_execute_stage(32))
    print(f"==> synthesised execute depth: {execute.depth} stages at "
          f"{execute.gate_cycle_ps:.0f} ps = {execute.latency_ps:.0f} ps "
          "per wave")
    print("    paper (qPalace synthesis of Sodor): 28 stages.")
    print("\nWhy so deep?  Every SFQ gate is clocked, so a 32-bit datapath")
    print("pipelines at gate granularity - and why RAW dependencies cost")
    print("~30 CPI on this core (Section VI-B), making the register file's")
    print("readout latency and loopback scheduling first-order effects.")


if __name__ == "__main__":
    main()
