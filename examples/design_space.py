"""Design-space exploration: how HiPerRF's advantage scales with RF size.

The paper argues (Section VI-A) that HiPerRF's fixed HC-READ/HC-WRITE
overheads amortise as the register file grows, so both the JJ and power
advantages widen with size while the readout-delay penalty shrinks.
This script sweeps geometries beyond the paper's three points to map the
whole trend, including the break-even point at small sizes.

Run:  python examples/design_space.py
"""

from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry


def sweep() -> None:
    print(f"{'geometry':>10s} | {'baseline JJ':>12s} {'HiPerRF JJ':>11s} "
          f"{'JJ ratio':>9s} | {'power ratio':>11s} | {'delay ratio':>11s}")
    print("-" * 78)
    for num_registers in (4, 8, 16, 32, 64, 128):
        width = min(num_registers, 64)  # keep words realistic
        geometry = RFGeometry(num_registers, width)
        baseline = NdroRegisterFile(geometry)
        hiperrf = HiPerRF(geometry)
        jj_ratio = hiperrf.jj_count() / baseline.jj_count()
        power_ratio = hiperrf.static_power_uw() / baseline.static_power_uw()
        delay_ratio = hiperrf.readout_delay_ps() / baseline.readout_delay_ps()
        print(f"{geometry.label():>10s} | {baseline.jj_count():>12,d} "
              f"{hiperrf.jj_count():>11,d} {jj_ratio:>8.1%} "
              f"| {power_ratio:>10.1%} | {delay_ratio:>10.1%}")


def break_even() -> None:
    """Find where HiPerRF stops paying off in JJs."""
    print("\nBreak-even scan (square geometries):")
    for num_registers in (2, 4, 8):
        geometry = RFGeometry(num_registers, max(num_registers, 2))
        baseline = NdroRegisterFile(geometry)
        hiperrf = HiPerRF(geometry)
        verdict = "wins" if hiperrf.jj_count() < baseline.jj_count() else "loses"
        print(f"  {geometry.label():>6s}: HiPerRF {verdict} "
              f"({hiperrf.jj_count()} vs {baseline.jj_count()} JJs)")


def banked_premium() -> None:
    """What does the second port pair cost at each size?"""
    print("\nDual-bank premium over single HiPerRF:")
    for num_registers in (8, 16, 32, 64):
        geometry = RFGeometry(num_registers, 32)
        single = HiPerRF(geometry)
        dual = DualBankHiPerRF(geometry)
        premium = dual.jj_count() / single.jj_count() - 1
        delay_gain = 1 - dual.readout_delay_ps() / single.readout_delay_ps()
        print(f"  {geometry.label():>7s}: +{premium:.1%} JJs buys "
              f"2R/2W ports and {delay_gain:.1%} lower readout delay")


if __name__ == "__main__":
    sweep()
    break_even()
    banked_premium()
