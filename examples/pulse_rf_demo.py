"""Pulse-level demo: watch HiPerRF's LoopBuffer restore a register.

Builds an 8x8 HiPerRF at pulse accuracy (HC-DRO cells, NDROC DEMUX
ports, HC-CLK/HC-WRITE/HC-READ circuits, live loopback path) and narrates
a write, two reads (non-destructive thanks to the loopback) and an
erase-by-read - the mechanism that lets HiPerRF drop the reset port.

Run:  python examples/pulse_rf_demo.py
"""

from repro.pulse import Engine
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseHiPerRF


def cells_of(rf: PulseHiPerRF, register: int) -> str:
    values = [cell.stored_value for cell in rf.cells[register]]
    return " ".join(f"{v}" for v in values)


def main() -> None:
    engine = Engine()
    rf = PulseHiPerRF(engine, RFGeometry(8, 8))
    register, value = 3, 0b11100100  # columns hold 0,1,2,3 fluxons

    print("HiPerRF pulse-level netlist:"
          f" {engine.num_components} components on one event timeline\n")

    t = rf.write_word(register, value, 0.0)
    print(f"wrote {value:#04x} to r{register}")
    print(f"  HC-DRO columns (fluxons, LSB first): {cells_of(rf, register)}")

    for attempt in (1, 2):
        got = rf.read_word(register, t)
        t += 2 * rf.op_period_ps
        print(f"\nread #{attempt}: got {got:#04x} "
              f"({'ok' if got == value else 'MISMATCH'})")
        print(f"  columns after read: {cells_of(rf, register)} "
              "<- restored by the loopback write")

    # The write flow's erase step: LoopBuffer reset to 0 dissipates the
    # readout instead of recycling it (Section IV-B).
    rf.schedule_read(register, t, loopback=False)
    engine.run(until_ps=t + rf.op_period_ps)
    print(f"\nerase-by-read (LoopBuffer held at 0): "
          f"columns now {cells_of(rf, register)}")
    print("\nThis is why HiPerRF needs no reset port: the read port and a "
          "zeroed LoopBuffer erase an entry before each write.")
    print(f"total pulses delivered: {engine.total_delivered}")


if __name__ == "__main__":
    main()
