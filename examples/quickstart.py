"""Quickstart: the HiPerRF library in five minutes.

Builds the three register file designs the paper evaluates, prints their
JJ / power / delay costs, and runs one RISC-V workload through the
gate-level CPU simulator to show the application-level impact.

Run:  python examples/quickstart.py
"""

from repro.cpu import simulate_program
from repro.isa import assemble
from repro.rf import (
    DualBankHiPerRF,
    HiPerRF,
    NdroRegisterFile,
    RFGeometry,
    compare_designs,
)
from repro.workloads import get_workload


def main() -> None:
    # 1. Hardware: a 32-entry, 32-bit register file in each design.
    geometry = RFGeometry(32, 32)
    baseline = NdroRegisterFile(geometry)
    designs = [baseline, HiPerRF(geometry), DualBankHiPerRF(geometry)]

    print("Register file design comparison (32x32)")
    print("-" * 72)
    print(f"{'design':24s} {'JJs':>8s} {'power uW':>10s} {'readout ps':>11s} "
          f"{'% of baseline JJs':>18s}")
    for design in designs:
        comparison = compare_designs(baseline, design)
        print(f"{design.paper_name:24s} {design.jj_count():>8,d} "
              f"{design.static_power_uw():>10.1f} "
              f"{design.readout_delay_ps():>11.1f} "
              f"{comparison.jj_percent_of_baseline:>17.1f}%")

    saving = 1 - designs[1].jj_count() / baseline.jj_count()
    print(f"\nHiPerRF saves {saving:.1%} of the register file JJs "
          "(paper: 56.1%).\n")

    # 2. Software: CPI impact of each design on a real RV32I kernel.
    workload = get_workload("qsort")
    program = assemble(workload.build())
    reports = simulate_program(program, workload_name=workload.name)
    base_cpi = reports["ndro_rf"].cpi
    print(f"CPI on '{workload.name}' ({workload.description}, "
          f"{reports['ndro_rf'].instructions} instructions):")
    for design_name, report in reports.items():
        overhead = 100.0 * (report.cpi / base_cpi - 1.0)
        print(f"  {design_name:26s} CPI={report.cpi:6.2f}  "
              f"({overhead:+.1f}% vs baseline)")
    print("\nSee `hiperrf-experiments all` for every table and figure.")


if __name__ == "__main__":
    main()
