"""Analog demo: multi-fluxon storage in the HC-DRO cell (Section II-D).

Simulates the paper's HC-DRO cell with the RCSJ-model transient solver:
three SFQ write pulses accumulate three fluxons in the J1-L2-J2 storage
loop; a fourth is rejected; each clock pulse then pops exactly one fluxon
through the output junction - the 2-bit destructive-readout behaviour
HiPerRF is built on.

Run:  python examples/josim_hcdro.py
"""

from repro.josim import TransientSolver, build_hcdro_cell, junction_fluxons
from repro.josim.cells import (
    RECOMMENDED_READ_PULSE_UA,
    RECOMMENDED_WRITE_PULSE_UA,
)
from repro.josim.fluxon import loop_fluxons, switching_times_ps


def main() -> None:
    handles = build_hcdro_cell()
    circuit = handles.circuit

    # Stimulus: 4 write pulses (one too many), then 4 read pulses.
    write_times = [20.0, 45.0, 70.0, 95.0]
    read_times = [150.0, 175.0, 200.0, 225.0]
    for index, start in enumerate(write_times):
        circuit.pulse(f"W{index}", handles.input_node, start_ps=start,
                      amplitude_ua=RECOMMENDED_WRITE_PULSE_UA, width_ps=3.0)
    for index, start in enumerate(read_times):
        circuit.pulse(f"R{index}", handles.clock_node, start_ps=start,
                      amplitude_ua=RECOMMENDED_READ_PULSE_UA, width_ps=3.0)

    print("Running RCSJ transient (phase-domain MNA, trapezoidal+Newton)...")
    result = TransientSolver(circuit, timestep_ps=0.05).run(270.0)

    print("\nFluxon occupancy of the J1-L2-J2 loop over time:")
    for label, at in [("after 1st write", 40.0), ("after 2nd write", 65.0),
                      ("after 3rd write", 90.0),
                      ("after 4th write (rejected)", 140.0),
                      ("after 1st read", 170.0), ("after 2nd read", 195.0),
                      ("after 3rd read", 220.0),
                      ("after 4th read (empty)", 260.0)]:
        stored = loop_fluxons(result, "J1", "J2", at_ps=at)
        print(f"  {label:28s} -> {stored} fluxon(s)")

    print(f"\noutput pulses (J3 switchings): "
          f"{junction_fluxons(result, 'J3')} "
          f"at t = {[round(t, 1) for t in switching_times_ps(result, 'J3')]} ps")
    print(f"storage-loop current swing: "
          f"{result.inductor_current_ua('L2').min():.1f} .. "
          f"{result.inductor_current_ua('L2').max():.1f} uA")
    print("\n2 bits stored in 3 JJs - versus 22 JJs for two NDRO cells: the "
          "7.3x density edge the paper builds HiPerRF on.")


if __name__ == "__main__":
    main()
