.PHONY: install test bench bench-josim experiments examples quick all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Tracks the RCSJ solver speedup trajectory across PRs: writes machine-
# readable timings (incl. the reference-solver baseline) to BENCH_josim.json.
bench-josim:
	pytest benchmarks/bench_josim.py --benchmark-only \
		--benchmark-json=BENCH_josim.json

experiments:
	hiperrf-experiments all

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

quick:
	hiperrf-experiments table1 table3 fullchip

all: install test bench experiments
