.PHONY: install test bench bench-josim bench-pulse bench-pulse-batched bench-cpu bench-cpu-batched bench-service serve experiments examples quick all lint-netlists lvs

install:
	pip install -e .

test:
	pytest tests/

# Static SFQ netlist verification (same gate CI runs): structural rules,
# pulse-timing races, budget cross-checks and schedule validation over
# every built-in register-file design.
lint-netlists:
	PYTHONPATH=src python -m repro.lint --fail-on error

# Netlist interchange round-trip gate (same as the CI lvs job): every
# built-in design is lowered to structural Verilog and a JoSIM/SPICE
# deck, parsed back, and LVS-compared against the in-memory graph;
# seeded defects (pin swap, dropped wire, duplicated instance, renamed
# net) must be *detected* by the same comparison.
lvs:
	PYTHONPATH=src python -m repro.interchange lvs --with-mutations

bench:
	pytest benchmarks/ --benchmark-only

# Tracks the RCSJ solver speedup trajectory across PRs: writes machine-
# readable timings (incl. the reference-solver baseline) to BENCH_josim.json.
bench-josim:
	pytest benchmarks/bench_josim.py --benchmark-only \
		--benchmark-json=BENCH_josim.json

# Tracks the compiled pulse-engine backend against the reference event
# loop (DRO column, HC-DRO/LoopBuffer traffic, 32x32 op mix), the
# build-once netlist cache, and the batched lane tier: writes
# BENCH_pulse.json.
bench-pulse:
	PYTHONPATH=src pytest benchmarks/bench_pulse_engine.py \
		benchmarks/bench_pulse_batched.py --benchmark-only \
		--benchmark-json=BENCH_pulse.json

# Tracks the batched (lane-parallel) pulse tier against sequential
# compiled replay on the 64-lane fault-injection sweep: writes
# BENCH_pulse.json, including the enforced >= 3x lanes/sec speedup
# (REPRO_BENCH_LANES_MIN_SPEEDUP relaxes the floor for noisy runners).
bench-pulse-batched:
	PYTHONPATH=src pytest benchmarks/bench_pulse_batched.py --benchmark-only \
		--benchmark-json=BENCH_pulse.json

# Tracks the compiled op-tape CPU tier against the reference pipeline
# on the multi-design Figure 14 sweep (trace cache warm), and the
# batched design-lane tier against sequential compiled replay: writes
# BENCH_cpu.json, including the enforced >= 3x speedups.
bench-cpu:
	PYTHONPATH=src pytest benchmarks/bench_cpu.py \
		benchmarks/bench_cpu_batched.py --benchmark-only \
		--benchmark-json=BENCH_cpu.json

# Tracks the batched (design-lane) CPU tier against sequential compiled
# replay on a 32-lane mixed-config design sweep: writes BENCH_cpu.json,
# including the enforced >= 3x lanes/sec speedup
# (REPRO_BENCH_CPU_LANES_MIN_SPEEDUP relaxes the floor for noisy
# runners).
bench-cpu-batched:
	PYTHONPATH=src pytest benchmarks/bench_cpu_batched.py --benchmark-only \
		--benchmark-json=BENCH_cpu.json

# Tracks the coalescing simulation service against naive per-request
# execution on a mixed 200-request workload with overlapping keys:
# writes BENCH_service.json, including the enforced >= 3x jobs/sec
# speedup and bitwise artifact identity.
bench-service:
	PYTHONPATH=src pytest benchmarks/bench_service.py --benchmark-only \
		--benchmark-json=BENCH_service.json

# Run the coalescing simulation job service (JSON over HTTP).
serve:
	PYTHONPATH=src python -m repro.service

experiments:
	hiperrf-experiments all

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

quick:
	hiperrf-experiments table1 table3 fullchip

all: install test bench experiments
