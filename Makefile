.PHONY: install test bench bench-josim experiments examples quick all lint-netlists

install:
	pip install -e .

test:
	pytest tests/

# Static SFQ netlist verification (same gate CI runs): structural rules,
# pulse-timing races, budget cross-checks and schedule validation over
# every built-in register-file design.
lint-netlists:
	PYTHONPATH=src python -m repro.lint --fail-on error

bench:
	pytest benchmarks/ --benchmark-only

# Tracks the RCSJ solver speedup trajectory across PRs: writes machine-
# readable timings (incl. the reference-solver baseline) to BENCH_josim.json.
bench-josim:
	pytest benchmarks/bench_josim.py --benchmark-only \
		--benchmark-json=BENCH_josim.json

experiments:
	hiperrf-experiments all

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

quick:
	hiperrf-experiments table1 table3 fullchip

all: install test bench experiments
