.PHONY: install test bench experiments examples quick all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	hiperrf-experiments all

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

quick:
	hiperrf-experiments table1 table3 fullchip

all: install test bench experiments
