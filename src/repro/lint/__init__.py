"""Static SFQ netlist verifier and pulse-timing race detector.

SFQ netlists have structural invariants a pulse simulation only probes
one stimulus at a time: every fan-out point needs a splitter, every
shared pin a merger, every clocked element a reachable strobe, and every
reconvergent path a safe skew.  This package checks them *statically*,
before any simulation runs, over three representations:

* pulse-engine netlists (:mod:`repro.pulse`), lowered into a
  representation-neutral :class:`~repro.lint.graph.CircuitGraph` IR,
* synthesised gate networks (:mod:`repro.synth.netlist`),
* analog circuit decks (:mod:`repro.josim.circuit`).

Rules carry stable IDs (``SFQ001`` ...; see :mod:`repro.lint.rules`),
findings aggregate into a :class:`~repro.lint.report.LintReport`, and
``# lint: disable=SFQ00x`` source comments suppress expected findings
(:mod:`repro.lint.suppress`).  ``python -m repro.lint`` runs the whole
catalog over the built-in register-file designs and is wired into CI
next to the style linter.
"""

from repro.lint.budget import check_budget
from repro.lint.config import LintConfig
from repro.lint.designs import (
    BUILTIN_DESIGNS,
    DEFAULT_GEOMETRY,
    check_schedule,
    lint_all,
    lint_design,
    lint_graph,
    pulse_graphs,
)
from repro.lint.graph import (
    Arc,
    CircuitGraph,
    Edge,
    GraphNode,
    NodeClass,
    PortRef,
    graph_from_engine,
)
from repro.lint.josim_rules import check_deck
from repro.lint.passes import run_structural_passes
from repro.lint.report import LintIssue, LintReport, Severity
from repro.lint.rules import RULES, Rule, get_rule, make_issue
from repro.lint.suppress import Suppression, parse_suppressions, suppressions_for
from repro.lint.synthnet import check_network
from repro.lint.timing import Window, propagate_arrivals, run_timing_passes

__all__ = [
    "Arc",
    "BUILTIN_DESIGNS",
    "CircuitGraph",
    "DEFAULT_GEOMETRY",
    "Edge",
    "GraphNode",
    "LintConfig",
    "LintIssue",
    "LintReport",
    "NodeClass",
    "PortRef",
    "RULES",
    "Rule",
    "Severity",
    "Suppression",
    "Window",
    "check_budget",
    "check_deck",
    "check_network",
    "check_schedule",
    "graph_from_engine",
    "get_rule",
    "lint_all",
    "lint_design",
    "lint_graph",
    "make_issue",
    "parse_suppressions",
    "propagate_arrivals",
    "pulse_graphs",
    "run_structural_passes",
    "run_timing_passes",
    "suppressions_for",
]
