"""Lint issue records and reports.

Every finding the analyzer produces is a :class:`LintIssue` carrying a
stable rule ID (``SFQ001`` ...), a severity, the name of the offending
object (component, gate, node or schedule event) and a human-readable
message.  A :class:`LintReport` aggregates issues across passes and
renders them for humans or as JSON for CI tooling.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Issue severity; the integer order is the gating order."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class LintIssue:
    """One finding: a rule violation anchored to a named netlist object."""

    rule_id: str
    severity: Severity
    obj: str
    message: str
    design: str = ""

    def location(self) -> str:
        """``design::object`` anchor used in rendered reports."""
        if self.design:
            return f"{self.design}::{self.obj}"
        return self.obj

    def as_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "design": self.design,
            "object": self.obj,
            "message": self.message,
        }


@dataclass
class LintReport:
    """An ordered collection of issues plus suppression bookkeeping."""

    issues: list[LintIssue] = field(default_factory=list)
    suppressed: list[LintIssue] = field(default_factory=list)
    #: Designs/objects that were analysed (rendered even when clean).
    analysed: list[str] = field(default_factory=list)
    #: Parallel to :attr:`suppressed`: the provenance dict of the directive
    #: that matched each entry (``None`` when unknown).
    suppressed_by: list[dict[str, object] | None] = field(default_factory=list)

    def add(self, issue: LintIssue) -> None:
        self.issues.append(issue)

    def extend(self, issues: list[LintIssue]) -> None:
        self.issues.extend(issues)

    def merge(self, other: "LintReport") -> None:
        self.issues.extend(other.issues)
        self._pad_suppressed_by()
        other._pad_suppressed_by()
        self.suppressed.extend(other.suppressed)
        self.suppressed_by.extend(other.suppressed_by)
        self.analysed.extend(other.analysed)

    def _pad_suppressed_by(self) -> None:
        while len(self.suppressed_by) < len(self.suppressed):
            self.suppressed_by.append(None)

    # -- queries -----------------------------------------------------------

    def by_severity(self, severity: Severity) -> list[LintIssue]:
        return [i for i in self.issues if i.severity is severity]

    @property
    def errors(self) -> list[LintIssue]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[LintIssue]:
        return self.by_severity(Severity.WARNING)

    def rule_ids(self) -> set[str]:
        """Distinct rule IDs present in the report."""
        return {i.rule_id for i in self.issues}

    def worst_severity(self) -> Severity | None:
        if not self.issues:
            return None
        return max(i.severity for i in self.issues)

    # -- suppression -------------------------------------------------------

    def apply_suppressions(self, suppressions) -> None:
        """Move issues matched by ``suppressions`` into :attr:`suppressed`.

        ``suppressions`` is an iterable of objects exposing
        ``matches(issue) -> bool`` (see :mod:`repro.lint.suppress`).
        """
        rules = list(suppressions)
        self._pad_suppressed_by()
        kept: list[LintIssue] = []
        for issue in self.issues:
            matched = next((s for s in rules if s.matches(issue)), None)
            if matched is not None:
                self.suppressed.append(issue)
                provenance = getattr(matched, "provenance", None)
                self.suppressed_by.append(
                    provenance() if callable(provenance) else None)
            else:
                kept.append(issue)
        self.issues = kept

    # -- rendering ---------------------------------------------------------

    def sorted_issues(self) -> list[LintIssue]:
        """Issues in the stable report order: errors first, then by
        design, rule ID, object and message.  Both the human renderer and
        the JSON emitter use this ordering, so CI output is deterministic
        and diffable across runs."""
        return sorted(
            self.issues,
            key=lambda i: (-int(i.severity), i.design, i.rule_id, i.obj,
                           i.message))

    def render(self, *, verbose: bool = False) -> str:
        """Human-readable report, grouped by design, errors first."""
        lines: list[str] = []
        for issue in self.sorted_issues():
            if issue.severity is Severity.INFO and not verbose:
                continue
            lines.append(f"{str(issue.severity):7s} {issue.rule_id}  "
                         f"{issue.location()}: {issue.message}")
        infos = len(self.by_severity(Severity.INFO))
        summary = (f"{len(self.errors)} error(s), {len(self.warnings)} "
                   f"warning(s), {infos} info(s)")
        if self.suppressed:
            summary += f", {len(self.suppressed)} suppressed"
        if self.analysed:
            summary += f"  [{', '.join(self.analysed)}]"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report for CI artifact consumption.

        Issues appear in :meth:`sorted_issues` order and each carries the
        catalog's ``rule_title``/``rule_severity`` alongside the issue's
        own (possibly overridden) severity.  Suppressed entries carry a
        ``suppressed_by`` provenance object (``source``/``line``/
        ``directive`` of the matching ``# lint: disable=`` comment) or
        ``null`` when unknown.
        """
        # Imported lazily: repro.lint.rules imports this module.
        from repro.lint.rules import RULES

        def annotate(issue: LintIssue) -> dict[str, object]:
            entry: dict[str, object] = dict(issue.as_dict())
            rule = RULES.get(issue.rule_id)
            if rule is not None:
                entry["rule_title"] = rule.title
                entry["rule_severity"] = str(rule.severity)
            return entry

        self._pad_suppressed_by()
        suppressed = []
        for issue, origin in zip(self.suppressed, self.suppressed_by):
            entry = annotate(issue)
            entry["suppressed_by"] = origin
            suppressed.append(entry)
        payload = {
            "analysed": self.analysed,
            "issues": [annotate(i) for i in self.sorted_issues()],
            "suppressed": suppressed,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.by_severity(Severity.INFO)),
            },
        }
        return json.dumps(payload, indent=2)
