"""JJ-count and bias-current budget accounting (SFQ007).

Two layers of cross-checking:

* the design's component census must roll up to the same JJ total and
  static power that the :mod:`repro.cells` library predicts cell-by-cell
  (guards against census/library drift), and
* for the designs and geometries the paper publishes, the roll-up must
  stay within tolerance of Table I (JJ) and Table II (bias power).
"""

from __future__ import annotations

from repro.cells import get_cell
from repro.experiments import paper_data
from repro.lint.config import LintConfig
from repro.lint.report import LintIssue, Severity
from repro.lint.rules import make_issue
from repro.rf.base import RegisterFileDesign


def _relative_error(measured: float, reference: float) -> float:
    if reference == 0:
        return float("inf") if measured else 0.0
    return abs(measured - reference) / abs(reference)


def check_budget(design: RegisterFileDesign,
                 config: LintConfig | None = None) -> list[LintIssue]:
    """SFQ007 checks for one built register-file design."""
    cfg = config or LintConfig()
    issues: list[LintIssue] = []
    census = design.census()
    label = design.geometry.label()
    where = f"{design.name}[{label}]"

    # Layer 1: census totals vs a cell-by-cell library roll-up.
    jj_by_cell = sum(get_cell(name).jj_count * count
                     for name, count in census.items())
    power_by_cell = sum(get_cell(name).static_power_uw * count
                        for name, count in census.items())
    if jj_by_cell != census.jj_count():
        issues.append(make_issue(
            "SFQ007", where,
            f"census JJ roll-up ({census.jj_count()}) disagrees with the "
            f"cell-by-cell sum ({jj_by_cell})", design=design.name))
    if abs(power_by_cell - census.static_power_uw()) > 1e-6:
        issues.append(make_issue(
            "SFQ007", where,
            f"census power roll-up ({census.static_power_uw():.3f} uW) "
            f"disagrees with the cell-by-cell sum ({power_by_cell:.3f} uW)",
            design=design.name))

    # Layer 2: per-design budgets from the paper's tables.
    jj_table = paper_data.TABLE1_JJ.get(design.name, {})
    power_table = paper_data.TABLE2_POWER_UW.get(design.name, {})
    if label in jj_table:
        measured, budget = design.jj_count(), jj_table[label]
        error = _relative_error(measured, budget)
        if error > cfg.budget_tolerance:
            issues.append(make_issue(
                "SFQ007", where,
                f"JJ count {measured} deviates {100 * error:.1f}% from the "
                f"Table I budget of {budget} "
                f"(> {100 * cfg.budget_tolerance:.0f}%)", design=design.name))
    if label in power_table:
        measured_uw, budget_uw = design.static_power_uw(), power_table[label]
        error = _relative_error(measured_uw, budget_uw)
        if error > cfg.budget_tolerance:
            issues.append(make_issue(
                "SFQ007", where,
                f"bias power {measured_uw:.1f} uW deviates "
                f"{100 * error:.1f}% from the Table II budget of "
                f"{budget_uw:.1f} uW (> {100 * cfg.budget_tolerance:.0f}%)",
                design=design.name))
    if label not in jj_table and label not in power_table:
        issues.append(make_issue(
            "SFQ007", where,
            f"no published budget for geometry {label}; structural "
            f"roll-up checks only", design=design.name,
            severity=Severity.INFO))
    return issues
