"""Static checks over synthesised gate networks (SFQ013-SFQ014).

The :class:`repro.synth.netlist.GateNetwork` IR allows logical fan-out
(the synthesis pipeline charges the splitter trees afterwards), so the
pulse-level fanout-1 rule does not apply here.  What *is* statically
checkable: dead gates, and clocked gates whose fan-ins arrive from
different pipeline levels - RSFQ gates consume exactly one pulse per
input per clock, so unbalanced fan-in needs DRO buffer insertion (the
path-balancing pass) before the network is realisable.
"""

from __future__ import annotations

from repro.lint.report import LintIssue
from repro.lint.rules import make_issue
from repro.synth.netlist import CLOCKED_KINDS, GateKind, GateNetwork


def _gate_label(network: GateNetwork, gate_id: int) -> str:
    gate = network.gates[gate_id]
    label = gate.name or f"g{gate.gate_id}"
    return f"{network.name}.{label}"


def check_dangling_gates(network: GateNetwork) -> list[LintIssue]:
    """SFQ013: gates that drive nothing and are not primary outputs."""
    issues: list[LintIssue] = []
    fanouts = network.fanouts()
    outputs = set(network.primary_outputs)
    for gate in network.gates:
        if gate.kind is GateKind.OUTPUT or gate.gate_id in outputs:
            continue
        if fanouts.get(gate.gate_id, 0) == 0:
            issues.append(make_issue(
                "SFQ013", _gate_label(network, gate.gate_id),
                f"{gate.kind.value} gate drives nothing and is not a "
                f"primary output", design=network.name))
    return issues


def check_fanin_balance(network: GateNetwork) -> list[LintIssue]:
    """SFQ014: clocked gates with inputs from different logic levels."""
    issues: list[LintIssue] = []
    levels = network.levels()
    for gate in network.gates:
        if gate.kind not in CLOCKED_KINDS or len(gate.inputs) < 2:
            continue
        input_levels = [levels[source] for source in gate.inputs]
        spread = max(input_levels) - min(input_levels)
        if spread > 0:
            issues.append(make_issue(
                "SFQ014", _gate_label(network, gate.gate_id),
                f"{gate.kind.value} fan-ins arrive from levels "
                f"{sorted(input_levels)}; needs {spread} DRO balancing "
                f"buffer(s)", design=network.name))
    return issues


def check_network(network: GateNetwork) -> list[LintIssue]:
    """All gate-network rules."""
    issues: list[LintIssue] = []
    issues.extend(check_dangling_gates(network))
    issues.extend(check_fanin_balance(network))
    return issues
