"""Representation-neutral circuit-graph IR and the pulse-engine adapter.

The analyzer does not walk :class:`repro.pulse.Engine` netlists directly;
it first lowers them into a :class:`CircuitGraph` - named nodes with typed
ports, directed edges carrying wire delay, internal propagation *arcs*
(which input pin forwards a pulse to which output pin, and how late), and
a set of *external* ports where test-bench stimulus enters.  Structural
and timing rules run over this IR, so future front-ends (e.g. a Verilog
or JoSIM-deck importer) only need an adapter, not new rules.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.pulse.counters import TFF, PulseCounter
from repro.pulse.engine import Component, Engine
from repro.pulse.logic import ClockedGate
from repro.pulse.monitor import Probe
from repro.pulse.primitives import DAND, JTL, PTL, Merger, Sink, Splitter
from repro.pulse.storage import DRO, HCDRO, NDRO, NDROC


class NodeClass(enum.Enum):
    """Coarse functional category used by the structural rules."""

    INTERCONNECT = "interconnect"
    STORAGE = "storage"
    LOGIC = "logic"
    SINK = "sink"
    OTHER = "other"


@dataclass(frozen=True)
class PortRef:
    """One pin: a node name plus a port name."""

    node: str
    port: str

    def __str__(self) -> str:
        return f"{self.node}.{self.port}"


@dataclass(frozen=True)
class Edge:
    """A directed wire from an output pin to an input pin."""

    src: PortRef
    dst: PortRef
    delay_ps: float = 0.0


@dataclass(frozen=True)
class Arc:
    """Internal pulse propagation: input pin -> output pin with delay."""

    in_port: str
    out_port: str
    delay_ps: float


@dataclass
class GraphNode:
    """One circuit element in the IR."""

    name: str
    kind: str
    node_class: NodeClass
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    arcs: tuple[Arc, ...] = ()
    #: Pins that act as a clock / read strobe (evaluation triggers).
    clock_ports: frozenset = frozenset()
    #: Pins that arm internal state without directly producing output.
    data_ports: frozenset = frozenset()
    #: Cell-specific constraints (dead_time_ps, hold_window_ps, ...).
    params: dict = field(default_factory=dict)


class CircuitGraph:
    """Nodes + wires + external stimulus ports, with pin-level indexes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: dict[str, GraphNode] = {}
        self.edges: list[Edge] = []
        self.externals: set[PortRef] = set()
        self._in_edges: dict[PortRef, list[Edge]] = {}
        self._out_edges: dict[PortRef, list[Edge]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: GraphNode) -> GraphNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_edge(self, src: PortRef, dst: PortRef, delay_ps: float = 0.0) -> Edge:
        """Add a wire.  Unlike the engine, the IR accepts *illegal* wiring
        (double-driven pins, fanned-out outputs) - expressing violations is
        exactly what the rules need."""
        edge = Edge(src, dst, delay_ps)
        self.edges.append(edge)
        self._out_edges.setdefault(src, []).append(edge)
        self._in_edges.setdefault(dst, []).append(edge)
        return edge

    def mark_external(self, ref: PortRef) -> None:
        self.externals.add(ref)

    # -- queries -----------------------------------------------------------

    def drivers(self, ref: PortRef) -> list[Edge]:
        """Wires ending at input pin ``ref``."""
        return self._in_edges.get(ref, [])

    def fanout(self, ref: PortRef) -> list[Edge]:
        """Wires starting at output pin ``ref``."""
        return self._out_edges.get(ref, [])

    def input_refs(self, node: GraphNode) -> list[PortRef]:
        return [PortRef(node.name, p) for p in node.inputs]

    def output_refs(self, node: GraphNode) -> list[PortRef]:
        return [PortRef(node.name, p) for p in node.outputs]

    def __repr__(self) -> str:
        return (f"CircuitGraph({self.name!r}, nodes={len(self.nodes)}, "
                f"edges={len(self.edges)})")


# ---------------------------------------------------------------------------
# Pulse-engine adapter
# ---------------------------------------------------------------------------


def _delay(comp: Component, attr: str = "delay_ps") -> float:
    return float(getattr(comp, attr, 0.0))


def _lower_component(comp: Component) -> GraphNode:
    """Classify one pulse component into the IR vocabulary."""
    name = comp.name
    inputs = tuple(comp.INPUTS)
    outputs = tuple(comp.OUTPUTS)
    if isinstance(comp, Splitter):
        return GraphNode(name, "splitter", NodeClass.INTERCONNECT, inputs, outputs,
                         arcs=(Arc("in", "out0", comp.delay_ps),
                               Arc("in", "out1", comp.delay_ps)))
    if isinstance(comp, Merger):
        return GraphNode(name, "merger", NodeClass.INTERCONNECT, inputs, outputs,
                         arcs=(Arc("in0", "out", comp.delay_ps),
                               Arc("in1", "out", comp.delay_ps)),
                         params={"dead_time_ps": comp.dead_time_ps})
    if isinstance(comp, (JTL, PTL)):
        return GraphNode(name, type(comp).__name__.lower(),
                         NodeClass.INTERCONNECT, inputs, outputs,
                         arcs=(Arc("in", "out", comp.delay_ps),))
    if isinstance(comp, Probe):
        return GraphNode(name, "probe", NodeClass.INTERCONNECT, inputs, outputs,
                         arcs=(Arc("in", "out", 0.0),))
    if isinstance(comp, Sink):
        return GraphNode(name, "sink", NodeClass.SINK, inputs, outputs)
    if isinstance(comp, DAND):
        return GraphNode(name, "dand", NodeClass.LOGIC, inputs, outputs,
                         arcs=(Arc("a", "out", comp.delay_ps),
                               Arc("b", "out", comp.delay_ps)),
                         data_ports=frozenset({"a", "b"}),
                         params={"hold_window_ps": comp.hold_window_ps})
    if isinstance(comp, ClockedGate):
        data = frozenset({"a", "b"} if comp.ARITY == 2 else {"a"})
        return GraphNode(name, "clocked_gate", NodeClass.LOGIC, inputs, outputs,
                         arcs=(Arc("clk", "out", comp.delay_ps),),
                         clock_ports=frozenset({"clk"}), data_ports=data)
    if isinstance(comp, DRO):
        return GraphNode(name, "dro", NodeClass.STORAGE, inputs, outputs,
                         arcs=(Arc("clk", "q", comp.clk_to_q_ps),),
                         clock_ports=frozenset({"clk"}),
                         data_ports=frozenset({"d"}))
    if isinstance(comp, HCDRO):
        return GraphNode(name, "hcdro", NodeClass.STORAGE, inputs, outputs,
                         arcs=(Arc("clk", "q", comp.clk_to_q_ps),),
                         clock_ports=frozenset({"clk"}),
                         data_ports=frozenset({"d"}),
                         params={"min_spacing_ps": comp.min_pulse_spacing_ps})
    if isinstance(comp, NDROC):
        # ``exclusive_routing``: one CLK pulse exits out0 *or* out1, never
        # both, so downstream paths through different outputs can never
        # race each other.  The timing pass re-originates arrival windows
        # at each output instead of forwarding the common origin.
        return GraphNode(name, "ndroc", NodeClass.STORAGE, inputs, outputs,
                         arcs=(Arc("clk", "out0", comp.propagation_ps),
                               Arc("clk", "out1", comp.propagation_ps)),
                         clock_ports=frozenset({"clk"}),
                         data_ports=frozenset({"set", "reset"}),
                         params={"min_separation_ps": comp.min_clk_separation_ps,
                                 "exclusive_routing": True})
    if isinstance(comp, NDRO):
        return GraphNode(name, "ndro", NodeClass.STORAGE, inputs, outputs,
                         arcs=(Arc("clk", "out", comp.clk_to_q_ps),),
                         clock_ports=frozenset({"clk"}),
                         data_ports=frozenset({"set", "reset"}))
    if isinstance(comp, TFF):
        return GraphNode(name, "tff", NodeClass.STORAGE, inputs, outputs,
                         arcs=(Arc("t", "carry", comp.delay_ps),
                               Arc("read", "q", comp.delay_ps)),
                         clock_ports=frozenset({"read"}),
                         data_ports=frozenset({"t", "reset"}))
    if isinstance(comp, PulseCounter):
        arcs = tuple(Arc("read", f"b{i}", comp.delay_ps)
                     for i in range(comp.bits))
        return GraphNode(name, "counter", NodeClass.STORAGE, inputs, outputs,
                         arcs=arcs,
                         clock_ports=frozenset({"read"}),
                         data_ports=frozenset({"in", "reset"}))
    # Unknown component type: all-to-all propagation, clock pin by name.
    arcs = tuple(Arc(i, o, _delay(comp)) for i in inputs for o in outputs)
    clock = frozenset({p for p in inputs if p in ("clk", "read")})
    return GraphNode(name, type(comp).__name__.lower(), NodeClass.OTHER,
                     inputs, outputs, arcs=arcs, clock_ports=clock,
                     data_ports=frozenset(inputs) - clock)


def graph_from_engine(engine: Engine, name: str,
                      externals: Iterable = ()) -> CircuitGraph:
    """Lower a registered pulse-engine netlist into the IR.

    ``externals`` lists the stimulus entry pins, each either a
    :class:`PortRef` or a ``(component, port_name)`` pair as returned by
    the builders' ``external_inputs()`` methods.
    """
    graph = CircuitGraph(name)
    for comp in engine.components():
        graph.add_node(_lower_component(comp))
    for comp in engine.components():
        for out_port in comp.OUTPUTS:
            wire = comp.wire_for(out_port)
            if wire is None:
                continue
            graph.add_edge(PortRef(comp.name, out_port),
                           PortRef(wire.sink.name, wire.sink_port),
                           wire.delay_ps)
    for entry in externals:
        if isinstance(entry, PortRef):
            graph.mark_external(entry)
        else:
            comp, port = entry
            graph.mark_external(PortRef(comp.name, port))
    return graph
