"""Lint drivers for the repo's built-in register-file designs.

One entry point per representation family:

* :func:`lint_graph` - structural + timing passes over one lowered
  :class:`~repro.lint.graph.CircuitGraph` (with the builder module's
  inline suppressions applied),
* :func:`lint_design` - everything we can statically check about one
  built-in design: the pulse netlist at a working geometry, the JJ /
  bias budgets at every paper geometry, and the generated port-control
  schedules (SFQ015/SFQ016),
* :func:`lint_all` - the CI gate: every built-in design.
"""

from __future__ import annotations

from repro.errors import ConfigError, TimingViolationError
from repro.lint.budget import check_budget
from repro.lint.config import LintConfig
from repro.lint.graph import CircuitGraph, graph_from_engine
from repro.lint.passes import run_structural_passes
from repro.lint.report import LintIssue, LintReport
from repro.lint.rules import make_issue
from repro.lint.suppress import suppressions_for
from repro.lint.timing import run_timing_passes
from repro.pulse import Engine
from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.base import RegisterFileDesign
from repro.rf.netlist import PulseDualBankHiPerRF, PulseHiPerRF, PulseNdroRF
from repro.rf.timing import (
    Instr,
    PortSchedule,
    schedule_dual_bank,
    schedule_hiperrf,
    schedule_ndro,
)

#: Designs ``python -m repro.lint`` analyses by default.
BUILTIN_DESIGNS: tuple[str, ...] = ("ndro_rf", "hiperrf", "dual_bank_hiperrf")

#: Geometry the pulse netlists are built at for structural analysis - big
#: enough to exercise every tree/DEMUX shape, small enough to stay fast.
DEFAULT_GEOMETRY = RFGeometry(8, 8)

#: Geometries the paper publishes budgets for (Tables I and II).
PAPER_GEOMETRIES: tuple[RFGeometry, ...] = (
    RFGeometry(4, 4), RFGeometry(16, 16), RFGeometry(32, 32))

_CENSUS_CLASSES: dict[str, type[RegisterFileDesign]] = {
    "ndro_rf": NdroRegisterFile,
    "hiperrf": HiPerRF,
    "dual_bank_hiperrf": DualBankHiPerRF,
}

_SCHEDULERS = {
    "ndro_rf": schedule_ndro,
    "hiperrf": schedule_hiperrf,
    "dual_bank_hiperrf": schedule_dual_bank,
}

#: Representative instruction mix for the schedule rules: a two-source
#: op, a single-source op, a store (no dest), and a same-register RAR.
#: Register indices stay below 4 so every paper geometry can run it.
SAMPLE_STREAM: tuple[Instr, ...] = (
    Instr(dest=1, srcs=(2, 3)),
    Instr(dest=0, srcs=(1,)),
    Instr(dest=None, srcs=(0, 2)),
    Instr(dest=3, srcs=(3, 3)),
)


def lint_graph(graph: CircuitGraph, config: LintConfig | None = None,
               source_objects: tuple = ()) -> LintReport:
    """Run every graph-level rule over one lowered netlist.

    ``source_objects`` are the builder instances whose defining modules
    are scanned for ``# lint: disable=`` directives.
    """
    report = LintReport()
    report.analysed.append(graph.name)
    report.extend(run_structural_passes(graph))
    report.extend(run_timing_passes(graph, config))
    suppressions = []
    for obj in source_objects:
        suppressions.extend(suppressions_for(obj))
    if suppressions:
        report.apply_suppressions(suppressions)
    return report


def pulse_graphs(name: str,
                 geometry: RFGeometry) -> list[tuple[CircuitGraph, tuple]]:
    """Lowered pulse-netlist graph(s) for one built-in design.

    Returns ``(graph, source_objects)`` pairs; ``source_objects`` are
    the builder instances whose modules carry any inline suppressions.
    Also the entry point :mod:`repro.interchange` uses to enumerate the
    golden graphs for round-trip LVS.
    """
    if name == "ndro_rf":
        engine = Engine()
        rf = PulseNdroRF(engine, geometry)
        return [(graph_from_engine(engine, name, rf.external_inputs()),
                 (rf,))]
    if name == "hiperrf":
        engine = Engine()
        rf = PulseHiPerRF(engine, geometry)
        return [(graph_from_engine(engine, name, rf.external_inputs()),
                 (rf,))]
    if name == "dual_bank_hiperrf":
        dual = PulseDualBankHiPerRF(geometry)
        graphs = []
        for i, bank in enumerate(dual.banks):
            graphs.append((
                graph_from_engine(bank.engine, f"{name}.bank{i}",
                                  bank.rf.external_inputs()),
                (bank.rf,)))
        return graphs
    raise ConfigError(f"unknown design {name!r}; "
                      f"built-ins: {', '.join(BUILTIN_DESIGNS)}")


def check_schedule(name: str, geometry: RFGeometry) -> list[LintIssue]:
    """SFQ015/SFQ016 over the design's generated control schedule."""
    issues: list[LintIssue] = []
    scheduler = _SCHEDULERS[name]
    try:
        schedule: PortSchedule = scheduler(
            SAMPLE_STREAM, num_registers=geometry.num_registers)
    except ConfigError as exc:
        issues.append(make_issue("SFQ016", f"{name}.schedule", str(exc),
                                 design=name))
        return issues
    for event in schedule.events:
        if not 0 <= event.register < geometry.num_registers:
            issues.append(make_issue(
                "SFQ016", f"{name}.schedule",
                f"event {event} addresses r{event.register} outside "
                f"geometry {geometry.label()}", design=name))
    try:
        schedule.validate()
    except TimingViolationError as exc:
        issues.append(make_issue("SFQ015", f"{name}.schedule", str(exc),
                                 design=name))
    return issues


def lint_design(name: str, geometry: RFGeometry | None = None,
                config: LintConfig | None = None,
                budgets: bool = True) -> LintReport:
    """Every static check for one built-in design."""
    geometry = geometry or DEFAULT_GEOMETRY
    report = LintReport()
    for graph, objects in pulse_graphs(name, geometry):
        report.merge(lint_graph(graph, config, source_objects=objects))
    if budgets:
        census_cls = _CENSUS_CLASSES[name]
        for paper_geometry in PAPER_GEOMETRIES:
            design = census_cls(paper_geometry)
            report.extend(check_budget(design, config))
            report.analysed.append(f"{name}[{paper_geometry.label()}]")
    report.extend(check_schedule(name, geometry))
    return report


def lint_all(names: tuple[str, ...] = BUILTIN_DESIGNS,
             geometry: RFGeometry | None = None,
             config: LintConfig | None = None,
             budgets: bool = True) -> LintReport:
    """The CI gate: lint every requested built-in design."""
    report = LintReport()
    for name in names:
        report.merge(lint_design(name, geometry, config, budgets=budgets))
    return report
