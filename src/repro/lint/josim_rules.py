"""Static checks over analog circuit decks (SFQ010-SFQ012).

These run on :class:`repro.josim.circuit.Circuit` before any transient
simulation: a floating node, a shorted element or a bias-less junction
deck produces garbage waveforms that are much cheaper to catch here.
"""

from __future__ import annotations

from collections import Counter

from repro.josim.circuit import Circuit
from repro.josim.elements import BiasCurrent, JosephsonJunction
from repro.lint.report import LintIssue
from repro.lint.rules import make_issue


def check_deck(circuit: Circuit, name: str = "deck") -> list[LintIssue]:
    """All deck rules for one circuit."""
    issues: list[LintIssue] = []
    index_to_name = {0: "gnd"}
    for node_name in circuit.node_names():
        index_to_name[circuit.node(node_name)] = node_name

    touches: Counter = Counter()
    for element in circuit.elements:
        if element.pos == element.neg:
            issues.append(make_issue(
                "SFQ011", element.name,
                f"both terminals on node {index_to_name.get(element.pos, element.pos)!r}",
                design=name))
        touches[element.pos] += 1
        touches[element.neg] += 1

    for node_index, count in sorted(touches.items()):
        if node_index == 0 or count > 1:
            continue
        issues.append(make_issue(
            "SFQ010", index_to_name.get(node_index, str(node_index)),
            "node is attached to exactly one element terminal (floating)",
            design=name))

    junctions = [e for e in circuit.elements
                 if isinstance(e, JosephsonJunction)]
    biases = [e for e in circuit.elements if isinstance(e, BiasCurrent)]
    if junctions and not biases:
        issues.append(make_issue(
            "SFQ012", junctions[0].name,
            f"deck has {len(junctions)} junction(s) but no DC bias source",
            design=name))
    return issues
