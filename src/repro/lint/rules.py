"""The rule catalog: stable IDs, default severities and descriptions.

Rule IDs are append-only: a published ID keeps its meaning forever so
``# lint: disable=SFQ00x`` suppressions stay valid across versions.  New
rules take the next free number.  See ``docs/architecture.md`` for the
how-to-add-a-rule walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.report import LintIssue, Severity


@dataclass(frozen=True)
class Rule:
    """Catalog entry for one check."""

    rule_id: str
    title: str
    severity: Severity
    description: str


_CATALOG: tuple[Rule, ...] = (
    Rule("SFQ001", "unsplit-fanout", Severity.ERROR,
         "An output pin drives more than one wire.  SFQ pulses cannot fan "
         "out; every multi-consumer point needs an explicit splitter tree "
         "(paper Section II-F)."),
    Rule("SFQ002", "multiply-driven-input", Severity.ERROR,
         "An input pin is driven by more than one wire.  Shared pins need "
         "an explicit merger (confluence buffer)."),
    Rule("SFQ003", "dangling-input", Severity.WARNING,
         "An input pin is neither wired nor declared as an external "
         "stimulus entry; the element can never receive that pulse."),
    Rule("SFQ004", "unclocked-clocked-element", Severity.ERROR,
         "A clocked element's clock/read strobe pin is undriven and not "
         "external, so the element can never be evaluated or read."),
    Rule("SFQ005", "merger-exclusivity", Severity.ERROR,
         "Both merger inputs are reachable from one common pulse origin "
         "with a path-delay skew inside the merger dead time; the second "
         "pulse would be silently dissipated."),
    Rule("SFQ006", "combinational-cycle", Severity.ERROR,
         "A pulse-propagation cycle is not cut by any storage-element "
         "data pin; the loop would oscillate."),
    Rule("SFQ007", "budget-mismatch", Severity.ERROR,
         "The design's JJ count or bias-power roll-up disagrees with the "
         "cell library or with the paper's per-design budget (Tables I "
         "and II) beyond tolerance."),
    Rule("SFQ008", "clock-data-race", Severity.ERROR,
         "A clocked element's data and clock pins reconverge from one "
         "common origin with overlapping arrival windows: whether data "
         "lands before the read strobe depends on fabrication skew."),
    Rule("SFQ009", "coincidence-unsatisfiable", Severity.ERROR,
         "A coincidence gate's (DAND) two inputs only ever receive pulses "
         "from one common origin whose fixed path skew exceeds the hold "
         "window; the gate can never fire."),
    Rule("SFQ010", "floating-node", Severity.ERROR,
         "A circuit-deck node is attached to exactly one element terminal "
         "and therefore carries no current path."),
    Rule("SFQ011", "shorted-element", Severity.ERROR,
         "A circuit-deck element has both terminals on the same node."),
    Rule("SFQ012", "unbiased-junction", Severity.WARNING,
         "A deck contains Josephson junctions but no DC bias source; the "
         "junctions can never be driven near critical current."),
    Rule("SFQ013", "dangling-gate", Severity.WARNING,
         "A gate-network node drives nothing and is not a primary output; "
         "its JJs are dead weight."),
    Rule("SFQ014", "unbalanced-fanin", Severity.WARNING,
         "A clocked gate's inputs arrive from different logic levels; "
         "RSFQ needs full path balancing (DRO buffers) or the late pulse "
         "slips into the next clock period."),
    Rule("SFQ015", "schedule-timing-violation", Severity.ERROR,
         "A generated port schedule violates the device timing "
         "constraints (53 ps enable separation, 10 ps reset-to-WEN)."),
    Rule("SFQ016", "schedule-index-range", Severity.ERROR,
         "A port schedule references a register outside the design's "
         "geometry."),
    Rule("SFQ017", "lvs-mismatch", Severity.ERROR,
         "LVS structural comparison between a golden circuit graph and a "
         "netlist parsed back from an interchange format (structural "
         "Verilog or a JoSIM/SPICE deck) found a mismatch: a missing or "
         "extra instance, swapped pins, a net split/merge, or parameter "
         "drift (see repro.interchange.lvs)."),
    Rule("SFQ018", "unmapped-foreign-cell", Severity.ERROR,
         "A parsed netlist instantiates a cell name the interchange "
         "mapper table cannot resolve to a known SFQ cell; the instance "
         "is opaque to the rule catalog and to LVS matching.  Register "
         "an alias on the CellMap or extend the cell table."),
)

RULES: dict[str, Rule] = {rule.rule_id: rule for rule in _CATALOG}


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None


def make_issue(rule_id: str, obj: str, message: str, design: str = "",
               severity: Severity | None = None) -> LintIssue:
    """Build an issue from the catalog, optionally overriding severity."""
    rule = get_rule(rule_id)
    return LintIssue(
        rule_id=rule.rule_id,
        severity=rule.severity if severity is None else severity,
        obj=obj,
        message=message,
        design=design,
    )


def catalog_text() -> str:
    """``--list-rules`` output: one line per rule."""
    lines = [f"{r.rule_id}  {str(r.severity):7s} {r.title:28s} {r.description}"
             for r in _CATALOG]
    return "\n".join(lines)
