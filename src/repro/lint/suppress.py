"""Inline lint suppressions.

A netlist builder (or any module whose objects end up in a lint run) can
silence a rule with a source comment::

    self.loop_merger = engine.add(Merger("hp.wmrg0"))  # lint: disable=SFQ005

Syntax: ``# lint: disable=<ID>[,<ID>...]``; each ID may carry an optional
object-name glob in brackets to scope the suppression::

    # lint: disable=SFQ003[hp.lb*],SFQ005

Without a glob the rule is silenced for every object of the lint run that
loaded the suppression.  Suppressed findings are not dropped - they move
to the report's ``suppressed`` list so CI artifacts keep an audit trail.
"""

from __future__ import annotations

import fnmatch
import inspect
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.report import LintIssue

_DIRECTIVE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\[\]\*\?\.,\- ]+)")
_ENTRY = re.compile(r"(?P<rule>[A-Z]+[0-9]+)(?:\[(?P<pattern>[^\]]+)\])?$")


@dataclass(frozen=True)
class Suppression:
    """One parsed directive entry: a rule ID plus an optional name glob.

    The provenance fields (``source``, ``line``, ``directive``) identify
    which ``# lint: disable=`` comment produced the entry; they are
    excluded from equality so two textually identical directives compare
    equal regardless of where they were written.
    """

    rule_id: str
    pattern: str | None = None
    source: str = field(default="", compare=False)
    line: int = field(default=0, compare=False)
    directive: str = field(default="", compare=False)

    def matches(self, issue: LintIssue) -> bool:
        if issue.rule_id != self.rule_id:
            return False
        if self.pattern is None:
            return True
        return fnmatch.fnmatchcase(issue.obj, self.pattern)

    def provenance(self) -> dict[str, object]:
        """Where the directive came from, for report audit trails."""
        return {
            "source": self.source,
            "line": self.line,
            "directive": self.directive,
        }


def parse_suppressions(text: str, source: str = "") -> list[Suppression]:
    """Extract every ``# lint: disable=`` directive from source text."""
    found: list[Suppression] = []
    for match in _DIRECTIVE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        for raw_entry in match.group(1).split(","):
            entry = raw_entry.strip()
            if not entry:
                continue
            parsed = _ENTRY.match(entry)
            if parsed is None:
                continue
            found.append(Suppression(parsed.group("rule"),
                                     parsed.group("pattern"),
                                     source=source, line=line,
                                     directive=match.group(0).strip()))
    return found


def suppressions_from_file(path: str | Path) -> list[Suppression]:
    path = Path(path)
    return parse_suppressions(path.read_text(encoding="utf-8"), str(path))


def suppressions_for(obj: object) -> list[Suppression]:
    """Directives from the source module that defines ``obj``'s class.

    This is how builder modules self-document expected findings: the
    lint driver collects directives from the module of every netlist
    object it analyses.
    """
    try:
        source_file = inspect.getsourcefile(type(obj))
    except TypeError:
        return []
    if source_file is None:
        return []
    return suppressions_from_file(source_file)
