"""Analyzer configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LintConfig:
    """Tunable thresholds shared by the rule passes.

    Attributes
    ----------
    race_margin_ps:
        Minimum static separation required between a clocked element's
        data and clock arrival windows when both reconverge from one
        origin (SFQ008).  Cells that declare their own spacing constraint
        (e.g. the HC-DRO 10 ps setup/hold) use the larger of the two.
    budget_tolerance:
        Relative tolerance for the JJ / bias-power budget cross-check
        against the paper's Tables I and II (SFQ007).  The census model
        tracks the paper within a few percent (worst case is the 4x4
        dual-bank at ~8.7%), so the default gate is 10%.
    """

    race_margin_ps: float = 5.0
    budget_tolerance: float = 0.10
