"""Structural rules over the circuit-graph IR (SFQ001-SFQ004, SFQ006).

These are pure graph checks: no timing is computed here.  Timing-aware
rules (merger exclusivity, clock/data races, coincidence satisfiability)
live in :mod:`repro.lint.timing`.
"""

from __future__ import annotations

from repro.lint.graph import CircuitGraph, NodeClass, PortRef
from repro.lint.report import LintIssue, Severity
from repro.lint.rules import make_issue

#: Kinds allowed to drive several wires from distinct pins by design;
#: a *single pin* driving several wires is still an error everywhere.
_SPLITTING_KINDS = {"splitter"}


def check_fanout(graph: CircuitGraph) -> list[LintIssue]:
    """SFQ001: every output pin drives at most one wire."""
    issues: list[LintIssue] = []
    for node in graph.nodes.values():
        for ref in graph.output_refs(node):
            sinks = graph.fanout(ref)
            if len(sinks) > 1:
                targets = ", ".join(str(e.dst) for e in sinks)
                issues.append(make_issue(
                    "SFQ001", str(ref),
                    f"drives {len(sinks)} wires ({targets}); insert a "
                    f"splitter tree", design=graph.name))
    return issues


def check_drivers(graph: CircuitGraph) -> list[LintIssue]:
    """SFQ002: every input pin is driven by at most one wire."""
    issues: list[LintIssue] = []
    for node in graph.nodes.values():
        for ref in graph.input_refs(node):
            drivers = graph.drivers(ref)
            if len(drivers) > 1:
                sources = ", ".join(str(e.src) for e in drivers)
                issues.append(make_issue(
                    "SFQ002", str(ref),
                    f"driven by {len(drivers)} wires ({sources}); shared "
                    f"pins need a merger", design=graph.name))
    return issues


def check_dangling(graph: CircuitGraph) -> list[LintIssue]:
    """SFQ003/SFQ004: undriven, non-external input pins.

    Severity depends on the pin's role:

    * clock/read-strobe pin on a clocked element -> SFQ004 *error* (the
      element can never be evaluated),
    * data pin on a logic gate -> SFQ003 *error* (a coincidence gate with
      one dead input can never fire),
    * data pin on storage -> SFQ003 *warning* (the cell is usable but a
      state transition is unreachable),
    * interconnect/sink input -> SFQ003 *info* (dead wiring).
    """
    issues: list[LintIssue] = []
    for node in graph.nodes.values():
        for port in node.inputs:
            ref = PortRef(node.name, port)
            if graph.drivers(ref) or ref in graph.externals:
                continue
            if port in node.clock_ports:
                issues.append(make_issue(
                    "SFQ004", str(ref),
                    f"clock pin of {node.kind} is undriven and not an "
                    f"external stimulus entry", design=graph.name))
                continue
            if node.node_class is NodeClass.LOGIC:
                severity = Severity.ERROR
            elif node.node_class is NodeClass.STORAGE:
                severity = Severity.WARNING
            else:
                severity = Severity.INFO
            issues.append(make_issue(
                "SFQ003", str(ref),
                f"input pin of {node.kind} is undriven and not external",
                design=graph.name, severity=severity))
    return issues


def check_cycles(graph: CircuitGraph) -> list[LintIssue]:
    """SFQ006: cycles in the pulse-propagation arc graph.

    Propagation follows wires plus each node's internal arcs.  Storage
    *data* pins have no arcs (a stored fluxon waits for a strobe), so
    legitimate feedback - e.g. HiPerRF's loopback write re-entering the
    HC-DRO ``d`` pins - is cut there.  Any cycle that survives is a ring
    of interconnect/logic that would oscillate.
    """
    # Pin-level adjacency: input pin -> output pin (arc), output -> input (wire).
    successors: dict[PortRef, list[PortRef]] = {}
    for node in graph.nodes.values():
        for arc in node.arcs:
            successors.setdefault(PortRef(node.name, arc.in_port), []).append(
                PortRef(node.name, arc.out_port))
    for edge in graph.edges:
        successors.setdefault(edge.src, []).append(edge.dst)

    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[PortRef, int] = {}
    cycle_nodes: set = set()

    def visit(start: PortRef) -> None:
        stack: list[tuple[PortRef, int]] = [(start, 0)]
        path: list[PortRef] = []
        while stack:
            ref, child = stack.pop()
            if child == 0:
                if colour.get(ref, WHITE) != WHITE:
                    continue
                colour[ref] = GREY
                path.append(ref)
            succ = successors.get(ref, [])
            if child < len(succ):
                stack.append((ref, child + 1))
                nxt = succ[child]
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    # Everything from nxt onwards in the path is on a cycle.
                    idx = path.index(nxt)
                    cycle_nodes.update(r.node for r in path[idx:])
                elif state == WHITE:
                    stack.append((nxt, 0))
            else:
                colour[ref] = BLACK
                path.pop()

    for ref in list(successors):
        if colour.get(ref, WHITE) == WHITE:
            visit(ref)

    issues: list[LintIssue] = []
    if cycle_nodes:
        members = sorted(cycle_nodes)
        shown = ", ".join(members[:8]) + (" ..." if len(members) > 8 else "")
        issues.append(make_issue(
            "SFQ006", members[0],
            f"pulse-propagation cycle through {len(members)} element(s) "
            f"with no storage data pin on it: {shown}", design=graph.name))
    return issues


def run_structural_passes(graph: CircuitGraph) -> list[LintIssue]:
    """All structural rules, in rule-ID order."""
    issues: list[LintIssue] = []
    issues.extend(check_fanout(graph))
    issues.extend(check_drivers(graph))
    issues.extend(check_dangling(graph))
    issues.extend(check_cycles(graph))
    return issues
