"""Static pulse-timing analysis: arrival windows and race rules.

The detector injects a virtual stimulus pulse at every *external* port at
t=0 and propagates, per origin, the earliest and latest possible arrival
along wires (JTL/PTL delays live on the edges) and internal arcs.  A node
reached from one origin over several paths - e.g. the three pulses of an
HC-CLK train - gets a conservative ``[min, max]`` arrival *window*.

Races are only statically decidable where two pins *reconverge from the
same origin*: their skew is then fixed by path delays, not by the test
bench schedule.  Three rules consume the windows:

* SFQ005 - both merger inputs hear one origin within the dead time,
* SFQ008 - a clocked element's data and clock pins hear one origin with
  windows closer than the setup/hold margin,
* SFQ009 - a coincidence (DAND) gate whose inputs *only* hear one common
  origin, always outside the hold window: it can never fire.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.lint.config import LintConfig
from repro.lint.graph import CircuitGraph, PortRef
from repro.lint.report import LintIssue
from repro.lint.rules import make_issue


@dataclass(frozen=True)
class Window:
    """Earliest/latest arrival of pulses from one origin at one pin."""

    min_ps: float
    max_ps: float

    def merge(self, other: "Window") -> "Window":
        return Window(min(self.min_ps, other.min_ps),
                      max(self.max_ps, other.max_ps))

    def shifted(self, delay_ps: float) -> "Window":
        return Window(self.min_ps + delay_ps, self.max_ps + delay_ps)

    def gap_to(self, other: "Window") -> float:
        """Smallest separation between the two windows (<= 0 if they overlap)."""
        return max(self.min_ps - other.max_ps, other.min_ps - self.max_ps)


#: Per-pin arrival windows keyed by origin port.
Arrivals = dict[PortRef, dict[PortRef, Window]]


#: One propagation step: destination pin, delay, and whether arrival
#: windows re-originate there (exclusive-routing outputs, see below).
_Step = tuple[PortRef, float, bool]


def _successors(graph: CircuitGraph) -> dict[PortRef, list[_Step]]:
    succ: dict[PortRef, list[_Step]] = {}
    for node in graph.nodes.values():
        exclusive = bool(node.params.get("exclusive_routing", False))
        for arc in node.arcs:
            succ.setdefault(PortRef(node.name, arc.in_port), []).append(
                (PortRef(node.name, arc.out_port), arc.delay_ps, exclusive))
    for edge in graph.edges:
        succ.setdefault(edge.src, []).append((edge.dst, edge.delay_ps, False))
    return succ


def propagate_arrivals(graph: CircuitGraph) -> Arrivals:
    """Per-origin min/max arrival at every reachable pin.

    Propagation is a relaxation over the pin graph in topological order
    (Kahn); pins on propagation cycles - already flagged by SFQ006 - are
    left unresolved rather than iterated to a fixpoint.

    Nodes flagged ``exclusive_routing`` (the NDROC: a CLK pulse exits the
    true *or* the complement output, never both) cut origin tracking:
    each of their output pins becomes a fresh origin.  Two paths through
    *different* outputs of one router are mutually exclusive in time and
    must not be compared; two paths from the *same* output still share
    the new origin and remain race-comparable.
    """
    succ = _successors(graph)
    indegree: dict[PortRef, int] = {}
    for ref, outs in succ.items():
        indegree.setdefault(ref, 0)
        for dst, _delay, _exclusive in outs:
            indegree[dst] = indegree.get(dst, 0) + 1

    arrivals: Arrivals = {}
    for origin in graph.externals:
        arrivals.setdefault(origin, {})[origin] = Window(0.0, 0.0)

    queue = deque(ref for ref, deg in indegree.items() if deg == 0)
    while queue:
        ref = queue.popleft()
        here = arrivals.get(ref, {})
        for dst, delay, exclusive in succ.get(ref, []):
            if here:
                slot = arrivals.setdefault(dst, {})
                if exclusive:
                    slot[dst] = Window(0.0, 0.0)
                else:
                    for origin, window in here.items():
                        moved = window.shifted(delay)
                        slot[origin] = (moved if origin not in slot
                                        else slot[origin].merge(moved))
            indegree[dst] -= 1
            if indegree[dst] == 0:
                queue.append(dst)
    return arrivals


# ---------------------------------------------------------------------------
# Race rules
# ---------------------------------------------------------------------------


def check_merger_exclusivity(graph: CircuitGraph,
                             arrivals: Arrivals) -> list[LintIssue]:
    """SFQ005: common-origin reconvergence inside the merger dead time."""
    issues: list[LintIssue] = []
    for node in graph.nodes.values():
        if node.kind != "merger":
            continue
        dead = float(node.params.get("dead_time_ps", 0.0))
        in0 = arrivals.get(PortRef(node.name, "in0"), {})
        in1 = arrivals.get(PortRef(node.name, "in1"), {})
        for origin in in0.keys() & in1.keys():
            gap = in0[origin].gap_to(in1[origin])
            if gap < dead:
                issues.append(make_issue(
                    "SFQ005", node.name,
                    f"inputs reconverge from {origin} with {gap:.1f} ps "
                    f"separation (< {dead:.1f} ps dead time); the later "
                    f"pulse would be dissipated", design=graph.name))
    return issues


def check_clock_data_races(graph: CircuitGraph, arrivals: Arrivals,
                           config: LintConfig) -> list[LintIssue]:
    """SFQ008: data and clock pins of a clocked element race."""
    issues: list[LintIssue] = []
    for node in graph.nodes.values():
        if not node.clock_ports or not node.data_ports:
            continue
        margin = max(config.race_margin_ps,
                     float(node.params.get("min_spacing_ps", 0.0)))
        for data_port in sorted(node.data_ports):
            data = arrivals.get(PortRef(node.name, data_port), {})
            if not data:
                continue
            for clock_port in sorted(node.clock_ports):
                clock = arrivals.get(PortRef(node.name, clock_port), {})
                for origin in data.keys() & clock.keys():
                    gap = data[origin].gap_to(clock[origin])
                    if gap < margin:
                        issues.append(make_issue(
                            "SFQ008", node.name,
                            f"{data_port} and {clock_port} reconverge from "
                            f"{origin} only {gap:.1f} ps apart "
                            f"(< {margin:.1f} ps setup/hold margin)",
                            design=graph.name))
    return issues


def check_coincidence(graph: CircuitGraph, arrivals: Arrivals) -> list[LintIssue]:
    """SFQ009: a DAND whose inputs can never coincide."""
    issues: list[LintIssue] = []
    for node in graph.nodes.values():
        if node.kind != "dand":
            continue
        hold = float(node.params.get("hold_window_ps", 0.0))
        origins_a = arrivals.get(PortRef(node.name, "a"), {})
        origins_b = arrivals.get(PortRef(node.name, "b"), {})
        if not origins_a or not origins_b:
            continue
        if set(origins_a) != set(origins_b):
            # Independently driven pins: coincidence is a scheduling
            # question the static analysis cannot decide.
            continue
        worst = min(origins_a[o].gap_to(origins_b[o]) for o in origins_a)
        if worst > hold:
            issues.append(make_issue(
                "SFQ009", node.name,
                f"inputs share origin(s) with a fixed skew of at least "
                f"{worst:.1f} ps (> {hold:.1f} ps hold window); the gate "
                f"can never fire", design=graph.name))
    return issues


def run_timing_passes(graph: CircuitGraph,
                      config: LintConfig | None = None) -> list[LintIssue]:
    """All timing rules over one graph."""
    cfg = config or LintConfig()
    arrivals = propagate_arrivals(graph)
    issues: list[LintIssue] = []
    issues.extend(check_merger_exclusivity(graph, arrivals))
    issues.extend(check_clock_data_races(graph, arrivals, cfg))
    issues.extend(check_coincidence(graph, arrivals))
    return issues
