"""``python -m repro.lint``: the static netlist verifier CLI.

Exit status encodes the gate decision: 0 when the report contains
nothing at or above ``--fail-on``, 1 otherwise.  ``--format json``
emits a machine-readable report for CI artifact collection.

JSON schema (stable for CI consumers)::

    {
      "analysed":   [<design/object label>, ...],
      "issues":     [{"rule": "SFQ001", "severity": "error",
                      "design": ..., "object": ..., "message": ...,
                      "rule_title": "unsplit-fanout",
                      "rule_severity": "error"}, ...],
      "suppressed": [<issue> + {"suppressed_by":
                      {"source": <file>, "line": <int>,
                       "directive": "# lint: disable=..."} | null}, ...],
      "summary":    {"errors": N, "warnings": N, "infos": N}
    }

``issues`` are sorted deterministically (severity desc, then design,
rule ID, object, message) — identical inputs produce byte-identical
reports, so CI diffs are meaningful.  ``severity`` is the effective
(possibly overridden) severity of the finding; ``rule_severity`` is the
catalog default.  ``suppressed_by`` records which ``# lint: disable=``
comment matched the finding.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.lint.config import LintConfig
from repro.lint.designs import BUILTIN_DESIGNS, DEFAULT_GEOMETRY, lint_all
from repro.lint.report import LintReport, Severity
from repro.lint.rules import catalog_text
from repro.rf import RFGeometry


def _parse_geometry(text: str) -> RFGeometry:
    try:
        registers, _, bits = text.partition("x")
        return RFGeometry(int(registers), int(bits))
    except (ValueError, ConfigError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad geometry {text!r} (want e.g. 8x8): {exc}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static SFQ netlist verifier and pulse-timing race "
                    "detector for the built-in register-file designs.")
    parser.add_argument(
        "--design", action="append", choices=BUILTIN_DESIGNS, default=None,
        help="design to lint (repeatable; default: all built-ins)")
    parser.add_argument(
        "--geometry", type=_parse_geometry, default=DEFAULT_GEOMETRY,
        metavar="NxW",
        help="pulse-netlist geometry to analyse (default: "
             f"{DEFAULT_GEOMETRY.label()})")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (default: human)")
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "info", "never"),
        default="error",
        help="lowest severity that makes the exit status non-zero "
             "(default: error)")
    parser.add_argument(
        "--no-budgets", action="store_true",
        help="skip the Table I/II budget cross-checks (SFQ007)")
    parser.add_argument(
        "--race-margin-ps", type=float, default=None, metavar="PS",
        help="override the SFQ008 setup/hold margin")
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="include info-level findings in the human report")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def _gate(report: LintReport, fail_on: str) -> int:
    if fail_on == "never":
        return 0
    threshold = Severity.parse(fail_on)
    worst = report.worst_severity()
    if worst is not None and worst >= threshold:
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(catalog_text())
        return 0
    config = LintConfig()
    if args.race_margin_ps is not None:
        config = LintConfig(race_margin_ps=args.race_margin_ps,
                            budget_tolerance=config.budget_tolerance)
    names = tuple(args.design) if args.design else BUILTIN_DESIGNS
    report = lint_all(names, geometry=args.geometry, config=config,
                      budgets=not args.no_budgets)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render(verbose=args.verbose))
    return _gate(report, args.fail_on)


if __name__ == "__main__":
    sys.exit(main())
