"""Seeded netlist mutations that LVS must detect.

A verification pass that always says "clean" is indistinguishable from
one that checks nothing, so the CI gate also runs *negative* tests:
emit a design, plant one defect, and require the LVS pass to flag it.
Four defect families cover the mismatch taxonomy:

* ``pin_swap``      - two driven input pins of one instance exchange
  their drivers (classic netlist transcription error),
* ``drop_wire``     - one wire disappears,
* ``extra_instance``- an instance is duplicated, inputs and all,
* ``rename_net``    - one occurrence of a net name in the emitted
  *text* is renamed, splitting the net (this one exercises the parser
  path end to end, not just the graph diff).

All choices are driven by ``random.Random(seed)`` over sorted
candidate lists, so every mutation is reproducible.
"""

from __future__ import annotations

import random
import re

from repro.interchange.cells import CellMap, DEFAULT_CELLMAP, InterchangeError
from repro.interchange.lvs import LVSReport, lvs
from repro.interchange.spice import emit_spice, parse_spice
from repro.interchange.verilog import emit_verilog, parse_verilog
from repro.lint.graph import CircuitGraph, Edge, GraphNode, PortRef

MUTATIONS: tuple[str, ...] = ("pin_swap", "drop_wire", "extra_instance",
                              "rename_net")

#: Mutations applied to the parsed graph (vs. the emitted text).
GRAPH_MUTATIONS: tuple[str, ...] = ("pin_swap", "drop_wire",
                                    "extra_instance")


def _copy_node(node: GraphNode) -> GraphNode:
    return GraphNode(node.name, node.kind, node.node_class, node.inputs,
                     node.outputs, node.arcs, node.clock_ports,
                     node.data_ports, dict(node.params))


def _rebuild(graph: CircuitGraph, nodes: list[GraphNode],
             edges: list[Edge]) -> CircuitGraph:
    out = CircuitGraph(graph.name)
    for node in nodes:
        out.add_node(_copy_node(node))
    for edge in edges:
        out.add_edge(edge.src, edge.dst, edge.delay_ps)
    for ref in graph.externals:
        out.mark_external(ref)
    return out


def _edge_key(edge: Edge) -> tuple[str, str, str, str]:
    return (edge.src.node, edge.src.port, edge.dst.node, edge.dst.port)


def apply_mutation(graph: CircuitGraph, mutation: str,
                   seed: int = 0) -> tuple[CircuitGraph, str]:
    """Return ``(mutated copy, human description)``."""
    rng = random.Random(seed)
    nodes = list(graph.nodes.values())
    edges = sorted(graph.edges, key=_edge_key)
    if mutation == "drop_wire":
        if not edges:
            raise InterchangeError(f"{graph.name}: no wires to drop")
        victim = rng.choice(edges)
        edges.remove(victim)
        return (_rebuild(graph, nodes, edges),
                f"dropped wire {victim.src} -> {victim.dst}")
    if mutation == "extra_instance":
        candidates = sorted(graph.nodes)
        original = graph.nodes[rng.choice(candidates)]
        dup = _copy_node(original)
        dup.name = f"{original.name}__dup"
        for edge in list(edges):
            if edge.dst.node == original.name:
                edges.append(Edge(edge.src, PortRef(dup.name, edge.dst.port),
                                  edge.delay_ps))
        return (_rebuild(graph, [*nodes, dup], edges),
                f"duplicated instance {original.name} as {dup.name}")
    if mutation == "pin_swap":
        candidates = []
        for name in sorted(graph.nodes):
            node = graph.nodes[name]
            driven = [p for p in node.inputs
                      if graph.drivers(PortRef(name, p))]
            for i, p in enumerate(driven):
                for q in driven[i + 1:]:
                    p_drv = {(e.src.node, e.src.port)
                             for e in graph.drivers(PortRef(name, p))}
                    q_drv = {(e.src.node, e.src.port)
                             for e in graph.drivers(PortRef(name, q))}
                    if p_drv != q_drv:
                        candidates.append((name, p, q))
        if not candidates:
            raise InterchangeError(
                f"{graph.name}: no instance has two distinct driven "
                "input pins to swap")
        name, p, q = rng.choice(candidates)
        swapped = []
        for edge in edges:
            if edge.dst == PortRef(name, p):
                swapped.append(Edge(edge.src, PortRef(name, q),
                                    edge.delay_ps))
            elif edge.dst == PortRef(name, q):
                swapped.append(Edge(edge.src, PortRef(name, p),
                                    edge.delay_ps))
            else:
                swapped.append(edge)
        return (_rebuild(graph, nodes, swapped),
                f"swapped drivers of {name}.{p} and {name}.{q}")
    raise InterchangeError(
        f"unknown graph mutation {mutation!r}; graph mutations: "
        f"{', '.join(GRAPH_MUTATIONS)}")


_VLOG_NET = re.compile(r"\\(n:\S+)")
_SPICE_NET = re.compile(r"(?<!\S)(n:\S+)(?!\S)")


def mutate_text(text: str, fmt: str, seed: int = 0) -> tuple[str, str]:
    """Rename one net occurrence in emitted text, splitting the net.

    Only non-comment lines count (renaming a net inside a delay pragma
    would change nothing structurally), and the *last* code occurrence
    is rewritten - declarations come first, so the rename always hits a
    live connection.
    """
    rng = random.Random(seed)
    pattern = _VLOG_NET if fmt == "verilog" else _SPICE_NET
    comment = "//" if fmt == "verilog" else "*"
    lines = text.splitlines()
    occurrences: dict[str, list[int]] = {}
    for idx, line in enumerate(lines):
        if line.lstrip().startswith(comment):
            continue
        for net in pattern.findall(line):
            occurrences.setdefault(net, []).append(idx)
    candidates = sorted(net for net, hits in occurrences.items()
                        if len(hits) >= 2)
    if not candidates:
        raise InterchangeError("no multiply-referenced net to rename")
    net = rng.choice(candidates)
    idx = occurrences[net][-1]
    old = f"\\{net} " if fmt == "verilog" else net
    new = (f"\\{net}__cut " if fmt == "verilog" else f"{net}__cut")
    pos = lines[idx].rfind(old)
    if fmt == "spice":
        # Token-exact replacement: net names can be prefixes of others.
        tokens = lines[idx].split()
        for t_idx in range(len(tokens) - 1, -1, -1):
            if tokens[t_idx] == net:
                tokens[t_idx] = new
                break
        lines[idx] = " ".join(tokens)
    else:
        lines[idx] = lines[idx][:pos] + new + lines[idx][pos + len(old):]
    return ("\n".join(lines) + "\n",
            f"renamed one use of net {net} to {net}__cut (net split)")


def mutated_roundtrip(graph: CircuitGraph, mutation: str, fmt: str,
                      cellmap: CellMap = DEFAULT_CELLMAP,
                      seed: int = 0) -> tuple[LVSReport, str]:
    """Emit, plant one defect, parse, LVS against the golden graph."""
    if mutation not in MUTATIONS:
        raise InterchangeError(
            f"unknown mutation {mutation!r}; known: {', '.join(MUTATIONS)}")
    emit = emit_verilog if fmt == "verilog" else emit_spice
    parse = parse_verilog if fmt == "verilog" else parse_spice
    text = emit(graph, cellmap)
    if mutation == "rename_net":
        text, description = mutate_text(text, fmt, seed)
        result = parse(text, cellmap)[0]
        candidate = result.graph
    else:
        result = parse(text, cellmap)[0]
        candidate, description = apply_mutation(result.graph, mutation, seed)
    report = lvs(graph, candidate, unmapped_cells=result.unknown_cells)
    return report, description
