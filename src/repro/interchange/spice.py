"""JoSIM/SPICE subcircuit-deck front end for the interchange layer.

One graph becomes one ``.subckt`` whose ports are the external stimulus
nets; every node is an ``X`` subcircuit instance with positional nets
in the cell's declaration order (unconnected pins get ``nc:`` filler
nets so positions stay aligned) and trailing ``key=value`` parameters.
Wire delays travel as ``* wire ...`` comment pragmas, exactly like the
Verilog emitter.

The parser handles ``+`` continuation lines, ``*`` comments, multiple
subcircuits per deck, and case-insensitive keywords; cell names resolve
through the :class:`~repro.interchange.cells.CellMap` with unresolved
cells reported for rule SFQ018.
"""

from __future__ import annotations

from repro.interchange.cells import (
    CellMap,
    DEFAULT_CELLMAP,
    InterchangeError,
    ParseResult,
    parse_value,
)
from repro.interchange.netio import (
    RawInstance,
    assemble_graph,
    check_emittable,
    external_nets,
    extract_externals,
    extract_pragmas,
    instance_params,
    nc_net,
    pin_nets,
    resolve_positional,
    sorted_nodes,
    wire_pragmas,
)
from repro.lint.graph import CircuitGraph, PortRef


def emit_spice(graph: CircuitGraph,
               cellmap: CellMap = DEFAULT_CELLMAP) -> str:
    """Lower one graph to a JoSIM/SPICE subcircuit deck."""
    check_emittable(graph)
    lines = [f"* repro.interchange format=spice version=1 "
             f"design={graph.name}"]
    header = [".subckt", graph.name, *external_nets(graph)]
    lines.append(" ".join(header))
    for node in sorted_nodes(graph):
        nets = [net if net is not None else nc_net(PortRef(node.name, port))
                for port, net in pin_nets(graph, node)]
        tokens = [f"X{node.name}", *nets, cellmap.cell_name(node.kind)]
        tokens.extend(f"{key}={value}" for key, value in instance_params(node))
        lines.append(" ".join(tokens))
    for body in wire_pragmas(graph):
        lines.append(f"* {body}")
    lines.append(f".ends {graph.name}")
    return "\n".join(lines) + "\n"


# -- parsing ----------------------------------------------------------------


def _logical_lines(text: str) -> list[str]:
    """Physical lines with ``+`` continuations folded in."""
    lines: list[str] = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped.startswith("+"):
            if not lines:
                raise InterchangeError("continuation line with no antecedent")
            lines[-1] += " " + stripped[1:].strip()
        else:
            lines.append(raw)
    return lines


def parse_spice(text: str,
                cellmap: CellMap = DEFAULT_CELLMAP) -> list[ParseResult]:
    """Parse every ``.subckt`` in a deck back into the IR.

    Pragma delays are scoped per subcircuit, mirroring the Verilog
    parser, since different subcircuits may reuse net names.
    """
    results: list[ParseResult] = []
    name: str | None = None
    port_nets: set[str] = set()
    instances: list[RawInstance] = []
    pragma_lines: list[str] = []
    for line in _logical_lines(text):
        stripped = line.strip()
        if not stripped:
            continue
        lowered = stripped.lower()
        if stripped.startswith("*"):
            pragma_lines.append(stripped)
            continue
        if lowered.startswith(".subckt"):
            if name is not None:
                raise InterchangeError(f"nested .subckt inside {name!r}")
            tokens = stripped.split()
            if len(tokens) < 2:
                raise InterchangeError(f"malformed header: {stripped!r}")
            name = tokens[1]
            port_nets = {t for t in tokens[2:] if "=" not in t}
            continue
        if lowered.startswith(".ends"):
            if name is None:
                raise InterchangeError(".ends outside a .subckt")
            pragma_text = "\n".join(pragma_lines)
            results.append(assemble_graph(
                name, instances, port_nets, extract_pragmas(pragma_text),
                cellmap, "spice", extract_externals(pragma_text)))
            name, port_nets, instances, pragma_lines = None, set(), [], []
            continue
        if stripped.startswith("."):
            continue  # .model / .param / analysis cards: not structural
        if name is None:
            raise InterchangeError(
                f"element line outside a .subckt: {stripped!r}")
        if not lowered.startswith("x"):
            continue  # discrete R/L/C/B elements: below the cell level
        tokens = stripped.split()
        params: dict[str, float | int] = {}
        plain: list[str] = []
        for token in tokens:
            if "=" in token:
                key, _, value = token.partition("=")
                params[key.lower()] = parse_value(value)
            else:
                plain.append(token)
        if len(plain) < 2:
            raise InterchangeError(f"malformed instance line: {stripped!r}")
        inst_name = plain[0][1:]
        cell_name = plain[-1]
        nets: list[str | None] = [None if net.startswith("nc:") else net
                                  for net in plain[1:-1]]
        kind = cellmap.resolve(cell_name)
        pins = resolve_positional(cell_name, kind, params, nets)
        instances.append(RawInstance(inst_name, cell_name, params, pins))
    if name is not None:
        raise InterchangeError(f".subckt {name!r} never closed with .ends")
    if not results:
        raise InterchangeError("no .subckt found - not a subcircuit deck")
    return results
