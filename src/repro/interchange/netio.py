"""Shared plumbing for the two interchange formats.

Both emitters name nets the same way (the net of a wire is
``n:<driver-node>.<driver-port>``; external stimulus pins become module
ports named ``ext:<node>.<port>``; SPICE's positional pin slots use
``nc:<node>.<port>`` placeholders for unconnected pins), and both
parsers reduce their syntax to the same intermediate: a list of
:class:`RawInstance` plus net-level metadata, which
:func:`assemble_graph` turns back into a
:class:`~repro.lint.graph.CircuitGraph`.

Wire delays have no structural home in either format, so they travel as
comment pragmas::

    // wire n:<src-node>.<src-port> -> <dst-node>.<dst-port> delay_ps=<v>
    * wire  n:<src-node>.<src-port> -> <dst-node>.<dst-port> delay_ps=<v>

one per nonzero-delay wire, keyed by net name on the way back in.

A second pragma handles a shape the port list cannot: an input pin that
is internally driven *and* an external stimulus entry (the demux
reset-tree roots are like this).  Such a pin connects to its driver's
net as usual and carries::

    // external <node>.<port>
    * external  <node>.<port>

so the external mark survives the round trip without inserting a
merger that would change the structure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.interchange.cells import (
    CellMap,
    InterchangeError,
    ParseResult,
    build_node,
    cell_spec,
    fmt_value,
    foreign_node,
    node_params,
    parse_value,
)
from repro.lint.graph import CircuitGraph, GraphNode, PortRef

_PRAGMA = re.compile(
    r"^\s*(?://|\*)\s*wire\s+(?P<net>\S+)\s*->\s*(?P<dst>\S+)\s+"
    r"delay_ps=(?P<delay>\S+)\s*$", re.MULTILINE)
_EXT_PRAGMA = re.compile(
    r"^\s*(?://|\*)\s*external\s+(?P<pin>\S+)\s*$", re.MULTILINE)


def edge_net(src: PortRef) -> str:
    return f"n:{src.node}.{src.port}"


def external_net(ref: PortRef) -> str:
    return f"ext:{ref.node}.{ref.port}"


def nc_net(ref: PortRef) -> str:
    return f"nc:{ref.node}.{ref.port}"


def check_emittable(graph: CircuitGraph) -> None:
    """Reject graphs that cannot be expressed as a legal netlist.

    The IR deliberately admits illegal wiring (that is what the lint
    rules analyse); the interchange formats do not - an output pin
    driving two wires or a doubly-driven input has no single-net
    encoding, and an externally stimulated pin cannot also have an
    internal driver.
    """
    for node in graph.nodes.values():
        for ref in graph.output_refs(node):
            if len(graph.fanout(ref)) > 1:
                raise InterchangeError(
                    f"{graph.name}: output {ref} fans out "
                    f"{len(graph.fanout(ref))} ways; insert a splitter "
                    "before emitting")
        for ref in graph.input_refs(node):
            if len(graph.drivers(ref)) > 1:
                raise InterchangeError(
                    f"{graph.name}: input {ref} has "
                    f"{len(graph.drivers(ref))} drivers; insert a merger "
                    "before emitting")
    for ref in graph.externals:
        node = graph.nodes.get(ref.node)
        if node is None or ref.port not in node.inputs:
            raise InterchangeError(
                f"{graph.name}: external {ref} is not an input pin of a "
                "known node")


def sorted_nodes(graph: CircuitGraph) -> list[GraphNode]:
    return sorted(graph.nodes.values(), key=lambda n: n.name)


def pin_nets(graph: CircuitGraph,
             node: GraphNode) -> list[tuple[str, str | None]]:
    """``(port, net)`` in declaration order; ``None`` for unconnected."""
    spec = cell_spec(node.kind)
    inputs, outputs = spec.ports(node_params(node))
    pins: list[tuple[str, str | None]] = []
    for port in inputs:
        ref = PortRef(node.name, port)
        driving = graph.drivers(ref)
        if driving:
            pins.append((port, edge_net(driving[0].src)))
        elif ref in graph.externals:
            pins.append((port, external_net(ref)))
        else:
            pins.append((port, None))
    for port in outputs:
        ref = PortRef(node.name, port)
        pins.append((port, edge_net(ref) if graph.fanout(ref) else None))
    return pins


def internal_nets(graph: CircuitGraph) -> list[str]:
    return sorted({edge_net(edge.src) for edge in graph.edges})


def external_nets(graph: CircuitGraph) -> list[str]:
    """Module-port nets: the *undriven* external pins.

    Driven external pins connect to their driver's net instead and are
    carried by ``external`` pragmas (see module docstring).
    """
    return sorted(external_net(ref) for ref in graph.externals
                  if not graph.drivers(ref))


def wire_pragmas(graph: CircuitGraph) -> list[str]:
    """Pragma bodies: nonzero wire delays + driven-external marks."""
    pragmas = []
    for edge in graph.edges:
        if edge.delay_ps:
            pragmas.append(f"wire {edge_net(edge.src)} -> {edge.dst} "
                           f"delay_ps={fmt_value(edge.delay_ps)}")
    for ref in graph.externals:
        if graph.drivers(ref):
            pragmas.append(f"external {ref}")
    return sorted(pragmas)


def extract_pragmas(text: str) -> dict[str, float]:
    """Net name -> wire delay from the comment pragmas."""
    delays: dict[str, float] = {}
    for match in _PRAGMA.finditer(text):
        delays[match.group("net")] = float(parse_value(match.group("delay")))
    return delays


def extract_externals(text: str) -> set[tuple[str, str]]:
    """``(node, port)`` pairs declared external by pragma."""
    pins: set[tuple[str, str]] = set()
    for match in _EXT_PRAGMA.finditer(text):
        node, dot, port = match.group("pin").rpartition(".")
        if dot:
            pins.add((node, port))
    return pins


def instance_params(node: GraphNode) -> list[tuple[str, str]]:
    """Formatted ``(key, value)`` parameter pairs, sorted by key."""
    return sorted((key, fmt_value(value))
                  for key, value in node_params(node).items())


@dataclass
class RawInstance:
    """One instance as seen by a parser, before graph assembly."""

    name: str
    cell_name: str
    params: dict[str, float | int]
    #: ``(port, net)`` pairs; ``None`` net means unconnected.
    pins: tuple[tuple[str, str | None], ...]


def resolve_positional(cell_name: str, kind: str | None,
                       params: dict[str, float | int],
                       nets: list[str | None]) -> tuple[tuple[str, str | None],
                                                        ...]:
    """Map positional net slots onto port names.

    Known cells use the spec's declaration order; foreign cells get
    synthetic ``p0..pN`` pin names (their direction is unknowable).
    """
    if kind is None:
        return tuple((f"p{i}", net) for i, net in enumerate(nets))
    spec = cell_spec(kind)
    inputs, outputs = spec.ports(params)
    ports = inputs + outputs
    if len(nets) != len(ports):
        raise InterchangeError(
            f"{cell_name}: {len(nets)} connections for "
            f"{len(ports)} ports {ports}")
    return tuple(zip(ports, nets))


def assemble_graph(module_name: str, instances: list[RawInstance],
                   port_nets: set[str], net_delays: dict[str, float],
                   cellmap: CellMap, fmt: str,
                   extra_externals: set[tuple[str, str]] | None = None,
                   ) -> ParseResult:
    """Common back half of both parsers: instances + nets -> graph."""
    graph = CircuitGraph(module_name)
    unknown: list[tuple[str, str]] = []
    for inst in instances:
        kind = cellmap.resolve(inst.cell_name)
        if kind is None:
            unknown.append((inst.name, inst.cell_name))
            node = foreign_node(inst.name, inst.cell_name,
                                tuple(port for port, _net in inst.pins))
        else:
            node = build_node(kind, inst.name, inst.params)
        graph.add_node(node)
    drivers: dict[str, list[PortRef]] = {}
    sinks: dict[str, list[PortRef]] = {}
    for inst in instances:
        node = graph.nodes[inst.name]
        outs = set(node.outputs)
        for port, net in inst.pins:
            if net is None:
                continue
            ref = PortRef(inst.name, port)
            (drivers if port in outs else sinks).setdefault(net, []).append(ref)
    for net in sorted(set(drivers) | set(sinks)):
        delay = net_delays.get(net, 0.0)
        for src in drivers.get(net, []):
            for dst in sinks.get(net, []):
                graph.add_edge(src, dst, delay)
    for net in sorted(port_nets):
        for ref in sinks.get(net, []):
            graph.mark_external(ref)
    for node_name, port in sorted(extra_externals or ()):
        node = graph.nodes.get(node_name)
        if node is not None and port in node.inputs:
            graph.mark_external(PortRef(node_name, port))
    return ParseResult(graph, tuple(unknown), fmt)
