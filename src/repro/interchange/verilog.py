"""Structural-Verilog front end for the interchange layer.

Emission uses escaped identifiers (``\\name`` with a terminating space)
throughout, so the IR's dotted hierarchical names (``hp.lb.m0``) survive
the round trip verbatim.  Everything is emitted in sorted order -
ports, wire declarations, instances, parameter lists, pragmas - so
emit -> parse -> emit is byte-stable.

The parser accepts a useful structural subset: ANSI or non-ANSI port
declarations, named or positional connections, ``#(...)`` parameter
overrides, ``//`` and ``/* */`` comments, and multiple modules per
file.  Cell names resolve through a :class:`~repro.interchange.cells.
CellMap`; unresolved cells become opaque nodes and are reported for
rule SFQ018.
"""

from __future__ import annotations

import re

from repro.interchange.cells import (
    CellMap,
    DEFAULT_CELLMAP,
    InterchangeError,
    ParseResult,
    parse_value,
)
from repro.interchange.netio import (
    RawInstance,
    assemble_graph,
    check_emittable,
    external_nets,
    extract_externals,
    extract_pragmas,
    instance_params,
    internal_nets,
    pin_nets,
    resolve_positional,
    sorted_nodes,
    wire_pragmas,
)
from repro.lint.graph import CircuitGraph

_KEYWORDS = frozenset({"module", "endmodule", "input", "output", "inout",
                       "wire"})


def _esc(name: str) -> str:
    """Escaped identifier; the trailing space is part of the syntax."""
    return f"\\{name} "


def emit_verilog(graph: CircuitGraph,
                 cellmap: CellMap = DEFAULT_CELLMAP) -> str:
    """Lower one graph to a structural-Verilog module."""
    check_emittable(graph)
    lines = [f"// repro.interchange format=verilog version=1 "
             f"design={graph.name}"]
    ports = external_nets(graph)
    if ports:
        lines.append(f"module {_esc(graph.name)}(")
        for i, net in enumerate(ports):
            comma = "," if i < len(ports) - 1 else ""
            lines.append(f"    input {_esc(net)}{comma}")
        lines.append(");")
    else:
        lines.append(f"module {_esc(graph.name)}();")
    for net in internal_nets(graph):
        lines.append(f"  wire {_esc(net)};")
    for node in sorted_nodes(graph):
        params = instance_params(node)
        cell = cellmap.cell_name(node.kind)
        override = ""
        if params:
            inner = ", ".join(f".{key.upper()}({value})"
                              for key, value in params)
            override = f"#({inner}) "
        conns = ", ".join(
            f".{port}({_esc(net) if net is not None else ''})"
            for port, net in pin_nets(graph, node))
        lines.append(f"  {cell} {override}{_esc(node.name)}({conns});")
    for body in wire_pragmas(graph):
        lines.append(f"  // {body}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


# -- parsing ----------------------------------------------------------------

_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
_LINE_COMMENT = re.compile(r"//[^\n]*")


def _tokenize(code: str) -> list[str]:
    """Verilog-subset tokenizer.

    Escaped identifiers (``\\...`` up to whitespace) come out without
    the backslash; ``#  ( ) , ; .`` are single-character tokens except
    that ``.`` inside a plain token (a real literal like ``2.3``) stays
    part of it.
    """
    tokens: list[str] = []
    i, n = 0, len(code)
    while i < n:
        ch = code[i]
        if ch.isspace():
            i += 1
        elif ch == "\\":
            j = i + 1
            while j < n and not code[j].isspace():
                j += 1
            tokens.append(code[i + 1:j])
            i = j
        elif ch in "#(),;":
            tokens.append(ch)
            i += 1
        elif ch == ".":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < n and not code[j].isspace() and code[j] not in "#(),;":
                j += 1
            tokens.append(code[i:j])
            i = j
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise InterchangeError("unexpected end of Verilog input")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise InterchangeError(
                f"expected {token!r}, got {got!r} (token {self.pos})")


def _parse_param_overrides(ts: _TokenStream) -> dict[str, float | int]:
    params: dict[str, float | int] = {}
    ts.expect("#")
    ts.expect("(")
    while ts.peek() != ")":
        ts.expect(".")
        key = ts.next()
        ts.expect("(")
        params[key.lower()] = parse_value(ts.next())
        ts.expect(")")
        if ts.peek() == ",":
            ts.next()
    ts.expect(")")
    return params


def _parse_connections(ts: _TokenStream) -> tuple[list[tuple[str, str | None]],
                                                  list[str | None]]:
    """Named connections (as pairs) or positional connections (as slots)."""
    named: list[tuple[str, str | None]] = []
    positional: list[str | None] = []
    ts.expect("(")
    while ts.peek() != ")":
        if ts.peek() == ".":
            ts.next()
            port = ts.next()
            ts.expect("(")
            net = None if ts.peek() == ")" else ts.next()
            ts.expect(")")
            named.append((port, net))
        elif ts.peek() == ",":
            ts.next()
            continue
        else:
            positional.append(ts.next())
    ts.expect(")")
    if named and positional:
        raise InterchangeError("mixed named and positional connections")
    return named, positional


def _parse_module(ts: _TokenStream, net_delays: dict[str, float],
                  extra_externals: set[tuple[str, str]],
                  cellmap: CellMap) -> ParseResult:
    name = ts.next()
    port_nets: set[str] = set()
    if ts.peek() == "(":
        ts.next()
        while ts.peek() != ")":
            token = ts.next()
            if token in _KEYWORDS or token == ",":
                continue
            port_nets.add(token)
        ts.next()
    ts.expect(";")
    instances: list[RawInstance] = []
    while True:
        token = ts.next()
        if token == "endmodule":
            break
        if token in ("wire", "input", "output", "inout"):
            declared = token
            while (inner := ts.next()) != ";":
                if inner != ",":
                    if declared != "wire":
                        port_nets.add(inner)
            continue
        cell_name = token
        params: dict[str, float | int] = {}
        if ts.peek() == "#":
            params = _parse_param_overrides(ts)
        inst_name = ts.next()
        named, positional = _parse_connections(ts)
        ts.expect(";")
        kind = cellmap.resolve(cell_name)
        if named:
            pins = tuple(named)
        else:
            pins = resolve_positional(cell_name, kind, params, positional)
        instances.append(RawInstance(inst_name, cell_name, params, pins))
    return assemble_graph(name, instances, port_nets, net_delays, cellmap,
                          "verilog", extra_externals)


def parse_verilog(text: str,
                  cellmap: CellMap = DEFAULT_CELLMAP) -> list[ParseResult]:
    """Parse every module in ``text`` back into the IR.

    Pragmas are scoped per module chunk: different modules in one file
    may legitimately reuse net names (the dual-bank design's two banks
    are structurally identical), so wire delays must not leak across
    module boundaries.
    """
    results: list[ParseResult] = []
    for chunk in re.split(r"(?<=\bendmodule\b)", text):
        if not chunk.strip():
            continue
        net_delays = extract_pragmas(chunk)
        extra_externals = extract_externals(chunk)
        code = _LINE_COMMENT.sub("", _BLOCK_COMMENT.sub("", chunk))
        ts = _TokenStream(_tokenize(code))
        while ts.peek() is not None:
            token = ts.next()
            if token != "module":
                raise InterchangeError(
                    f"expected 'module', got {token!r} - not structural "
                    "Verilog?")
            results.append(_parse_module(ts, net_delays, extra_externals,
                                         cellmap))
    if not results:
        raise InterchangeError("no Verilog modules found")
    return results
