"""LVS: structural equivalence between two circuit graphs.

Layout-versus-schematic style: instances are matched first by name
(round-trips preserve names, so this resolves almost everything), then
leftovers are matched by *canonical labeling* - a joint
Weisfeiler-Lehman-style iterative refinement over both graphs, where a
node's label folds in its kind, port list, external pins, and the
labels of its neighbours across named pins.  Running the refinement
jointly (one shared interning table, deterministic sorted assignment)
makes labels comparable across the two graphs without any naming
assumptions.

The output is a structured :class:`LVSReport`, not a bare pass/fail:
missing/extra instances, swapped pins (two ports whose driver sets are
exchanged), net splits/merges (lost or gained wires), wire-delay and
parameter drift, and external-pin disagreements - each anchored to an
instance so reports stay localized.  :meth:`LVSReport.to_issues` lifts
mismatches into lint rule SFQ017 and unmapped foreign cells into
SFQ018, so the standard lint gating and JSON report machinery apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interchange.cells import DEFAULT_CELLMAP, CellMap, fmt_value
from repro.interchange.spice import emit_spice, parse_spice
from repro.interchange.verilog import emit_verilog, parse_verilog
from repro.lint.graph import CircuitGraph, PortRef
from repro.lint.report import LintIssue
from repro.lint.rules import make_issue

#: Mismatch kinds, in the order :meth:`LVSReport.render` groups them.
MISMATCH_KINDS: tuple[str, ...] = (
    "missing-instance", "extra-instance", "kind-mismatch", "pin-swap",
    "missing-wire", "extra-wire", "delay-mismatch", "param-mismatch",
    "external-mismatch")


@dataclass(frozen=True)
class LVSMismatch:
    """One localized structural disagreement."""

    kind: str
    obj: str
    detail: str


@dataclass
class LVSReport:
    """Structured result of one golden-vs-candidate comparison."""

    golden: str
    candidate: str
    golden_nodes: int
    candidate_nodes: int
    matched: int
    mismatches: list[LVSMismatch] = field(default_factory=list)
    #: ``(instance, cell_name)`` pairs the parser could not resolve.
    unmapped_cells: tuple[tuple[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.unmapped_cells

    def sorted_mismatches(self) -> list[LVSMismatch]:
        order = {kind: i for i, kind in enumerate(MISMATCH_KINDS)}
        return sorted(self.mismatches,
                      key=lambda m: (order.get(m.kind, len(order)),
                                     m.obj, m.detail))

    def to_issues(self, design: str = "") -> list[LintIssue]:
        """SFQ017 per mismatch, SFQ018 per unmapped foreign cell."""
        design = design or self.golden
        issues = [make_issue("SFQ017", m.obj, f"{m.kind}: {m.detail}",
                             design=design)
                  for m in self.sorted_mismatches()]
        for inst, cell in sorted(self.unmapped_cells):
            issues.append(make_issue(
                "SFQ018", inst,
                f"cell {cell!r} is not in the mapper table; register an "
                "alias or extend the cell specs", design=design))
        return issues

    def render(self) -> str:
        status = "clean" if self.ok else "MISMATCH"
        lines = [f"LVS {self.golden} vs {self.candidate}: {status} "
                 f"({self.matched}/{self.golden_nodes} instances matched, "
                 f"{len(self.mismatches)} mismatch(es), "
                 f"{len(self.unmapped_cells)} unmapped cell(s))"]
        for m in self.sorted_mismatches():
            lines.append(f"  {m.kind:18s} {m.obj}: {m.detail}")
        for inst, cell in sorted(self.unmapped_cells):
            lines.append(f"  {'unmapped-cell':18s} {inst}: {cell}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "golden": self.golden,
            "candidate": self.candidate,
            "ok": self.ok,
            "golden_nodes": self.golden_nodes,
            "candidate_nodes": self.candidate_nodes,
            "matched": self.matched,
            "mismatches": [{"kind": m.kind, "object": m.obj,
                            "detail": m.detail}
                           for m in self.sorted_mismatches()],
            "unmapped_cells": [{"instance": inst, "cell": cell}
                               for inst, cell in sorted(self.unmapped_cells)],
        }


# -- canonical labeling -----------------------------------------------------


def _external_ports(graph: CircuitGraph) -> dict[str, set[str]]:
    by_node: dict[str, set[str]] = {}
    for ref in graph.externals:
        by_node.setdefault(ref.node, set()).add(ref.port)
    return by_node


def canonical_labels(graphs: list[CircuitGraph],
                     max_rounds: int = 32) -> list[dict[str, int]]:
    """Joint WL-style refinement: one label space across all graphs.

    Labels are interned deterministically (signatures sorted before
    numbering), so two structurally equivalent graphs get identical
    label multisets regardless of instance naming or file order.
    """
    externals = [_external_ports(g) for g in graphs]
    signatures: list[dict[str, object]] = []
    for g, ext in zip(graphs, externals):
        signatures.append({
            name: (node.kind, node.inputs, node.outputs,
                   tuple(sorted(ext.get(name, ()))))
            for name, node in g.nodes.items()})

    def intern(sigs: list[dict[str, object]]) -> list[dict[str, int]]:
        table = {sig: i for i, sig in
                 enumerate(sorted({repr(s) for per_graph in sigs
                                   for s in per_graph.values()}))}
        return [{name: table[repr(sig)] for name, sig in per_graph.items()}
                for per_graph in sigs]

    labels = intern(signatures)
    distinct = len({label for per_graph in labels
                    for label in per_graph.values()})
    for _ in range(max_rounds):
        new_sigs: list[dict[str, object]] = []
        for g, lab in zip(graphs, labels):
            per_graph: dict[str, object] = {}
            for name, node in g.nodes.items():
                incoming = sorted(
                    (edge.dst.port, edge.src.port, lab[edge.src.node])
                    for port in node.inputs
                    for edge in g.drivers(PortRef(name, port)))
                outgoing = sorted(
                    (edge.src.port, edge.dst.port, lab[edge.dst.node])
                    for port in node.outputs
                    for edge in g.fanout(PortRef(name, port)))
                per_graph[name] = (lab[name], tuple(incoming),
                                   tuple(outgoing))
            new_sigs.append(per_graph)
        labels = intern(new_sigs)
        new_distinct = len({label for per_graph in labels
                            for label in per_graph.values()})
        if new_distinct == distinct:
            break
        distinct = new_distinct
    return labels


# -- matching and diffing ---------------------------------------------------


def _match_instances(golden: CircuitGraph,
                     candidate: CircuitGraph) -> dict[str, str]:
    """Golden-name -> candidate-name instance correspondence."""
    match = {name: name for name in golden.nodes if name in candidate.nodes}
    g_left = sorted(set(golden.nodes) - set(match))
    c_left = sorted(set(candidate.nodes) - set(match.values()))
    if g_left and c_left:
        g_labels, c_labels = canonical_labels([golden, candidate])
        by_label: dict[int, list[str]] = {}
        for name in c_left:
            by_label.setdefault(c_labels[name], []).append(name)
        for name in g_left:
            pool = by_label.get(g_labels[name])
            if pool:
                match[name] = pool.pop(0)
    return match


def _fmt_param(value: object) -> str:
    if isinstance(value, (bool, int, float)):
        return fmt_value(value)
    return repr(value)


def lvs(golden: CircuitGraph, candidate: CircuitGraph, *,
        delay_tolerance_ps: float = 1e-6,
        unmapped_cells: tuple[tuple[str, str], ...] = ()) -> LVSReport:
    """Compare two graphs structurally; see the module docstring."""
    match = _match_instances(golden, candidate)
    report = LVSReport(golden=golden.name, candidate=candidate.name,
                       golden_nodes=len(golden.nodes),
                       candidate_nodes=len(candidate.nodes),
                       matched=len(match),
                       unmapped_cells=tuple(sorted(unmapped_cells)))
    mm = report.mismatches
    for name in sorted(set(golden.nodes) - set(match)):
        mm.append(LVSMismatch("missing-instance", name,
                              f"{golden.nodes[name].kind} instance absent "
                              "from candidate"))
    matched_cand = set(match.values())
    for name in sorted(set(candidate.nodes) - matched_cand):
        mm.append(LVSMismatch("extra-instance", name,
                              f"{candidate.nodes[name].kind} instance has "
                              "no golden counterpart (duplicate?)"))
    g_ext, c_ext = _external_ports(golden), _external_ports(candidate)
    for g_name in sorted(match):
        c_name = match[g_name]
        g_node, c_node = golden.nodes[g_name], candidate.nodes[c_name]
        obj = g_name if g_name == c_name else f"{g_name}~{c_name}"
        if g_node.kind != c_node.kind:
            mm.append(LVSMismatch("kind-mismatch", obj,
                                  f"golden is {g_node.kind}, candidate is "
                                  f"{c_node.kind}"))
            continue
        for key in sorted(set(g_node.params) | set(c_node.params)):
            gv = _fmt_param(g_node.params.get(key))
            cv = _fmt_param(c_node.params.get(key))
            if gv != cv:
                mm.append(LVSMismatch("param-mismatch", obj,
                                      f"{key}: golden {gv}, candidate {cv}"))
        g_arcs = sorted((a.in_port, a.out_port, fmt_value(a.delay_ps))
                        for a in g_node.arcs)
        c_arcs = sorted((a.in_port, a.out_port, fmt_value(a.delay_ps))
                        for a in c_node.arcs)
        if g_arcs != c_arcs:
            mm.append(LVSMismatch("param-mismatch", obj,
                                  f"internal arcs differ: golden {g_arcs}, "
                                  f"candidate {c_arcs}"))
        # Connectivity, input side: each port's driver set, with golden
        # driver names mapped through the instance correspondence.
        missing: dict[str, dict[tuple[str, str], float]] = {}
        extra: dict[str, dict[tuple[str, str], float]] = {}
        for port in g_node.inputs:
            g_drv = {(match.get(e.src.node, f"<unmatched:{e.src.node}>"),
                      e.src.port): e.delay_ps
                     for e in golden.drivers(PortRef(g_name, port))}
            c_drv = {(e.src.node, e.src.port): e.delay_ps
                     for e in candidate.drivers(PortRef(c_name, port))}
            for pin in set(g_drv) & set(c_drv):
                if abs(g_drv[pin] - c_drv[pin]) > delay_tolerance_ps:
                    mm.append(LVSMismatch(
                        "delay-mismatch", obj,
                        f"wire {pin[0]}.{pin[1]} -> {port}: golden "
                        f"{fmt_value(g_drv[pin])} ps, candidate "
                        f"{fmt_value(c_drv[pin])} ps"))
            lost = {pin: d for pin, d in g_drv.items() if pin not in c_drv}
            gained = {pin: d for pin, d in c_drv.items() if pin not in g_drv}
            if lost:
                missing[port] = lost
            if gained:
                extra[port] = gained
        # Swapped pins: two ports whose driver sets are exchanged.
        swapped: set[str] = set()
        ports = sorted(set(missing) | set(extra))
        for i, p in enumerate(ports):
            for q in ports[i + 1:]:
                if p in swapped or q in swapped:
                    continue
                if (set(missing.get(p, ())) == set(extra.get(q, ()))
                        and set(missing.get(q, ())) == set(extra.get(p, ()))
                        and missing.get(p) and missing.get(q)):
                    srcs = " and ".join(
                        f"{pin[0]}.{pin[1]}"
                        for pin in sorted(missing[p] | missing[q]))
                    mm.append(LVSMismatch(
                        "pin-swap", obj,
                        f"drivers of {p!r} and {q!r} are exchanged "
                        f"({srcs})"))
                    swapped.update((p, q))
        for port in ports:
            if port in swapped:
                continue
            for pin in sorted(missing.get(port, ())):
                mm.append(LVSMismatch(
                    "missing-wire", obj,
                    f"input {port!r} lost driver {pin[0]}.{pin[1]} "
                    "(dropped wire or net split)"))
            for pin in sorted(extra.get(port, ())):
                mm.append(LVSMismatch(
                    "extra-wire", obj,
                    f"input {port!r} gained driver {pin[0]}.{pin[1]} "
                    "(spurious wire or net merge)"))
        g_pins = set(g_ext.get(g_name, ()))
        c_pins = set(c_ext.get(c_name, ()))
        if g_pins != c_pins:
            mm.append(LVSMismatch(
                "external-mismatch", obj,
                f"external pins: golden {sorted(g_pins)}, candidate "
                f"{sorted(c_pins)}"))
    return report


def round_trip_lvs(graph: CircuitGraph, fmt: str,
                   cellmap: CellMap = DEFAULT_CELLMAP) -> LVSReport:
    """Emit ``graph`` in ``fmt``, parse it back, and LVS the result."""
    if fmt == "verilog":
        parsed = parse_verilog(emit_verilog(graph, cellmap), cellmap)
    elif fmt == "spice":
        parsed = parse_spice(emit_spice(graph, cellmap), cellmap)
    else:
        raise ValueError(f"unknown format {fmt!r} (want verilog or spice)")
    result = parsed[0]
    return lvs(graph, result.graph, unmapped_cells=result.unknown_cells)
