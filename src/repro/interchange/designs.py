"""Golden graphs the interchange CI gate round-trips.

The three built-in register files come straight from the lint driver's
:func:`~repro.lint.designs.pulse_graphs`; split/merge trees are added
as small standalone designs so the interconnect-only shapes (pure
splitter fan-out, pure merger fan-in) are covered independently of the
full register files.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.lint.designs import BUILTIN_DESIGNS, DEFAULT_GEOMETRY, pulse_graphs
from repro.lint.graph import CircuitGraph, graph_from_engine
from repro.pulse import Engine
from repro.pulse.primitives import Sink
from repro.pulse.splittree import MergeTree, SplitTree
from repro.rf import RFGeometry

#: Every design the LVS gate must round-trip cleanly.
INTERCHANGE_DESIGNS: tuple[str, ...] = (*BUILTIN_DESIGNS,
                                        "split_tree", "merge_tree")


def design_graphs(name: str,
                  geometry: RFGeometry | None = None) -> list[CircuitGraph]:
    """Golden graph(s) for one interchange design."""
    geometry = geometry or DEFAULT_GEOMETRY
    if name in BUILTIN_DESIGNS:
        return [graph for graph, _objects in pulse_graphs(name, geometry)]
    if name == "split_tree":
        engine = Engine()
        tree = SplitTree(engine, "st", geometry.num_registers)
        for i in range(tree.num_outputs):
            sink = engine.add(Sink(f"st.sink{i}"))
            tree.connect_output(i, sink, "in")
        return [graph_from_engine(engine, name, tree.external_inputs())]
    if name == "merge_tree":
        engine = Engine()
        tree = MergeTree(engine, "mt", geometry.num_registers)
        sink = engine.add(Sink("mt.sink"))
        comp, port = tree.out
        comp.connect(port, sink, "in")
        return [graph_from_engine(engine, name, tree.external_inputs())]
    raise ConfigError(f"unknown interchange design {name!r}; known: "
                      f"{', '.join(INTERCHANGE_DESIGNS)}")
