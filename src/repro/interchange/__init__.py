"""Netlist interchange: emit, parse and LVS-check external formats.

The lint :class:`~repro.lint.graph.CircuitGraph` IR becomes an
interchange hub here:

* :mod:`repro.interchange.verilog` / :mod:`repro.interchange.spice`
  lower any ``CircuitGraph`` to structural Verilog or a JoSIM/SPICE
  subcircuit deck, and parse both formats back into the IR via a
  cell-name mapper table (:mod:`repro.interchange.cells`) so the
  SFQ001-SFQ016 rule catalog runs unchanged over externally authored
  netlists,
* :mod:`repro.interchange.lvs` proves a parsed netlist structurally
  equivalent to its golden graph - canonical-labeling graph isomorphism
  with net/instance matching and a structured mismatch report, surfaced
  as lint rules SFQ017 (round-trip mismatch) and SFQ018 (unmapped
  foreign cell),
* :mod:`repro.interchange.mutate` seeds detectable defects (pin swaps,
  dropped wires, duplicated instances, net splits) so CI can prove the
  LVS pass actually *detects* divergence rather than merely passing.

``python -m repro.interchange`` exposes emit / parse / lvs subcommands;
``make lvs`` runs the round-trip + mutation gate over every built-in
design.
"""

from repro.interchange.cells import (
    DEFAULT_CELLMAP,
    CellMap,
    CellSpec,
    InterchangeError,
    ParseResult,
    build_node,
    cell_spec,
    fmt_value,
    node_params,
)
from repro.interchange.designs import INTERCHANGE_DESIGNS, design_graphs
from repro.interchange.lvs import LVSMismatch, LVSReport, lvs, round_trip_lvs
from repro.interchange.mutate import MUTATIONS, apply_mutation, mutated_roundtrip
from repro.interchange.spice import emit_spice, parse_spice
from repro.interchange.verilog import emit_verilog, parse_verilog

__all__ = [
    "DEFAULT_CELLMAP",
    "INTERCHANGE_DESIGNS",
    "CellMap",
    "CellSpec",
    "InterchangeError",
    "LVSMismatch",
    "LVSReport",
    "MUTATIONS",
    "ParseResult",
    "apply_mutation",
    "build_node",
    "cell_spec",
    "design_graphs",
    "emit_spice",
    "emit_verilog",
    "fmt_value",
    "lvs",
    "mutated_roundtrip",
    "node_params",
    "parse_spice",
    "parse_verilog",
    "round_trip_lvs",
]
