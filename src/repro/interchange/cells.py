"""The interchange cell table and cell-name mapper.

Both emitters (Verilog / SPICE) and both parsers share one vocabulary:
a :class:`CellSpec` per graph ``kind`` naming the canonical interchange
cell, its port list in declaration order, and which parameters travel
with an instance.  Foreign netlists rarely use our canonical names, so
a :class:`CellMap` resolves external cell names (RSFQlib-style
``SPLITT``, ``DFFT``, ``NDROT``, ...) onto the same specs; anything it
cannot resolve surfaces as rule SFQ018 (unmapped-foreign-cell).

Round-trip fidelity contract: for any node lowered by
:func:`repro.lint.graph.graph_from_engine`,
``build_node(spec, node.name, node_params(node))`` reproduces the node
exactly (same arcs, port classes and params), which is what makes
emit -> parse -> LVS a zero-mismatch identity on the built designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.graph import Arc, CircuitGraph, GraphNode, NodeClass


class InterchangeError(Exception):
    """A graph cannot be emitted, or a netlist cannot be parsed."""


def fmt_value(value: float | int | bool) -> str:
    """Canonical parameter formatting shared by both emitters.

    ``%.9g`` is a fixed point after one round-trip: a decimal with at
    most nine significant digits parses to a double that re-formats to
    the same string, so emit -> parse -> emit is byte-stable.
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{value:.9g}"


def parse_value(text: str) -> float | int:
    """Inverse of :func:`fmt_value` for netlist parameter tokens."""
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            raise InterchangeError(f"bad parameter value {text!r}") from None


@dataclass(frozen=True)
class CellSpec:
    """One graph ``kind`` as seen by the interchange formats."""

    kind: str
    cell_name: str
    node_class: NodeClass
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    clock_ports: frozenset[str]
    data_ports: frozenset[str]
    #: Name of the parameter carrying the (uniform) internal arc delay,
    #: or ``None`` for kinds with no delay parameter (probe, sink).
    delay_param: str | None
    #: ``node.params`` keys that travel with an instance.
    float_params: tuple[str, ...] = ()
    #: Structural integer parameters (``bits``, ``arity``).
    int_params: tuple[str, ...] = ()

    def ports(self, params: dict[str, float | int]) -> tuple[tuple[str, ...],
                                                             tuple[str, ...]]:
        """Declaration-order ``(inputs, outputs)`` for one instance."""
        if self.kind == "counter":
            bits = int(params.get("bits", 2))
            return self.inputs, tuple(f"b{i}" for i in range(bits))
        return self.inputs, self.outputs


_SPECS: tuple[CellSpec, ...] = (
    CellSpec("splitter", "SFQ_SPLITTER", NodeClass.INTERCONNECT,
             ("in",), ("out0", "out1"),
             frozenset(), frozenset(), "delay_ps"),
    CellSpec("merger", "SFQ_MERGER", NodeClass.INTERCONNECT,
             ("in0", "in1"), ("out",),
             frozenset(), frozenset(), "delay_ps",
             float_params=("dead_time_ps",)),
    CellSpec("jtl", "SFQ_JTL", NodeClass.INTERCONNECT,
             ("in",), ("out",),
             frozenset(), frozenset(), "delay_ps"),
    CellSpec("ptl", "SFQ_PTL", NodeClass.INTERCONNECT,
             ("in",), ("out",),
             frozenset(), frozenset(), "delay_ps"),
    CellSpec("probe", "SFQ_PROBE", NodeClass.INTERCONNECT,
             ("in",), ("out",),
             frozenset(), frozenset(), None),
    CellSpec("sink", "SFQ_SINK", NodeClass.SINK,
             ("in",), (),
             frozenset(), frozenset(), None),
    CellSpec("dand", "SFQ_DAND", NodeClass.LOGIC,
             ("a", "b"), ("out",),
             frozenset(), frozenset({"a", "b"}), "delay_ps",
             float_params=("hold_window_ps",)),
    CellSpec("clocked_gate", "SFQ_CLOCKED_GATE", NodeClass.LOGIC,
             ("a", "b", "clk"), ("out",),
             frozenset({"clk"}), frozenset({"a", "b"}), "delay_ps",
             int_params=("arity",)),
    CellSpec("dro", "SFQ_DRO", NodeClass.STORAGE,
             ("d", "clk"), ("q",),
             frozenset({"clk"}), frozenset({"d"}), "clk_to_q_ps"),
    CellSpec("hcdro", "SFQ_HCDRO", NodeClass.STORAGE,
             ("d", "clk"), ("q",),
             frozenset({"clk"}), frozenset({"d"}), "clk_to_q_ps",
             float_params=("min_spacing_ps",)),
    CellSpec("ndro", "SFQ_NDRO", NodeClass.STORAGE,
             ("set", "reset", "clk"), ("out",),
             frozenset({"clk"}), frozenset({"set", "reset"}), "clk_to_q_ps"),
    CellSpec("ndroc", "SFQ_NDROC", NodeClass.STORAGE,
             ("set", "reset", "clk"), ("out0", "out1"),
             frozenset({"clk"}), frozenset({"set", "reset"}),
             "propagation_ps", float_params=("min_separation_ps",)),
    CellSpec("tff", "SFQ_TFF", NodeClass.STORAGE,
             ("t", "read", "reset"), ("carry", "q"),
             frozenset({"read"}), frozenset({"t", "reset"}), "delay_ps"),
    CellSpec("counter", "SFQ_COUNTER", NodeClass.STORAGE,
             ("in", "read", "reset"), (),
             frozenset({"read"}), frozenset({"in", "reset"}), "delay_ps",
             int_params=("bits",)),
)

SPECS_BY_KIND: dict[str, CellSpec] = {s.kind: s for s in _SPECS}


def cell_spec(kind: str) -> CellSpec:
    try:
        return SPECS_BY_KIND[kind]
    except KeyError:
        known = ", ".join(sorted(SPECS_BY_KIND))
        raise InterchangeError(
            f"no interchange cell for graph kind {kind!r}; "
            f"known kinds: {known}") from None


def node_params(node: GraphNode) -> dict[str, float | int]:
    """Instance parameters for one graph node, in emission order.

    The internal arc delay is required to be uniform (it always is for
    nodes lowered from the pulse engine); a non-uniform node cannot be
    expressed as a single interchange instance.
    """
    spec = cell_spec(node.kind)
    params: dict[str, float | int] = {}
    if spec.delay_param is not None:
        delays = {arc.delay_ps for arc in node.arcs}
        if len(delays) > 1:
            raise InterchangeError(
                f"{node.name}: non-uniform arc delays {sorted(delays)} "
                "cannot be expressed as one interchange parameter")
        params[spec.delay_param] = delays.pop() if delays else 0.0
    for key in spec.float_params:
        params[key] = float(node.params.get(key, 0.0))
    if node.kind == "counter":
        params["bits"] = len(node.outputs)
    elif node.kind == "clocked_gate":
        params["arity"] = len(node.data_ports)
    return params


def build_node(kind: str, name: str,
               params: dict[str, float | int]) -> GraphNode:
    """Rebuild a graph node from an interchange instance.

    Mirrors :func:`repro.lint.graph._lower_component` exactly, so the
    SFQ001-SFQ016 catalog sees parsed netlists the same way it sees
    engine-lowered ones.
    """
    spec = cell_spec(kind)
    inputs, outputs = spec.ports(params)
    delay = float(params.get(spec.delay_param, 0.0)) \
        if spec.delay_param is not None else 0.0

    def fparam(key: str) -> float:
        return float(params.get(key, 0.0))

    if kind == "splitter":
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("in", "out0", delay),
                               Arc("in", "out1", delay)))
    if kind == "merger":
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("in0", "out", delay),
                               Arc("in1", "out", delay)),
                         params={"dead_time_ps": fparam("dead_time_ps")})
    if kind in ("jtl", "ptl"):
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("in", "out", delay),))
    if kind == "probe":
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("in", "out", 0.0),))
    if kind == "sink":
        return GraphNode(name, kind, spec.node_class, inputs, outputs)
    if kind == "dand":
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("a", "out", delay),
                               Arc("b", "out", delay)),
                         data_ports=spec.data_ports,
                         params={"hold_window_ps": fparam("hold_window_ps")})
    if kind == "clocked_gate":
        arity = int(params.get("arity", 2))
        data = frozenset({"a", "b"} if arity == 2 else {"a"})
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("clk", "out", delay),),
                         clock_ports=spec.clock_ports, data_ports=data)
    if kind in ("dro", "hcdro"):
        extra = ({"min_spacing_ps": fparam("min_spacing_ps")}
                 if kind == "hcdro" else {})
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("clk", "q", delay),),
                         clock_ports=spec.clock_ports,
                         data_ports=spec.data_ports, params=extra)
    if kind == "ndroc":
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("clk", "out0", delay),
                               Arc("clk", "out1", delay)),
                         clock_ports=spec.clock_ports,
                         data_ports=spec.data_ports,
                         params={"min_separation_ps":
                                 fparam("min_separation_ps"),
                                 "exclusive_routing": True})
    if kind == "ndro":
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("clk", "out", delay),),
                         clock_ports=spec.clock_ports,
                         data_ports=spec.data_ports)
    if kind == "tff":
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=(Arc("t", "carry", delay),
                               Arc("read", "q", delay)),
                         clock_ports=spec.clock_ports,
                         data_ports=spec.data_ports)
    if kind == "counter":
        arcs = tuple(Arc("read", out, delay) for out in outputs)
        return GraphNode(name, kind, spec.node_class, inputs, outputs,
                         arcs=arcs, clock_ports=spec.clock_ports,
                         data_ports=spec.data_ports)
    raise InterchangeError(f"unhandled kind {kind!r}")  # pragma: no cover


def foreign_node(name: str, cell_name: str,
                 pins: tuple[str, ...]) -> GraphNode:
    """An opaque node for an instance whose cell name did not resolve.

    Pin directions are unknowable, so every connected pin is treated as
    an input; the instance is flagged separately via SFQ018.
    """
    return GraphNode(name, cell_name.lower(), NodeClass.OTHER, pins, ())


#: RSFQlib-shaped external cell names the default mapper understands.
DEFAULT_ALIASES: dict[str, str] = {
    "SPLIT": "splitter", "SPLITT": "splitter", "SPL": "splitter",
    "MERGE": "merger", "MERGET": "merger", "CBUFF": "merger",
    "CBUFFT": "merger",
    "JTL": "jtl", "JTLT": "jtl",
    "PTL": "ptl", "PTLTX": "ptl",
    "DFF": "dro", "DFFT": "dro", "DROT": "dro", "DRO": "dro",
    "HCDRO": "hcdro",
    "NDRO": "ndro", "NDROT": "ndro",
    "NDROC": "ndroc", "NDROCT": "ndroc",
    "TFF": "tff", "TFFT": "tff",
    "DAND": "dand", "DANDT": "dand",
    "AND2T": "clocked_gate", "OR2T": "clocked_gate",
    "XOR2T": "clocked_gate", "NOTT": "clocked_gate",
    "BUFFT": "clocked_gate",
    "SINK": "sink", "SINKT": "sink",
}


class CellMap:
    """Cell-name resolution table for parsing external netlists.

    Canonical interchange names (``SFQ_SPLITTER``, ...) always resolve;
    aliases map foreign library names onto the same kinds.  Lookup is
    case-insensitive, as SPICE netlists are.
    """

    def __init__(self, aliases: dict[str, str] | None = None, *,
                 include_defaults: bool = True) -> None:
        self._table: dict[str, str] = {}
        for spec in _SPECS:
            self._table[spec.cell_name.upper()] = spec.kind
        if include_defaults:
            for alias, kind in DEFAULT_ALIASES.items():
                self.register_alias(alias, kind)
        if aliases:
            for alias, kind in aliases.items():
                self.register_alias(alias, kind)

    def register_alias(self, cell_name: str, kind: str) -> None:
        cell_spec(kind)  # validate the target kind exists
        self._table[cell_name.upper()] = kind

    def resolve(self, cell_name: str) -> str | None:
        """Graph kind for an external cell name, or ``None``."""
        return self._table.get(cell_name.upper())

    def cell_name(self, kind: str) -> str:
        """Canonical interchange cell name for a graph kind."""
        return cell_spec(kind).cell_name


DEFAULT_CELLMAP = CellMap()


@dataclass
class ParseResult:
    """One module/subcircuit parsed back into the IR."""

    graph: CircuitGraph
    #: ``(instance, cell_name)`` pairs the mapper could not resolve.
    unknown_cells: tuple[tuple[str, str], ...]
    fmt: str
