"""Module entry point: ``python -m repro.interchange``."""

import sys

from repro.interchange.cli import main

sys.exit(main())
