"""``python -m repro.interchange``: emit / parse / lvs front end.

Subcommands::

    emit   --design D [--geometry NxW] [--format verilog|spice] [-o FILE]
    parse  FILE [--format auto|verilog|spice] [--json] [--fail-on SEV]
    lvs    [--design D ...] [--geometry NxW] [--formats F] [--json]
           [--report PATH] [--with-mutations] [--seed N]
    lvs    --files GOLDEN CANDIDATE [--json]

``emit`` lowers a built-in design to structural Verilog or a
JoSIM/SPICE deck.  ``parse`` reads either format back into the
CircuitGraph IR and runs the full SFQ001-SFQ016 rule catalog over it
(plus SFQ018 for unmapped cells), gated like ``python -m repro.lint``.
``lvs`` is the CI gate: it round-trips every requested design through
the requested formats and requires a zero-mismatch LVS report;
``--with-mutations`` additionally plants one seeded defect per
(design, format, mutation) and requires LVS to *detect* it.

``lvs`` JSON schema (written by ``--json`` / ``--report``)::

    {
      "geometry": "8x8",
      "formats": ["verilog", "spice"],
      "roundtrips": [{"design": ..., "graph": ..., "format": ...,
                      "ok": bool, ... per-LVSReport fields,
                      "mismatches": [{"kind", "object", "detail"}, ...],
                      "unmapped_cells": [...]}, ...],
      "mutations": [{"design": ..., "graph": ..., "format": ...,
                     "mutation": ..., "description": ...,
                     "detected": bool, "mismatches": N}, ...],
      "summary": {"roundtrips": N, "clean": N,
                  "mutations": N, "detected": N, "ok": bool}
    }

Exit status: 0 when every round-trip is clean and every seeded
mutation is detected, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.errors import ConfigError
from repro.interchange.cells import DEFAULT_CELLMAP, InterchangeError
from repro.interchange.designs import INTERCHANGE_DESIGNS, design_graphs
from repro.interchange.lvs import lvs, round_trip_lvs
from repro.interchange.mutate import MUTATIONS, mutated_roundtrip
from repro.interchange.spice import emit_spice, parse_spice
from repro.interchange.verilog import emit_verilog, parse_verilog
from repro.lint.designs import DEFAULT_GEOMETRY, lint_graph
from repro.lint.report import LintReport, Severity
from repro.lint.rules import make_issue
from repro.rf import RFGeometry

FORMATS: tuple[str, ...] = ("verilog", "spice")


def _parse_geometry(text: str) -> RFGeometry:
    try:
        registers, _, bits = text.partition("x")
        return RFGeometry(int(registers), int(bits))
    except (ValueError, ConfigError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad geometry {text!r} (want e.g. 8x8): {exc}") from None


def _parse_formats(text: str) -> tuple[str, ...]:
    if text == "both":
        return FORMATS
    formats = tuple(part.strip() for part in text.split(",") if part.strip())
    for fmt in formats:
        if fmt not in FORMATS:
            raise argparse.ArgumentTypeError(
                f"unknown format {fmt!r} (want verilog, spice or both)")
    return formats


def detect_format(text: str) -> str:
    """``spice`` when a ``.subckt`` card appears, else ``verilog``."""
    if re.search(r"^\s*\.subckt\b", text, re.MULTILINE | re.IGNORECASE):
        return "spice"
    return "verilog"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.interchange",
        description="Netlist interchange (structural Verilog + JoSIM/SPICE) "
                    "and LVS equivalence checking for the SFQ designs.")
    sub = parser.add_subparsers(dest="command", required=True)

    emit = sub.add_parser("emit", help="lower a built-in design")
    emit.add_argument("--design", choices=INTERCHANGE_DESIGNS,
                      required=True)
    emit.add_argument("--geometry", type=_parse_geometry,
                      default=DEFAULT_GEOMETRY, metavar="NxW")
    emit.add_argument("--format", choices=FORMATS, default="verilog")
    emit.add_argument("-o", "--output", default=None, metavar="FILE",
                      help="write to FILE instead of stdout")

    parse = sub.add_parser("parse", help="parse a netlist and lint it")
    parse.add_argument("file", metavar="FILE")
    parse.add_argument("--format", choices=("auto", *FORMATS),
                       default="auto")
    parse.add_argument("--json", action="store_true",
                       help="emit the lint JSON report")
    parse.add_argument("--fail-on",
                       choices=("error", "warning", "info", "never"),
                       default="error")

    gate = sub.add_parser("lvs", help="round-trip LVS gate")
    gate.add_argument("--design", action="append",
                      choices=INTERCHANGE_DESIGNS, default=None,
                      help="design to round-trip (repeatable; default all)")
    gate.add_argument("--geometry", type=_parse_geometry,
                      default=DEFAULT_GEOMETRY, metavar="NxW")
    gate.add_argument("--formats", type=_parse_formats, default=FORMATS,
                      metavar="F", help="verilog, spice or both")
    gate.add_argument("--files", nargs=2, metavar=("GOLDEN", "CANDIDATE"),
                      default=None,
                      help="compare two netlist files instead of "
                           "round-tripping built-ins")
    gate.add_argument("--json", action="store_true")
    gate.add_argument("--report", default=None, metavar="PATH",
                      help="also write the JSON report to PATH")
    gate.add_argument("--with-mutations", action="store_true",
                      help="verify seeded defects are detected")
    gate.add_argument("--seed", type=int, default=0)
    return parser


def _parse_file(path: str, fmt: str) -> tuple[str, list]:
    text = Path(path).read_text(encoding="utf-8")
    fmt = detect_format(text) if fmt == "auto" else fmt
    parser = parse_verilog if fmt == "verilog" else parse_spice
    return fmt, parser(text, DEFAULT_CELLMAP)


def _cmd_emit(args: argparse.Namespace) -> int:
    emitter = emit_verilog if args.format == "verilog" else emit_spice
    text = "".join(emitter(graph)
                   for graph in design_graphs(args.design, args.geometry))
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_parse(args: argparse.Namespace) -> int:
    _fmt, results = _parse_file(args.file, args.format)
    report = LintReport()
    for result in results:
        report.merge(lint_graph(result.graph))
        for inst, cell in sorted(result.unknown_cells):
            report.add(make_issue(
                "SFQ018", inst,
                f"cell {cell!r} is not in the mapper table",
                design=result.graph.name))
    print(report.to_json() if args.json else report.render())
    if args.fail_on == "never":
        return 0
    worst = report.worst_severity()
    return int(worst is not None and worst >= Severity.parse(args.fail_on))


def _cmd_lvs_files(args: argparse.Namespace) -> int:
    _gfmt, golden = _parse_file(args.files[0], "auto")
    _cfmt, candidate = _parse_file(args.files[1], "auto")
    by_name = {r.graph.name: r for r in candidate}
    reports = []
    for g_result in golden:
        c_result = by_name.get(g_result.graph.name)
        if c_result is None:
            if len(golden) == 1 and len(candidate) == 1:
                c_result = candidate[0]
            else:
                print(f"no candidate module matches {g_result.graph.name!r}")
                return 1
        reports.append(lvs(g_result.graph, c_result.graph,
                           unmapped_cells=(g_result.unknown_cells
                                           + c_result.unknown_cells)))
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render())
    return int(not all(r.ok for r in reports))


def run_lvs_gate(designs: Sequence[str], geometry: RFGeometry,
                 formats: Sequence[str], *, with_mutations: bool = False,
                 seed: int = 0) -> dict:
    """The machine-readable round-trip (+ mutation-detection) gate."""
    roundtrips = []
    mutations = []
    for design in designs:
        graphs = design_graphs(design, geometry)
        for graph in graphs:
            for fmt in formats:
                report = round_trip_lvs(graph, fmt)
                entry = {"design": design, "graph": graph.name,
                         "format": fmt}
                entry.update(report.as_dict())
                roundtrips.append(entry)
        if with_mutations:
            # One graph per design keeps the gate fast; the dual-bank
            # banks are structurally identical anyway.
            graph = graphs[0]
            for fmt in formats:
                for mutation in MUTATIONS:
                    try:
                        report, description = mutated_roundtrip(
                            graph, mutation, fmt, seed=seed)
                    except InterchangeError as exc:
                        # Not every defect family applies to every
                        # topology (a pure splitter tree has no
                        # two-input instance to pin-swap).
                        mutations.append({
                            "design": design, "graph": graph.name,
                            "format": fmt, "mutation": mutation,
                            "description": str(exc),
                            "detected": None, "mismatches": 0,
                        })
                        continue
                    mutations.append({
                        "design": design, "graph": graph.name,
                        "format": fmt, "mutation": mutation,
                        "description": description,
                        "detected": not report.ok,
                        "mismatches": len(report.mismatches),
                    })
    clean = sum(1 for entry in roundtrips if entry["ok"])
    applicable = [entry for entry in mutations
                  if entry["detected"] is not None]
    detected = sum(1 for entry in applicable if entry["detected"])
    return {
        "geometry": geometry.label(),
        "formats": list(formats),
        "roundtrips": roundtrips,
        "mutations": mutations,
        "summary": {
            "roundtrips": len(roundtrips),
            "clean": clean,
            "mutations": len(applicable),
            "detected": detected,
            "ok": clean == len(roundtrips) and detected == len(applicable),
        },
    }


def _render_gate(payload: dict) -> str:
    lines = []
    for entry in payload["roundtrips"]:
        status = "ok  " if entry["ok"] else "FAIL"
        lines.append(f"{status} roundtrip {entry['graph']}[{entry['format']}]"
                     f": {entry['matched']}/{entry['golden_nodes']} matched, "
                     f"{len(entry['mismatches'])} mismatch(es)")
        for mismatch in entry["mismatches"]:
            lines.append(f"       {mismatch['kind']} {mismatch['object']}: "
                         f"{mismatch['detail']}")
    for entry in payload["mutations"]:
        if entry["detected"] is None:
            lines.append(f"skip mutation  {entry['graph']}"
                         f"[{entry['format']}] {entry['mutation']}: "
                         f"{entry['description']}")
            continue
        status = "ok  " if entry["detected"] else "FAIL"
        lines.append(f"{status} mutation  {entry['graph']}[{entry['format']}]"
                     f" {entry['mutation']}: {entry['description']} -> "
                     f"{'detected' if entry['detected'] else 'MISSED'} "
                     f"({entry['mismatches']} mismatch(es))")
    summary = payload["summary"]
    lines.append(f"{summary['clean']}/{summary['roundtrips']} round-trips "
                 f"clean, {summary['detected']}/{summary['mutations']} "
                 f"mutations detected")
    return "\n".join(lines)


def _cmd_lvs(args: argparse.Namespace) -> int:
    if args.files:
        return _cmd_lvs_files(args)
    designs = tuple(args.design) if args.design else INTERCHANGE_DESIGNS
    payload = run_lvs_gate(designs, args.geometry, args.formats,
                           with_mutations=args.with_mutations,
                           seed=args.seed)
    if args.report:
        Path(args.report).write_text(json.dumps(payload, indent=2) + "\n",
                                     encoding="utf-8")
    print(json.dumps(payload, indent=2) if args.json
          else _render_gate(payload))
    return int(not payload["summary"]["ok"])


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "emit":
            return _cmd_emit(args)
        if args.command == "parse":
            return _cmd_parse(args)
        return _cmd_lvs(args)
    except (InterchangeError, ConfigError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
