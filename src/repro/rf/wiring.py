"""Wire-delay modelling: PTL parasitics (Table IV) and placement (Figure 15).

Two levels of fidelity, matching the paper's Section VI-C:

* :func:`wire_aware_delays` charges each gate-to-gate hop on a critical
  path the *average* PTL delay extracted from qPalace place-and-route
  (262 um per hop at 1 ps / 100 um, i.e. 2.62 ps per hop).
* :func:`placed_loopback_report` reconstructs the Figure 15 claim: after
  placement, the loopback path is physically short - the longest single
  wire on it is a few picoseconds, far below the 53 ps decoder cycle -
  by actually placing the LoopBuffer column next to the write port and
  measuring Manhattan wire lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cells import params
from repro.rf.base import RegisterFileDesign
from repro.units import wire_delay_ps


@dataclass(frozen=True)
class WireModel:
    """Average-hop PTL wire model (Section VI-C)."""

    ps_per_100um: float = params.PTL_PS_PER_100UM
    avg_wire_length_um: float = params.AVG_WIRE_LENGTH_UM

    @property
    def avg_hop_delay_ps(self) -> float:
        return wire_delay_ps(self.avg_wire_length_um, self.ps_per_100um)


@dataclass(frozen=True)
class WireAwareDelays:
    """Readout/loopback delays with PTL wire parasitics included."""

    design: str
    geometry: str
    readout_delay_ps: float
    readout_wire_ps: float
    loopback_delay_ps: Optional[float]
    loopback_wire_ps: Optional[float]


def wire_aware_delays(design: RegisterFileDesign,
                      wire_model: WireModel | None = None) -> WireAwareDelays:
    """Table IV model: critical-path delays plus average per-hop PTL delay."""
    model = wire_model or WireModel()
    hop = model.avg_hop_delay_ps
    readout = design.readout_path()
    loopback = design.loopback_path()
    return WireAwareDelays(
        design=design.name,
        geometry=design.geometry.label(),
        readout_delay_ps=readout.delay_with_wires_ps(hop),
        readout_wire_ps=readout.wire_delay_ps(hop),
        loopback_delay_ps=(loopback.delay_with_wires_ps(hop)
                           if loopback is not None else None),
        loopback_wire_ps=(loopback.wire_delay_ps(hop)
                          if loopback is not None else None),
    )


# ---------------------------------------------------------------------------
# Placement study (Figure 15)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireSegment:
    """One placed wire on the loopback path."""

    source: str
    sink: str
    length_um: float
    delay_ps: float


def _manhattan(ax: float, ay: float, bx: float, by: float) -> float:
    return abs(ax - bx) + abs(ay - by)


def place_loopback_segments(design: RegisterFileDesign,
                            cell_pitch_um: float = 75.0,
                            wire_model: WireModel | None = None) -> List[WireSegment]:
    """Place the loopback-path cells of one column and measure its wires.

    Layout mirrors Figure 15: the storage array is an ``n x c`` grid; the
    LoopBuffer NDRO of each cell column sits directly below the column; the
    write-port merger row sits one row further down, and the column's data
    fan-out root is adjacent to the merger.  All loopback hops therefore
    span at most a few cell pitches.
    """
    loopback = design.loopback_path()
    if loopback is None:
        raise ValueError(f"design {design.name!r} has no loopback path")
    model = wire_model or WireModel()
    pitch = cell_pitch_um
    if pitch <= 0:
        raise ValueError(f"cell pitch must be positive, got {cell_pitch_um}")

    # Placed coordinates (um) for the loopback chain of column 0.
    # y = 0 is the bottom edge of the storage array; the port block sits
    # below it.  The longest hop is the data fan-out root re-entering the
    # array to reach the column's first DAND gate.
    positions = [
        ("loopbuffer_ndro", 0.0, -1.0 * pitch),
        ("loopbuffer_splitter", 1.0 * pitch, -1.0 * pitch),
        ("jtl_chain_in", 2.0 * pitch, -1.0 * pitch),
        ("jtl_chain_out", 3.0 * pitch, -2.0 * pitch),
        ("writeport_merger", 4.0 * pitch, -3.0 * pitch),
        ("fanout_tree_root", 4.0 * pitch, -2.0 * pitch),
        ("dand_column_entry", 0.0, 0.0),
    ]
    segments: List[WireSegment] = []
    for (src_name, sx, sy), (dst_name, dx, dy) in zip(positions, positions[1:]):
        length = _manhattan(sx, sy, dx, dy)
        segments.append(WireSegment(
            source=src_name,
            sink=dst_name,
            length_um=length,
            delay_ps=wire_delay_ps(length, model.ps_per_100um),
        ))
    return segments


def placed_loopback_report(design: RegisterFileDesign,
                           cell_pitch_um: float = 75.0,
                           wire_model: WireModel | None = None) -> Dict[str, float]:
    """Figure 15 summary: the placed loopback path is short.

    Returns the longest single-wire delay on the loopback path, the total
    loopback wire delay, and the margin versus the 53 ps decoder cycle that
    dominates the access pipeline.
    """
    segments = place_loopback_segments(design, cell_pitch_um, wire_model)
    longest = max(segments, key=lambda s: s.delay_ps)
    total_wire = sum(s.delay_ps for s in segments)
    decoder_latency = params.NDROC_MIN_ENABLE_SEPARATION_PS
    return {
        "longest_wire_delay_ps": longest.delay_ps,
        "longest_wire_length_um": longest.length_um,
        "total_loopback_wire_ps": total_wire,
        "decoder_latency_ps": decoder_latency,
        "margin_ps": decoder_latency - longest.delay_ps,
        "num_segments": float(len(segments)),
    }
