"""Port control-signal schedules (paper Figures 8, 11 and 12).

The register file ports are pipelined NDROC trees that accept one enable
pulse per 53 ps cycle.  Within a cycle, a write's RESET (or HiPerRF's
reset-read) must precede the WEN pulse by 10 ps.  This module generates
the pulse-accurate control schedules the paper draws:

* :func:`schedule_ndro` - baseline (Figure 8): writes issue RESET then WEN
  in one cycle; the two source reads occupy consecutive cycles on the
  single read port, overlapping the next instruction's write.
* :func:`schedule_hiperrf` - HiPerRF (Figure 11): a write becomes a
  reset-read (cycle 1) followed by WEN (cycle 2); source reads trigger
  loopback writes one cycle later, so instructions issue every 3 cycles.
* :func:`schedule_dual_bank` - dual-banked HiPerRF (Figure 12): two reads
  in one cycle when the sources sit in different (parity) banks, with
  alternate cycles reserved for write-back resets; 2-cycle issue for
  cross-bank readers, 4-cycle for same-bank readers.

The schedules are validated against the device constraints and are reused
by :mod:`repro.cpu` to derive per-instruction issue intervals.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cells import params
from repro.errors import ConfigError, TimingViolationError


class Signal(enum.Enum):
    """Register file control signals."""

    RESET = "RESET"
    REN = "REN"
    WEN = "WEN"
    LOOPBACK = "LOOPBACK"


@dataclass(frozen=True)
class PortEvent:
    """One control pulse on one register-file port."""

    cycle: int
    time_ps: float
    signal: Signal
    port: str
    register: int
    note: str = ""

    def __str__(self) -> str:
        extra = f"  ({self.note})" if self.note else ""
        return (f"cycle {self.cycle:3d}  t={self.time_ps:8.1f} ps  "
                f"{self.signal.value:8s} {self.port:12s} r{self.register}{extra}")


@dataclass(frozen=True)
class Instr:
    """A register-access pseudo-instruction: one destination, up to two sources."""

    dest: Optional[int]
    srcs: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.srcs) > 2:
            raise ValueError(f"at most two source registers, got {self.srcs}")
        if self.dest is not None and self.dest < 0:
            raise ConfigError(f"negative destination register {self.dest}")
        for src in self.srcs:
            if src < 0:
                raise ConfigError(f"negative source register {src}")

    def registers(self) -> Tuple[int, ...]:
        """Every register this instruction touches (dest first)."""
        regs = () if self.dest is None else (self.dest,)
        return regs + self.srcs


@dataclass
class PortSchedule:
    """A generated control schedule plus per-instruction issue bookkeeping."""

    design: str
    cycle_time_ps: float
    events: List[PortEvent] = field(default_factory=list)
    #: cycle at which instruction i issued its first control pulse
    issue_cycles: List[int] = field(default_factory=list)

    def add(self, cycle: int, offset_ps: float, signal: Signal, port: str,
            register: int, note: str = "") -> None:
        self.events.append(PortEvent(
            cycle=cycle,
            time_ps=cycle * self.cycle_time_ps + offset_ps,
            signal=signal,
            port=port,
            register=register,
            note=note,
        ))

    def total_cycles(self) -> int:
        if not self.events:
            return 0
        return max(e.cycle for e in self.events) + 1

    def issue_intervals(self) -> List[int]:
        """Cycles between consecutive instruction issues."""
        return [b - a for a, b in zip(self.issue_cycles, self.issue_cycles[1:])]

    def events_on(self, port: str) -> List[PortEvent]:
        return [e for e in self.events if e.port == port]

    def validate(self) -> None:
        """Check the device constraints the paper's Section III-E/IV-D state.

        * Two enable pulses entering the same port DEMUX must be at least
          53 ps apart (NDROC throughput limit).
        * A WEN pulse must trail the same register's RESET (or reset-read)
          by at least 10 ps.

        Raises
        ------
        TimingViolationError
            On the first violated constraint.
        """
        min_sep = params.NDROC_MIN_ENABLE_SEPARATION_PS
        ports = {e.port for e in self.events}
        for port in ports:
            times = sorted(e.time_ps for e in self.events_on(port)
                           if e.signal in (Signal.REN, Signal.WEN, Signal.RESET,
                                            Signal.LOOPBACK))
            for a, b in zip(times, times[1:]):
                if b - a + 1e-9 < min_sep:
                    raise TimingViolationError(
                        f"{self.design}: port {port!r} enable pulses {a:.1f} ps and "
                        f"{b:.1f} ps are {b - a:.1f} ps apart (< {min_sep} ps)")
        # WEN after RESET/reset-read of the same register.
        resets = [(e.register, e.time_ps) for e in self.events
                  if e.signal == Signal.RESET
                  or (e.signal == Signal.REN and "reset" in e.note)]
        for wen in (e for e in self.events if e.signal == Signal.WEN):
            earlier = [t for reg, t in resets
                       if reg == wen.register and t < wen.time_ps]
            if not earlier:
                continue
            gap = wen.time_ps - max(earlier)
            if gap + 1e-9 < params.RESET_TO_WEN_PS:
                raise TimingViolationError(
                    f"{self.design}: WEN for r{wen.register} trails its reset by "
                    f"{gap:.1f} ps (< {params.RESET_TO_WEN_PS} ps)")

    def render(self, max_cycles: int = 12) -> str:
        """ASCII timeline of the schedule (one row per port)."""
        ports = sorted({e.port for e in self.events})
        total = min(self.total_cycles(), max_cycles)
        width = 14
        header = "port".ljust(16) + "".join(
            f"c{c}".center(width) for c in range(total))
        lines = [header]
        for port in ports:
            cells = ["" for _ in range(total)]
            for event in self.events_on(port):
                if event.cycle >= total:
                    continue
                tag = f"{event.signal.value[:4]}:r{event.register}"
                cells[event.cycle] = (cells[event.cycle] + " " + tag).strip()
            lines.append(port.ljust(16) + "".join(c.center(width) for c in cells))
        return "\n".join(lines)


def _check_register_range(instrs: Sequence[Instr],
                          num_registers: Optional[int],
                          design: str) -> None:
    """Reject instructions addressing registers the file does not have.

    The NDROC-tree DEMUX silently misroutes an out-of-range address (the
    enable pulse exits a wrong leaf), so the scheduler refuses to encode
    one rather than generate a schedule that corrupts another register.
    """
    if num_registers is None:
        return
    if num_registers < 1:
        raise ConfigError(f"{design}: num_registers must be >= 1, "
                          f"got {num_registers}")
    for i, instr in enumerate(instrs):
        for reg in instr.registers():
            if reg >= num_registers:
                raise ConfigError(
                    f"{design}: instruction {i} addresses r{reg} but the "
                    f"register file has only {num_registers} registers")


def _dedup_sources(srcs: Sequence[int]) -> List[int]:
    """Collapse Read-After-Read duplicates (R2 = R3 + R3 reads R3 once).

    The paper (Section IV-D): the second read of the same register would
    find an empty cell because the loopback has not landed yet, so the
    first readout is duplicated instead of re-reading.
    """
    unique: List[int] = []
    for src in srcs:
        if src not in unique:
            unique.append(src)
    return unique


def schedule_ndro(instrs: Sequence[Instr],
                  num_registers: Optional[int] = None) -> PortSchedule:
    """Baseline NDRO RF schedule (Figure 8).

    Per instruction: RESET(dest) at cycle start, WEN(dest) 10 ps later,
    REN(src1) in the same cycle on the read port, REN(src2) the following
    cycle.  Because the single read port serves at most one read per
    cycle, two-source instructions issue every 2 cycles, single/zero
    source instructions every cycle.

    ``num_registers``, when given, bounds the addressable register
    indices; out-of-range instructions raise :class:`ConfigError`.
    """
    _check_register_range(instrs, num_registers, "ndro_rf")
    schedule = PortSchedule("ndro_rf", params.RF_CYCLE_PS)
    cycle = 0
    for instr in instrs:
        schedule.issue_cycles.append(cycle)
        if instr.dest is not None:
            schedule.add(cycle, 0.0, Signal.RESET, "reset_port", instr.dest,
                         note="clear before write")
            schedule.add(cycle, params.RESET_TO_WEN_PS, Signal.WEN,
                         "write_port", instr.dest,
                         note="write-back (internal forwarding possible)")
        srcs = _dedup_sources(instr.srcs)
        for offset, src in enumerate(srcs):
            schedule.add(cycle + offset, params.RESET_TO_WEN_PS + 5.0,
                         Signal.REN, "read_port", src)
        cycle += max(len(srcs), 1)
    return schedule


def schedule_hiperrf(instrs: Sequence[Instr],
                     num_registers: Optional[int] = None) -> PortSchedule:
    """HiPerRF schedule (Figure 11): a fixed 3-cycle issue pattern.

    cycle 0: REN(dest) - destructive reset-read through the LoopBuffer
    cycle 1: WEN(dest) + REN(src1); loopback(src1) lands in cycle 2
    cycle 2: REN(src2); loopback(src2) lands in cycle 3

    The write port in cycle ``i+3`` is free again: loopback writes use the
    cycles the static pattern reserves, eliminating dynamic contention.

    ``num_registers``, when given, bounds the addressable register
    indices; out-of-range instructions raise :class:`ConfigError`.
    """
    _check_register_range(instrs, num_registers, "hiperrf")
    schedule = PortSchedule("hiperrf", params.RF_CYCLE_PS)
    cycle = 0
    for instr in instrs:
        schedule.issue_cycles.append(cycle)
        if instr.dest is not None:
            schedule.add(cycle, 0.0, Signal.REN, "read_port", instr.dest,
                         note="reset-read: LoopBuffer dissipates old value")
            schedule.add(cycle + 1, 0.0, Signal.WEN, "write_port", instr.dest,
                         note="write-back of new value")
        srcs = _dedup_sources(instr.srcs)
        for offset, src in enumerate(srcs):
            read_cycle = cycle + 1 + offset
            schedule.add(read_cycle, 0.0, Signal.REN, "read_port", src)
            schedule.add(read_cycle + 1, 0.0,
                         Signal.LOOPBACK, "write_port", src,
                         note="loopback restores the value")
        cycle += 3
    return schedule


def schedule_dual_bank(instrs: Sequence[Instr],
                       num_registers: Optional[int] = None) -> PortSchedule:
    """Dual-banked HiPerRF schedule (Figure 12).

    Registers are parity-split: odd registers in bank 0, even in bank 1
    (Section V-B labels banks by parity; only the split matters).  Even
    cycles carry write-back reset-reads, odd cycles carry source reads.
    An instruction whose sources sit in different banks reads both in one
    cycle (2-cycle issue); same-bank sources serialise on one bank port
    (4-cycle issue).

    ``num_registers``, when given, bounds the addressable register
    indices; out-of-range instructions raise :class:`ConfigError`.
    """
    _check_register_range(instrs, num_registers, "dual_bank_hiperrf")
    schedule = PortSchedule("dual_bank_hiperrf", params.RF_CYCLE_PS)
    cycle = 0
    for instr in instrs:
        schedule.issue_cycles.append(cycle)
        if instr.dest is not None:
            bank = instr.dest & 1
            schedule.add(cycle, 0.0, Signal.REN, f"read_port_b{bank}",
                         instr.dest, note="reset-read")
            schedule.add(cycle + 1, 0.0, Signal.WEN, f"write_port_b{bank}",
                         instr.dest, note="write-back")
        srcs = _dedup_sources(instr.srcs)
        banks = [s & 1 for s in srcs]
        same_bank = len(srcs) == 2 and banks[0] == banks[1]
        for idx, src in enumerate(srcs):
            # Cross-bank: both reads in cycle+1.  Same-bank: second read
            # waits for the next read slot of that bank (cycle+3); the
            # intervening cycle is reserved for the next write-back reset.
            read_cycle = cycle + 1 + (2 * idx if same_bank else 0)
            schedule.add(read_cycle, 0.0, Signal.REN,
                         f"read_port_b{src & 1}", src)
            schedule.add(read_cycle + 1, 0.0,
                         Signal.LOOPBACK, f"write_port_b{src & 1}", src,
                         note="loopback restores the value")
        cycle += 4 if same_bank else 2
    return schedule


def issue_cycles_for(design_name: str, dest: Optional[int],
                     srcs: Sequence[int]) -> int:
    """Issue interval (in 53 ps RF cycles) one instruction occupies.

    This is the static scheduling cost the CPU timing model charges per
    instruction for register file access.
    """
    srcs = _dedup_sources(srcs)
    if design_name == "ndro_rf":
        return max(len(srcs), 1)
    if design_name == "hiperrf":
        return 3
    if design_name in ("dual_bank_hiperrf", "dual_bank_hiperrf_ideal",
                       "dual_bank_hiperrf_worst"):
        if design_name.endswith("ideal"):
            return 2
        if design_name.endswith("worst"):
            return 4 if len(srcs) == 2 else 2
        if len(srcs) == 2 and (srcs[0] & 1) == (srcs[1] & 1):
            return 4
        return 2
    match = re.fullmatch(r"hiperrf_x(\d+)", design_name)
    if match:
        banks = int(match.group(1))
        if banks == 1:
            return 3
        if len(srcs) == 2 and (srcs[0] % banks) == (srcs[1] % banks):
            return 4
        return 2
    raise ValueError(f"unknown design {design_name!r}")
