"""Register file designs from the HiPerRF paper.

Three designs are modelled, each as a structural netlist census over the
:mod:`repro.cells` library plus a critical-path timing model:

* :class:`NdroRegisterFile` - the clock-less NDRO baseline (Section III).
* :class:`HiPerRF` - HC-DRO storage with a LoopBuffer (Section IV).
* :class:`DualBankHiPerRF` - the parity-banked variant (Section V).

Each design answers the paper's evaluation questions directly:
``jj_count()`` (Table I), ``static_power_uw()`` (Table II),
``readout_delay_ps()`` (Table III) and, through :mod:`repro.rf.wiring`,
the wire-aware delays of Table IV and the placement study of Figure 15.
"""

from repro.rf.geometry import RFGeometry
from repro.rf.census import ComponentCensus
from repro.rf.base import DesignComparison, RegisterFileDesign, compare_designs
from repro.rf.ndro_rf import NdroRegisterFile
from repro.rf.hiperrf import HiPerRF
from repro.rf.dual_bank import DualBankHiPerRF
from repro.rf.wiring import WireModel, placed_loopback_report, wire_aware_delays

__all__ = [
    "ComponentCensus",
    "DesignComparison",
    "DualBankHiPerRF",
    "HiPerRF",
    "NdroRegisterFile",
    "RFGeometry",
    "RegisterFileDesign",
    "WireModel",
    "compare_designs",
    "placed_loopback_report",
    "wire_aware_delays",
]
