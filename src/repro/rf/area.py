"""Chip-area estimation for register file macros.

Section VI-A: "the register file size is about 20% of the total CPU
design area using NDRO cells".  JJ count is the paper's primary metric
(JJs are the fabrication bottleneck), but area differs because cell
footprints are not proportional to their JJ counts - interconnect cells
are pad-limited.  This module assigns per-cell footprints in the style
of the RSFQlib layout library (fixed-height rows, width in multiples of
a 30 um pitch unit) and rolls up macro areas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.rf.base import RegisterFileDesign

#: Cell footprints in square micrometres, RSFQlib-style fixed-height rows
#: (40 um rows, widths quantised to a 30 um unit).
CELL_AREA_UM2: Dict[str, float] = {
    "dro": 1_200.0,
    "hcdro": 1_400.0,       # larger storage inductor than a plain DRO
    "ndro": 2_400.0,
    "ndroc": 6_000.0,
    "splitter": 600.0,
    "merger": 900.0,
    "jtl": 450.0,
    "dand": 1_200.0,
    "and": 2_400.0,
    "not": 1_800.0,
    "tff": 1_500.0,
    "ptl_driver": 300.0,
    "ptl_receiver": 300.0,
    "hc_clk": 4_200.0,      # 2 splitters + 2 mergers + 6 JTLs placed
    "hc_write": 3_750.0,
    "hc_read": 4_500.0,
}

#: Routing/whitespace multiplier after placement (PTL tracks, bias rails).
ROUTING_OVERHEAD = 1.35


@dataclass(frozen=True)
class MacroArea:
    """Area roll-up of one design."""

    design: str
    cell_area_um2: float
    routed_area_um2: float

    @property
    def routed_area_mm2(self) -> float:
        return self.routed_area_um2 / 1e6


def macro_area(design: RegisterFileDesign) -> MacroArea:
    """Place-and-route-style area estimate for a register file design."""
    total = 0.0
    for cell_name, count in design.census().items():
        if cell_name not in CELL_AREA_UM2:
            raise KeyError(f"no area footprint for cell {cell_name!r}")
        total += CELL_AREA_UM2[cell_name] * count
    return MacroArea(
        design=design.name,
        cell_area_um2=total,
        routed_area_um2=total * ROUTING_OVERHEAD,
    )


def rf_chip_area_fraction(design: RegisterFileDesign,
                          core_area_mm2: float = 40.0) -> float:
    """Register file share of the whole core's area.

    ``core_area_mm2`` is the non-RF core area; the default is tuned so
    the NDRO baseline lands at the paper's "about 20%" observation.
    """
    rf_area = macro_area(design).routed_area_mm2
    return rf_area / (rf_area + core_area_mm2)
