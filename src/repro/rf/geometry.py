"""Register file geometry: entry count and width."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises :class:`ConfigError` otherwise."""
    if not _is_power_of_two(value):
        raise ConfigError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class RFGeometry:
    """Shape of a register file.

    Attributes
    ----------
    num_registers:
        Number of register entries; must be a power of two >= 2 so the
        NDROC DEMUX tree is a complete binary tree, matching the paper.
    width_bits:
        Bits per register; must be a power of two >= 2 (HC-DRO packs two
        bits per cell, so the width must be even; the paper evaluates
        square geometries 4x4, 16x16 and 32x32).
    """

    num_registers: int
    width_bits: int

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_registers) or self.num_registers < 2:
            raise ConfigError(
                f"num_registers must be a power of two >= 2, got {self.num_registers}")
        if not _is_power_of_two(self.width_bits) or self.width_bits < 2:
            raise ConfigError(
                f"width_bits must be a power of two >= 2, got {self.width_bits}")

    @property
    def select_bits(self) -> int:
        """Address bits needed to select one register (DEMUX tree depth)."""
        return log2_int(self.num_registers)

    @property
    def hc_cells_per_register(self) -> int:
        """Number of 2-bit HC-DRO cells per register entry."""
        return self.width_bits // 2

    @property
    def total_bits(self) -> int:
        """Total storage capacity in bits."""
        return self.num_registers * self.width_bits

    def halved(self) -> "RFGeometry":
        """Geometry of one bank when the file is split into two banks."""
        if self.num_registers < 4:
            raise ConfigError(
                "cannot bank a register file with fewer than 4 entries")
        return RFGeometry(self.num_registers // 2, self.width_bits)

    def label(self) -> str:
        """Human-readable ``NxW`` label used in the paper's tables."""
        return f"{self.num_registers}x{self.width_bits}"
