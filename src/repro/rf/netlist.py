"""Pulse-level structural netlists of the register file designs.

These are the functional-verification models standing in for the paper's
Verilog netlists: full storage arrays, NDROC-tree DEMUX ports, splitter
and merger trees, DAND write gating, and - for HiPerRF - the HC-CLK /
HC-WRITE / HC-READ circuits and the LoopBuffer with a live loopback path.

The drivers below run one port operation per generous ``op_period_ps``
window rather than at the 53 ps pipelined rate; pipelined operation is
validated at the schedule level (:mod:`repro.rf.timing`) and at the
single-NDROC level, while these netlists verify *data* behaviour:
destructive vs non-destructive readout, loopback restore, erase-by-read,
and write-data coincidence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.cells import params
from repro.errors import ConfigError
from repro.pulse import (
    DAND,
    Engine,
    HCDRO,
    HCClk,
    HCRead,
    HCWrite,
    MergeTree,
    NDRO,
    NdrocDemux,
    Probe,
    SplitTree,
)
from repro.rf.geometry import RFGeometry, log2_int

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.pulse.cache import CompiledNetlistCache

_SPL = params.DELAY_PS["splitter"]
_MRG = params.DELAY_PS["merger"]
_NDROC = params.NDROC_PROPAGATION_PS
_CLKQ = params.DELAY_PS["ndro_clk_to_q"]
_DAND = params.DELAY_PS["dand"]
#: Insertion delay of the first pulse through HC-CLK / HC-WRITE
#: (splitter + two mergers, as built in repro.pulse.hc_circuits).
_HC_FIRST = _SPL + 2 * _MRG
_HCW_FIRST = 2 * _MRG


class _CachedBuildMixin:
    """Build-once construction through :mod:`repro.pulse.cache`.

    ``build_cached`` returns a *shared*, compiled instance: the first
    call elaborates the netlist, later calls with the same key restore
    the pristine snapshot (state, queue and clock rewind) instead of
    re-elaborating.  Callers must finish with the instance before
    requesting the same key again.
    """

    @classmethod
    def build_key(cls, geometry: RFGeometry, op_period_ps: float,
                  strict_timing: bool = True) -> Tuple[object, ...]:
        """Hashable identity of one build: topology + engine semantics."""
        return (cls.__name__, geometry, op_period_ps, strict_timing)

    @classmethod
    def build_cached(cls, geometry: RFGeometry, op_period_ps: float,
                     strict_timing: bool = True,
                     cache: Optional["CompiledNetlistCache"] = None):
        from repro.pulse.cache import DEFAULT_CACHE

        store = DEFAULT_CACHE if cache is None else cache

        def builder() -> Tuple[Engine, object]:
            engine = Engine(strict_timing=strict_timing)
            return engine, cls(engine, geometry, op_period_ps)  # type: ignore[call-arg]

        _engine, rf = store.build_once(
            cls.build_key(geometry, op_period_ps, strict_timing), builder)
        return rf

    @classmethod
    def checkout_cached(cls, geometry: RFGeometry, op_period_ps: float,
                        strict_timing: bool = True,
                        cache: Optional["CompiledNetlistCache"] = None):
        """Context manager: exclusive pristine use of the cached build.

        Thread-safe variant of ``build_cached`` for concurrent jobs
        (the simulation service): a per-key lock serialises users of
        one netlist and every checkout restores the pristine snapshot,
        so interleaved jobs cannot leak state into each other.  Yields
        the driver object; do not use it after the ``with`` block.
        """
        from contextlib import contextmanager

        from repro.pulse.cache import DEFAULT_CACHE

        store = DEFAULT_CACHE if cache is None else cache

        def builder() -> Tuple[Engine, object]:
            engine = Engine(strict_timing=strict_timing)
            return engine, cls(engine, geometry, op_period_ps)  # type: ignore[call-arg]

        @contextmanager
        def lease():
            with store.checkout(
                    cls.build_key(geometry, op_period_ps, strict_timing),
                    builder) as (_engine, rf):
                yield rf

        return lease()


class PulseNdroRF(_CachedBuildMixin):
    """Pulse-level model of the baseline NDRO register file (Figure 4)."""

    def __init__(self, engine: Engine, geometry: RFGeometry,
                 op_period_ps: float = 400.0) -> None:
        self.engine = engine
        self.geometry = geometry
        self.op_period_ps = op_period_ps
        n, w = geometry.num_registers, geometry.width_bits

        # Storage array.
        self.cells: List[List[NDRO]] = [
            [engine.add(NDRO(f"rf.r{r}b{b}")) for b in range(w)]
            for r in range(n)
        ]

        # Read port: DEMUX -> per-register fan-out -> cell CLK pins.
        self.read_demux = NdrocDemux(engine, "rf.rd", n)
        for r in range(n):
            tree = SplitTree(engine, f"rf.rdfan{r}", w)
            comp, port = self.read_demux.leaf(r)
            comp.connect(port, tree.inp[0], tree.inp[1])
            for b in range(w):
                tree.connect_output(b, self.cells[r][b], "clk")

        # Reset port: DEMUX -> per-register fan-out -> cell RESET pins.
        self.reset_demux = NdrocDemux(engine, "rf.rs", n)
        for r in range(n):
            tree = SplitTree(engine, f"rf.rsfan{r}", w)
            comp, port = self.reset_demux.leaf(r)
            comp.connect(port, tree.inp[0], tree.inp[1])
            for b in range(w):
                tree.connect_output(b, self.cells[r][b], "reset")

        # Write port: WEN DEMUX -> fan-out -> DAND.a; W_DATA -> fan-out -> DAND.b.
        self.write_demux = NdrocDemux(engine, "rf.wr", n)
        self.dands: List[List[DAND]] = [
            [engine.add(DAND(f"rf.w{r}b{b}")) for b in range(w)]
            for r in range(n)
        ]
        for r in range(n):
            tree = SplitTree(engine, f"rf.wrfan{r}", w)
            comp, port = self.write_demux.leaf(r)
            comp.connect(port, tree.inp[0], tree.inp[1])
            for b in range(w):
                tree.connect_output(b, self.dands[r][b], "a")
                self.dands[r][b].connect("out", self.cells[r][b], "set")
        self.data_trees: List[SplitTree] = []
        for b in range(w):
            tree = SplitTree(engine, f"rf.data{b}", n)
            for r in range(n):
                tree.connect_output(r, self.dands[r][b], "b")
            self.data_trees.append(tree)

        # Output port: per-bit merger trees into R_DATA probes.
        self.out_probes: List[Probe] = []
        for b in range(w):
            tree = MergeTree(engine, f"rf.out{b}", n)
            for r in range(n):
                tree.connect_input(r, self.cells[r][b], "out")
            probe = engine.add(Probe(f"rf.rdata{b}"))
            comp, port = tree.out
            comp.connect(port, probe, "in")
            self.out_probes.append(probe)

        self._fanout_delay = log2_int(w) * _SPL if w > 1 else 0.0
        self._data_fan_delay = log2_int(n) * _SPL
        self._demux_delay = self.read_demux.depth * _NDROC

    def external_inputs(self) -> List[tuple]:
        """Stimulus entry pins for static analysis (``repro.lint``)."""
        pins: List[tuple] = []
        pins.extend(self.read_demux.external_inputs())
        pins.extend(self.reset_demux.external_inputs())
        pins.extend(self.write_demux.external_inputs())
        pins.extend(tree.inp for tree in self.data_trees)
        return pins

    # -- operations ----------------------------------------------------

    def schedule_read(self, address: int, t: float) -> float:
        """Read ``address``; returns the time the output word is stable."""
        self.read_demux.apply_select(address, t)
        self.read_demux.fire(t + 5.0)
        self.read_demux.apply_reset(t + self.op_period_ps - 20.0)
        arrival = (t + 5.0 + self._demux_delay + self._fanout_delay
                   + _CLKQ + log2_int(self.geometry.num_registers) * _MRG)
        return arrival + 10.0

    def schedule_write(self, address: int, value: int, t: float) -> None:
        """Reset ``address`` then write ``value`` into it."""
        width = self.geometry.width_bits
        if not 0 <= value < (1 << width):
            raise ConfigError(f"value {value:#x} exceeds {width} bits")
        # Reset port clears the entry first.
        self.reset_demux.apply_select(address, t)
        self.reset_demux.fire(t + 5.0)
        self.reset_demux.apply_reset(t + self.op_period_ps - 20.0)
        # WEN follows the reset by the RESET->WEN separation.
        wen_fire = t + 5.0 + params.RESET_TO_WEN_PS
        self.write_demux.apply_select(address, t)
        self.write_demux.fire(wen_fire)
        self.write_demux.apply_reset(t + self.op_period_ps - 20.0)
        # Inject data pulses timed to coincide with WEN at the DANDs.
        wen_arrival = wen_fire + self._demux_delay + self._fanout_delay
        data_inject = wen_arrival - self._data_fan_delay
        for b in range(width):
            if value & (1 << b):
                comp, port = self.data_trees[b].inp
                self.engine.schedule(comp, port, data_inject)

    def read_word(self, address: int, t: float) -> int:
        """Convenience: run a read to completion and decode the output word."""
        start_counts = [probe.count for probe in self.out_probes]
        done = self.schedule_read(address, t)
        self.engine.run(until_ps=t + self.op_period_ps)
        value = 0
        for b, probe in enumerate(self.out_probes):
            if probe.count > start_counts[b]:
                value |= 1 << b
        return value

    def stored_word(self, address: int) -> int:
        """Direct state observation (white-box, for test assertions)."""
        value = 0
        for b, cell in enumerate(self.cells[address]):
            if cell.stored:
                value |= 1 << b
        return value


class PulseHiPerRF(_CachedBuildMixin):
    """Pulse-level model of HiPerRF (Figure 9) with a live loopback path."""

    def __init__(self, engine: Engine, geometry: RFGeometry,
                 op_period_ps: float = 600.0) -> None:
        self.engine = engine
        self.geometry = geometry
        self.op_period_ps = op_period_ps
        n = geometry.num_registers
        self.columns = geometry.hc_cells_per_register

        # Storage array: n registers x (w/2) HC-DRO cells.
        self.cells: List[List[HCDRO]] = [
            [engine.add(HCDRO(f"hp.r{r}c{c}")) for c in range(self.columns)]
            for r in range(n)
        ]

        # Read port: DEMUX -> HC-CLK -> per-register fan-out -> cell CLK.
        self.read_demux = NdrocDemux(engine, "hp.rd", n)
        for r in range(n):
            hcclk = HCClk(engine, f"hp.rdclk{r}")
            comp, port = self.read_demux.leaf(r)
            comp.connect(port, hcclk.inp[0], hcclk.inp[1])
            tree = SplitTree(engine, f"hp.rdfan{r}", self.columns)
            hcclk.connect_output(tree.inp[0], tree.inp[1])
            for c in range(self.columns):
                tree.connect_output(c, self.cells[r][c], "clk")

        # Write port: DEMUX -> HC-CLK -> fan-out -> DAND.a.
        self.write_demux = NdrocDemux(engine, "hp.wr", n)
        self.dands: List[List[DAND]] = [
            [engine.add(DAND(f"hp.w{r}c{c}")) for c in range(self.columns)]
            for r in range(n)
        ]
        for r in range(n):
            hcclk = HCClk(engine, f"hp.wrclk{r}")
            comp, port = self.write_demux.leaf(r)
            comp.connect(port, hcclk.inp[0], hcclk.inp[1])
            tree = SplitTree(engine, f"hp.wrfan{r}", self.columns)
            hcclk.connect_output(tree.inp[0], tree.inp[1])
            for c in range(self.columns):
                tree.connect_output(c, self.dands[r][c], "a")
                self.dands[r][c].connect("out", self.cells[r][c], "d")

        # Per-column write data path: HC-WRITE -> merger(with loopback)
        # -> fan-out across registers -> DAND.b.
        self.hc_writes: List[HCWrite] = []
        self.data_trees: List[SplitTree] = []
        from repro.pulse.primitives import Merger  # local to avoid cycle noise

        self.write_mergers: List[Merger] = []
        for c in range(self.columns):
            hcw = HCWrite(engine, f"hp.hcw{c}")
            merger = engine.add(Merger(f"hp.wmrg{c}",
                                       dead_time_ps=params.HC_PULSE_SPACING_PS / 2))
            tree = SplitTree(engine, f"hp.data{c}", n)
            hcw.connect_output(merger, "in0")
            merger.connect("out", tree.inp[0], tree.inp[1])
            for r in range(n):
                tree.connect_output(r, self.dands[r][c], "b")
            self.hc_writes.append(hcw)
            self.write_mergers.append(merger)
            self.data_trees.append(tree)

        # Output port: per-column merger tree -> LoopBuffer NDRO -> splitter
        # -> (loopback to write merger, HC-READ counter).
        self.loopbuffer: List[NDRO] = []
        self.hc_reads: List[HCRead] = []
        self.b0_probes: List[Probe] = []
        self.b1_probes: List[Probe] = []
        from repro.pulse.primitives import Splitter

        for c in range(self.columns):
            tree = MergeTree(engine, f"hp.out{c}", n)
            for r in range(n):
                tree.connect_input(r, self.cells[r][c], "q")
            lb = engine.add(NDRO(f"hp.lb{c}"))
            comp, port = tree.out
            comp.connect(port, lb, "clk")
            spl = engine.add(Splitter(f"hp.lbspl{c}"))
            lb.connect("out", spl, "in")
            # Branch 0: loopback into the write-port merger.
            spl.connect("out0", self.write_mergers[c], "in1")
            # Branch 1: HC-READ counter toward the ALU.
            hcr = HCRead(engine, f"hp.hcr{c}")
            spl.connect("out1", hcr.inp[0], hcr.inp[1])
            b0 = engine.add(Probe(f"hp.b0_{c}"))
            b1 = engine.add(Probe(f"hp.b1_{c}"))
            hcr.connect_b0(b0, "in")
            hcr.connect_b1(b1, "in")
            self.loopbuffer.append(lb)
            self.hc_reads.append(hcr)
            self.b0_probes.append(b0)
            self.b1_probes.append(b1)

        # Broadcast trees for LoopBuffer SET/RESET and HC-READ triggers.
        self.lb_set_tree = SplitTree(engine, "hp.lbset", self.columns)
        self.lb_reset_tree = SplitTree(engine, "hp.lbrst", self.columns)
        self.hcr_read_tree = SplitTree(engine, "hp.hcrread", self.columns)
        self.hcr_reset_tree = SplitTree(engine, "hp.hcrrst", self.columns)
        for c in range(self.columns):
            self.lb_set_tree.connect_output(c, self.loopbuffer[c], "set")
            self.lb_reset_tree.connect_output(c, self.loopbuffer[c], "reset")
            self.hcr_read_tree.connect_output(
                c, self.hc_reads[c].counter, "read")
            self.hcr_reset_tree.connect_output(
                c, self.hc_reads[c].counter, "reset")

        self._col_fan = (log2_int(self.columns) * _SPL
                         if self.columns > 1 else 0.0)
        self._reg_fan = log2_int(n) * _SPL
        self._merge = log2_int(n) * _MRG
        self._demux_delay = self.read_demux.depth * _NDROC

    def external_inputs(self) -> List[tuple]:
        """Stimulus entry pins for static analysis (``repro.lint``)."""
        pins: List[tuple] = []
        pins.extend(self.read_demux.external_inputs())
        pins.extend(self.write_demux.external_inputs())
        for hcw in self.hc_writes:
            pins.extend(hcw.external_inputs())
        pins.extend(tree.inp for tree in (
            self.lb_set_tree, self.lb_reset_tree,
            self.hcr_read_tree, self.hcr_reset_tree))
        return pins

    # -- internal timing helpers ------------------------------------------

    def _broadcast(self, tree: SplitTree, t: float) -> None:
        comp, port = tree.inp
        self.engine.schedule(comp, port, t)

    def _cell_clk_arrival(self, fire_time: float) -> float:
        """Arrival of the first HC-CLK pulse at the storage cells."""
        return fire_time + self._demux_delay + _HC_FIRST + self._col_fan

    def _loop_clk_arrival(self, fire_time: float) -> float:
        """Arrival of the first readout pulse at a LoopBuffer CLK pin."""
        return self._cell_clk_arrival(fire_time) + _CLKQ + self._merge

    def _loop_data_arrival(self, fire_time: float) -> float:
        """Arrival of the first loopback pulse at the DAND data inputs."""
        return (self._loop_clk_arrival(fire_time)
                + _CLKQ + _SPL + _MRG + self._reg_fan)

    # -- operations ----------------------------------------------------

    def schedule_read(self, address: int, t: float,
                      loopback: bool = True,
                      loopback_skew_ps: float = 0.0) -> float:
        """Read ``address`` through the LoopBuffer.

        With ``loopback=True`` (a source-operand read) the LoopBuffer is
        pre-set so the readout both reaches HC-READ and recycles into the
        register via a loopback write.  With ``loopback=False`` the
        LoopBuffer is pre-reset: the readout is dissipated, erasing the
        entry - this is the write flow's erase step and the reason
        HiPerRF needs no reset port.

        Returns the time at which the HC-READ counters hold the value.
        """
        if loopback:
            self._broadcast(self.lb_set_tree, t)
        else:
            self._broadcast(self.lb_reset_tree, t)
        self._broadcast(self.hcr_reset_tree, t)
        fire = t + 10.0
        self.read_demux.apply_select(address, t)
        self.read_demux.fire(fire)
        self.read_demux.apply_reset(t + self.op_period_ps - 20.0)
        if loopback:
            # Loopback write: a WEN train must meet the loopback pulses at
            # the DAND gates.  Fire the write DEMUX so both trains arrive
            # in coincidence (the paper's next-cycle loopback slot).
            # ``loopback_skew_ps`` deliberately misaligns the WEN train;
            # the skew study measures how much the DAND hold window absorbs.
            wen_fire = (fire + self._loop_data_arrival(fire)
                        - self._cell_clk_arrival(fire) - _DAND
                        + loopback_skew_ps)
            self.write_demux.apply_select(address, t)
            self.write_demux.fire(wen_fire)
            self.write_demux.apply_reset(t + self.op_period_ps - 20.0)
        # All three pulses are in the counters after the last one lands.
        return self._loop_data_arrival(fire) + 2 * params.HC_PULSE_SPACING_PS + 20.0

    def schedule_write(self, address: int, value: int, t: float) -> None:
        """Erase ``address`` via a reset-read, then write ``value``.

        The two-step write of Section IV-B: a loopback-disabled read
        drains the old contents into the reset LoopBuffer, then HC-WRITE
        serialises the new value into the cleared cells.
        """
        width = self.geometry.width_bits
        if not 0 <= value < (1 << width):
            raise ConfigError(f"value {value:#x} exceeds {width} bits")
        self.schedule_read(address, t, loopback=False)
        # Step 2, one op period later: the external write.
        t2 = t + self.op_period_ps
        wen_fire = t2 + 10.0
        self.write_demux.apply_select(address, t2)
        self.write_demux.fire(wen_fire)
        self.write_demux.apply_reset(t2 + self.op_period_ps - 20.0)
        wen_arrival = self._cell_clk_arrival(wen_fire) + _DAND
        # HC-WRITE b0 path reaches the DANDs after: 2 mergers (inside
        # HC-WRITE) + write merger + register fan-out.
        data_inject = wen_arrival - (_HCW_FIRST + _MRG + self._reg_fan) - _DAND
        for c in range(self.columns):
            bits = (value >> (2 * c)) & 0b11
            hcw = self.hc_writes[c]
            if bits & 1:
                self.engine.schedule(hcw.b0[0], hcw.b0[1], data_inject)
            if bits & 2:
                self.engine.schedule(hcw.b1[0], hcw.b1[1], data_inject)

    def read_word(self, address: int, t: float) -> int:
        """Run a restoring read to completion and decode the word."""
        settle = self.schedule_read(address, t, loopback=True)
        self.engine.run(until_ps=settle)
        value = 0
        for c in range(self.columns):
            value |= self.hc_reads[c].value << (2 * c)
        # Trigger the parallel readout pulses (observable on the probes)
        # and clear the counters for the next operation.
        self._broadcast(self.hcr_read_tree, settle + 5.0)
        self._broadcast(self.hcr_reset_tree, settle + 15.0)
        self.engine.run(until_ps=t + 2 * self.op_period_ps)
        return value

    def write_word(self, address: int, value: int, t: float) -> float:
        """Run a full erase+write; returns the time the write has landed."""
        self.schedule_write(address, value, t)
        done = t + 2 * self.op_period_ps
        self.engine.run(until_ps=done)
        return done

    def stored_word(self, address: int) -> int:
        """Direct cell-state observation (white-box, for assertions)."""
        value = 0
        for c, cell in enumerate(self.cells[address]):
            value |= cell.stored_value << (2 * c)
        return value


class PulseDualBankHiPerRF:
    """Two parity-split pulse-level HiPerRF banks (Figure 13).

    The banks are electrically independent (parity banking has no
    cross-bank wiring), so each bank runs on its own engine; the
    top-level object routes operations by register parity.
    """

    def __init__(self, geometry: RFGeometry, op_period_ps: float = 600.0) -> None:
        if geometry.num_registers < 4:
            raise ConfigError("dual-bank model needs >= 4 registers")
        self.geometry = geometry
        bank_geometry = geometry.halved()
        self.banks = [_BankShim(bank_geometry, op_period_ps) for _ in range(2)]
        self.op_period_ps = op_period_ps

    @classmethod
    def build_key(cls, geometry: RFGeometry, op_period_ps: float = 600.0,
                  bank: int = 0) -> Tuple[object, ...]:
        """Per-bank key: the two banks are independent netlists."""
        return (cls.__name__, geometry, op_period_ps, bank)

    @classmethod
    def build_cached(cls, geometry: RFGeometry, op_period_ps: float = 600.0,
                     cache: Optional["CompiledNetlistCache"] = None
                     ) -> "PulseDualBankHiPerRF":
        """Build-once variant: each bank goes through the netlist cache."""
        from repro.pulse.cache import DEFAULT_CACHE

        store = DEFAULT_CACHE if cache is None else cache
        if geometry.num_registers < 4:
            raise ConfigError("dual-bank model needs >= 4 registers")
        self = cls.__new__(cls)
        self.geometry = geometry
        self.op_period_ps = op_period_ps
        bank_geometry = geometry.halved()
        banks = []
        for index in range(2):
            def builder(g: RFGeometry = bank_geometry) -> Tuple[Engine, object]:
                shim = _BankShim(g, op_period_ps)
                return shim.engine, shim
            _engine, shim = store.build_once(
                cls.build_key(geometry, op_period_ps, index), builder)
            banks.append(shim)
        self.banks = banks
        return self

    @staticmethod
    def _locate(register: int) -> tuple[int, int]:
        """Map an architectural register to (bank, local index)."""
        return register & 1, register >> 1

    def read_word(self, register: int, t: float) -> int:
        bank, local = self._locate(register)
        return self.banks[bank].rf.read_word(local, t)

    def write_word(self, register: int, value: int, t: float) -> float:
        bank, local = self._locate(register)
        return self.banks[bank].rf.write_word(local, value, t)

    def stored_word(self, register: int) -> int:
        bank, local = self._locate(register)
        return self.banks[bank].rf.stored_word(local)


class _BankShim:
    """One bank: a PulseHiPerRF on its own private engine."""

    def __init__(self, geometry: RFGeometry, op_period_ps: float) -> None:
        self.engine = Engine()
        self.rf = PulseHiPerRF(self.engine, geometry, op_period_ps)
