"""The clock-less NDRO register file baseline (paper Section III).

Structure (Figure 4):

* one NDRO cell per stored bit,
* a read port: NDROC-tree DEMUX on R_ADDR + per-register splitter tree
  fanning the read-enable pulse across the register's width,
* a reset port: identical structure driven by RESET_ENABLE / W_ADDR
  (SFQ cells cannot be overwritten; every write is preceded by a reset),
* a write port: DEMUX on W_ADDR, WEN fan-out tree, W_DATA fan-out trees
  (one per bit, across all registers) and one DAND coincidence gate per
  stored bit,
* an output port: per-bit merger trees funnelling every register's output
  into the single R_DATA bus.
"""

from __future__ import annotations

from repro.cells import params
from repro.rf.base import CriticalPath, PathElement, RegisterFileDesign
from repro.rf.census import (
    ComponentCensus,
    demux_census,
    demux_depth,
    fanout_splitters,
    merger_tree_mergers,
)
from repro.rf.geometry import RFGeometry, log2_int


class NdroRegisterFile(RegisterFileDesign):
    """Baseline design: one 11-JJ NDRO cell per bit, three access ports."""

    name = "ndro_rf"
    paper_name = "NDRO RF (Baseline Design)"

    def __init__(self, geometry: RFGeometry) -> None:
        super().__init__(geometry)

    # -- structure ---------------------------------------------------------

    def _enable_port_census(self) -> ComponentCensus:
        """DEMUX plus per-register enable fan-out across the word width.

        Shared shape of the read port and the reset port: the selected
        register's enable pulse must be split ``width_bits`` ways to touch
        every cell in the entry.
        """
        geo = self.geometry
        census = demux_census(geo.num_registers)
        census.add("splitter",
                   geo.num_registers * fanout_splitters(geo.width_bits))
        return census

    def _write_port_census(self) -> ComponentCensus:
        geo = self.geometry
        census = demux_census(geo.num_registers)
        # WEN fan-out across the register width (drives one DAND per bit).
        census.add("splitter",
                   geo.num_registers * fanout_splitters(geo.width_bits))
        # W_DATA fan-out: each data bit must reach every register's DAND.
        census.add("splitter",
                   geo.width_bits * fanout_splitters(geo.num_registers))
        # One dynamic AND per stored bit gates data with the write enable.
        census.add("dand", geo.num_registers * geo.width_bits)
        return census

    def _output_port_census(self) -> ComponentCensus:
        geo = self.geometry
        census = ComponentCensus()
        census.add("merger",
                   geo.width_bits * merger_tree_mergers(geo.num_registers))
        return census

    def build_census(self) -> ComponentCensus:
        geo = self.geometry
        census = ComponentCensus()
        census.add("ndro", geo.num_registers * geo.width_bits)
        census.merge(self._enable_port_census())   # read port
        census.merge(self._enable_port_census())   # reset port
        census.merge(self._write_port_census())
        census.merge(self._output_port_census())
        return census

    # -- timing ------------------------------------------------------------

    def readout_path(self) -> CriticalPath:
        geo = self.geometry
        d = params.DELAY_PS
        demux_levels = demux_depth(geo.num_registers)
        split_levels = log2_int(geo.width_bits)
        merge_levels = log2_int(geo.num_registers)
        elements = []
        elements.append(PathElement(
            f"NDROC DEMUX tree ({demux_levels} levels)",
            demux_levels * d["ndroc"], gate_count=demux_levels))
        elements.append(PathElement(
            f"read-enable splitter tree ({split_levels} levels)",
            split_levels * d["splitter"], gate_count=split_levels))
        elements.append(PathElement(
            "NDRO cell clk-to-q", d["ndro_clk_to_q"], gate_count=1))
        elements.append(PathElement(
            f"output merger tree ({merge_levels} levels)",
            merge_levels * d["merger"], gate_count=merge_levels))
        return CriticalPath(elements)
