"""Component census: structural cell counts for register file netlists.

The paper's Table I/II numbers are roll-ups of per-cell JJ and power
constants over the full peripheral circuitry ("the data includes the JJ
counts for splitters, mergers, and any necessary JTLs for the register
file access").  This module provides the census container plus the
recurring structural sub-blocks:

* NDROC DEMUX trees (Figure 6c) with their select-bit splitter trees,
* fan-out splitter trees (every SFQ fan-out point needs a splitter),
* merger trees (every shared output pin needs mergers).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Mapping, Tuple

from repro.cells import composite_cost, get_cell
from repro.errors import NetlistError
from repro.rf.geometry import log2_int


class ComponentCensus:
    """A multiset of library cells making up one design (or sub-block)."""

    def __init__(self, counts: Mapping[str, int] | None = None) -> None:
        self._counts: Counter = Counter()
        if counts:
            for name, count in counts.items():
                self.add(name, count)

    def add(self, cell_name: str, count: int = 1) -> None:
        """Add ``count`` instances of ``cell_name`` (validated against the library)."""
        if count < 0:
            raise NetlistError(f"negative count for {cell_name!r}")
        get_cell(cell_name)  # validate the name eagerly
        if count:
            self._counts[cell_name] += count

    def merge(self, other: "ComponentCensus", times: int = 1) -> None:
        """Add another census ``times`` times (e.g. one census per bank)."""
        if times < 0:
            raise NetlistError("cannot merge a census a negative number of times")
        for name, count in other._counts.items():
            self._counts[name] += count * times

    def count(self, cell_name: str) -> int:
        """Instance count for one cell type (0 if absent)."""
        return self._counts.get(cell_name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Plain ``{cell: count}`` dictionary (sorted by cell name)."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def items(self) -> Iterable[Tuple[str, int]]:
        return self.as_dict().items()

    @property
    def total_cells(self) -> int:
        return sum(self._counts.values())

    def jj_count(self) -> int:
        """Total Josephson junctions in this census."""
        jj, _power = composite_cost(self._counts)
        return jj

    def static_power_uw(self) -> float:
        """Total static (bias) power in microwatts."""
        _jj, power = composite_cost(self._counts)
        return power

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComponentCensus):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={c}" for n, c in self.items())
        return f"ComponentCensus({inner})"


# ---------------------------------------------------------------------------
# Structural sub-blocks
# ---------------------------------------------------------------------------


def fanout_splitters(fanout: int) -> int:
    """Splitters needed to drive ``fanout`` loads from one pulse source.

    SFQ pulses cannot fan out; a binary splitter tree with ``fanout - 1``
    splitters reproduces the pulse for every load (Section II-F).
    """
    if fanout < 1:
        raise NetlistError(f"fanout must be >= 1, got {fanout}")
    return fanout - 1


def merger_tree_mergers(num_inputs: int) -> int:
    """Mergers needed to funnel ``num_inputs`` pulse sources into one pin."""
    if num_inputs < 1:
        raise NetlistError(f"num_inputs must be >= 1, got {num_inputs}")
    return num_inputs - 1


def demux_census(num_outputs: int) -> ComponentCensus:
    """Census of a 1-to-``num_outputs`` NDROC tree DEMUX (Figure 6c).

    The tree has ``num_outputs - 1`` NDROC elements.  The select bit feeding
    tree level ``k`` (root is level 0) must drive ``2**k`` NDROC SET pins,
    which costs ``2**k - 1`` splitters; summed over all levels that is
    ``(num_outputs - 1) - log2(num_outputs)`` splitters.
    """
    levels = log2_int(num_outputs)
    census = ComponentCensus()
    census.add("ndroc", num_outputs - 1)
    select_splitters = sum(2 ** k - 1 for k in range(levels))
    census.add("splitter", select_splitters)
    return census


def demux_depth(num_outputs: int) -> int:
    """Pipeline depth (NDROC levels) of a 1-to-``num_outputs`` DEMUX."""
    return log2_int(num_outputs)
