"""N-way banked HiPerRF: how far does the paper's banking idea scale?

Section V banks HiPerRF two ways to get two port pairs for ~7% more JJs.
This module generalises the construction to ``banks`` parity classes
(register number modulo ``banks``), with the same structure per bank and
the same top-level glue pattern, so the banking trade-off can be swept:

* more banks = shallower DEMUX trees (faster readout), more port pairs,
  fewer same-bank conflicts,
* but the fixed per-bank overheads (LoopBuffer, HC circuits, glue)
  amortise over fewer registers, so the JJ premium grows.
"""

from __future__ import annotations


from repro.cells import params
from repro.errors import ConfigError
from repro.rf.base import CriticalPath, PathElement, RegisterFileDesign
from repro.rf.census import ComponentCensus
from repro.rf.geometry import RFGeometry, log2_int
from repro.rf.hiperrf import LOOPBACK_JTL_PADDING, HiPerRF


class MultiBankHiPerRF(RegisterFileDesign):
    """HiPerRF split into ``banks`` modulo-interleaved banks."""

    paper_name = "Multi-banked HiPerRF"

    def __init__(self, geometry: RFGeometry, banks: int = 2) -> None:
        if banks < 1 or banks & (banks - 1):
            raise ConfigError(f"banks must be a power of two >= 1, got {banks}")
        if geometry.num_registers // banks < 2:
            raise ConfigError(
                f"{banks} banks over {geometry.num_registers} registers "
                "leaves banks too small for a DEMUX")
        super().__init__(geometry)
        self.banks = banks
        self.name = f"hiperrf_x{banks}"
        bank_geometry = RFGeometry(geometry.num_registers // banks,
                                   geometry.width_bits)
        self._bank = HiPerRF(bank_geometry)

    @property
    def bank(self) -> HiPerRF:
        return self._bank

    @property
    def read_ports(self) -> int:
        return self.banks

    @property
    def write_ports(self) -> int:
        return self.banks

    def bank_of(self, register: int) -> int:
        if register < 0:
            raise ConfigError("register number must be non-negative")
        return register % self.banks

    # -- structure ---------------------------------------------------------

    def _glue_census(self) -> ComponentCensus:
        """Top-level distribution: scales with the bank count."""
        geo = self.geometry
        cells = geo.hc_cells_per_register
        census = ComponentCensus()
        if self.banks == 1:
            return census
        # Write data routable to every bank; bank outputs mergeable onto
        # the shared result bus; enable/address distribution.
        census.add("splitter", cells * (self.banks - 1))
        census.add("merger", cells * (self.banks - 1))
        census.add("splitter", (2 + geo.select_bits) * (self.banks - 1))
        return census

    def build_census(self) -> ComponentCensus:
        census = ComponentCensus()
        census.merge(self._bank.census(), times=self.banks)
        census.merge(self._glue_census())
        return census

    # -- timing ------------------------------------------------------------

    def readout_path(self) -> CriticalPath:
        geo = self.geometry
        bank_n = self._bank.geometry.num_registers
        d = params.DELAY_PS
        demux_levels = log2_int(bank_n)
        split_levels = log2_int(geo.hc_cells_per_register) \
            if geo.hc_cells_per_register > 1 else 0
        merge_levels = log2_int(bank_n)
        elements = [
            PathElement(f"NDROC DEMUX tree ({demux_levels} levels)",
                        demux_levels * d["ndroc"], gate_count=demux_levels),
            PathElement("HC-CLK insertion", d["hc_clk_insertion"], gate_count=2),
            PathElement("3-pulse train tail (2 x 10 ps spacing)",
                        2 * params.HC_PULSE_SPACING_PS, gate_count=0),
            PathElement(f"enable splitter tree ({split_levels} levels)",
                        split_levels * d["splitter"], gate_count=split_levels),
            PathElement("HC-DRO cell clk-to-q", d["hcdro_clk_to_q"], gate_count=1),
            PathElement(f"output merger tree ({merge_levels} levels)",
                        merge_levels * d["merger"], gate_count=merge_levels),
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"], gate_count=1),
            PathElement("HC-READ counter settle", d["hc_read_settle"], gate_count=1),
        ]
        return CriticalPath(elements)

    def loopback_path(self) -> CriticalPath:
        bank_n = self._bank.geometry.num_registers
        d = params.DELAY_PS
        fanout_levels = log2_int(bank_n)
        elements = [
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"], gate_count=1),
            PathElement(f"JTL alignment padding ({LOOPBACK_JTL_PADDING} stages)",
                        LOOPBACK_JTL_PADDING * d["jtl"],
                        gate_count=LOOPBACK_JTL_PADDING),
            PathElement(f"data fan-out tree ({fanout_levels} levels)",
                        fanout_levels * d["splitter"], gate_count=fanout_levels),
            PathElement("DAND write gate", d["dand"], gate_count=1),
            PathElement("HC-DRO setup", params.SETUP_PS, gate_count=0),
            PathElement("3-pulse train tail (2 x 10 ps spacing)",
                        2 * params.HC_PULSE_SPACING_PS, gate_count=0),
        ]
        return CriticalPath(elements)

    # -- scheduling --------------------------------------------------------

    def same_bank_pair_probability(self) -> float:
        """P(two random distinct sources collide) = ~1/banks."""
        return 1.0 / self.banks

    def issue_cycles(self, sources) -> int:
        """Static issue cost: 2 cycles, plus 2 more per extra same-bank
        serialisation (mirrors the dual-bank rule of Section V-B)."""
        unique = list(dict.fromkeys(sources))
        if len(unique) == 2 and self.bank_of(unique[0]) == \
                self.bank_of(unique[1]):
            return 4
        return 2
