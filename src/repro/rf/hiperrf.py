"""HiPerRF: HC-DRO storage with LoopBuffer non-destructive readout (Section IV).

Differences from the NDRO baseline (Figure 9):

* storage uses 3-JJ 2-bit HC-DRO cells, halving the cell column count,
* there is no reset port: the read port doubles as the reset port because
  DRO-family reads are destructive and the LoopBuffer can dissipate a value,
* HC-CLK circuits sit between each DEMUX output and the storage cells to
  turn a single enable pulse into the 3-pulse train that drains a cell,
* HC-WRITE circuits serialise each 2-bit datum into up to 3 pulses, and
  HC-READ two-bit counters deserialise the pulse train back to 2 bits,
* the output port carries the LoopBuffer - one shared NDRO cell per cell
  column - whose output is split between the ALU-facing HC-READ and the
  loopback path that rewrites the value into the source register,
* the write port gains one merger per cell column to accept both external
  write-back data and loopback data.
"""

from __future__ import annotations

from repro.cells import params
from repro.rf.base import CriticalPath, PathElement, RegisterFileDesign
from repro.rf.census import (
    ComponentCensus,
    demux_census,
    demux_depth,
    fanout_splitters,
    merger_tree_mergers,
)
from repro.rf.geometry import RFGeometry, log2_int

#: JTL padding stages on the loopback path that align loopback pulses with
#: the write-enable coincidence window at the DAND gates.
LOOPBACK_JTL_PADDING = 4


class HiPerRF(RegisterFileDesign):
    """HC-DRO register file with a LoopBuffer output port."""

    name = "hiperrf"
    paper_name = "HiPerRF"

    def __init__(self, geometry: RFGeometry) -> None:
        super().__init__(geometry)

    # -- structure ---------------------------------------------------------

    def _read_port_census(self) -> ComponentCensus:
        geo = self.geometry
        cells = geo.hc_cells_per_register
        census = demux_census(geo.num_registers)
        # One HC-CLK per register turns the enable pulse into a 3-pulse train.
        census.add("hc_clk", geo.num_registers)
        # The train is fanned out across the register's cell columns.
        census.add("splitter", geo.num_registers * fanout_splitters(cells))
        return census

    def _write_port_census(self) -> ComponentCensus:
        geo = self.geometry
        cells = geo.hc_cells_per_register
        census = demux_census(geo.num_registers)
        census.add("hc_clk", geo.num_registers)
        census.add("splitter", geo.num_registers * fanout_splitters(cells))
        # HC-WRITE serialisers, one per 2-bit column of the write data bus.
        census.add("hc_write", cells)
        # Mergers joining external write data with loopback data (Figure 9).
        census.add("merger", cells)
        # Data fan-out: each cell column's pulse train reaches every register.
        census.add("splitter", cells * fanout_splitters(geo.num_registers))
        census.add("dand", geo.num_registers * cells)
        return census

    def _output_port_census(self) -> ComponentCensus:
        geo = self.geometry
        cells = geo.hc_cells_per_register
        census = ComponentCensus()
        # Per-column merger trees funnel every register into the LoopBuffer.
        census.add("merger", cells * merger_tree_mergers(geo.num_registers))
        # The LoopBuffer: one shared NDRO cell per cell column.
        census.add("ndro", cells)
        # LoopBuffer output splits toward HC-READ (ALU) and loopback (write).
        census.add("splitter", cells)
        census.add("hc_read", cells)
        # Loopback timing padding (JTLs) to hit the DAND coincidence window.
        census.add("jtl", cells * LOOPBACK_JTL_PADDING)
        return census

    def build_census(self) -> ComponentCensus:
        geo = self.geometry
        census = ComponentCensus()
        census.add("hcdro", geo.num_registers * geo.hc_cells_per_register)
        census.merge(self._read_port_census())
        census.merge(self._write_port_census())
        census.merge(self._output_port_census())
        return census

    # -- timing ------------------------------------------------------------

    def _demux_levels(self) -> int:
        return demux_depth(self.geometry.num_registers)

    def _merge_levels(self) -> int:
        return log2_int(self.geometry.num_registers)

    def readout_path(self) -> CriticalPath:
        geo = self.geometry
        d = params.DELAY_PS
        demux_levels = self._demux_levels()
        split_levels = log2_int(geo.hc_cells_per_register) \
            if geo.hc_cells_per_register > 1 else 0
        merge_levels = self._merge_levels()
        elements = [
            PathElement(f"NDROC DEMUX tree ({demux_levels} levels)",
                        demux_levels * d["ndroc"], gate_count=demux_levels),
            PathElement("HC-CLK insertion", d["hc_clk_insertion"], gate_count=2),
            PathElement("3-pulse train tail (2 x 10 ps spacing)",
                        2 * params.HC_PULSE_SPACING_PS, gate_count=0),
            PathElement(f"enable splitter tree ({split_levels} levels)",
                        split_levels * d["splitter"], gate_count=split_levels),
            PathElement("HC-DRO cell clk-to-q", d["hcdro_clk_to_q"], gate_count=1),
            PathElement(f"output merger tree ({merge_levels} levels)",
                        merge_levels * d["merger"], gate_count=merge_levels),
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"], gate_count=1),
            PathElement("HC-READ counter settle", d["hc_read_settle"], gate_count=1),
        ]
        return CriticalPath(elements)

    def loopback_path(self) -> CriticalPath:
        """Path from the LoopBuffer output back into the source register."""
        geo = self.geometry
        d = params.DELAY_PS
        fanout_levels = log2_int(geo.num_registers)
        elements = [
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"], gate_count=1),
            PathElement(f"JTL alignment padding ({LOOPBACK_JTL_PADDING} stages)",
                        LOOPBACK_JTL_PADDING * d["jtl"],
                        gate_count=LOOPBACK_JTL_PADDING),
            PathElement("write-port merger (loopback join)",
                        d["merger"], gate_count=1),
            PathElement(f"data fan-out tree ({fanout_levels} levels)",
                        fanout_levels * d["splitter"], gate_count=fanout_levels),
            PathElement("DAND write gate", d["dand"], gate_count=1),
            PathElement("HC-DRO setup", params.SETUP_PS, gate_count=0),
            PathElement("3-pulse train tail (2 x 10 ps spacing)",
                        2 * params.HC_PULSE_SPACING_PS, gate_count=0),
        ]
        return CriticalPath(elements)
