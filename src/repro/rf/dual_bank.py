"""Dual-banked HiPerRF (paper Section V).

The register file is split by register-number parity into two half-size
HiPerRF banks, each with its own read port, write port, LoopBuffer and
output port (Figure 13).  Banking buys:

* two read + two write ports without the super-linear peripheral growth a
  true two-port design would need (the paper estimates ~3x JJs),
* a DEMUX tree one level shallower, cutting 24 ps of NDROC latency off the
  readout path,
* one merger and one splitter (about 10 ps) off the loopback path.

Top-level glue: the external write-data bus is split toward both banks,
and enable/address distribution needs a handful of extra splitters.  The
banks keep separate output ports, so no top-level output merger sits on
the readout critical path.
"""

from __future__ import annotations

from repro.cells import params
from repro.rf.base import CriticalPath, PathElement, RegisterFileDesign
from repro.rf.census import ComponentCensus
from repro.rf.geometry import RFGeometry, log2_int
from repro.rf.hiperrf import LOOPBACK_JTL_PADDING, HiPerRF


class DualBankHiPerRF(RegisterFileDesign):
    """Two parity-split HiPerRF banks with per-bank ports."""

    name = "dual_bank_hiperrf"
    paper_name = "Dual-banked HiPerRF"

    def __init__(self, geometry: RFGeometry) -> None:
        super().__init__(geometry)
        self._bank = HiPerRF(geometry.halved())

    @property
    def bank(self) -> HiPerRF:
        """The per-bank HiPerRF model (half the registers, full width)."""
        return self._bank

    @property
    def read_ports(self) -> int:
        return 2

    @property
    def write_ports(self) -> int:
        return 2

    # -- structure ---------------------------------------------------------

    def _glue_census(self) -> ComponentCensus:
        """Top-level distribution circuitry shared by the two banks."""
        geo = self.geometry
        cells = geo.hc_cells_per_register
        census = ComponentCensus()
        # External write data must be routable to either bank.
        census.add("splitter", cells)
        # Bank outputs are funnelled onto the shared result bus when the
        # datapath consumes a single operand stream.
        census.add("merger", cells)
        # Read/write enable and the bank-select address bit distribution.
        census.add("splitter", 2 + geo.select_bits)
        return census

    def build_census(self) -> ComponentCensus:
        census = ComponentCensus()
        census.merge(self._bank.census(), times=2)
        census.merge(self._glue_census())
        return census

    # -- timing ------------------------------------------------------------

    def readout_path(self) -> CriticalPath:
        """Per-bank readout path: one DEMUX and one merger level shallower.

        Each bank drives its own output port (Figure 13), so no top-level
        merger appears on the critical path.
        """
        geo = self.geometry
        bank_geo = self._bank.geometry
        d = params.DELAY_PS
        demux_levels = log2_int(bank_geo.num_registers)
        split_levels = log2_int(geo.hc_cells_per_register) \
            if geo.hc_cells_per_register > 1 else 0
        merge_levels = log2_int(bank_geo.num_registers)
        elements = [
            PathElement(f"NDROC DEMUX tree ({demux_levels} levels)",
                        demux_levels * d["ndroc"], gate_count=demux_levels),
            PathElement("HC-CLK insertion", d["hc_clk_insertion"], gate_count=2),
            PathElement("3-pulse train tail (2 x 10 ps spacing)",
                        2 * params.HC_PULSE_SPACING_PS, gate_count=0),
            PathElement(f"enable splitter tree ({split_levels} levels)",
                        split_levels * d["splitter"], gate_count=split_levels),
            PathElement("HC-DRO cell clk-to-q", d["hcdro_clk_to_q"], gate_count=1),
            PathElement(f"output merger tree ({merge_levels} levels)",
                        merge_levels * d["merger"], gate_count=merge_levels),
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"], gate_count=1),
            PathElement("HC-READ counter settle", d["hc_read_settle"], gate_count=1),
        ]
        return CriticalPath(elements)

    def loopback_path(self) -> CriticalPath:
        """Bank-local loopback: one splitter and one merger fewer (Section V)."""
        bank_geo = self._bank.geometry
        d = params.DELAY_PS
        fanout_levels = log2_int(bank_geo.num_registers)
        elements = [
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"], gate_count=1),
            PathElement(f"JTL alignment padding ({LOOPBACK_JTL_PADDING} stages)",
                        LOOPBACK_JTL_PADDING * d["jtl"],
                        gate_count=LOOPBACK_JTL_PADDING),
            PathElement(f"data fan-out tree ({fanout_levels} levels)",
                        fanout_levels * d["splitter"], gate_count=fanout_levels),
            PathElement("DAND write gate", d["dand"], gate_count=1),
            PathElement("HC-DRO setup", params.SETUP_PS, gate_count=0),
            PathElement("3-pulse train tail (2 x 10 ps spacing)",
                        2 * params.HC_PULSE_SPACING_PS, gate_count=0),
        ]
        return CriticalPath(elements)

    @staticmethod
    def bank_of(register: int) -> int:
        """Bank index for an architectural register (parity split, Section V-B)."""
        if register < 0:
            raise ValueError(f"register number must be non-negative, got {register}")
        return register & 1
