"""Alternative register file designs the paper argues against.

Three strawmen quantified here, each backing one of the paper's design
decisions:

* :class:`TrueTwoPortHiPerRF` - a monolithic 2R/2W HiPerRF.  Section V:
  "a 32x32 bits HiPerRF with two read ports and two write ports costs
  nearly triples the JJ counts due to superlinear increase in the
  merger, splitter, and other peripheral circuitry" - which is why the
  paper banks instead (dual-banking costs only ~7% more).
* :func:`combinational_demux_census` - the AND/NOT-based DEMUX of
  Figure 6(a).  Section III-A: a combinational 1-to-2 DEMUX needs about
  50 JJs; the NDROC design costs 33 (about 60%).
* :class:`ShiftRegisterRF` - the Fujiwara-style DRO shift register file
  (related work [11]): cheap in JJs but with *serial* readout - every
  access rotates the whole word through the register, so the access
  latency scales with the word width instead of log(depth).
"""

from __future__ import annotations

from repro.cells import params
from repro.rf.base import CriticalPath, PathElement, RegisterFileDesign
from repro.rf.census import (
    ComponentCensus,
    demux_census,
    demux_depth,
    fanout_splitters,
    merger_tree_mergers,
)
from repro.rf.geometry import RFGeometry, log2_int
from repro.rf.hiperrf import HiPerRF


class TrueTwoPortHiPerRF(RegisterFileDesign):
    """A monolithic two-read/two-write-port HiPerRF (the banking strawman).

    Structural additions over the single-port design:

    * both access-port stacks are duplicated outright,
    * every storage cell's CLK and D pins become shared pins - one merger
      each per cell - and its Q output must be split toward two output
      ports - one splitter per cell,
    * both LoopBuffer columns and both HC-READ stacks exist, and each
      loopback must be able to re-enter either write port, doubling the
      write-side merger count per column.
    """

    name = "two_port_hiperrf"
    paper_name = "HiPerRF 2R2W (monolithic)"

    def __init__(self, geometry: RFGeometry) -> None:
        super().__init__(geometry)
        self._single = HiPerRF(geometry)

    @property
    def read_ports(self) -> int:
        return 2

    @property
    def write_ports(self) -> int:
        return 2

    def build_census(self) -> ComponentCensus:
        geo = self.geometry
        cells = geo.num_registers * geo.hc_cells_per_register
        census = ComponentCensus()
        census.add("hcdro", cells)
        # Two full read ports and two full write ports.
        census.merge(self._single._read_port_census(), times=2)
        census.merge(self._single._write_port_census(), times=2)
        # Two output ports (merger trees, LoopBuffers, HC-READs).
        census.merge(self._single._output_port_census(), times=2)
        # Port sharing at every cell: CLK merger, D merger, Q splitter.
        census.add("merger", 2 * cells)
        census.add("splitter", cells)
        # Cross-port loopback: each column's loopback data must reach
        # both write ports' data trees (merger + splitter per column per
        # port) and the write enables need cross-arbitration.
        columns = geo.hc_cells_per_register
        census.add("merger", 2 * columns)
        census.add("splitter", 2 * columns)
        census.add("jtl", 4 * columns)
        return census

    def readout_path(self) -> CriticalPath:
        # Same depth as the single-port design plus the shared-pin merger
        # and the output splitter at every cell.
        base = self._single.readout_path().elements
        d = params.DELAY_PS
        extra = [
            PathElement("shared CLK-pin merger", d["merger"], gate_count=1),
            PathElement("shared Q-pin splitter", d["splitter"], gate_count=1),
        ]
        return CriticalPath(list(base) + extra)

    def loopback_path(self) -> CriticalPath:
        base = self._single.loopback_path().elements
        d = params.DELAY_PS
        extra = [PathElement("cross-port loopback merger", d["merger"],
                             gate_count=1)]
        return CriticalPath(list(base) + extra)


def combinational_demux_census(num_outputs: int) -> ComponentCensus:
    """Census of the Figure 6(a) combinational DEMUX alternative.

    Each 1-to-2 stage needs two clocked AND gates, a NOT for the select
    complement, and splitters for the input, select and clock fan-outs -
    about 50 JJs per stage versus 33 for the NDROC stage.
    """
    census = ComponentCensus()
    stages = num_outputs - 1
    census.add("and", 2 * stages)
    census.add("not", stages)
    census.add("splitter", 4 * stages)
    # Select-bit distribution mirrors the NDROC tree's splitter trees.
    levels = log2_int(num_outputs)
    census.add("splitter", sum(2 ** k - 1 for k in range(levels)))
    return census


class ShiftRegisterRF(RegisterFileDesign):
    """Fujiwara-style DRO shift register file (related work [11]).

    Each register is a ``width``-long DRO shift chain whose tail feeds
    back to its head; a read rotates the word fully, emitting each bit
    serially.  Dense (DRO cells plus JTL couplings) but the readout takes
    ``width`` port cycles instead of one - no random bit-parallel access.
    """

    name = "shift_register_rf"
    paper_name = "DRO shift register file [11]"

    def __init__(self, geometry: RFGeometry) -> None:
        super().__init__(geometry)

    def build_census(self) -> ComponentCensus:
        geo = self.geometry
        census = ComponentCensus()
        bits = geo.num_registers * geo.width_bits
        census.add("dro", bits)
        census.add("jtl", bits)  # inter-stage couplings
        # Rotation path per register: tail-to-head splitter + merger.
        census.add("splitter", geo.num_registers)
        census.add("merger", geo.num_registers)
        # One access port (shift-enable DEMUX) plus per-register shift
        # clock fan-out across the chain.
        census.merge(demux_census(geo.num_registers))
        census.add("splitter",
                   geo.num_registers * fanout_splitters(geo.width_bits))
        # Serial output merging across registers.
        census.add("merger", merger_tree_mergers(geo.num_registers))
        return census

    def readout_path(self) -> CriticalPath:
        geo = self.geometry
        d = params.DELAY_PS
        demux_levels = demux_depth(geo.num_registers)
        merge_levels = log2_int(geo.num_registers)
        elements = [
            PathElement(f"NDROC DEMUX tree ({demux_levels} levels)",
                        demux_levels * d["ndroc"], gate_count=demux_levels),
            PathElement(
                f"serial rotation ({geo.width_bits} shifts at "
                f"{params.RF_CYCLE_PS:.0f} ps)",
                geo.width_bits * params.RF_CYCLE_PS, gate_count=0),
            PathElement("DRO cell clk-to-q", d["ndro_clk_to_q"], gate_count=1),
            PathElement(f"output merger tree ({merge_levels} levels)",
                        merge_levels * d["merger"], gate_count=merge_levels),
        ]
        return CriticalPath(elements)


class SingleBitLoopbackRF(RegisterFileDesign):
    """Ablation: plain 1-bit DRO cells with a LoopBuffer (no HC circuits).

    Separates HiPerRF's two ideas: (a) accepting destructive readout and
    restoring values through a LoopBuffer, and (b) packing two bits per
    cell.  This design keeps (a) but drops (b) - DRO cells are 4 JJ/bit
    versus NDRO's 11, and no HC-CLK/HC-WRITE/HC-READ serdes is needed -
    so the gap between this design and HiPerRF is the dual-bit payoff.
    """

    name = "single_bit_loopback_rf"
    paper_name = "DRO + LoopBuffer (1-bit ablation)"

    def __init__(self, geometry: RFGeometry) -> None:
        super().__init__(geometry)

    def build_census(self) -> ComponentCensus:
        geo = self.geometry
        census = ComponentCensus()
        census.add("dro", geo.num_registers * geo.width_bits)
        # Read port doubles as reset port (loopback erase), like HiPerRF.
        census.merge(demux_census(geo.num_registers))
        census.add("splitter",
                   geo.num_registers * fanout_splitters(geo.width_bits))
        # Write port.
        census.merge(demux_census(geo.num_registers))
        census.add("splitter",
                   geo.num_registers * fanout_splitters(geo.width_bits))
        census.add("splitter",
                   geo.width_bits * fanout_splitters(geo.num_registers))
        census.add("dand", geo.num_registers * geo.width_bits)
        census.add("merger", geo.width_bits)  # loopback joins
        # Output port: per-bit merger trees into a full-width LoopBuffer.
        census.add("merger",
                   geo.width_bits * merger_tree_mergers(geo.num_registers))
        census.add("ndro", geo.width_bits)      # LoopBuffer
        census.add("splitter", geo.width_bits)  # loopback/data split
        census.add("jtl", 4 * geo.width_bits)   # loopback alignment
        return census

    def readout_path(self) -> CriticalPath:
        geo = self.geometry
        d = params.DELAY_PS
        demux_levels = demux_depth(geo.num_registers)
        split_levels = log2_int(geo.width_bits)
        merge_levels = log2_int(geo.num_registers)
        elements = [
            PathElement(f"NDROC DEMUX tree ({demux_levels} levels)",
                        demux_levels * d["ndroc"], gate_count=demux_levels),
            PathElement(f"enable splitter tree ({split_levels} levels)",
                        split_levels * d["splitter"], gate_count=split_levels),
            PathElement("DRO cell clk-to-q", d["ndro_clk_to_q"], gate_count=1),
            PathElement(f"output merger tree ({merge_levels} levels)",
                        merge_levels * d["merger"], gate_count=merge_levels),
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"],
                        gate_count=1),
        ]
        return CriticalPath(elements)

    def loopback_path(self) -> CriticalPath:
        geo = self.geometry
        d = params.DELAY_PS
        fanout_levels = log2_int(geo.num_registers)
        elements = [
            PathElement("LoopBuffer NDRO", d["ndro_clk_to_q"], gate_count=1),
            PathElement("LoopBuffer output splitter", d["splitter"],
                        gate_count=1),
            PathElement("JTL alignment padding (4 stages)", 4 * d["jtl"],
                        gate_count=4),
            PathElement("write-port merger (loopback join)", d["merger"],
                        gate_count=1),
            PathElement(f"data fan-out tree ({fanout_levels} levels)",
                        fanout_levels * d["splitter"],
                        gate_count=fanout_levels),
            PathElement("DAND write gate", d["dand"], gate_count=1),
            PathElement("DRO setup", params.SETUP_PS, gate_count=0),
        ]
        return CriticalPath(elements)
