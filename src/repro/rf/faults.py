"""Pulse-level fault injection: how fragile is each register file?

SFQ state is a handful of fluxons; a single lost or spurious pulse is a
soft error.  The two designs fail differently:

* the NDRO baseline holds state statically - a lost *enable* pulse makes
  one access misbehave but leaves the stored data intact;
* HiPerRF recycles state through the LoopBuffer on *every read* - a lost
  loopback pulse permanently corrupts the register (the value literally
  left the cell and never came back).

This module injects single-pulse faults into the pulse netlists and
measures the architectural outcome, quantifying the reliability cost of
the destructive-readout design that the paper's density win buys.

Every fault is expressed as *stimulus only* - extra SET/RESET/data
pulses scheduled on netlist pins, never a patched ``on_pulse`` - so a
trial records cleanly with :func:`repro.pulse.capture_stimulus` and
replays identically on the reference, compiled and batched tiers.
:func:`run_hiperrf_trials` dispatches a whole list of trials as one
lane batch over a single cached build.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.pulse import capture_stimulus, install_lane
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseHiPerRF, PulseNdroRF

_DEFAULT_GEOMETRY = RFGeometry(4, 8)
_HIPERRF_PERIOD_PS = 600.0
_NDRO_PERIOD_PS = 400.0


class FaultKind(enum.Enum):
    """Single-event fault models."""

    #: One fluxon of the loopback train is dissipated in flight
    #: (HiPerRF only: suppress one LoopBuffer output pulse).
    DROP_LOOPBACK_PULSE = "drop_loopback_pulse"
    #: A spurious extra pulse lands on a storage cell's data input.
    EXTRA_DATA_PULSE = "extra_data_pulse"
    #: The read-enable pulse is lost before reaching the DEMUX.
    DROP_READ_ENABLE = "drop_read_enable"


@dataclass(frozen=True)
class FaultTrial:
    """One (fault, register, column, value) HiPerRF injection trial."""

    fault: FaultKind
    register: int = 1
    column: int = 1
    value: int = 0xE4


@dataclass(frozen=True)
class FaultOutcome:
    """What a single injected fault did to one register."""

    design: str
    fault: FaultKind
    read_value: Optional[int]
    stored_after: int
    expected: int
    register: int = 1
    column: int = 1

    @property
    def state_corrupted(self) -> bool:
        return self.stored_after != self.expected

    @property
    def read_wrong(self) -> bool:
        return self.read_value is not None and self.read_value != self.expected


def _schedule_hiperrf_trial(rf: PulseHiPerRF,
                            trial: FaultTrial) -> Optional[float]:
    """Schedule one write/fault/read trial; returns the read settle time.

    Pure stimulus: runs unchanged live or under ``capture_stimulus``.
    ``None`` means the trial performs no read (DROP_READ_ENABLE).
    """
    engine = rf.engine
    t = rf.write_word(trial.register, trial.value, 0.0)

    if trial.fault is FaultKind.DROP_LOOPBACK_PULSE:
        settle = rf.schedule_read(trial.register, t, loopback=True)
        # Dissipate exactly the first readout pulse of the target column:
        # clear its LoopBuffer just before the pulse lands and re-arm it
        # before the next pulse of the train (HC_PULSE_SPACING_PS later).
        # An NDRO with stored=0 absorbs CLK silently, so the pulse
        # vanishes before the splitter - neither the loopback nor the
        # HC-READ branch ever sees it, exactly an in-flight loss.
        first = rf._loop_clk_arrival(t + 10.0)
        lb = rf.loopbuffer[trial.column]
        engine.schedule(lb, "reset", first - 2.0)
        engine.schedule(lb, "set", first + 2.0)
        read_t = t
    elif trial.fault is FaultKind.EXTRA_DATA_PULSE:
        cell = rf.cells[trial.register][trial.column]
        engine.schedule(cell, "d", t + 50.0)
        engine.run(until_ps=t + 100.0)
        read_t = t + 200.0
        settle = rf.schedule_read(trial.register, read_t, loopback=True)
    elif trial.fault is FaultKind.DROP_READ_ENABLE:
        # The enable never arrives: nothing is read, nothing changes.
        engine.run(until_ps=t + rf.op_period_ps)
        return None
    else:  # pragma: no cover
        raise ValueError(trial.fault)

    # Fire the HC-READ counters onto the b0/b1 probes so the read value
    # survives in the pulse record (a lane outcome cannot pause at the
    # settle time to decode the counters the way ``read_word`` does).
    rf._broadcast(rf.hcr_read_tree, settle + 5.0)
    rf._broadcast(rf.hcr_reset_tree, settle + 15.0)
    engine.run(until_ps=read_t + 2 * rf.op_period_ps)
    return settle


def _decode_probe_word(rf: PulseHiPerRF, settle: float) -> int:
    """Read value from the b0/b1 probe pulses of the post-settle readout."""
    value = 0
    for c in range(rf.columns):
        b0 = bool(rf.b0_probes[c].pulses_in_window(settle, float("inf")))
        b1 = bool(rf.b1_probes[c].pulses_in_window(settle, float("inf")))
        value |= (int(b0) | (int(b1) << 1)) << (2 * c)
    return value


def _hiperrf_outcome(rf: PulseHiPerRF, trial: FaultTrial,
                     settle: Optional[float]) -> FaultOutcome:
    read = None if settle is None else _decode_probe_word(rf, settle)
    return FaultOutcome(
        design="hiperrf",
        fault=trial.fault,
        read_value=read,
        stored_after=rf.stored_word(trial.register),
        expected=_expected_after(trial.fault, trial.value, trial.column),
        register=trial.register,
        column=trial.column,
    )


def run_hiperrf_trials(trials: Sequence[FaultTrial],
                       geometry: Optional[RFGeometry] = None,
                       tier: Optional[str] = None) -> List[FaultOutcome]:
    """Dispatch many HiPerRF fault trials as one lane batch.

    The netlist is built (or fetched) once through the compiled-netlist
    cache; each trial is captured as a :class:`~repro.pulse.LaneStimulus`
    and the whole sweep replays in a single :meth:`Engine.run_lanes`
    call - batched by default, sequential compiled with
    ``tier="compiled"`` or ``REPRO_PULSE_LANES=off``.
    """
    geom = geometry if geometry is not None else _DEFAULT_GEOMETRY
    rf = PulseHiPerRF.build_cached(geom, _HIPERRF_PERIOD_PS)
    engine = rf.engine
    stimuli = []
    settles = []
    for trial in trials:
        with capture_stimulus(engine) as capture:
            settles.append(_schedule_hiperrf_trial(rf, trial))
        stimuli.append(capture.stimulus())
    lane_outcomes = engine.run_lanes(stimuli, tier=tier, on_error="raise")
    compiled = engine.compile()
    outcomes = []
    for trial, settle, lane in zip(trials, settles, lane_outcomes):
        install_lane(compiled, lane)
        outcomes.append(_hiperrf_outcome(rf, trial, settle))
    return outcomes


def inject_hiperrf_fault(fault: FaultKind, register: int = 1,
                         value: int = 0xE4,
                         column: Optional[int] = None) -> FaultOutcome:
    """Write, then read once with one injected fault; inspect the damage."""
    rf = PulseHiPerRF.build_cached(_DEFAULT_GEOMETRY, _HIPERRF_PERIOD_PS)
    if column is None:
        # Historical defaults: drop the loopback of column 1, strike the
        # data input of column 0.
        column = 1 if fault is FaultKind.DROP_LOOPBACK_PULSE else 0
    trial = FaultTrial(fault, register, column, value)
    settle = _schedule_hiperrf_trial(rf, trial)
    return _hiperrf_outcome(rf, trial, settle)


def inject_ndro_fault(fault: FaultKind, register: int = 1,
                      value: int = 0xE4) -> FaultOutcome:
    """The baseline under the same fault models (loopback N/A)."""
    rf = PulseNdroRF.build_cached(_DEFAULT_GEOMETRY, _NDRO_PERIOD_PS)
    engine = rf.engine
    rf.schedule_write(register, value, 0.0)
    engine.run(until_ps=rf.op_period_ps)
    t = rf.op_period_ps

    if fault is FaultKind.EXTRA_DATA_PULSE:
        # A spurious SET pulse on bit 0: NDRO absorbs it if already 1.
        cell = rf.cells[register][0]
        engine.schedule(cell, "set", t + 50.0)
        engine.run(until_ps=t + 100.0)
        read = rf.read_word(register, t + 200.0)
    elif fault is FaultKind.DROP_READ_ENABLE:
        engine.run(until_ps=t + rf.op_period_ps)
        read = None
    else:
        raise ValueError(f"{fault} does not apply to the NDRO baseline")

    return FaultOutcome(
        design="ndro_rf",
        fault=fault,
        read_value=read,
        stored_after=rf.stored_word(register),
        expected=_expected_after_ndro(fault, value),
        register=register,
        column=0,
    )


def _expected_after(fault: FaultKind, value: int, column: int = 0) -> int:
    if fault is FaultKind.EXTRA_DATA_PULSE:
        # The struck column gains one fluxon unless already saturated at 3.
        shift = 2 * column
        low = (value >> shift) & 0b11
        bumped = min(low + 1, 3)
        return (value & ~(0b11 << shift)) | (bumped << shift)
    return value


def _expected_after_ndro(fault: FaultKind, value: int) -> int:
    if fault is FaultKind.EXTRA_DATA_PULSE:
        return value | 1  # bit 0 forced to 1 (idempotent if already set)
    return value
