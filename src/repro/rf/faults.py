"""Pulse-level fault injection: how fragile is each register file?

SFQ state is a handful of fluxons; a single lost or spurious pulse is a
soft error.  The two designs fail differently:

* the NDRO baseline holds state statically - a lost *enable* pulse makes
  one access misbehave but leaves the stored data intact;
* HiPerRF recycles state through the LoopBuffer on *every read* - a lost
  loopback pulse permanently corrupts the register (the value literally
  left the cell and never came back).

This module injects single-pulse faults into the pulse netlists and
measures the architectural outcome, quantifying the reliability cost of
the destructive-readout design that the paper's density win buys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.pulse import Engine
from repro.rf.geometry import RFGeometry
from repro.rf.netlist import PulseHiPerRF, PulseNdroRF


class FaultKind(enum.Enum):
    """Single-event fault models."""

    #: One fluxon of the loopback train is dissipated in flight
    #: (HiPerRF only: suppress one LoopBuffer output pulse).
    DROP_LOOPBACK_PULSE = "drop_loopback_pulse"
    #: A spurious extra pulse lands on a storage cell's data input.
    EXTRA_DATA_PULSE = "extra_data_pulse"
    #: The read-enable pulse is lost before reaching the DEMUX.
    DROP_READ_ENABLE = "drop_read_enable"


@dataclass(frozen=True)
class FaultOutcome:
    """What a single injected fault did to one register."""

    design: str
    fault: FaultKind
    read_value: Optional[int]
    stored_after: int
    expected: int

    @property
    def state_corrupted(self) -> bool:
        return self.stored_after != self.expected

    @property
    def read_wrong(self) -> bool:
        return self.read_value is not None and self.read_value != self.expected


def inject_hiperrf_fault(fault: FaultKind, register: int = 1,
                         value: int = 0xE4) -> FaultOutcome:
    """Write, then read once with one injected fault; inspect the damage."""
    engine = Engine()
    rf = PulseHiPerRF(engine, RFGeometry(4, 8))
    t = rf.write_word(register, value, 0.0)

    if fault is FaultKind.DROP_LOOPBACK_PULSE:
        # Suppress exactly one pulse on column 1's LoopBuffer output by
        # clearing the LoopBuffer for a moment mid-train: emulate the
        # in-flight loss by filtering the splitter with a one-shot drop.
        column = 1
        spl = rf.loopbuffer[column]
        original = spl.on_pulse
        state = {"dropped": False}

        def lossy(port: str, time_ps: float,
                  _original=original, _state=state) -> None:
            if port == "clk" and not _state["dropped"]:
                _state["dropped"] = True  # first readout pulse vanishes
                return
            _original(port, time_ps)

        spl.on_pulse = lossy
        read = rf.read_word(register, t)
    elif fault is FaultKind.EXTRA_DATA_PULSE:
        cell = rf.cells[register][0]
        engine.schedule(cell, "d", t + 50.0)
        engine.run(until_ps=t + 100.0)
        read = rf.read_word(register, t + 200.0)
    elif fault is FaultKind.DROP_READ_ENABLE:
        # The enable never arrives: nothing is read, nothing changes.
        engine.run(until_ps=t + rf.op_period_ps)
        read = None
    else:  # pragma: no cover
        raise ValueError(fault)

    return FaultOutcome(
        design="hiperrf",
        fault=fault,
        read_value=read,
        stored_after=rf.stored_word(register),
        expected=_expected_after(fault, value),
    )


def inject_ndro_fault(fault: FaultKind, register: int = 1,
                      value: int = 0xE4) -> FaultOutcome:
    """The baseline under the same fault models (loopback N/A)."""
    engine = Engine()
    rf = PulseNdroRF(engine, RFGeometry(4, 8))
    rf.schedule_write(register, value, 0.0)
    engine.run(until_ps=rf.op_period_ps)
    t = rf.op_period_ps

    if fault is FaultKind.EXTRA_DATA_PULSE:
        # A spurious SET pulse on bit 0: NDRO absorbs it if already 1.
        cell = rf.cells[register][0]
        engine.schedule(cell, "set", t + 50.0)
        engine.run(until_ps=t + 100.0)
        read = rf.read_word(register, t + 200.0)
    elif fault is FaultKind.DROP_READ_ENABLE:
        engine.run(until_ps=t + rf.op_period_ps)
        read = None
    else:
        raise ValueError(f"{fault} does not apply to the NDRO baseline")

    return FaultOutcome(
        design="ndro_rf",
        fault=fault,
        read_value=read,
        stored_after=rf.stored_word(register),
        expected=_expected_after_ndro(fault, value),
    )


def _expected_after(fault: FaultKind, value: int) -> int:
    if fault is FaultKind.EXTRA_DATA_PULSE:
        # Column 0 gains one fluxon unless already saturated at 3.
        low = value & 0b11
        bumped = min(low + 1, 3)
        return (value & ~0b11) | bumped
    return value


def _expected_after_ndro(fault: FaultKind, value: int) -> int:
    if fault is FaultKind.EXTRA_DATA_PULSE:
        return value | 1  # bit 0 forced to 1 (idempotent if already set)
    return value
