"""Pipelined pulse-level operation of the NDRO register file (Figure 8).

The netlist drivers in :mod:`repro.rf.netlist` run one port operation per
generous window; this driver runs the baseline NDRO register file at the
paper's full rate - one port operation per 53 ps cycle - by re-arming
each DEMUX tree level-by-level (the technique of
:class:`repro.pulse.demux.PipelinedDemuxDriver`) and timing RESET / WEN /
W_DATA / REN pulses exactly as Figure 8 draws them:

* cycle k: RESET(dest) fires; WEN(dest) follows 10 ps later; REN(src1)
  fires after the write so the same-cycle read sees the new value
  (internal forwarding, Section III-E);
* cycle k+1: REN(src2) overlaps the next instruction's RESET/WEN.

This is the reproduction's "hybrid pipeline-gate level simulation": the
static schedule of :mod:`repro.rf.timing` is executed against the real
pulse netlist and the architectural results are checked.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cells import params
from repro.errors import ConfigError
from repro.pulse import NdrocDemux
from repro.rf.netlist import PulseNdroRF
from repro.rf.timing import Instr

_CYCLE = params.RF_CYCLE_PS
_LEVEL = params.NDROC_PROPAGATION_PS


def schedule_demux_op(demux: NdrocDemux, address: int, fire_time: float,
                      cycle_ps: float = _CYCLE) -> None:
    """Arm one pipelined DEMUX traversal (per-level reset + select + fire).

    Level ``k`` sees the enable pulse at ``fire_time + k * 24 ps``; its
    reset (clearing the previous operation's select bit) and this
    operation's select bit land in the dead band one cycle earlier.
    """
    for level in range(demux.depth):
        pulse_arrival = fire_time + level * _LEVEL
        demux.reset_arrives_at(level, pulse_arrival - cycle_ps + 15.0)
        bit = (address >> (demux.depth - 1 - level)) & 1
        demux.select_arrives_at(level, bit, pulse_arrival - 20.0)
    demux.fire(fire_time)


class PipelinedNdroRFDriver:
    """Drive a :class:`PulseNdroRF` at one port operation per 53 ps."""

    def __init__(self, rf: PulseNdroRF, start_ps: float = 200.0) -> None:
        self.rf = rf
        self.start_ps = start_ps
        self._reads: List[Tuple[int, float]] = []  # (register, window start)

    # -- port primitives -------------------------------------------------

    def _write(self, register: int, value: int, cycle: int) -> None:
        """RESET at cycle start, WEN +10 ps, data in coincidence."""
        rf = self.rf
        t0 = self.start_ps + cycle * _CYCLE
        schedule_demux_op(rf.reset_demux, register, t0)
        wen_fire = t0 + params.RESET_TO_WEN_PS
        schedule_demux_op(rf.write_demux, register, wen_fire)
        wen_arrival = wen_fire + rf._demux_delay + rf._fanout_delay
        data_inject = wen_arrival - rf._data_fan_delay
        for bit in range(rf.geometry.width_bits):
            if value & (1 << bit):
                comp, port = rf.data_trees[bit].inp
                rf.engine.schedule(comp, port, data_inject)

    def _read(self, register: int, cycle: int) -> None:
        """REN after the same-cycle write settles (internal forwarding)."""
        rf = self.rf
        t0 = self.start_ps + cycle * _CYCLE
        ren_fire = t0 + params.RESET_TO_WEN_PS + 10.0
        schedule_demux_op(rf.read_demux, register, ren_fire)
        arrival = (ren_fire + rf._demux_delay + rf._fanout_delay
                   + params.DELAY_PS["ndro_clk_to_q"])
        self._reads.append((register, arrival - 5.0))

    # -- instruction stream ------------------------------------------------

    def run_stream(self, instrs: Sequence[Instr],
                   values: Dict[int, int]) -> List[Tuple[int, int]]:
        """Execute an instruction stream per the Figure 8 schedule.

        ``values`` maps destination registers to the values their write
        back carries.  Returns ``(register, value_read)`` per source read
        in program order, decoded from the output-port probes.
        """
        rf = self.rf
        if rf.geometry.num_registers < 2:
            raise ConfigError("pipelined driver needs a demux (>= 2 regs)")
        cycle = 0
        for instr in instrs:
            if instr.dest is not None:
                if instr.dest not in values:
                    raise ConfigError(
                        f"no write-back value for r{instr.dest}")
                self._write(instr.dest, values[instr.dest], cycle)
            sources = list(dict.fromkeys(instr.srcs))
            for offset, source in enumerate(sources):
                self._read(source, cycle + offset)
            cycle += max(len(sources), 1)

        total = self.start_ps + (cycle + 4) * _CYCLE
        rf.engine.run(until_ps=total)

        results: List[Tuple[int, int]] = []
        window = _CYCLE - 5.0
        for register, window_start in self._reads:
            value = 0
            for bit, probe in enumerate(rf.out_probes):
                if probe.pulses_in_window(window_start,
                                          window_start + window):
                    value |= 1 << bit
            results.append((register, value))
        return results
