"""Abstract register-file design: census + critical-path timing interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cells import params
from repro.rf.census import ComponentCensus
from repro.rf.geometry import RFGeometry


@dataclass(frozen=True)
class PathElement:
    """One stage on a critical path.

    ``gate_count`` is the number of physical gates this stage contributes
    to the path; wire-aware models (Table IV) charge one average PTL hop
    per gate-to-gate edge.  Stages with ``gate_count == 0`` are pure timing
    offsets (e.g. the 20 ps tail of a 3-pulse HC-DRO train).
    """

    label: str
    delay_ps: float
    gate_count: int = 1


class CriticalPath:
    """An ordered sequence of :class:`PathElement` with roll-up helpers."""

    def __init__(self, elements: Sequence[PathElement]) -> None:
        self._elements: List[PathElement] = list(elements)

    @property
    def elements(self) -> List[PathElement]:
        return list(self._elements)

    def delay_ps(self) -> float:
        """Total gate delay along the path, excluding wires."""
        return sum(e.delay_ps for e in self._elements)

    def gate_count(self) -> int:
        """Number of physical gates on the path."""
        return sum(e.gate_count for e in self._elements)

    def hop_count(self) -> int:
        """Gate-to-gate wire hops along the path (gates minus one)."""
        return max(self.gate_count() - 1, 0)

    def wire_delay_ps(self, avg_hop_ps: float = params.AVG_WIRE_DELAY_PS) -> float:
        """Total PTL wire delay at ``avg_hop_ps`` per hop (Section VI-C)."""
        return self.hop_count() * avg_hop_ps

    def delay_with_wires_ps(self, avg_hop_ps: float = params.AVG_WIRE_DELAY_PS) -> float:
        """Gate delay plus average wire delay (Table IV model)."""
        return self.delay_ps() + self.wire_delay_ps(avg_hop_ps)

    def describe(self) -> str:
        """Multi-line human-readable breakdown of the path."""
        lines = [
            f"  {e.label:<38s} {e.delay_ps:7.1f} ps  ({e.gate_count} gate(s))"
            for e in self._elements
        ]
        lines.append(f"  {'total':<38s} {self.delay_ps():7.1f} ps  "
                     f"({self.gate_count()} gates, {self.hop_count()} hops)")
        return "\n".join(lines)


class RegisterFileDesign(abc.ABC):
    """Common interface of the three register file designs."""

    #: Short identifier used in tables and plots.
    name: str = "abstract"
    #: Name used in the paper's tables.
    paper_name: str = "abstract"

    def __init__(self, geometry: RFGeometry) -> None:
        self.geometry = geometry
        self._census_cache: Optional[ComponentCensus] = None

    # -- structure ---------------------------------------------------------

    @abc.abstractmethod
    def build_census(self) -> ComponentCensus:
        """Construct the full structural component census for this design."""

    def census(self) -> ComponentCensus:
        """Cached component census."""
        if self._census_cache is None:
            self._census_cache = self.build_census()
        return self._census_cache

    def jj_count(self) -> int:
        """Total JJ count including all peripheral circuitry (Table I)."""
        return self.census().jj_count()

    def static_power_uw(self) -> float:
        """Total static power in microwatts (Table II)."""
        return self.census().static_power_uw()

    # -- timing ------------------------------------------------------------

    @abc.abstractmethod
    def readout_path(self) -> CriticalPath:
        """Critical path from read-enable arrival to data at the output port."""

    def readout_delay_ps(self) -> float:
        """Readout delay without wire parasitics (Table III)."""
        return self.readout_path().delay_ps()

    def loopback_path(self) -> Optional[CriticalPath]:
        """Loopback-write path, or ``None`` for designs without loopback."""
        return None

    @property
    def cycle_time_ps(self) -> float:
        """Port cycle time, limited by the NDROC enable separation (53 ps)."""
        return params.RF_CYCLE_PS

    # -- ports -------------------------------------------------------------

    @property
    def read_ports(self) -> int:
        return 1

    @property
    def write_ports(self) -> int:
        return 1

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """One-row summary used by the experiment harness."""
        row: Dict[str, float] = {
            "jj_count": float(self.jj_count()),
            "static_power_uw": self.static_power_uw(),
            "readout_delay_ps": self.readout_delay_ps(),
            "cycle_time_ps": self.cycle_time_ps,
        }
        loopback = self.loopback_path()
        if loopback is not None:
            row["loopback_delay_ps"] = loopback.delay_ps()
        return row

    def __repr__(self) -> str:
        return f"{type(self).__name__}(geometry={self.geometry.label()})"


@dataclass(frozen=True)
class DesignComparison:
    """A design's metrics expressed relative to a baseline design."""

    design: str
    geometry: str
    jj_count: int
    jj_percent_of_baseline: float
    static_power_uw: float
    power_percent_of_baseline: float
    readout_delay_ps: float
    delay_percent_of_baseline: float


def compare_designs(baseline: RegisterFileDesign,
                    design: RegisterFileDesign) -> DesignComparison:
    """Compute the percent-of-baseline columns used throughout Section VI."""
    if baseline.geometry != design.geometry:
        raise ValueError(
            f"geometry mismatch: {baseline.geometry.label()} vs {design.geometry.label()}")
    return DesignComparison(
        design=design.name,
        geometry=design.geometry.label(),
        jj_count=design.jj_count(),
        jj_percent_of_baseline=100.0 * design.jj_count() / baseline.jj_count(),
        static_power_uw=design.static_power_uw(),
        power_percent_of_baseline=(
            100.0 * design.static_power_uw() / baseline.static_power_uw()),
        readout_delay_ps=design.readout_delay_ps(),
        delay_percent_of_baseline=(
            100.0 * design.readout_delay_ps() / baseline.readout_delay_ps()),
    )
