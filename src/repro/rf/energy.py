"""Dynamic (switching) energy model for register file accesses.

The paper evaluates *static* (bias) power in Table II; SFQ switching
energy is famously tiny - "little switching energy dissipation
(~1e-19 J)" (Section I) - because each JJ switch dissipates roughly

    E_switch = Ic * PHI0

(about 2e-19 J at Ic = 100 uA).  This extension quantifies the dynamic
side: the energy of one read or write is the switch energy summed over
every JJ that fires along the access path - DEMUX routing, enable
fan-out, the storage cells, output merging, and (for HiPerRF) the
HC circuits and the loopback write that every read implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells import get_cell
from repro.rf.base import RegisterFileDesign
from repro.rf.geometry import log2_int
from repro.units import PHI0_WB

#: Typical junction critical current in the cell library (amperes).
TYPICAL_IC_A = 100e-6

#: Energy per junction switch, Ic * Phi0 (joules) - ~2e-19 J.
E_SWITCH_J = TYPICAL_IC_A * PHI0_WB

#: Attojoules per switch, the convenient reporting unit.
E_SWITCH_AJ = E_SWITCH_J * 1e18


def _cell_switch_jj(name: str) -> int:
    """JJs that fire when a cell processes one pulse (roughly half the
    junctions in storage/logic cells; all of a JTL/splitter)."""
    spec = get_cell(name)
    if name in ("jtl", "splitter", "merger", "ptl_driver", "ptl_receiver"):
        return spec.jj_count
    return max(spec.jj_count // 2, 1)


@dataclass(frozen=True)
class AccessEnergy:
    """Per-operation dynamic energy of one design (attojoules)."""

    design: str
    read_aj: float
    write_aj: float
    loopback_aj: float

    @property
    def effective_read_aj(self) -> float:
        """A read plus the loopback write it triggers (HiPerRF designs)."""
        return self.read_aj + self.loopback_aj


def _demux_switches(num_registers: int) -> int:
    """JJ switches of one DEMUX traversal: one NDROC per level plus the
    select-bit set/reset activity amortised per operation."""
    levels = log2_int(num_registers)
    per_level = _cell_switch_jj("ndroc")
    # set + clk-route + reset per level, roughly 3 activations.
    return levels * per_level * 3


def access_energy(design: RegisterFileDesign) -> AccessEnergy:
    """Estimate per-read/write switching energy for a design."""
    geo = design.geometry
    n = geo.num_registers
    name = design.name

    if name == "ndro_rf":
        columns = geo.width_bits
        read = (_demux_switches(n)
                + (columns - 1) * _cell_switch_jj("splitter")   # enable fan
                + columns * _cell_switch_jj("ndro")             # cells read
                + columns * log2_int(n) * _cell_switch_jj("merger"))
        write = (2 * _demux_switches(n)                         # reset+write
                 + 2 * (columns - 1) * _cell_switch_jj("splitter")
                 + columns * _cell_switch_jj("dand")
                 + columns * _cell_switch_jj("ndro"))
        loopback = 0.0
        return AccessEnergy(name, read * E_SWITCH_AJ, write * E_SWITCH_AJ,
                            loopback)

    # HiPerRF family: per-column pulse trains carry up to 3 pulses; use
    # the average occupancy of 1.5 pulses per 2-bit column.
    columns = geo.hc_cells_per_register
    avg_pulses = 1.5
    bank_n = n // 2 if name.startswith("dual_bank") else n
    demux = _demux_switches(max(bank_n, 2))
    hc_clk = _cell_switch_jj("hc_clk")
    read = (demux + hc_clk
            + (columns - 1) * _cell_switch_jj("splitter")
            + avg_pulses * columns * _cell_switch_jj("hcdro")
            + avg_pulses * columns * log2_int(max(bank_n, 2))
            * _cell_switch_jj("merger")
            + avg_pulses * columns * _cell_switch_jj("ndro")    # LoopBuffer
            + avg_pulses * columns * _cell_switch_jj("splitter")
            + columns * _cell_switch_jj("hc_read"))
    loopback = (demux + hc_clk
                + avg_pulses * columns * (_cell_switch_jj("merger")
                                          + _cell_switch_jj("dand")
                                          + _cell_switch_jj("hcdro"))
                + avg_pulses * columns * log2_int(max(bank_n, 2))
                * _cell_switch_jj("splitter"))
    write = (2 * demux + 2 * hc_clk                    # erase read + write
             + columns * _cell_switch_jj("hc_write")
             + avg_pulses * columns * (_cell_switch_jj("dand")
                                       + _cell_switch_jj("hcdro"))
             + avg_pulses * columns * log2_int(max(bank_n, 2))
             * _cell_switch_jj("splitter"))
    return AccessEnergy(name, read * E_SWITCH_AJ, write * E_SWITCH_AJ,
                        loopback * E_SWITCH_AJ)


def workload_rf_energy_aj(design: RegisterFileDesign, reads: int,
                          writes: int) -> float:
    """Total RF switching energy of a workload (attojoules).

    Every HiPerRF read implies a loopback write; baseline reads do not.
    """
    energy = access_energy(design)
    return reads * energy.effective_read_aj + writes * energy.write_aj
