"""Deterministic data generation and shared assembly fragments."""

from __future__ import annotations

from typing import List


class Lcg:
    """The classic Lehmer/Park-Miller-ish 32-bit LCG used by specrand.

    Deterministic across platforms; also implemented in RV32I assembly by
    the ``specrand`` workload, so Python and assembly streams must match.
    """

    MULTIPLIER = 1103515245
    INCREMENT = 12345
    MASK = 0x7FFFFFFF

    def __init__(self, seed: int = 1) -> None:
        self.state = seed & 0xFFFFFFFF

    def next(self) -> int:
        self.state = (self.state * self.MULTIPLIER + self.INCREMENT) & 0xFFFFFFFF
        return (self.state >> 16) & 0x7FFF

    def sequence(self, count: int) -> List[int]:
        return [self.next() for _ in range(count)]


def words_directive(values: List[int]) -> str:
    """Render a list of ints as ``.word`` lines (8 per line)."""
    lines = []
    for start in range(0, len(values), 8):
        chunk = values[start:start + 8]
        rendered = ", ".join(str(v & 0xFFFFFFFF) for v in chunk)
        lines.append(f"    .word {rendered}")
    return "\n".join(lines)


#: Software multiply: a0 = a0 * a1 (low 32 bits), clobbers t0-t2.
#: RV32I has no M extension, so kernels that multiply call this.
MUL_SUBROUTINE = """
__mulsi3:
    mv   t0, a0          # multiplicand
    mv   t1, a1          # multiplier
    li   a0, 0
__mul_loop:
    andi t2, t1, 1
    beqz t2, __mul_skip
    add  a0, a0, t0
__mul_skip:
    slli t0, t0, 1
    srli t1, t1, 1
    bnez t1, __mul_loop
    ret
"""

#: Exit helpers: jump to __pass / __fail at the end of a kernel.
EXIT_STUBS = """
__pass:
    li   a0, 42
    li   a7, 93
    ecall
__fail:
    li   a0, 1
    li   a7, 93
    ecall
"""
