"""Synthetic SPEC CPU 2006 stand-ins (Section VI-B ran 429.mcf, 458.sjeng,
462.libquantum and 999.specrand).

Real SPEC binaries cannot be shipped or cross-compiled here; these
kernels reproduce the *register-reuse and dependency profile* that drives
Figure 14 instead:

* ``mcf`` - pointer chasing over an arc/node graph with cost relaxation:
  serial load-to-address chains (long RAW distance through memory).
* ``sjeng`` - a branch-ladder move evaluator over pseudo-random
  positions: data-dependent branches dominate.
* ``libquantum`` - streaming gate application over a bit-register array:
  independent iterations, high issue-rate sensitivity.
* ``specrand`` - the LCG stream itself: a tight 1-cycle RAW recurrence.
"""

from __future__ import annotations

from repro.workloads.generator import EXIT_STUBS, Lcg, words_directive

MASK32 = 0xFFFFFFFF


def _permutation_cycle(n: int, rng: Lcg) -> list:
    """A single-cycle permutation (so the pointer chase visits every node)."""
    order = list(range(n))
    # Fisher-Yates with the deterministic LCG.
    for i in range(n - 1, 0, -1):
        j = rng.next() % (i + 1)
        order[i], order[j] = order[j], order[i]
    nxt = [0] * n
    for i in range(n):
        nxt[order[i]] = order[(i + 1) % n]
    return nxt


def build_mcf(nodes: int = 32, steps: int = 96) -> str:
    """Pointer-chasing cost relaxation (429.mcf profile).

    Node record layout (12 bytes): next index, cost, potential.
    The walk accumulates ``cost`` and relaxes it against the running
    accumulator, producing a serial chain: load next -> compute address
    -> load again.
    """
    rng = Lcg(seed=71)
    nxt = _permutation_cycle(nodes, rng)
    costs = [v & 0xFF for v in rng.sequence(nodes)]
    potentials = [v & 0x3F for v in rng.sequence(nodes)]
    # Python model of the walk below.
    acc = 0
    node = 0
    cost_arr = list(costs)
    for _ in range(steps):
        cost = cost_arr[node]
        pot = potentials[node]
        reduced = (acc + pot) & MASK32
        if reduced < cost:
            cost_arr[node] = reduced
        acc = (acc + cost_arr[node]) & MASK32
        node = nxt[node]
    checksum = acc
    records = []
    for i in range(nodes):
        records.extend([nxt[i], costs[i], potentials[i]])
    return f"""
.text
_start:
    la   s0, graph       # 12-byte records
    li   s1, {steps}
    li   s2, 0           # acc
    li   s3, 0           # node index
walk:
    beqz s1, walk_done
    # record address = base + node*12
    slli t0, s3, 3
    slli t1, s3, 2
    add  t0, t0, t1
    add  t0, t0, s0
    lw   t1, 0(t0)       # next
    lw   t2, 4(t0)       # cost
    lw   t3, 8(t0)       # potential
    add  t4, s2, t3      # reduced = acc + potential
    bge  t4, t2, no_relax
    sw   t4, 4(t0)       # relax cost
    mv   t2, t4
no_relax:
    add  s2, s2, t2      # acc += cost
    mv   s3, t1          # chase the pointer
    addi s1, s1, -1
    j    walk
walk_done:
    li   t6, {checksum}
    bne  s2, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
graph:
{words_directive(records)}
"""


def build_sjeng(positions: int = 64) -> str:
    """Branch-ladder move evaluation (458.sjeng profile)."""
    rng = Lcg(seed=83)
    values = rng.sequence(positions)
    # Python model of the evaluation ladder.
    score = 0
    for v in values:
        piece = v & 7
        if piece == 0:
            score += 1
        elif piece == 1:
            score += 3
        elif piece == 2:
            score += 3
        elif piece == 3:
            score += 5
        elif piece == 4:
            score += 9
        elif piece == 5:
            score -= 2
        elif piece == 6:
            score ^= v >> 3
        else:
            score = (score << 1) & MASK32
        if v & 0x100:
            score = (score + (v >> 9)) & MASK32
        score &= MASK32
    checksum = score
    return f"""
.text
_start:
    la   s0, positions
    li   s1, {positions}
    li   s2, 0           # score
    li   s3, 0           # index
eval_loop:
    slli t0, s3, 2
    add  t1, s0, t0
    lw   t2, 0(t1)       # position value
    andi t3, t2, 7       # piece kind: the branch ladder
    bnez t3, not_pawn
    addi s2, s2, 1
    j    ladder_done
not_pawn:
    li   t4, 1
    bne  t3, t4, not_knight
    addi s2, s2, 3
    j    ladder_done
not_knight:
    li   t4, 2
    bne  t3, t4, not_bishop
    addi s2, s2, 3
    j    ladder_done
not_bishop:
    li   t4, 3
    bne  t3, t4, not_rook
    addi s2, s2, 5
    j    ladder_done
not_rook:
    li   t4, 4
    bne  t3, t4, not_queen
    addi s2, s2, 9
    j    ladder_done
not_queen:
    li   t4, 5
    bne  t3, t4, not_capture
    addi s2, s2, -2
    j    ladder_done
not_capture:
    li   t4, 6
    bne  t3, t4, is_shift
    srli t4, t2, 3
    xor  s2, s2, t4
    j    ladder_done
is_shift:
    slli s2, s2, 1
ladder_done:
    andi t4, t2, 0x100   # check-extension branch
    beqz t4, no_ext
    srli t4, t2, 9
    add  s2, s2, t4
no_ext:
    addi s3, s3, 1
    blt  s3, s1, eval_loop
    li   t6, {checksum}
    bne  s2, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
positions:
{words_directive(values)}
"""


def build_libquantum(qubits_words: int = 32, gates: int = 6) -> str:
    """Streaming gate application over a bit register (462.libquantum profile)."""
    rng = Lcg(seed=97)
    state = rng.sequence(qubits_words)
    controls = [rng.next() & MASK32 for _ in range(gates)]
    targets = [rng.next() & MASK32 for _ in range(gates)]
    # Python model: toggle target bits where the control bit pattern hits.
    st = list(state)
    for g in range(gates):
        for i in range(qubits_words):
            if st[i] & controls[g] & 0xFFFF:
                st[i] ^= targets[g]
            st[i] = ((st[i] << 1) | (st[i] >> 31)) & MASK32
    checksum = sum(st) & MASK32
    return f"""
.text
_start:
    la   s0, qstate
    la   s1, qcontrols
    la   s2, qtargets
    li   s3, {gates}
    li   s4, 0           # gate index
gate_loop:
    slli t0, s4, 2
    add  t1, s1, t0
    lw   s5, 0(t1)       # control mask
    add  t1, s2, t0
    lw   s6, 0(t1)       # target mask
    li   s7, 0           # word index
word_loop:
    slli t0, s7, 2
    add  t1, s0, t0
    lw   t2, 0(t1)
    and  t3, t2, s5
    li   t4, 0xFFFF
    and  t3, t3, t4
    beqz t3, no_toggle
    xor  t2, t2, s6
no_toggle:
    slli t3, t2, 1       # rotate left 1
    srli t4, t2, 31
    or   t2, t3, t4
    sw   t2, 0(t1)
    addi s7, s7, 1
    li   t0, {qubits_words}
    blt  s7, t0, word_loop
    addi s4, s4, 1
    blt  s4, s3, gate_loop
    # checksum
    li   s8, 0
    li   s7, 0
qsum_loop:
    slli t0, s7, 2
    add  t1, s0, t0
    lw   t2, 0(t1)
    add  s8, s8, t2
    addi s7, s7, 1
    li   t0, {qubits_words}
    blt  s7, t0, qsum_loop
    li   t6, {checksum}
    bne  s8, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
qstate:
{words_directive(state)}
qcontrols:
{words_directive(controls)}
qtargets:
{words_directive(targets)}
"""


def build_specrand(draws: int = 256) -> str:
    """The 999.specrand LCG stream: a tight serial RAW recurrence."""
    rng = Lcg(seed=1)
    checksum = sum(rng.sequence(draws)) & MASK32
    return f"""
.text
_start:
    li   s0, 1           # LCG state (seed)
    li   s1, {draws}
    li   s2, 0           # checksum
    li   s3, {Lcg.MULTIPLIER}
    li   s4, {Lcg.INCREMENT}
rand_loop:
    # state = state * 1103515245 + 12345 (software multiply, unrolled
    # shift-add over the constant's set bits would be long; use the
    # generic routine)
    mv   a0, s0
    mv   a1, s3
    call __mulsi3
    add  s0, a0, s4
    srli t0, s0, 16
    li   t1, 0x7FFF
    and  t0, t0, t1
    add  s2, s2, t0
    addi s1, s1, -1
    bnez s1, rand_loop
    li   t6, {checksum}
    bne  s2, t6, __fail
    j    __pass
__mulsi3:
    mv   t0, a0
    mv   t1, a1
    li   a0, 0
__mul_loop:
    andi t2, t1, 1
    beqz t2, __mul_skip
    add  a0, a0, t0
__mul_skip:
    slli t0, t0, 1
    srli t1, t1, 1
    bnez t1, __mul_loop
    ret
{EXIT_STUBS}
"""
