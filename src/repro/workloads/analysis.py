"""Trace profiling: the dependency structure that drives Figure 14.

The CPI impact of HiPerRF is set by a workload's *register reuse
profile*: how far apart read-after-write pairs sit (RAW distance through
the 28-deep execute), how often the same register is re-read while its
loopback is in flight, the branch density, and - for the dual-banked
design - how often an instruction's two sources land in the same parity
bank.  This module measures those properties from a retirement stream,
both to characterise workloads and to validate that the synthetic SPEC
stand-ins reproduce the profiles the paper's benchmarks are known for.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.isa import Executor, assemble
from repro.isa.executor import ExecutedOp
from repro.workloads.registry import Workload, get_workload


@dataclass
class TraceProfile:
    """Aggregate dependency statistics of one retirement stream."""

    instructions: int = 0
    alu_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    two_source_ops: int = 0
    same_bank_pairs: int = 0
    raw_distances: Counter = field(default_factory=Counter)
    reread_distances: Counter = field(default_factory=Counter)

    # -- derived -----------------------------------------------------------

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.instructions if self.instructions else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0

    @property
    def taken_branch_fraction(self) -> float:
        return (self.taken_branches / self.instructions
                if self.instructions else 0.0)

    @property
    def same_bank_pair_fraction(self) -> float:
        """Fraction of two-source instructions whose sources share a bank.

        This is what separates the measured dual-banked design from its
        "ideal" variant in Figure 14.
        """
        if self.two_source_ops == 0:
            return 0.0
        return self.same_bank_pairs / self.two_source_ops

    def mean_raw_distance(self) -> Optional[float]:
        total = sum(self.raw_distances.values())
        if total == 0:
            return None
        weighted = sum(d * c for d, c in self.raw_distances.items())
        return weighted / total

    def raw_distance_at_most(self, distance: int) -> float:
        """Fraction of RAW dependencies with producer within ``distance``."""
        total = sum(self.raw_distances.values())
        if total == 0:
            return 0.0
        close = sum(c for d, c in self.raw_distances.items() if d <= distance)
        return close / total

    def reread_within(self, distance: int) -> float:
        """Fraction of reads that re-read a register read <= ``distance``
        instructions earlier - the loopback-hazard exposure."""
        total = sum(self.reread_distances.values())
        if total == 0:
            return 0.0
        close = sum(c for d, c in self.reread_distances.items()
                    if d <= distance)
        return close / total

    def summary(self) -> Dict[str, float]:
        return {
            "instructions": float(self.instructions),
            "load_fraction": self.load_fraction,
            "store_fraction": self.store_fraction,
            "branch_fraction": self.branch_fraction,
            "taken_branch_fraction": self.taken_branch_fraction,
            "mean_raw_distance": self.mean_raw_distance() or 0.0,
            "raw_within_2": self.raw_distance_at_most(2),
            "reread_within_2": self.reread_within(2),
            "same_bank_pair_fraction": self.same_bank_pair_fraction,
        }


def profile_trace(ops: Iterable[ExecutedOp],
                  max_distance: int = 64) -> TraceProfile:
    """Measure the dependency profile of a retirement stream."""
    profile = TraceProfile()
    last_writer: Dict[int, int] = {}
    last_reader: Dict[int, int] = {}
    for index, op in enumerate(ops):
        profile.instructions += 1
        if op.is_load:
            profile.loads += 1
        elif op.is_store:
            profile.stores += 1
        elif op.instr.is_branch:
            profile.branches += 1
        else:
            profile.alu_ops += 1
        if op.instr.is_branch and op.branch_taken:
            profile.taken_branches += 1

        sources = tuple(dict.fromkeys(op.sources))
        if len(sources) == 2:
            profile.two_source_ops += 1
            if (sources[0] & 1) == (sources[1] & 1):
                profile.same_bank_pairs += 1
        for src in sources:
            if src in last_writer:
                distance = index - last_writer[src]
                if distance <= max_distance:
                    profile.raw_distances[distance] += 1
            if src in last_reader:
                distance = index - last_reader[src]
                if distance <= max_distance:
                    profile.reread_distances[distance] += 1
            last_reader[src] = index
        if op.destination is not None:
            last_writer[op.destination] = index
    return profile


def profile_workload(name: str, scale: float = 1.0,
                     max_instructions: int = 400_000) -> TraceProfile:
    """Assemble, run and profile one registered workload."""
    workload: Workload = get_workload(name)
    executor = Executor(assemble(workload.build(scale)))
    return profile_trace(executor.trace(max_instructions=max_instructions))


def profile_all(scale: float = 1.0) -> Dict[str, TraceProfile]:
    """Profile the whole suite (used by the workload-characterisation bench)."""
    from repro.workloads.registry import workload_names

    return {name: profile_workload(name, scale) for name in workload_names()}
