"""Workload registry: names, categories and builders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigError
from repro.workloads import riscv_kernels, spec_kernels

#: Exit code every self-checking kernel returns on success.
PASS_EXIT_CODE = 42


@dataclass(frozen=True)
class Workload:
    """A named benchmark with a source builder.

    ``build(scale)`` returns assembly source; ``scale`` multiplies the
    default problem size (1.0 keeps tests fast; the Figure 14 harness
    uses larger scales).
    """

    name: str
    category: str  # "riscv-tests" | "spec2006"
    description: str
    builder: Callable[[float], str]

    def build(self, scale: float = 1.0) -> str:
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        return self.builder(scale)


def _scaled(value: int, scale: float, minimum: int = 4) -> int:
    return max(int(round(value * scale)), minimum)


_WORKLOADS: Dict[str, Workload] = {}


def _register(name: str, category: str, description: str,
              builder: Callable[[float], str]) -> None:
    _WORKLOADS[name] = Workload(name, category, description, builder)


_register("vvadd", "riscv-tests", "vector-vector add",
          lambda s: riscv_kernels.build_vvadd(_scaled(64, s)))
_register("median", "riscv-tests", "3-point median filter",
          lambda s: riscv_kernels.build_median(_scaled(64, s)))
_register("multiply", "riscv-tests", "software pairwise multiply",
          lambda s: riscv_kernels.build_multiply(_scaled(24, s)))
_register("qsort", "riscv-tests", "recursive quicksort",
          lambda s: riscv_kernels.build_qsort(_scaled(24, s)))
_register("rsort", "riscv-tests", "counting/radix sort",
          lambda s: riscv_kernels.build_rsort(_scaled(48, s)))
_register("towers", "riscv-tests", "towers of hanoi",
          lambda s: riscv_kernels.build_towers(
              max(min(int(round(7 * s)), 16), 3)))
_register("spmv", "riscv-tests", "CSR sparse matrix-vector product",
          lambda s: riscv_kernels.build_spmv(_scaled(12, s)))
_register("dhrystone", "riscv-tests", "dhrystone-flavoured mix",
          lambda s: riscv_kernels.build_dhrystone(_scaled(12, s)))
_register("memcpy", "riscv-tests", "byte-wise memory copy with verify",
          lambda s: riscv_kernels.build_memcpy(_scaled(96, s)))
_register("fibonacci", "riscv-tests", "naive recursive fibonacci",
          lambda s: riscv_kernels.build_fibonacci(
              max(min(int(round(12 * s)), 20), 4)))
_register("matmul", "riscv-tests", "dense integer matrix multiply",
          lambda s: riscv_kernels.build_matmul(_scaled(6, s)))
_register("mcf", "spec2006", "429.mcf stand-in: pointer-chasing relaxation",
          lambda s: spec_kernels.build_mcf(_scaled(32, s), _scaled(96, s)))
_register("sjeng", "spec2006", "458.sjeng stand-in: branch-ladder evaluator",
          lambda s: spec_kernels.build_sjeng(_scaled(64, s)))
_register("libquantum", "spec2006",
          "462.libquantum stand-in: streaming gate application",
          lambda s: spec_kernels.build_libquantum(_scaled(32, s)))
_register("specrand", "spec2006", "999.specrand stand-in: LCG stream",
          lambda s: spec_kernels.build_specrand(_scaled(256, s)))


def workload_names() -> Tuple[str, ...]:
    return tuple(_WORKLOADS)


def all_workloads() -> List[Workload]:
    return list(_WORKLOADS.values())


def get_workload(name: str) -> Workload:
    if name not in _WORKLOADS:
        known = ", ".join(_WORKLOADS)
        raise ConfigError(f"unknown workload {name!r}; known: {known}")
    return _WORKLOADS[name]
