"""A kernel generated from the scheduler IR, in naive and scheduled order.

An unrolled accumulation kernel with independent chains: each unrolled
iteration computes ``acc_k += (a_k ^ m) + (a_k >> 2)`` over its own
registers, so the naive (iteration-by-iteration) order has distance-1
RAW chains while the list-scheduled order interleaves the chains and
spreads every producer-consumer pair - exactly the transformation the
paper says SFQ compilers should do.
"""

from __future__ import annotations

from typing import List

from repro.cpu.scheduler import IrOp, list_schedule, render_asm
from repro.errors import ConfigError
from repro.workloads.generator import EXIT_STUBS, Lcg, words_directive

MASK32 = 0xFFFFFFFF

#: Register pools for the unrolled chains (s-regs stay for bookkeeping).
_CHAIN_REGS = (("t0", "t1", "t2"), ("t3", "t4", "t5"),
               ("a1", "a2", "a3"), ("a4", "a5", "a6"))


def _kernel_ir(unroll: int) -> List[IrOp]:
    """The loop body as IR: ``unroll`` independent dependence chains."""
    if not 1 <= unroll <= len(_CHAIN_REGS):
        raise ConfigError(f"unroll must be 1..{len(_CHAIN_REGS)}")
    ops: List[IrOp] = []
    for k in range(unroll):
        load, tmp_a, tmp_b = _CHAIN_REGS[k]
        offset = 4 * k
        # Each chain: load -> xor -> shift -> add -> accumulate.
        ops.append(IrOp(f"lw   {load}, {offset}(s0)", dest=load,
                        srcs=("s0",)))
        ops.append(IrOp(f"xor  {tmp_a}, {load}, s4", dest=tmp_a,
                        srcs=(load, "s4")))
        ops.append(IrOp(f"srli {tmp_b}, {load}, 2", dest=tmp_b,
                        srcs=(load,)))
        ops.append(IrOp(f"add  {tmp_a}, {tmp_a}, {tmp_b}", dest=tmp_a,
                        srcs=(tmp_a, tmp_b)))
        ops.append(IrOp(f"add  s{5 + k}, s{5 + k}, {tmp_a}",
                        dest=f"s{5 + k}", srcs=(f"s{5 + k}", tmp_a)))
    return ops


def _expected_checksum(data: List[int], unroll: int, iterations: int,
                       mask: int) -> int:
    accumulators = [0] * unroll
    cursor = 0
    for _ in range(iterations):
        for k in range(unroll):
            value = data[cursor + k]
            term = ((value ^ mask) + (value >> 2)) & MASK32
            accumulators[k] = (accumulators[k] + term) & MASK32
        cursor += unroll
    return sum(accumulators) & MASK32


def build_schedulable_kernel(unroll: int = 4, iterations: int = 24,
                             scheduled: bool = False) -> str:
    """Emit the kernel with the loop body in naive or scheduled order."""
    rng = Lcg(seed=101)
    mask = 0x5A5A
    data = rng.sequence(unroll * iterations)
    checksum = _expected_checksum(data, unroll, iterations, mask)
    body = _kernel_ir(unroll)
    if scheduled:
        body = list_schedule(body)
    acc_clear = "\n".join(f"    li   s{5 + k}, 0" for k in range(unroll))
    acc_sum = "\n".join(f"    add  s3, s3, s{5 + k}" for k in range(unroll))
    return f"""
.text
_start:
    la   s0, sched_data
    li   s1, {iterations}
    li   s2, 0           # iteration counter
    li   s4, {mask}
{acc_clear}
kernel_loop:
{render_asm(body)}
    addi s0, s0, {4 * unroll}
    addi s2, s2, 1
    blt  s2, s1, kernel_loop
    li   s3, 0
{acc_sum}
    li   t6, {checksum}
    bne  s3, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
sched_data:
{words_directive(data)}
"""
