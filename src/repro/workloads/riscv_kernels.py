"""riscv-tests style kernels in RV32I assembly (self-checking).

Each builder returns assembly source whose execution ends with exit code
42 (``PASS_EXIT_CODE``) if and only if the kernel computed the same
result the Python-side generator predicted.
"""

from __future__ import annotations

from repro.workloads.generator import (
    EXIT_STUBS,
    Lcg,
    MUL_SUBROUTINE,
    words_directive,
)

MASK32 = 0xFFFFFFFF


def build_vvadd(n: int = 64) -> str:
    """Vector-vector add with a checksum over the result."""
    rng = Lcg(seed=11)
    a = rng.sequence(n)
    b = rng.sequence(n)
    checksum = sum((x + y) & MASK32 for x, y in zip(a, b)) & MASK32
    return f"""
.text
_start:
    la   s0, vec_a
    la   s1, vec_b
    la   s2, vec_c
    li   s3, {n}          # elements
    li   s4, 0            # index
add_loop:
    slli t0, s4, 2
    add  t1, s0, t0
    lw   t2, 0(t1)
    add  t1, s1, t0
    lw   t3, 0(t1)
    add  t4, t2, t3
    add  t1, s2, t0
    sw   t4, 0(t1)
    addi s4, s4, 1
    blt  s4, s3, add_loop
    # checksum pass
    li   s5, 0
    li   s4, 0
sum_loop:
    slli t0, s4, 2
    add  t1, s2, t0
    lw   t2, 0(t1)
    add  s5, s5, t2
    addi s4, s4, 1
    blt  s4, s3, sum_loop
    li   t6, {checksum}
    bne  s5, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
vec_a:
{words_directive(a)}
vec_b:
{words_directive(b)}
vec_c:
{words_directive([0] * n)}
"""


def _median3(x: int, y: int, z: int) -> int:
    return sorted((x, y, z))[1]


def build_median(n: int = 64) -> str:
    """3-point median filter (branch heavy, like riscv-tests median)."""
    rng = Lcg(seed=23)
    a = rng.sequence(n)
    out = [a[0]] + [_median3(a[i - 1], a[i], a[i + 1])
                    for i in range(1, n - 1)] + [a[n - 1]]
    checksum = sum(out) & MASK32
    return f"""
.text
_start:
    la   s0, src
    la   s1, dst
    li   s2, {n}
    # endpoints copy straight through
    lw   t0, 0(s0)
    sw   t0, 0(s1)
    slli t1, s2, 2
    addi t1, t1, -4
    add  t2, s0, t1
    lw   t0, 0(t2)
    add  t2, s1, t1
    sw   t0, 0(t2)
    li   s3, 1            # index
    addi s4, s2, -1       # limit
med_loop:
    bge  s3, s4, med_done
    slli t0, s3, 2
    add  t1, s0, t0
    lw   t2, -4(t1)       # x
    lw   t3, 0(t1)        # y
    lw   t4, 4(t1)        # z
    # median = max(min(x,y), min(max(x,y), z))
    mv   t5, t2
    bge  t3, t2, have_min # min(x,y) in t5, max in t6
    mv   t5, t3
have_min:
    mv   t6, t3
    bge  t3, t2, have_max
    mv   t6, t2
have_max:
    blt  t4, t6, use_z
    mv   t4, t6           # min(max(x,y), z)
use_z:
    bge  t4, t5, med_store
    mv   t4, t5
med_store:
    add  t1, s1, t0
    sw   t4, 0(t1)
    addi s3, s3, 1
    j    med_loop
med_done:
    li   s5, 0
    li   s3, 0
msum_loop:
    slli t0, s3, 2
    add  t1, s1, t0
    lw   t2, 0(t1)
    add  s5, s5, t2
    addi s3, s3, 1
    blt  s3, s2, msum_loop
    li   t6, {checksum}
    bne  s5, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
src:
{words_directive(a)}
dst:
{words_directive([0] * n)}
"""


def build_multiply(n: int = 24) -> str:
    """Pairwise products through the software shift-add multiplier."""
    rng = Lcg(seed=37)
    a = rng.sequence(n)
    b = rng.sequence(n)
    checksum = sum((x * y) & MASK32 for x, y in zip(a, b)) & MASK32
    return f"""
.text
_start:
    la   s0, mul_a
    la   s1, mul_b
    li   s2, {n}
    li   s3, 0           # index
    li   s4, 0           # checksum
mul_kernel_loop:
    slli t3, s3, 2
    add  t4, s0, t3
    lw   a0, 0(t4)
    add  t4, s1, t3
    lw   a1, 0(t4)
    call __mulsi3
    add  s4, s4, a0
    addi s3, s3, 1
    blt  s3, s2, mul_kernel_loop
    li   t6, {checksum}
    bne  s4, t6, __fail
    j    __pass
{MUL_SUBROUTINE}
{EXIT_STUBS}
.data
mul_a:
{words_directive(a)}
mul_b:
{words_directive(b)}
"""


def build_qsort(n: int = 24) -> str:
    """Recursive quicksort (Lomuto) with sortedness + sum verification."""
    rng = Lcg(seed=41)
    data = rng.sequence(n)
    total = sum(data) & MASK32
    return f"""
.text
_start:
    la   s11, qdata
    li   a0, 0
    li   a1, {n - 1}
    call qsort
    # verify: sorted and sum preserved
    li   s5, 0           # sum
    li   s3, 0
    li   t5, -1          # previous value
vfy_loop:
    slli t0, s3, 2
    add  t1, s11, t0
    lw   t2, 0(t1)
    blt  t2, t5, __fail
    mv   t5, t2
    add  s5, s5, t2
    addi s3, s3, 1
    li   t0, {n}
    blt  s3, t0, vfy_loop
    li   t6, {total}
    bne  s5, t6, __fail
    j    __pass

# qsort(a0=lo, a1=hi) over word array at s11
qsort:
    bge  a0, a1, qsort_ret
    addi sp, sp, -16
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    sw   s1, 8(sp)
    sw   s2, 12(sp)
    mv   s0, a0          # lo
    mv   s1, a1          # hi
    slli t0, s1, 2
    add  t0, t0, s11
    lw   t3, 0(t0)       # pivot = a[hi]
    addi s2, s0, -1      # i
    mv   t4, s0          # j
part_loop:
    bge  t4, s1, part_done
    slli t0, t4, 2
    add  t0, t0, s11
    lw   t1, 0(t0)
    bgt  t1, t3, part_next
    addi s2, s2, 1
    slli t2, s2, 2
    add  t2, t2, s11
    lw   t5, 0(t2)
    sw   t1, 0(t2)
    sw   t5, 0(t0)
part_next:
    addi t4, t4, 1
    j    part_loop
part_done:
    addi s2, s2, 1
    slli t2, s2, 2
    add  t2, t2, s11
    lw   t5, 0(t2)
    slli t0, s1, 2
    add  t0, t0, s11
    lw   t1, 0(t0)
    sw   t1, 0(t2)
    sw   t5, 0(t0)
    mv   a0, s0          # left recursion
    addi a1, s2, -1
    call qsort
    addi a0, s2, 1       # right recursion
    mv   a1, s1
    call qsort
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    lw   s1, 8(sp)
    lw   s2, 12(sp)
    addi sp, sp, 16
qsort_ret:
    ret
{EXIT_STUBS}
.data
qdata:
{words_directive(data)}
"""


def build_rsort(n: int = 48) -> str:
    """Counting (radix-1) sort over byte-valued keys."""
    rng = Lcg(seed=53)
    data = [v & 0xFF for v in rng.sequence(n)]
    total = sum(data) & MASK32
    return f"""
.text
_start:
    la   s0, rdata
    la   s1, rbuckets
    li   s2, {n}
    # count occurrences
    li   s3, 0
count_loop:
    slli t0, s3, 2
    add  t1, s0, t0
    lw   t2, 0(t1)
    slli t3, t2, 2
    add  t3, t3, s1
    lw   t4, 0(t3)
    addi t4, t4, 1
    sw   t4, 0(t3)
    addi s3, s3, 1
    blt  s3, s2, count_loop
    # write back in key order
    li   s3, 0           # bucket index
    li   s4, 0           # output cursor
emit_loop:
    li   t0, 256
    bge  s3, t0, emit_done
    slli t1, s3, 2
    add  t1, t1, s1
    lw   t2, 0(t1)       # count for key s3
emit_key:
    beqz t2, emit_next
    slli t3, s4, 2
    add  t3, t3, s0
    sw   s3, 0(t3)
    addi s4, s4, 1
    addi t2, t2, -1
    j    emit_key
emit_next:
    addi s3, s3, 1
    j    emit_loop
emit_done:
    bne  s4, s2, __fail
    # verify sorted and sum preserved
    li   s5, 0
    li   s3, 0
    li   t5, -1
rvfy_loop:
    slli t0, s3, 2
    add  t1, s0, t0
    lw   t2, 0(t1)
    blt  t2, t5, __fail
    mv   t5, t2
    add  s5, s5, t2
    addi s3, s3, 1
    blt  s3, s2, rvfy_loop
    li   t6, {total}
    bne  s5, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
rdata:
{words_directive(data)}
rbuckets:
{words_directive([0] * 256)}
"""


def build_towers(disks: int = 7) -> str:
    """Towers of Hanoi; verifies the move count is 2^n - 1."""
    expected_moves = (1 << disks) - 1
    return f"""
.text
_start:
    li   s0, 0           # move counter
    li   a0, {disks}
    li   a1, 1           # from peg
    li   a2, 3           # to peg
    li   a3, 2           # via peg
    call hanoi
    li   t6, {expected_moves}
    bne  s0, t6, __fail
    j    __pass

# hanoi(a0=n, a1=from, a2=to, a3=via); increments s0 per move
hanoi:
    beqz a0, hanoi_ret
    addi sp, sp, -20
    sw   ra, 0(sp)
    sw   a0, 4(sp)
    sw   a1, 8(sp)
    sw   a2, 12(sp)
    sw   a3, 16(sp)
    addi a0, a0, -1      # hanoi(n-1, from, via, to)
    mv   t0, a2
    mv   a2, a3
    mv   a3, t0
    call hanoi
    addi s0, s0, 1       # move disk n
    lw   a0, 4(sp)
    lw   a1, 8(sp)
    lw   a2, 12(sp)
    lw   a3, 16(sp)
    addi a0, a0, -1      # hanoi(n-1, via, to, from)
    mv   t0, a1
    mv   a1, a3
    mv   a3, t0
    call hanoi
    lw   ra, 0(sp)
    addi sp, sp, 20
hanoi_ret:
    ret
{EXIT_STUBS}
"""


def build_spmv(rows: int = 12, nnz_per_row: int = 4) -> str:
    """CSR sparse matrix-vector product with software multiplies."""
    rng = Lcg(seed=67)
    cols_count = rows  # square matrix
    x = [v & 0x3F for v in rng.sequence(cols_count)]
    row_ptr = [0]
    col_idx = []
    values = []
    for _r in range(rows):
        for _k in range(nnz_per_row):
            col_idx.append(rng.next() % cols_count)
            values.append(rng.next() & 0x3F)
        row_ptr.append(len(col_idx))
    y = []
    for r in range(rows):
        acc = 0
        for k in range(row_ptr[r], row_ptr[r + 1]):
            acc = (acc + values[k] * x[col_idx[k]]) & MASK32
        y.append(acc)
    checksum = sum(y) & MASK32
    return f"""
.text
_start:
    la   s0, row_ptr
    la   s1, col_idx
    la   s2, mat_val
    la   s3, vec_x
    li   s4, {rows}
    li   s5, 0           # row
    li   s6, 0           # checksum
row_loop:
    slli t0, s5, 2
    add  t1, s0, t0
    lw   s7, 0(t1)       # k = row_ptr[r]
    lw   s8, 4(t1)       # end = row_ptr[r+1]
    li   s9, 0           # acc
nnz_loop:
    bge  s7, s8, row_done
    slli t0, s7, 2
    add  t1, s1, t0
    lw   t2, 0(t1)       # col
    add  t1, s2, t0
    lw   a0, 0(t1)       # value
    slli t2, t2, 2
    add  t2, t2, s3
    lw   a1, 0(t2)       # x[col]
    call __mulsi3
    add  s9, s9, a0
    addi s7, s7, 1
    j    nnz_loop
row_done:
    add  s6, s6, s9
    addi s5, s5, 1
    blt  s5, s4, row_loop
    li   t6, {checksum}
    bne  s6, t6, __fail
    j    __pass
{MUL_SUBROUTINE}
{EXIT_STUBS}
.data
row_ptr:
{words_directive(row_ptr)}
col_idx:
{words_directive(col_idx)}
mat_val:
{words_directive(values)}
vec_x:
{words_directive(x)}
"""


def build_dhrystone(iterations: int = 12) -> str:
    """A Dhrystone-flavoured mix: string copy/compare + integer churn."""
    message = "DHRYSTONE PROGRAM, SOME STRING"
    length = len(message)
    # Python model of the integer churn below.
    int_glob = 0
    for i in range(iterations):
        int_glob = (int_glob + i * 3 + 7) & MASK32
        int_glob ^= (i << 2)
    checksum = (int_glob + length * iterations) & MASK32
    return f"""
.text
_start:
    li   s0, 0           # iteration
    li   s1, {iterations}
    li   s2, 0           # int_glob
    li   s3, 0           # copied-bytes accumulator
outer:
    # strcpy(dst, src) counting bytes
    la   t0, str_src
    la   t1, str_dst
copy_loop:
    lbu  t2, 0(t0)
    sb   t2, 0(t1)
    beqz t2, copy_done
    addi t0, t0, 1
    addi t1, t1, 1
    addi s3, s3, 1
    j    copy_loop
copy_done:
    # strcmp(dst, src) must be equal
    la   t0, str_src
    la   t1, str_dst
cmp_loop:
    lbu  t2, 0(t0)
    lbu  t3, 0(t1)
    bne  t2, t3, __fail
    beqz t2, cmp_done
    addi t0, t0, 1
    addi t1, t1, 1
    j    cmp_loop
cmp_done:
    # integer churn: int_glob += 3*i + 7; int_glob ^= i << 2
    slli t0, s0, 1
    add  t0, t0, s0      # 3*i
    addi t0, t0, 7
    add  s2, s2, t0
    slli t0, s0, 2
    xor  s2, s2, t0
    addi s0, s0, 1
    blt  s0, s1, outer
    add  s2, s2, s3
    li   t6, {checksum}
    bne  s2, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
str_src:
    .asciz "{message}"
.align 2
str_dst:
{words_directive([0] * ((length + 4) // 4 + 1))}
"""


def build_memcpy(n_bytes: int = 96) -> str:
    """Byte-wise memory copy with verification (riscv-tests memcpy style)."""
    rng = Lcg(seed=59)
    data = [rng.next() & 0xFF for _ in range(n_bytes)]
    checksum = sum(data) & MASK32
    packed = []
    for start in range(0, n_bytes, 4):
        word = 0
        for k, byte in enumerate(data[start:start + 4]):
            word |= byte << (8 * k)
        packed.append(word)
    return f"""
.text
_start:
    la   s0, cpy_src
    la   s1, cpy_dst
    li   s2, {n_bytes}
    li   s3, 0
copy_loop:
    add  t0, s0, s3
    lbu  t1, 0(t0)
    add  t0, s1, s3
    sb   t1, 0(t0)
    addi s3, s3, 1
    blt  s3, s2, copy_loop
    # verify the copy byte by byte while summing
    li   s4, 0           # checksum
    li   s3, 0
cvfy_loop:
    add  t0, s0, s3
    lbu  t1, 0(t0)
    add  t0, s1, s3
    lbu  t2, 0(t0)
    bne  t1, t2, __fail
    add  s4, s4, t2
    addi s3, s3, 1
    blt  s3, s2, cvfy_loop
    li   t6, {checksum}
    bne  s4, t6, __fail
    j    __pass
{EXIT_STUBS}
.data
cpy_src:
{words_directive(packed)}
cpy_dst:
{words_directive([0] * len(packed))}
"""


def build_fibonacci(n: int = 12) -> str:
    """Naive recursive Fibonacci: deep call trees and stack traffic."""
    def fib(k: int) -> int:
        return k if k < 2 else fib(k - 1) + fib(k - 2)

    expected = fib(n)
    return f"""
.text
_start:
    li   a0, {n}
    call fib
    li   t6, {expected}
    bne  a0, t6, __fail
    j    __pass

# fib(a0) -> a0, recursive
fib:
    li   t0, 2
    blt  a0, t0, fib_base
    addi sp, sp, -12
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    sw   a0, 8(sp)
    addi a0, a0, -1
    call fib
    mv   s0, a0          # fib(n-1)
    lw   a0, 8(sp)
    addi a0, a0, -2
    call fib
    add  a0, a0, s0
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    addi sp, sp, 12
fib_base:
    ret
{EXIT_STUBS}
"""


def build_matmul(n: int = 6) -> str:
    """Dense n x n integer matrix multiply via the software multiplier."""
    rng = Lcg(seed=73)
    a = [[rng.next() & 0x1F for _ in range(n)] for _ in range(n)]
    b = [[rng.next() & 0x1F for _ in range(n)] for _ in range(n)]
    checksum = 0
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = (acc + a[i][k] * b[k][j]) & MASK32
            checksum = (checksum + acc) & MASK32
    flat_a = [value for row in a for value in row]
    flat_b = [value for row in b for value in row]
    return f"""
.text
_start:
    la   s0, mat_a
    la   s1, mat_b
    li   s2, {n}
    li   s3, 0           # i
    li   s10, 0          # checksum
mm_i:
    li   s4, 0           # j
mm_j:
    li   s5, 0           # k
    li   s9, 0           # acc
mm_k:
    # a[i][k]
    mv   a0, s3
    mv   a1, s2
    call __mulsi3
    add  a0, a0, s5
    slli a0, a0, 2
    add  a0, a0, s0
    lw   s6, 0(a0)
    # b[k][j]
    mv   a0, s5
    mv   a1, s2
    call __mulsi3
    add  a0, a0, s4
    slli a0, a0, 2
    add  a0, a0, s1
    lw   a1, 0(a0)
    mv   a0, s6
    call __mulsi3
    add  s9, s9, a0
    addi s5, s5, 1
    blt  s5, s2, mm_k
    add  s10, s10, s9
    addi s4, s4, 1
    blt  s4, s2, mm_j
    addi s3, s3, 1
    blt  s3, s2, mm_i
    li   t6, {checksum}
    bne  s10, t6, __fail
    j    __pass
{MUL_SUBROUTINE}
{EXIT_STUBS}
.data
mat_a:
{words_directive(flat_a)}
mat_b:
{words_directive(flat_b)}
"""
