"""Benchmark workloads for the application-level evaluation (Figure 14).

Two families, mirroring the paper's Section VI-B benchmark list:

* riscv-tests kernels: ``vvadd``, ``median``, ``multiply``, ``qsort``,
  ``rsort``, ``towers``, ``spmv``, ``dhrystone`` (a lite variant),
* synthetic SPEC CPU 2006 stand-ins with matching register-reuse and
  dependency-distance profiles: ``mcf`` (pointer-chasing relaxation),
  ``sjeng`` (branchy game-tree search), ``libquantum`` (streaming gate
  application over a bit register), ``specrand`` (LCG stream).

Every workload is self-checking: it computes a checksum, compares it to
the value the generator computed in Python, and exits 42 on success -
so the Figure 14 runs double as functional verification of the ISA
substrate.
"""

from repro.workloads.registry import (
    PASS_EXIT_CODE,
    Workload,
    all_workloads,
    get_workload,
    workload_names,
)

__all__ = [
    "PASS_EXIT_CODE",
    "Workload",
    "all_workloads",
    "get_workload",
    "workload_names",
]
