"""Full-chip JJ budget: the RISC-V Sodor core with each register file."""

from repro.chip.sodor import (
    SODOR_COMPONENT_JJ,
    ChipBudget,
    chip_budget,
    full_chip_comparison,
)

__all__ = [
    "SODOR_COMPONENT_JJ",
    "ChipBudget",
    "chip_budget",
    "full_chip_comparison",
]
