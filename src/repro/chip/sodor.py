"""Sodor in-order core JJ inventory (Section VI-A "Full Chip Benefit").

The paper synthesised the RISC-V Sodor core with qPalace and reports the
total JJ count with the baseline NDRO register file (139,801 JJs) and
with HiPerRF (117,039 JJs), a 16.3% reduction.  Five components make up
the core: ALU, register file, CSR block, control path and front end.

We cannot re-run qPalace, so the non-RF component budgets below are
calibrated once against the published totals (the RF numbers themselves
come from our structural census, which independently matches Table I to
within ~1%).  The RF-boundary *integration* circuitry - PTL couplers and
splitters on the data/address/enable wires crossing into the register
file macro - depends on the design: the baseline exposes three 32-bit
ports plus a reset port, while HiPerRF's HC-READ/HC-WRITE boundary is
half as wide (pulse-train columns), which is why the full-chip saving
(22,762 JJs) slightly exceeds the standalone RF saving (20,589 JJs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.rf import DualBankHiPerRF, HiPerRF, NdroRegisterFile, RFGeometry
from repro.rf.base import RegisterFileDesign

#: Non-RF component budgets (JJ), calibrated against the published totals.
SODOR_COMPONENT_JJ: Dict[str, int] = {
    "alu": 39_800,
    "csr": 10_600,
    "control_path": 17_400,
    "front_end": 32_000,
}

#: RF-boundary integration circuitry (PTL couplers, boundary splitters).
#: The baseline crosses 3 full-width ports + reset wiring; HiPerRF's
#: boundary is 16 pulse-train columns each way.
INTEGRATION_JJ: Dict[str, int] = {
    "ndro_rf": 3_279,
    "hiperrf": 1_106,
    "dual_bank_hiperrf": 1_507,  # two bank boundaries, half-width each
}

_RF_CLASSES = {
    "ndro_rf": NdroRegisterFile,
    "hiperrf": HiPerRF,
    "dual_bank_hiperrf": DualBankHiPerRF,
}


@dataclass(frozen=True)
class ChipBudget:
    """JJ budget of the whole core for one register file design."""

    rf_design: str
    components: Dict[str, int]
    rf_jj: int
    integration_jj: int

    @property
    def total_jj(self) -> int:
        return sum(self.components.values()) + self.rf_jj + self.integration_jj

    @property
    def rf_fraction(self) -> float:
        """Register file share of the chip's JJs."""
        return self.rf_jj / self.total_jj

    def breakdown(self) -> Dict[str, int]:
        out = dict(self.components)
        out["register_file"] = self.rf_jj
        out["rf_integration"] = self.integration_jj
        return out


def chip_budget(rf_design: str,
                geometry: RFGeometry | None = None) -> ChipBudget:
    """Full-chip JJ budget with the named register file design."""
    if rf_design not in _RF_CLASSES:
        raise ConfigError(
            f"unknown RF design {rf_design!r}; known: {sorted(_RF_CLASSES)}")
    geometry = geometry or RFGeometry(32, 32)
    design: RegisterFileDesign = _RF_CLASSES[rf_design](geometry)
    return ChipBudget(
        rf_design=rf_design,
        components=dict(SODOR_COMPONENT_JJ),
        rf_jj=design.jj_count(),
        integration_jj=INTEGRATION_JJ[rf_design],
    )


def full_chip_comparison() -> Dict[str, float]:
    """The Section VI-A headline: chip JJ totals and the 16.3% saving."""
    baseline = chip_budget("ndro_rf")
    hiperrf = chip_budget("hiperrf")
    return {
        "baseline_total_jj": float(baseline.total_jj),
        "hiperrf_total_jj": float(hiperrf.total_jj),
        "saving_jj": float(baseline.total_jj - hiperrf.total_jj),
        "saving_percent": 100.0 * (1 - hiperrf.total_jj / baseline.total_jj),
        "baseline_rf_fraction": baseline.rf_fraction,
    }
