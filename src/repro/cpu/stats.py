"""CPI reporting structures for the application-level evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.pipeline import PipelineResult


@dataclass(frozen=True)
class CpiReport:
    """CPI of one workload on one register file design."""

    workload: str
    design: str
    instructions: int
    total_cycles: int
    cpi: float
    stall_cycles: Dict[str, int]
    exit_code: Optional[int] = None

    @classmethod
    def from_result(cls, workload: str, result: PipelineResult,
                    exit_code: Optional[int] = None) -> "CpiReport":
        return cls(
            workload=workload,
            design=result.design,
            instructions=result.instructions,
            total_cycles=result.total_cycles,
            cpi=result.cpi,
            stall_cycles=result.stalls.as_dict(),
            exit_code=exit_code,
        )


def cpi_overhead_percent(baseline: CpiReport, candidate: CpiReport) -> float:
    """CPI overhead of ``candidate`` over ``baseline`` in percent (Figure 14)."""
    if baseline.workload != candidate.workload:
        raise ValueError(
            f"workload mismatch: {baseline.workload} vs {candidate.workload}")
    if baseline.cpi == 0:
        raise ValueError("baseline CPI is zero")
    return 100.0 * (candidate.cpi - baseline.cpi) / baseline.cpi


def geometric_mean(values: List[float]) -> float:
    """Geometric mean used for cross-benchmark CPI ratios."""
    if not values:
        raise ValueError("empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))
