"""Per-design register file timing as seen by the CPU pipeline.

Derives gate-cycle timing from the analytic design models of
:mod:`repro.rf` (with PTL wire delays, Section VI-C) and the static port
schedules of :mod:`repro.rf.timing`:

* ``issue_gap`` - RF-port cycles an instruction occupies before the next
  may issue (the Figure 11/12 static schedule),
* ``read_slot`` - when each source's read enable fires relative to issue,
* ``readout_cycles`` - read enable to data-at-ALU latency (Table IV),
* ``loopback_cycles`` - extra time a register stays unreadable after a
  read while the loopback write restores it (HiPerRF designs only),
* ``supports_forwarding`` - the baseline writes before reads within a
  cycle (Section III-E); HiPerRF cannot (Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

from repro.cpu.config import CoreConfig
from repro.errors import ConfigError
from repro.rf import (
    DualBankHiPerRF,
    HiPerRF,
    NdroRegisterFile,
    RFGeometry,
    wire_aware_delays,
)
from repro.rf.timing import issue_cycles_for

RF_DESIGN_NAMES = ("ndro_rf", "hiperrf", "dual_bank_hiperrf",
                   "dual_bank_hiperrf_ideal")

#: Extra ablation variant: every two-source pair treated as same-bank
#: (the anti-ideal bound on the static banking policy).
ABLATION_DESIGN_NAMES = RF_DESIGN_NAMES + ("dual_bank_hiperrf_worst",)

_DESIGN_CLASSES = {
    "ndro_rf": NdroRegisterFile,
    "hiperrf": HiPerRF,
    "dual_bank_hiperrf": DualBankHiPerRF,
    "dual_bank_hiperrf_ideal": DualBankHiPerRF,
    "dual_bank_hiperrf_worst": DualBankHiPerRF,
}


def _design_for(name: str, geometry: RFGeometry):
    """Resolve a design name, including the generic hiperrf_x<N> family."""
    import re as _re

    if name in _DESIGN_CLASSES:
        return _DESIGN_CLASSES[name](geometry)
    match = _re.fullmatch(r"hiperrf_x(\d+)", name)
    if match:
        from repro.rf.multibank import MultiBankHiPerRF

        return MultiBankHiPerRF(geometry, banks=int(match.group(1)))
    raise ConfigError(
        f"unknown RF design {name!r}; expected one of "
        f"{tuple(_DESIGN_CLASSES)} or 'hiperrf_x<N>'")


def _dedup(srcs: Sequence[int]) -> Tuple[int, ...]:
    seen: list = []
    for src in srcs:
        if src not in seen:
            seen.append(src)
    return tuple(seen)


@dataclass(frozen=True)
class RFTimingModel:
    """Gate-cycle register file timing for one design."""

    name: str
    readout_cycles: int
    loopback_cycles: int
    supports_forwarding: bool
    rf_cycle_gates: int

    @classmethod
    def for_design(cls, name: str, config: CoreConfig | None = None,
                   geometry: RFGeometry | None = None,
                   include_wire_delays: bool = False) -> "RFTimingModel":
        """Build the timing model for a named design (32x32 by default).

        The paper translates the Table III readout delays (without PTL
        parasitics) into gate cycles for the CPI study and bounds the
        wire contribution separately at ~1 % (Section VI-C); pass
        ``include_wire_delays=True`` to use the Table IV delays instead.
        """
        config = config or CoreConfig()
        geometry = geometry or RFGeometry(32, 32)
        # Every argument is hashable (name + two frozen dataclasses), the
        # result is itself frozen, and the sweeps construct the same
        # handful of models thousands of times - memoise.
        return _timing_model(name, config, geometry, include_wire_delays)

    # -- static schedule ---------------------------------------------------

    def issue_gap_gates(self, sources: Sequence[int],
                        dest: Optional[int]) -> int:
        """Gate cycles the instruction occupies the RF ports."""
        rf_cycles = issue_cycles_for(self.name, dest, tuple(sources))
        return rf_cycles * self.rf_cycle_gates

    def read_slots_gates(self, sources: Sequence[int]) -> Tuple[int, ...]:
        """Read-enable offsets (gate cycles after issue) for each unique source."""
        unique = _dedup(sources)
        if not unique:
            return ()
        g = self.rf_cycle_gates
        if self.name == "ndro_rf":
            # Figure 8: reads on consecutive RF cycles starting at issue.
            return tuple(k * g for k in range(len(unique)))
        if self.name == "hiperrf":
            # Figure 11: write reset-read at issue; source reads at +1/+2.
            return tuple((k + 1) * g for k in range(len(unique)))
        # Dual-banked (Figure 12): both reads in the cycle after issue when
        # the sources sit in different banks, else serialised (+1 and +3).
        import re as _re

        banks = 2
        match = _re.fullmatch(r"hiperrf_x(\d+)", self.name)
        if match:
            banks = int(match.group(1))
        same_bank = (len(unique) == 2
                     and (unique[0] % banks) == (unique[1] % banks))
        if len(unique) == 2 and (
                (self.name in ("dual_bank_hiperrf",) and same_bank)
                or (match and banks > 1 and same_bank)
                or self.name == "dual_bank_hiperrf_worst"):
            return (g, 3 * g)
        return tuple(g for _ in unique)

    @property
    def has_loopback(self) -> bool:
        return self.loopback_cycles > 0

    def write_visible_extra_gates(self) -> int:
        """Gate cycles after write-back before the value is readable.

        Zero for every design: the baseline forwards internally
        (write-before-read within one 53 ps cycle, Section III-E), and
        HiPerRF's inability to forward (Section IV-D) is carried by its
        static issue pattern - the reset-read and WEN cycles it reserves
        before any dependent read slot can fire - so charging it again
        here would double count.
        """
        return 0

    def loopback_busy_gates(self) -> int:
        """Gate cycles a just-read register stays unreadable.

        The loopback write occupies the port cycle after the read
        (Figure 11) and its pulses land ``loopback_cycles`` later.
        """
        if not self.has_loopback:
            return 0
        return 2 * self.rf_cycle_gates + self.loopback_cycles


@lru_cache(maxsize=None)
def _timing_model(name: str, config: CoreConfig, geometry: RFGeometry,
                  include_wire_delays: bool) -> RFTimingModel:
    """Memoised :meth:`RFTimingModel.for_design` body.

    The CPI sweeps replay every workload against every design, building
    the same model thousands of times; the arguments are frozen
    dataclasses and the result is frozen, so one shared instance per
    distinct configuration is safe.
    """
    design = _design_for(name, geometry)
    if include_wire_delays:
        delays = wire_aware_delays(design)
        readout_ps = delays.readout_delay_ps
        loopback_ps = delays.loopback_delay_ps
    else:
        readout_ps = design.readout_delay_ps()
        loopback = design.loopback_path()
        loopback_ps = loopback.delay_ps() if loopback is not None else None
    # The access ports advance in 53 ps RF cycles ("each read or write
    # operation takes two [gate] cycles"), so the readout latency the
    # pipeline observes is quantized in whole port cycles.
    import math

    from repro.cells import params as cell_params

    readout_port_cycles = math.ceil(
        readout_ps / cell_params.RF_CYCLE_PS - 1e-9)
    readout = readout_port_cycles * config.rf_cycle_gates
    loopback_cycles = 0
    if loopback_ps is not None:
        loopback_cycles = config.ps_to_gate_cycles(loopback_ps)
    return RFTimingModel(
        name=name,
        readout_cycles=readout,
        loopback_cycles=loopback_cycles,
        supports_forwarding=(name == "ndro_rf"),
        rf_cycle_gates=config.rf_cycle_gates,
    )
