"""Core pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells import params
from repro.errors import ConfigError


@dataclass(frozen=True)
class CoreConfig:
    """Gate-level pipeline shape of the Sodor-like in-order core.

    All depths are in gate cycles (one SFQ gate-pipeline stage each, 28 ps
    per Section VI-B).  The execute depth of 28 is stated in the paper;
    the front-end depths come from the same qPalace synthesis style of
    budgeting and are shared by every register file design, so they shift
    absolute CPI but cancel in the Figure 14 ratios.
    """

    gate_cycle_ps: float = params.GATE_CYCLE_PS
    fetch_depth: int = 6
    decode_depth: int = 6
    execute_depth: int = params.EXECUTE_STAGE_DEPTH
    writeback_depth: int = 1
    #: 77 K external memory: load-use latency beyond the execute stage
    #: (Section VI-B interfaces all memory at 77 K).
    memory_latency: int = 12
    #: Gate cycles per register file port cycle (53 ps / 28 ps -> 2).
    rf_cycle_gates: int = params.RF_ACCESS_GATE_CYCLES
    #: Whether not-taken branches flow through without penalty (the
    #: front end fetches fall-through speculatively).
    fall_through_speculation: bool = True
    #: Architectural register count: bounds every register index the
    #: timing engines track (RV32I's 32 by default).
    num_registers: int = 32

    def __post_init__(self) -> None:
        for name in ("fetch_depth", "decode_depth", "execute_depth",
                     "writeback_depth", "memory_latency", "rf_cycle_gates"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.gate_cycle_ps <= 0:
            raise ConfigError("gate_cycle_ps must be positive")
        if self.num_registers < 1:
            raise ConfigError("num_registers must be >= 1")

    @property
    def branch_redirect_penalty(self) -> int:
        """Gate cycles lost re-steering the front end on a taken branch."""
        return self.fetch_depth + self.decode_depth

    def ps_to_gate_cycles(self, delay_ps: float) -> int:
        """Round a physical delay up to whole gate cycles."""
        import math

        return int(math.ceil(delay_ps / self.gate_cycle_ps - 1e-9))
