"""Dependency-distance instruction scheduling (Section VI-B's compiler note).

The paper observes that conventional compilers place RAW-dependent
instructions close together to exploit forwarding, while "SFQ based CPUs
require quite the opposite - to spread the RAW dependency instructions
as far apart as possible" (the execute block is 28 gate-stages deep, so
a distance-1 dependency stalls for the whole pipe).

This module implements that compiler pass for straight-line code: a
greedy list scheduler over a tiny three-address IR that, among the
data-ready instructions, always issues the one whose operands have been
waiting longest - pushing every producer-consumer pair as far apart as
the program's parallelism allows.  The workload builders can emit both
the naive and the scheduled order, so the CPI benefit is measurable per
register file design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class IrOp:
    """One straight-line instruction: text template plus its dataflow.

    ``text`` is the final assembly line; ``dest``/``srcs`` name virtual
    or architectural registers for dependence analysis only.
    """

    text: str
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = ()


def _build_dependences(ops: Sequence[IrOp]) -> List[Set[int]]:
    """Predecessor sets honouring RAW, WAR and WAW orderings."""
    last_writer: Dict[str, int] = {}
    readers_since_write: Dict[str, List[int]] = {}
    predecessors: List[Set[int]] = [set() for _ in ops]
    for index, op in enumerate(ops):
        for src in op.srcs:
            if src in last_writer:
                predecessors[index].add(last_writer[src])       # RAW
            readers_since_write.setdefault(src, []).append(index)
        if op.dest is not None:
            if op.dest in last_writer:
                predecessors[index].add(last_writer[op.dest])   # WAW
            for reader in readers_since_write.get(op.dest, ()):
                if reader != index:
                    predecessors[index].add(reader)             # WAR
            last_writer[op.dest] = index
            readers_since_write[op.dest] = []
    return predecessors


def raw_distance_profile(ops: Sequence[IrOp]) -> List[int]:
    """Distances between each op and its nearest RAW producer."""
    last_writer: Dict[str, int] = {}
    distances: List[int] = []
    for index, op in enumerate(ops):
        nearest = None
        for src in op.srcs:
            if src in last_writer:
                distance = index - last_writer[src]
                nearest = distance if nearest is None \
                    else min(nearest, distance)
        if nearest is not None:
            distances.append(nearest)
        if op.dest is not None:
            last_writer[op.dest] = index
    return distances


def list_schedule(ops: Sequence[IrOp]) -> List[IrOp]:
    """Reorder straight-line code to maximise producer-consumer distance.

    Greedy: repeatedly emit, among all dependence-ready instructions,
    the one whose most recent predecessor was scheduled earliest (ties
    broken by program order for determinism).  Dependences (RAW, WAR,
    WAW) are preserved exactly, so the reordering is semantics-safe for
    straight-line code.
    """
    predecessors = _build_dependences(ops)
    remaining: Set[int] = set(range(len(ops)))
    scheduled_at: Dict[int, int] = {}
    order: List[int] = []
    while remaining:
        ready = [i for i in remaining
                 if all(p in scheduled_at for p in predecessors[i])]
        if not ready:
            raise ConfigError("dependence cycle in straight-line code?")

        def priority(index: int) -> Tuple[int, int]:
            preds = predecessors[index]
            if not preds:
                slack = -1  # no producers: maximally ready
            else:
                slack = max(scheduled_at[p] for p in preds)
            return (slack, index)

        chosen = min(ready, key=priority)
        scheduled_at[chosen] = len(order)
        order.append(chosen)
        remaining.discard(chosen)
    return [ops[i] for i in order]


def mean_raw_distance(ops: Sequence[IrOp]) -> float:
    distances = raw_distance_profile(ops)
    return sum(distances) / len(distances) if distances else float("inf")


def render_asm(ops: Sequence[IrOp], indent: str = "    ") -> str:
    return "\n".join(indent + op.text for op in ops)
