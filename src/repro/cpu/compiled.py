"""Compiled trace-replay tier for the gate-level CPU timing model.

Mirrors the tiering pattern of :mod:`repro.josim` (reference / compiled /
batched solvers) and :mod:`repro.pulse` (reference / compiled event
loops): :class:`~repro.cpu.pipeline.GateLevelPipeline` stays as the
readable reference implementation and equivalence oracle, while this
module replays an :class:`~repro.cpu.optape.OpTape` with everything
precomputed out of the per-instruction path:

* the two :class:`~repro.cpu.rf_model.RFTimingModel` calls per op (issue
  gap, read-slot offsets) collapse into per-design lookup tables built
  once per ``(tape, design)`` - one entry per distinct ``(sources, dest)``
  signature - then gathered into flat per-op lists,
* the operand path, execute depth and (flat-memory) load latency fold
  into a single per-op additive constant,
* register readiness lives in fixed-size integer lists indexed by
  register number instead of dicts,
* loads-retired and redirect counters fall out of vectorized flag sums.

Replay results are **exactly integer-equal** to the reference pipeline -
cycles, stall attribution (port/raw/loopback/branch), branch and load
counters, and the interaction order with a stateful ``memory_model`` -
for every design; ``tests/cpu/test_compiled.py`` enforces this across
the Figure 14 suite and randomized programs.

Tier selection: the ``REPRO_CPU_COMPILED`` environment variable (on by
default; ``0``/``off``/``false`` falls back to the reference pipeline),
overridable per call with ``tier="compiled"`` / ``tier="reference"``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.cpu.config import CoreConfig
from repro.cpu.optape import (
    FLAG_BRANCH,
    FLAG_LOAD,
    FLAG_STORE,
    FLAG_TAKEN,
    OpTape,
)
from repro.cpu.pipeline import GateLevelPipeline, PipelineResult, StallBreakdown
from repro.cpu.rf_model import RFTimingModel
from repro.errors import ConfigError, ExecutionError

#: Environment variable selecting the replay tier (default: compiled).
COMPILED_ENV_VAR = "REPRO_CPU_COMPILED"

_OFF_VALUES = ("0", "off", "false", "no")


def compiled_enabled(default: bool = True) -> bool:
    """Whether the compiled tier is active (``REPRO_CPU_COMPILED``)."""
    raw = os.environ.get(COMPILED_ENV_VAR)
    if raw is None:
        return default
    return raw.strip().lower() not in _OFF_VALUES


#: Entries kept by the ``design_tables`` memo.  A Figure 14-scale sweep
#: touches (workloads x designs) ~ a few dozen pairs; the cap only
#: bounds pathological non-repeating workloads.
_TABLES_LRU_MAX = 256

_tables_lru: "OrderedDict[Tuple[str, RFTimingModel], Tuple[np.ndarray, np.ndarray]]" = OrderedDict()


def design_tables(tape: OpTape,
                  rf: RFTimingModel) -> Tuple[np.ndarray, np.ndarray]:
    """Per-signature timing tables for one design (memoized).

    Returns ``(issue_gap, operand_add)`` arrays indexed by signature:
    ``issue_gap[s]`` is :meth:`RFTimingModel.issue_gap_gates` for the
    signature's sources/destination, and ``operand_add[s]`` the
    issue-to-operands-at-ALU latency (same-bank slot skew + readout
    cycles for reading ops, one RF port cycle otherwise).  These two
    numbers are the *entire* per-design contract of the replay: a new
    design only has to answer them per signature.

    Repeated replays of one tape against one design - every lane batch,
    every warm benchmark rep - hit a small LRU keyed on the tape's
    content fingerprint plus the (hashable, frozen) timing model, so
    only the first replay pays the per-signature model calls.  Callers
    must treat the returned arrays as read-only.
    """
    key = (tape.content_fingerprint(), rf)
    hit = _tables_lru.get(key)
    if hit is not None:
        _tables_lru.move_to_end(key)
        return hit
    tables = _build_design_tables(tape, rf)
    _tables_lru[key] = tables
    while len(_tables_lru) > _TABLES_LRU_MAX:
        _tables_lru.popitem(last=False)
    return tables


def _build_design_tables(tape: OpTape,
                         rf: RFTimingModel) -> Tuple[np.ndarray, np.ndarray]:
    count = tape.signature_count
    issue_gap = np.zeros(count, dtype=np.int64)
    operand_add = np.zeros(count, dtype=np.int64)
    for s, (sources, dest) in enumerate(tape.signatures()):
        issue_gap[s] = rf.issue_gap_gates(sources, dest)
        if sources:
            slots = rf.read_slots_gates(sources)
            extra = max(slots) - min(slots) if len(slots) > 1 else 0
            operand_add[s] = extra + rf.readout_cycles
        else:
            operand_add[s] = rf.rf_cycle_gates
    return issue_gap, operand_add


def replay_tape(tape: OpTape, rf: RFTimingModel,
                config: Optional[CoreConfig] = None,
                memory_model: Optional[Any] = None) -> PipelineResult:
    """Replay one tape under one design's timing - the compiled tier."""
    config = config or CoreConfig()
    num_registers = config.num_registers
    if tape.signature_count:
        top = max(int(tape.sig_srcs.max()), int(tape.sig_dest.max()))
        if top >= num_registers:
            raise ExecutionError(
                f"tape addresses register {top}, outside the "
                f"{num_registers}-register file")
    n = tape.instructions
    gap_table, operand_table = design_tables(tape, rf)
    sig = tape.sig
    gaps: List[int] = gap_table[sig].tolist()
    src0: List[int] = tape.sig_srcs[sig, 0].tolist() if n else []
    src1: List[int] = tape.sig_srcs[sig, 1].tolist() if n else []
    dest: List[int] = tape.sig_dest[sig].tolist() if n else []

    flags = tape.flags
    is_load = (flags & FLAG_LOAD) != 0
    if config.fall_through_speculation:
        redirect_mask = (flags & FLAG_TAKEN) != 0
    else:
        redirect_mask = (flags & (FLAG_TAKEN | FLAG_BRANCH)) != 0
    loads_total = int(np.count_nonzero(is_load))
    branches_total = int(np.count_nonzero(redirect_mask))
    redirects: List[bool] = redirect_mask.tolist()

    # Operand path + execute depth (+ flat-memory load latency) collapse
    # into one additive constant per op; a stateful memory model keeps
    # its per-access call in the loop to preserve interaction order.
    use_mem = memory_model is not None
    path_add_arr = operand_table[sig] + config.execute_depth
    if not use_mem:
        path_add_arr = path_add_arr + np.where(is_load,
                                               config.memory_latency, 0)
    path_add: List[int] = path_add_arr.tolist()
    load_list: List[bool] = is_load.tolist()
    store_list: List[bool] = ((flags & FLAG_STORE) != 0).tolist()
    addr_list: List[int] = tape.mem_addr.tolist()
    access = memory_model.access if use_mem else None

    has_loopback = rf.has_loopback
    loop_busy = rf.loopback_busy_gates()
    write_extra = rf.write_visible_extra_gates()
    wb_depth = config.writeback_depth
    redirect_penalty = config.branch_redirect_penalty

    ready_at: List[int] = [0] * num_registers
    ready_loopback: List[bool] = [False] * num_registers
    next_issue_ok = 0
    front_ready = 0
    port_stalls = 0
    raw_stalls = 0
    loop_stalls = 0
    branch_stalls = 0
    last_completion = 0

    for i in range(n):
        s0 = src0[i]
        s1 = src1[i]
        t_dep = 0
        dep_loopback = False
        if s0 >= 0:
            ready = ready_at[s0]
            if ready > t_dep:
                t_dep = ready
                dep_loopback = ready_loopback[s0]
            if s1 >= 0:
                ready = ready_at[s1]
                if ready > t_dep:
                    t_dep = ready
                    dep_loopback = ready_loopback[s1]
        t_port = next_issue_ok
        t_issue = t_port
        if front_ready > t_issue:
            t_issue = front_ready
        if t_dep > t_issue:
            t_issue = t_dep
        if t_issue > t_port:
            lost = t_issue - t_port
            if t_dep >= front_ready:
                if dep_loopback:
                    loop_stalls += lost
                else:
                    raw_stalls += lost
            else:
                branch_stalls += lost
        gap = gaps[i]
        port_stalls += gap
        if has_loopback and s0 >= 0:
            busy_until = t_issue + loop_busy
            if busy_until > ready_at[s0]:
                ready_at[s0] = busy_until
                ready_loopback[s0] = True
            if s1 >= 0 and busy_until > ready_at[s1]:
                ready_at[s1] = busy_until
                ready_loopback[s1] = True
        exec_done = t_issue + path_add[i]
        if use_mem:
            if load_list[i]:
                addr = addr_list[i]
                exec_done += access(None if addr < 0 else addr,
                                    is_store=False)
            elif store_list[i]:
                addr = addr_list[i]
                access(None if addr < 0 else addr, is_store=True)
        writeback = exec_done + wb_depth
        d = dest[i]
        if d >= 0:
            ready_at[d] = writeback + write_extra
            ready_loopback[d] = False
        if redirects[i]:
            front_ready = exec_done + redirect_penalty
        next_issue_ok = t_issue + gap
        if writeback > last_completion:
            last_completion = writeback

    return PipelineResult(
        design=rf.name,
        instructions=n,
        total_cycles=last_completion,
        stalls=StallBreakdown(port=port_stalls, raw=raw_stalls,
                              loopback=loop_stalls, branch=branch_stalls),
        branches_taken=branches_total,
        loads=loads_total,
    )


def replay_tape_reference(tape: OpTape, rf: RFTimingModel,
                          config: Optional[CoreConfig] = None,
                          memory_model: Optional[Any] = None
                          ) -> PipelineResult:
    """Replay one tape through the reference pipeline (the oracle tier)."""
    pipeline = GateLevelPipeline(rf, config, memory_model=memory_model)
    for op in tape.iter_ops():
        pipeline.feed(op)
    return pipeline.result()


def replay(tape: OpTape, rf: RFTimingModel,
           config: Optional[CoreConfig] = None,
           memory_model: Optional[Any] = None,
           tier: Optional[str] = None) -> PipelineResult:
    """Replay a tape on the active tier.

    ``tier`` forces ``"compiled"`` or ``"reference"``; ``None`` follows
    ``REPRO_CPU_COMPILED`` (compiled by default).
    """
    if tier is None:
        use_compiled = compiled_enabled()
    elif tier == "compiled":
        use_compiled = True
    elif tier == "reference":
        use_compiled = False
    else:
        raise ConfigError(
            f"unknown replay tier {tier!r}; expected 'compiled', "
            "'reference' or None")
    if use_compiled:
        return replay_tape(tape, rf, config, memory_model=memory_model)
    return replay_tape_reference(tape, rf, config, memory_model=memory_model)
