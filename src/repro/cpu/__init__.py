"""Gate-level-pipelined in-order CPU timing simulator.

The paper evaluates HiPerRF inside a modified RISC-V Sodor core simulated
at gate-level granularity: every SFQ gate is a pipeline stage, the gate
cycle is 28 ps (qPalace synthesis worst case), the execute block is 28
stages deep and each register file port operation spans two gate cycles
(the 53 ps NDROC limit).  This package reproduces that model:

* :class:`CoreConfig` - pipeline depths and latencies,
* :class:`RFTimingModel` - per-design register file timing derived from
  the analytic models in :mod:`repro.rf` (readout cycles, loopback
  cycles, static issue schedule, forwarding capability),
* :class:`GateLevelPipeline` - the reference timing engine consuming the
  functional executor's retirement stream (and the equivalence oracle
  for the compiled tier),
* :class:`OpTape` / :mod:`repro.cpu.compiled` - the retirement stream
  lowered once into packed arrays and replayed per design with
  precomputed timing tables (``REPRO_CPU_COMPILED`` selects the tier),
* :class:`Lane` / :mod:`repro.cpu.batched` - one tape replayed across a
  whole design set at once, lane-major (``REPRO_CPU_LANES`` selects the
  lane tier / per-call lane cap),
* :class:`TraceCache` - on-disk tape store keyed by program digest, so
  reruns of the CPI sweeps skip the functional pass,
* :class:`CpuSimulator` - program in, :class:`CpiReport` out.
"""

from repro.cpu.config import CoreConfig
from repro.cpu.rf_model import RF_DESIGN_NAMES, RFTimingModel
from repro.cpu.pipeline import GateLevelPipeline, StallBreakdown
from repro.cpu.optape import OpTape, TraceCache, tape_for_program
from repro.cpu.compiled import replay, replay_tape
from repro.cpu.batched import (
    LANES_ENV_VAR,
    Lane,
    lanes_for_designs,
    replay_lanes,
    resolve_lanes_tier,
)
from repro.cpu.stats import CpiReport
from repro.cpu.simulator import CpuSimulator, simulate_program

__all__ = [
    "CoreConfig",
    "CpiReport",
    "CpuSimulator",
    "GateLevelPipeline",
    "Lane",
    "LANES_ENV_VAR",
    "OpTape",
    "RFTimingModel",
    "RF_DESIGN_NAMES",
    "StallBreakdown",
    "TraceCache",
    "lanes_for_designs",
    "replay",
    "replay_lanes",
    "replay_tape",
    "resolve_lanes_tier",
    "simulate_program",
    "tape_for_program",
]
