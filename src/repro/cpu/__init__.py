"""Gate-level-pipelined in-order CPU timing simulator.

The paper evaluates HiPerRF inside a modified RISC-V Sodor core simulated
at gate-level granularity: every SFQ gate is a pipeline stage, the gate
cycle is 28 ps (qPalace synthesis worst case), the execute block is 28
stages deep and each register file port operation spans two gate cycles
(the 53 ps NDROC limit).  This package reproduces that model:

* :class:`CoreConfig` - pipeline depths and latencies,
* :class:`RFTimingModel` - per-design register file timing derived from
  the analytic models in :mod:`repro.rf` (readout cycles, loopback
  cycles, static issue schedule, forwarding capability),
* :class:`GateLevelPipeline` - the timing engine consuming the
  functional executor's retirement stream,
* :class:`CpuSimulator` - program in, :class:`CpiReport` out.
"""

from repro.cpu.config import CoreConfig
from repro.cpu.rf_model import RF_DESIGN_NAMES, RFTimingModel
from repro.cpu.pipeline import GateLevelPipeline, StallBreakdown
from repro.cpu.stats import CpiReport
from repro.cpu.simulator import CpuSimulator, simulate_program

__all__ = [
    "CoreConfig",
    "CpiReport",
    "CpuSimulator",
    "GateLevelPipeline",
    "RFTimingModel",
    "RF_DESIGN_NAMES",
    "StallBreakdown",
    "simulate_program",
]
