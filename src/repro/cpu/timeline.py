"""Pipeline waterfall: per-instruction timing visualisation.

A recording variant of the timing engine that keeps each instruction's
issue / operands-ready / execute-done / write-back times, plus an ASCII
waterfall renderer - the debugging view behind the Figure 14 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.cpu.config import CoreConfig
from repro.cpu.pipeline import GateLevelPipeline
from repro.cpu.rf_model import RFTimingModel
from repro.isa.disassembler import format_instruction
from repro.isa.executor import ExecutedOp


@dataclass(frozen=True)
class InstructionTiming:
    """The four timing anchors of one instruction's flow."""

    index: int
    text: str
    issue: int
    operands_ready: int
    execute_done: int
    writeback: int

    @property
    def span(self) -> int:
        return self.writeback - self.issue


class RecordingPipeline(GateLevelPipeline):
    """GateLevelPipeline that also records per-instruction anchors."""

    def __init__(self, rf: RFTimingModel,
                 config: Optional[CoreConfig] = None,
                 memory_model=None) -> None:
        super().__init__(rf, config, memory_model)
        self.records: List[InstructionTiming] = []

    def feed(self, op: ExecutedOp) -> int:
        before_loads = self._loads
        t_issue = super().feed(op)
        # Reconstruct the anchors the parent computed (same formulas).
        rf = self.rf
        config = self.config
        sources = tuple(dict.fromkeys(op.sources))
        slots = rf.read_slots_gates(sources)
        if sources:
            extra = max(slots) - min(slots) if len(slots) > 1 else 0
            operands = t_issue + extra + rf.readout_cycles
        else:
            operands = t_issue + rf.rf_cycle_gates
        exec_done = operands + config.execute_depth
        if op.is_load:
            if self.memory_model is not None:
                # The parent already charged the access; approximate the
                # recorded latency with the flat figure for display.
                exec_done += config.memory_latency
            else:
                exec_done += config.memory_latency
        writeback = exec_done + config.writeback_depth
        self.records.append(InstructionTiming(
            index=len(self.records),
            text=format_instruction(op.instr),
            issue=t_issue,
            operands_ready=operands,
            execute_done=exec_done,
            writeback=writeback,
        ))
        return t_issue


def record_timeline(ops: Iterable[ExecutedOp], design: str = "hiperrf",
                    config: Optional[CoreConfig] = None,
                    limit: int = 64) -> List[InstructionTiming]:
    """Time a stream and return the first ``limit`` instruction records."""
    config = config or CoreConfig()
    pipeline = RecordingPipeline(RFTimingModel.for_design(design, config),
                                 config)
    for op in ops:
        pipeline.feed(op)
        if len(pipeline.records) >= limit:
            break
    return pipeline.records


def render_waterfall(records: List[InstructionTiming],
                     width: int = 72) -> str:
    """ASCII waterfall: issue->operands (r), execute (E), write-back (W)."""
    if not records:
        return "(empty timeline)"
    start = records[0].issue
    end = max(r.writeback for r in records)
    span = max(end - start, 1)
    scale = width / span
    lines = [f"gate cycles {start}..{end} "
             f"(one column ~ {1 / scale:.1f} cycles)"]
    for record in records:
        def col(cycle: int) -> int:
            return min(int((cycle - start) * scale), width - 1)

        row = [" "] * width
        for position in range(col(record.issue), col(record.operands_ready)):
            row[position] = "r"
        for position in range(col(record.operands_ready),
                              col(record.execute_done)):
            row[position] = "E"
        row[col(record.writeback) - 1 if col(record.writeback) > 0 else 0] = "W"
        lines.append(f"{record.index:>4d} {record.text:<24.24s} "
                     f"|{''.join(row)}|")
    return "\n".join(lines)
