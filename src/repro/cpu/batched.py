"""Batched CPU tier: one op-tape replay across design lanes.

The compiled tier (:mod:`repro.cpu.compiled`) removed the per-op object
overhead from a *single* ``(tape, design)`` replay, but the headline
sweeps - Figure 14's design columns, the banking ladder, the ablation
policies, the service's design-union CPU groups - replay the same tape
under many timing models, paying the scalar Python loop once per
design.  This module is the third tier, mirroring the josim and pulse
stacks: a *lane* is an ``(RFTimingModel, CoreConfig)`` combination
(memory latency rides on the config), the per-signature timing tables
stack into ``(S, L)`` matrices gathered into per-op rows, replay state
is lane-major (``ready_at`` as an ``(R, L)`` int64 matrix,
``next_issue_ok``/``front_ready``/stall counters as ``(L,)`` vectors),
and a single n-step loop resolves dependencies, loopback busy
propagation, redirect fronts and the four-way stall attribution for
every lane at once with masked max/where updates.

Exactness contract
------------------
``replay_tape`` is the oracle: for every lane the batched replay
returns a :class:`~repro.cpu.pipeline.PipelineResult` integer-equal in
every field (cycles, port/raw/loopback/branch stalls, branch and load
counters) to a sequential compiled replay of that lane.  The kernel
works in a doubled-gate domain - every register-readiness entry is
encoded ``2*t + (0 if loopback else 1)`` - so one int64 matrix carries
both the readiness time and the loopback flag, ties between sources
keep the scalar loop's first-source-wins attribution, and the
loopback-busy update reduces to an unmasked ``maximum`` (for a
loopback design the busy horizon always beats the stored readiness;
non-loopback lanes carry a large negative busy offset that never
wins).  Stall attribution is decoupled from the sequential recurrence:
the loop records per-op issue times and dependency encodings into
chunk buffers, and a vectorized flush reconstructs port horizons,
redirect fronts (via a static redirect-segment gather) and the
raw/loopback/branch split for the whole chunk at once.

Two further reductions keep the per-op ufunc count minimal, both with
exactness arguments spelled out at the use site:

* the port horizon folds *into* the dependency encodings
  (``enc = max(ready, next_issue_ok)``), which removes a copy and a
  scratch pass per op.  A branch-redirect stall can only materialize
  at the first op after a redirect - everywhere else the front is
  already dominated by the port horizon - so the flush-side
  attribution still splits raw/loopback/branch exactly as the scalar
  loop does, provided the fold runs *before* the front-ready fold on
  that one op class (the loop orders it so);
* a loopback busy update whose register's next touch is a write (not
  a read) can never be observed - the write overwrites the entry -
  so a static reverse pass over the tape marks those updates dead and
  the loop skips them (22-40% of source updates on the Figure 14
  workloads).

The lane-independent per-tape statics (source/dest lists, redirect
classes and segment ids, dead-update masks, flag totals) are memoized
on the tape's content fingerprint, mirroring the ``design_tables``
LRU, so repeated lane batches over a cached tape skip the O(n)
Python passes.

Lanes whose :class:`Lane.memory_model` is set fall back per lane to
the scalar compiled tier: a stateful memory model (``FlatMemory``,
``DirectMappedCache``) observes its accesses in program order and
mutates counters, so those lanes replay sequentially - in ascending
lane order, preserving the access-call order a sequential sweep would
produce even when lanes share one model instance.

Tier selection: ``REPRO_CPU_LANES`` accepts ``off``/``0``/``compiled``
/``sequential`` (per-lane scalar replay), ``on``/``batched``/``auto``
/empty (one batch, the default), or a positive integer N (batched, at
most N lanes per kernel call - larger sets are chunked).  An explicit
``tier=`` argument overrides the environment.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.compiled import design_tables, replay_tape
from repro.cpu.config import CoreConfig
from repro.cpu.optape import FLAG_BRANCH, FLAG_LOAD, FLAG_TAKEN, OpTape
from repro.cpu.pipeline import PipelineResult, StallBreakdown
from repro.cpu.rf_model import RFTimingModel
from repro.errors import ConfigError, ExecutionError

#: Environment variable selecting the lane tier (default: batched).
LANES_ENV_VAR = "REPRO_CPU_LANES"

#: Ops per flush chunk: large enough to amortize the vectorized stall
#: attribution, small enough that the chunk buffers written by the
#: recurrence are still cache-resident when the flush streams them.
_CHUNK = 2048

#: Busy offset parked on non-loopback lanes: a readiness candidate so
#: negative an unmasked ``maximum`` never selects it (chosen per dtype
#: so the ``tis + offset`` add cannot wrap).
_NEVER32 = -(1 << 30)
_NEVER64 = -(1 << 40)

#: Ceiling on the doubled-gate time bound below which the kernel runs
#: in int32; the flush is memory-bound, so halving the element width
#: roughly halves its cost.
_INT32_BOUND = 1 << 30


@dataclass
class Lane:
    """One replay lane: a design plus its core configuration.

    ``memory_model`` (optional, stateful) forces this lane onto the
    scalar fallback path - see the module docstring.
    """

    rf: RFTimingModel
    config: CoreConfig = field(default_factory=CoreConfig)
    memory_model: Optional[Any] = None


def lanes_for_designs(designs: Sequence[str],
                      config: Optional[CoreConfig] = None) -> List[Lane]:
    """Build one :class:`Lane` per design name under a shared config."""
    config = config or CoreConfig()
    return [Lane(RFTimingModel.for_design(name, config), config)
            for name in designs]


def resolve_lanes_tier(tier: Optional[str] = None
                       ) -> Tuple[str, Optional[int]]:
    """Resolve ``(tier, lane_cap)`` from the argument or env.

    Mirrors :func:`repro.pulse.batched.resolve_lanes_tier`:
    ``REPRO_CPU_LANES`` accepts ``off``/``0``/``compiled``/``sequential``
    (scalar per-lane replay), ``on``/``batched``/``auto``/empty
    (batched), or a positive integer N (batched, at most N lanes per
    kernel call).
    """
    if tier == "compiled":
        return "compiled", None
    if tier == "batched":
        return "batched", None
    if tier is not None:
        raise ConfigError(f"unknown CPU lane tier {tier!r} "
                          "(expected 'batched' or 'compiled')")
    raw = os.environ.get(LANES_ENV_VAR, "").strip().lower()
    if raw in ("off", "0", "compiled", "sequential"):
        return "compiled", None
    cap: Optional[int] = None
    if raw not in ("", "on", "batched", "auto"):
        try:
            cap = int(raw)
        except ValueError:
            raise ConfigError(
                f"{LANES_ENV_VAR}: unrecognised value {raw!r}") from None
        if cap <= 0:
            return "compiled", None
    return "batched", cap


def replay_lanes(tape: OpTape, lanes: Sequence[Lane],
                 tier: Optional[str] = None) -> List[PipelineResult]:
    """Replay one tape across ``lanes``; one result per lane, in order.

    ``tier`` forces ``"batched"`` or ``"compiled"``; ``None`` follows
    ``REPRO_CPU_LANES`` (batched by default).  Lanes with a
    ``memory_model`` always take the scalar path (in ascending lane
    order), whatever the tier.
    """
    for index, lane in enumerate(lanes):
        _validate_lane(tape, index, lane)
    chosen, cap = resolve_lanes_tier(tier)
    if chosen == "compiled":
        return [replay_tape(tape, lane.rf, lane.config,
                            memory_model=lane.memory_model)
                for lane in lanes]
    results: List[Optional[PipelineResult]] = [None] * len(lanes)
    vector_ids = [i for i, lane in enumerate(lanes)
                  if lane.memory_model is None]
    # Stateful-memory lanes replay sequentially, in lane order, so a
    # shared model instance sees the same access-call order as a
    # sequential sweep.
    for i, lane in enumerate(lanes):
        if lane.memory_model is not None:
            results[i] = replay_tape(tape, lane.rf, lane.config,
                                     memory_model=lane.memory_model)
    step = cap if cap else max(1, len(vector_ids))
    for start in range(0, len(vector_ids), step):
        chunk = vector_ids[start:start + step]
        outcomes = _replay_lanes_kernel(tape, [lanes[i] for i in chunk])
        for i, outcome in zip(chunk, outcomes):
            results[i] = outcome
    return [result for result in results if result is not None]


def _validate_lane(tape: OpTape, index: int, lane: Lane) -> None:
    if tape.signature_count == 0:
        return
    top = max(int(tape.sig_srcs.max()), int(tape.sig_dest.max()))
    if top >= lane.config.num_registers:
        raise ExecutionError(
            f"lane {index} ({lane.rf.name}): tape addresses register "
            f"{top}, outside the {lane.config.num_registers}-register "
            "file")


#: Entries kept by the per-tape statics memo (a handful of workloads
#: times at most three redirect modes in any realistic sweep).
_STATICS_LRU_MAX = 64

_statics_lru: "OrderedDict[Tuple[str, str], _TapeStatics]" = OrderedDict()


class _TapeStatics:
    """Lane-independent per-tape arrays shared by every kernel call.

    ``mode`` captures the only lane-dependent bit of the redirect
    classification: whether *all*, *some* or *none* of the lanes run
    without fall-through speculation (branch-not-taken ops redirect
    every lane, only the no-speculation lanes, or no lane at all).
    """

    __slots__ = ("src0_list", "src1_list", "dest_list", "dead0_list",
                 "dead1_list", "two_src", "src0_ok", "is_load",
                 "has_loads", "sig_counts", "loads_total", "taken_total",
                 "redirect_total", "rclass", "rclass_list", "redirect_sid")

    def __init__(self, tape: OpTape, mode: str) -> None:
        n = tape.instructions
        sig = tape.sig
        self.src0_list: List[int] = tape.sig_srcs[sig, 0].tolist()
        self.src1_list: List[int] = tape.sig_srcs[sig, 1].tolist()
        self.dest_list: List[int] = tape.sig_dest[sig].tolist()
        self.two_src = np.asarray([s >= 0 for s in self.src1_list],
                                  dtype=bool)
        self.src0_ok = np.asarray([s >= 0 for s in self.src0_list],
                                  dtype=bool)
        flags = tape.flags
        is_load = (flags & FLAG_LOAD) != 0
        taken = (flags & FLAG_TAKEN) != 0
        branch = (flags & FLAG_BRANCH) != 0
        self.is_load = is_load
        self.has_loads = bool(is_load.any())
        self.sig_counts = np.bincount(
            sig, minlength=tape.signature_count).astype(np.int64)
        self.loads_total = int(np.count_nonzero(is_load))
        self.taken_total = int(np.count_nonzero(taken))
        self.redirect_total = int(np.count_nonzero(taken | branch))
        # redirect classes: 0 none, 1 every lane, 2 only no-spec lanes
        rclass = np.zeros(n, dtype=np.int8)
        not_taken = branch & ~taken
        if mode == "all":
            rclass[not_taken] = 1
        elif mode == "mixed":
            rclass[not_taken] = 2
        rclass[taken] = 1
        self.rclass = rclass
        self.rclass_list: List[int] = rclass.tolist()
        self.redirect_sid = np.cumsum(rclass != 0)  # inclusive count
        # Dead loopback busy updates: if a source register's next touch
        # is a write (or it is never touched again), the busy horizon
        # written into it can never be read back - skip the update.
        # Reverse pass; a same-op read on the *other* source slot keeps
        # the update alive, and dests are applied before sources so an
        # op that reads and rewrites a register counts as a read.
        nxt = bytearray(b"w" * tape.num_registers)
        dead0 = [False] * n
        dead1 = [False] * n
        write, read = ord("w"), ord("r")
        for k in range(n - 1, -1, -1):
            s0 = self.src0_list[k]
            if s0 >= 0:
                dead0[k] = nxt[s0] == write
                s1 = self.src1_list[k]
                if s1 >= 0:
                    dead1[k] = nxt[s1] == write
            d = self.dest_list[k]
            if d >= 0:
                nxt[d] = write
            if s0 >= 0:
                nxt[s0] = read
                if s1 >= 0:
                    nxt[s1] = read
        self.dead0_list = dead0
        self.dead1_list = dead1


def _tape_statics(tape: OpTape, mode: str) -> _TapeStatics:
    key = (tape.content_fingerprint(), mode)
    hit = _statics_lru.get(key)
    if hit is not None:
        _statics_lru.move_to_end(key)
        return hit
    statics = _TapeStatics(tape, mode)
    _statics_lru[key] = statics
    while len(_statics_lru) > _STATICS_LRU_MAX:
        _statics_lru.popitem(last=False)
    return statics


def _replay_lanes_kernel(tape: OpTape,
                         lanes: Sequence[Lane]) -> List[PipelineResult]:
    """The lane-vectorized replay loop (no memory models).

    All times are doubled (the ``2*t + flag`` encoding described in the
    module docstring); totals are halved on the way out.
    """
    num_lanes = len(lanes)
    n = tape.instructions
    sig_count = tape.signature_count
    num_regs = max(lane.config.num_registers for lane in lanes)

    # -- per-lane constant tables (doubled-gate domain) -----------------
    gap2 = np.empty((sig_count, num_lanes), dtype=np.int64)
    pwbx2 = np.empty((sig_count, num_lanes), dtype=np.int64)
    memlat2 = np.empty(num_lanes, dtype=np.int64)
    loop_busy2 = np.zeros(num_lanes, dtype=np.int64)
    loop_mask = np.zeros(num_lanes, dtype=bool)
    wx2p1 = np.empty(num_lanes, dtype=np.int64)
    radj = np.empty(num_lanes, dtype=np.int64)
    nospec = np.zeros(num_lanes, dtype=bool)
    any_loop = False
    for j, lane in enumerate(lanes):
        rf, cfg = lane.rf, lane.config
        gap_t, operand_t = design_tables(tape, rf)
        wx = rf.write_visible_extra_gates()
        gap2[:, j] = 2 * gap_t
        # per-signature writeback path + the dest-visibility extra and
        # the odd "not loopback" flag bit, folded into one gather row
        pwbx2[:, j] = 2 * (operand_t + cfg.execute_depth
                           + cfg.writeback_depth) + 2 * wx + 1
        memlat2[j] = 2 * cfg.memory_latency
        if rf.has_loopback:
            loop_busy2[j] = 2 * rf.loopback_busy_gates()
            loop_mask[j] = True
            any_loop = True
        wx2p1[j] = 2 * wx + 1
        # redirect front from the writeback encoding: fr = exec_done +
        # redirect_penalty = (wb_enc - wx2p1) - wb_depth*2 + penalty*2
        radj[j] = 2 * (cfg.branch_redirect_penalty
                       - cfg.writeback_depth) - wx2p1[j]
        nospec[j] = not cfg.fall_through_speculation

    # The flush streams multi-megabyte chunk buffers, so it is memory
    # bound: run the whole kernel in int32 whenever a conservative
    # doubled-gate time bound fits (it always does for the default
    # instruction caps), int64 otherwise.
    if sig_count:
        per_op = int(gap2.max() + pwbx2.max() + memlat2.max()
                     + loop_busy2.max() + np.abs(radj).max() + 4)
    else:
        per_op = 4
    dtype = np.int32 if (n + 2) * per_op < _INT32_BOUND else np.int64
    never = _NEVER32 if dtype == np.int32 else _NEVER64
    gap2 = gap2.astype(dtype)
    pwbx2 = pwbx2.astype(dtype)
    memlat2 = memlat2.astype(dtype)
    lb2 = np.where(loop_mask, loop_busy2, never).astype(dtype)
    radj = radj.astype(dtype)
    wx2p1 = wx2p1.astype(dtype)

    sig = tape.sig
    if bool(nospec.all()):
        mode = "all"
    elif bool(nospec.any()):
        mode = "mixed"
    else:
        mode = "none"
    st = _tape_statics(tape, mode)
    src0_list = st.src0_list
    src1_list = st.src1_list
    dest_list = st.dest_list
    rclass_list = st.rclass_list
    dead0_list = st.dead0_list
    dead1_list = st.dead1_list
    rclass = st.rclass
    redirect_sid = st.redirect_sid
    is_load = st.is_load
    has_loads = st.has_loads

    # -- lane-major state -----------------------------------------------
    ready = np.ones((num_regs, num_lanes), dtype=dtype)  # t=0, no loopback
    ready_rows = list(ready)
    nio = np.zeros(num_lanes, dtype=dtype)          # next_issue_ok
    fr = np.zeros(num_lanes, dtype=dtype)           # front_ready
    last_wb = np.zeros(num_lanes, dtype=np.int64)
    total_st = np.zeros(num_lanes, dtype=np.int64)
    dep_st = np.zeros(num_lanes, dtype=np.int64)
    loop_st = np.zeros(num_lanes, dtype=np.int64)
    busy = np.empty(num_lanes, dtype=dtype)
    scratch = np.empty(num_lanes, dtype=dtype)
    neg2 = np.full(num_lanes, -2, dtype=dtype)
    prev_ti = np.zeros(num_lanes, dtype=dtype)
    prev_gap = np.zeros(num_lanes, dtype=dtype)

    # -- chunk buffers (reused) -----------------------------------------
    chunk = min(_CHUNK, max(n, 1))
    enc0_buf = np.empty((chunk, num_lanes), dtype=dtype)
    encm_buf = np.empty((chunk, num_lanes), dtype=dtype)
    tis_buf = np.empty((chunk, num_lanes), dtype=dtype)
    flush_i = [np.empty((chunk, num_lanes), dtype=dtype)
               for _ in range(4)]
    flush_b = [np.empty((chunk, num_lanes), dtype=bool) for _ in range(4)]

    np_add = np.add
    np_max = np.maximum
    np_and = np.bitwise_and
    np_cp = np.copyto
    fr_pending = False

    for c0 in range(0, n, chunk):
        c1 = min(c0 + chunk, n)
        cn = c1 - c0
        sig_c = sig[c0:c1]
        gap_c = gap2[sig_c]
        pwbx_c = pwbx2[sig_c]
        if has_loads:
            pwbx_c += is_load[c0:c1, None] * memlat2
        pwbr_c = pwbx_c + radj
        # redirect-front versions live in per-chunk rows; row 0 is the
        # front at chunk entry, row k the front after the chunk's k-th
        # redirecting op
        sid_c = redirect_sid[c0:c1] - (redirect_sid[c0 - 1] if c0 else 0)
        n_redirect = int(sid_c[-1]) if cn else 0
        fr_buf = np.empty((n_redirect + 1, num_lanes), dtype=dtype)
        np_cp(fr_buf[0], fr)
        fr_rows = list(fr_buf)
        fr = fr_rows[0]
        fr_idx = 0

        # ---- the sequential recurrence, vectorized across lanes -------
        # The port horizon (``nio``) folds straight into the dependency
        # encodings; the front-ready fold runs *after* the enc maxima
        # so the flush still sees pure max(dep, port) encodings (the
        # only place a branch stall can appear - see module docstring).
        k = 0
        for s0, s1, d, rc, dd0, dd1, enc0, tis, gap_r, pwbx_r in zip(
                src0_list[c0:c1], src1_list[c0:c1], dest_list[c0:c1],
                rclass_list[c0:c1], dead0_list[c0:c1], dead1_list[c0:c1],
                enc0_buf, tis_buf, gap_c, pwbx_c):
            if s0 >= 0:
                ra0 = ready_rows[s0]
                np_max(ra0, nio, out=enc0)
                if s1 >= 0:
                    ra1 = ready_rows[s1]
                    encm = encm_buf[k]
                    np_max(enc0, ra1, out=encm)
                    if fr_pending:
                        np_max(nio, fr, out=nio)
                        fr_pending = False
                        np_max(encm, nio, out=scratch)
                        np_and(scratch, neg2, out=tis)
                    else:
                        np_and(encm, neg2, out=tis)
                    if any_loop and not (dd0 and dd1):
                        np_add(tis, lb2, out=busy)
                        if not dd0:
                            np_max(ra0, busy, out=ra0)
                        if not dd1:
                            np_max(ra1, busy, out=ra1)
                else:
                    if fr_pending:
                        np_max(nio, fr, out=nio)
                        fr_pending = False
                        np_max(enc0, nio, out=scratch)
                        np_and(scratch, neg2, out=tis)
                    else:
                        np_and(enc0, neg2, out=tis)
                    if any_loop and not dd0:
                        np_add(tis, lb2, out=busy)
                        np_max(ra0, busy, out=ra0)
            else:
                if fr_pending:
                    np_max(nio, fr, out=nio)
                    fr_pending = False
                np_cp(tis, nio)
            if d >= 0:
                np_add(tis, pwbx_r, out=ready_rows[d])
            if rc:
                fr_idx += 1
                row = fr_rows[fr_idx]
                if rc == 1:
                    np_add(tis, pwbr_c[k], out=row)
                else:
                    np_cp(row, fr)
                    np_add(tis, pwbr_c[k], out=scratch)
                    np_cp(row, scratch, where=nospec)
                fr = row
                fr_pending = True
            np_add(tis, gap_r, out=nio)
            k += 1

        # ---- flush: stall attribution for the whole chunk -------------
        tis_v = tis_buf[:cn]
        wb_v = flush_i[0][:cn]
        np.add(tis_v, pwbx_c, out=wb_v)
        np.subtract(wb_v, wx2p1, out=wb_v)
        np_max(last_wb, wb_v.max(axis=0), out=last_wb)
        # t_port is a pure recurrence: issue time of the previous op
        # plus its port gap
        tport_v = flush_i[1][:cn]
        np.add(prev_ti, prev_gap, out=tport_v[0])
        if cn > 1:
            np.add(tis_v[:-1], gap_c[:-1], out=tport_v[1:])
        lost_v = flush_i[2][:cn]
        np.subtract(tis_v, tport_v, out=lost_v)
        stalled_v = flush_b[0][:cn]
        np.greater(lost_v, 0, out=stalled_v)
        # dependency encoding: two-source ops stored both the first
        # source and the pairwise max; a strictly-later second source
        # wins, ties keep the first source (the scalar tie rule)
        enc0_v = enc0_buf[:cn]
        encm_v = encm_buf[:cn]
        dep0_v = flush_i[3][:cn]
        np.bitwise_and(enc0_v, -2, out=dep0_v)
        depm_v = wb_v  # reuse
        np.bitwise_and(encm_v, -2, out=depm_v)
        strict1_v = flush_b[1][:cn]
        np.greater(depm_v, dep0_v, out=strict1_v)
        np.logical_and(strict1_v, st.two_src[c0:c1, None], out=strict1_v)
        enc_sel = tport_v  # reuse
        np.copyto(enc_sel, enc0_v)
        np.copyto(enc_sel, encm_v, where=strict1_v)
        # dep time: the pairwise max for two-source ops, source0 else
        np.copyto(dep0_v, depm_v, where=st.two_src[c0:c1, None])
        dep_loop_v = flush_b[2][:cn]
        np.bitwise_and(enc_sel, 1, out=enc_sel)
        np.equal(enc_sel, 0, out=dep_loop_v)
        fr_seen = np.take(fr_buf, sid_c - (rclass[c0:c1] != 0), axis=0)
        dep_side_v = flush_b[3][:cn]
        np.greater_equal(dep0_v, fr_seen, out=dep_side_v)
        np.logical_and(dep_side_v, stalled_v, out=dep_side_v)
        # source-free ops leave stale enc rows behind; any stall there
        # is a pure front-ready (branch) stall
        np.logical_and(dep_side_v, st.src0_ok[c0:c1, None],
                       out=dep_side_v)
        np.logical_and(dep_side_v, dep_loop_v, out=dep_loop_v)
        # three masked sums via the identity branch = total - dep and
        # raw = dep - loopback, so only one mask pass per class
        np.multiply(lost_v, stalled_v, out=depm_v)
        total_st += depm_v.sum(axis=0, dtype=np.int64)
        np.multiply(lost_v, dep_side_v, out=depm_v)
        dep_st += depm_v.sum(axis=0, dtype=np.int64)
        np.multiply(lost_v, dep_loop_v, out=depm_v)
        loop_st += depm_v.sum(axis=0, dtype=np.int64)
        np_cp(prev_ti, tis_v[-1])
        np_cp(prev_gap, gap_c[-1])

    # -- lane totals -----------------------------------------------------
    port_st = (st.sig_counts @ gap2) // 2 if sig_count else \
        np.zeros(num_lanes, dtype=np.int64)
    loads_total = st.loads_total
    taken_total = st.taken_total
    redirect_total = st.redirect_total
    results: List[PipelineResult] = []
    for j, lane in enumerate(lanes):
        results.append(PipelineResult(
            design=lane.rf.name,
            instructions=n,
            total_cycles=int(last_wb[j]) // 2,
            stalls=StallBreakdown(
                port=int(port_st[j]),
                raw=int(dep_st[j] - loop_st[j]) // 2,
                loopback=int(loop_st[j]) // 2,
                branch=int(total_st[j] - dep_st[j]) // 2),
            branches_taken=redirect_total if nospec[j] else taken_total,
            loads=loads_total,
        ))
    return results
