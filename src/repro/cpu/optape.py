"""Op tape: the retirement stream lowered to packed NumPy arrays.

The functional executor is deterministic for an in-order core: one
``(program, instruction cap)`` pair always produces the same retirement
stream, no matter which register file design later replays it.  The CPI
sweeps exploit only half of that today - :func:`repro.cpu.simulate_program`
shares one functional pass across designs, but still pays a pure-Python
``ExecutedOp`` per instruction per replay.  This module lowers the stream
*once* into flat arrays the compiled replay tier (:mod:`repro.cpu.compiled`)
walks with plain integer indexing:

* per-op columns: a *signature* index, packed flag bits and the memory
  address (``-1`` when the op touches no memory),
* a signature table: one row per distinct ``(deduped sources, destination)``
  combination.  Every :class:`~repro.cpu.rf_model.RFTimingModel` quantity the
  timing engine needs per instruction (issue gap, operand-path latency)
  depends only on that combination, so the compiled tier evaluates the
  timing model once per signature instead of twice per op.

Tapes are design-independent, so :class:`TraceCache` persists them on disk
keyed by a digest of the assembled program image plus the instruction cap
(namespace-versioned like :class:`repro.experiments.parallel.ResultCache`):
a rerun of the Figure 14 sweep - or the same sweep over *more* designs -
skips the functional pass entirely.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ExecutionError
from repro.experiments.parallel import cache_max_bytes, enforce_cache_limit
from repro.isa.assembler import Program
from repro.isa.executor import ExecutedOp, Executor, HaltReason

#: Flag bits packed into the per-op ``flags`` column.
FLAG_LOAD = 1
FLAG_STORE = 2
FLAG_TAKEN = 4
FLAG_BRANCH = 8

#: Environment variable enabling the default on-disk trace cache (shared
#: with :mod:`repro.experiments.parallel`'s result cache).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


class _ReplayInstr:
    """Minimal :class:`~repro.isa.instructions.Instruction` stand-in.

    The timing engines read exactly one attribute off ``op.instr``
    (``is_branch``, for the no-speculation redirect rule), so tape
    round-trips carry this two-field shim instead of re-decoding.
    """

    __slots__ = ("is_branch",)

    def __init__(self, is_branch: bool) -> None:
        self.is_branch = is_branch


_BRANCH_INSTR = _ReplayInstr(True)
_PLAIN_INSTR = _ReplayInstr(False)


@dataclass
class OpTape:
    """One retirement stream, lowered to flat arrays.

    ``sig[i]`` indexes the signature table: ``sig_srcs[s]`` holds the
    op's RAR-deduped source registers (``-1``-padded, original order
    kept) and ``sig_dest[s]`` its destination (``-1`` when none).
    ``flags`` packs ``FLAG_LOAD | FLAG_STORE | FLAG_TAKEN | FLAG_BRANCH``;
    ``mem_addr`` is the effective byte address of loads/stores (``-1``
    when absent).
    """

    sig: np.ndarray        # (n,) int32
    flags: np.ndarray      # (n,) uint8
    mem_addr: np.ndarray   # (n,) int64
    sig_srcs: np.ndarray   # (n_sigs, 2) int16
    sig_dest: np.ndarray   # (n_sigs,) int16
    max_instructions: int
    num_registers: int
    exit_code: Optional[int] = None
    halt_reason: Optional[str] = None
    #: Content fingerprint (the cache digest when known).  Set by
    #: :class:`TraceCache` and :func:`tape_for_program`; computed lazily
    #: from the arrays otherwise.  Keyed on by the per-design timing
    #: table memo in :mod:`repro.cpu.compiled`.
    fingerprint: Optional[str] = None

    @property
    def instructions(self) -> int:
        return int(self.sig.shape[0])

    @property
    def signature_count(self) -> int:
        return int(self.sig_dest.shape[0])

    @property
    def hit_instruction_limit(self) -> bool:
        return self.halt_reason == HaltReason.INSTRUCTION_LIMIT.name

    def content_fingerprint(self) -> str:
        """A stable content hash of this tape, computed at most once.

        Tapes loaded through :class:`TraceCache` or built by
        :func:`tape_for_program` inherit the program digest for free;
        hand-built tapes hash their arrays on first use.  Memoization
        keys (the compiled tier's per-design timing tables) use this
        instead of re-hashing per call.
        """
        if self.fingerprint is None:
            h = hashlib.sha256()
            h.update(f"arrays:{self.max_instructions}:"
                     f"{self.num_registers}".encode())
            for arr in (self.sig, self.flags, self.mem_addr,
                        self.sig_srcs, self.sig_dest):
                h.update(np.ascontiguousarray(arr).tobytes())
            self.fingerprint = h.hexdigest()
        return self.fingerprint

    # -- lowering ----------------------------------------------------------

    @classmethod
    def from_ops(cls, ops: Iterable[ExecutedOp],
                 num_registers: int = 32,
                 max_instructions: int = 2_000_000) -> "OpTape":
        """Lower a retirement stream; validates every register index.

        Raises :class:`~repro.errors.ExecutionError` when an op addresses
        a register outside ``[0, num_registers)`` or carries more than the
        two sources an RV32I instruction can encode.
        """
        sig_index: Dict[Tuple[Tuple[int, ...], int], int] = {}
        sig_rows: List[Tuple[int, int, int]] = []
        sigs: List[int] = []
        flags: List[int] = []
        addrs: List[int] = []
        for op in ops:
            sources = tuple(dict.fromkeys(op.sources))  # RAR dedup
            if len(sources) > 2:
                raise ExecutionError(
                    f"op at pc={op.pc:#x} has {len(sources)} distinct "
                    "sources; the tape encodes at most two")
            dest = -1 if op.destination is None else op.destination
            for reg in sources + ((dest,) if dest >= 0 else ()):
                if not 0 <= reg < num_registers:
                    raise ExecutionError(
                        f"op at pc={op.pc:#x} addresses register {reg}, "
                        f"outside the {num_registers}-register file")
            key = (sources, dest)
            s = sig_index.get(key)
            if s is None:
                s = len(sig_rows)
                sig_index[key] = s
                sig_rows.append((
                    sources[0] if len(sources) > 0 else -1,
                    sources[1] if len(sources) > 1 else -1,
                    dest,
                ))
            sigs.append(s)
            bits = 0
            if op.is_load:
                bits |= FLAG_LOAD
            if op.is_store:
                bits |= FLAG_STORE
            if op.branch_taken:
                bits |= FLAG_TAKEN
            if op.instr.is_branch:
                bits |= FLAG_BRANCH
            flags.append(bits)
            addrs.append(-1 if op.mem_address is None else op.mem_address)
        return cls(
            sig=np.asarray(sigs, dtype=np.int32),
            flags=np.asarray(flags, dtype=np.uint8),
            mem_addr=np.asarray(addrs, dtype=np.int64),
            sig_srcs=(np.asarray(sig_rows, dtype=np.int16)[:, :2]
                      if sig_rows else np.empty((0, 2), dtype=np.int16)),
            sig_dest=(np.asarray(sig_rows, dtype=np.int16)[:, 2]
                      if sig_rows else np.empty((0,), dtype=np.int16)),
            max_instructions=max_instructions,
            num_registers=num_registers,
        )

    @classmethod
    def from_program(cls, program: Program,
                     max_instructions: int = 2_000_000,
                     num_registers: int = 32) -> "OpTape":
        """Run the functional executor once and lower its stream."""
        executor = Executor(program)
        tape = cls.from_ops(
            executor.trace(max_instructions=max_instructions),
            num_registers=num_registers,
            max_instructions=max_instructions)
        tape.exit_code = executor.exit_code
        tape.halt_reason = (executor.halt_reason.name
                            if executor.halt_reason is not None else None)
        return tape

    # -- replay back into ExecutedOps --------------------------------------

    def iter_ops(self) -> Iterator[ExecutedOp]:
        """Reconstruct the timing-relevant view of each retired op.

        Functional payloads the timing engines never read (pc, operand
        values, the decoded instruction) are not stored; ``pc`` is the
        tape position and ``instr`` a branch-flag shim.  Feeding these
        to :class:`~repro.cpu.pipeline.GateLevelPipeline` reproduces the
        original run exactly - the equivalence suite holds the compiled
        tier to that oracle.
        """
        srcs = self.sig_srcs
        dests = self.sig_dest
        for i, s in enumerate(self.sig.tolist()):
            bits = int(self.flags[i])
            src0 = int(srcs[s, 0])
            src1 = int(srcs[s, 1])
            sources: Tuple[int, ...] = ()
            if src0 >= 0:
                sources = (src0,) if src1 < 0 else (src0, src1)
            dest = int(dests[s])
            addr = int(self.mem_addr[i])
            yield ExecutedOp(
                pc=i,
                instr=(_BRANCH_INSTR if bits & FLAG_BRANCH
                       else _PLAIN_INSTR),  # type: ignore[arg-type]
                sources=sources,
                destination=None if dest < 0 else dest,
                branch_taken=bool(bits & FLAG_TAKEN),
                is_load=bool(bits & FLAG_LOAD),
                is_store=bool(bits & FLAG_STORE),
                mem_address=None if addr < 0 else addr,
            )

    def signatures(self) -> List[Tuple[Tuple[int, ...], Optional[int]]]:
        """The distinct ``(deduped sources, destination)`` combinations."""
        out: List[Tuple[Tuple[int, ...], Optional[int]]] = []
        for s in range(self.signature_count):
            src0 = int(self.sig_srcs[s, 0])
            src1 = int(self.sig_srcs[s, 1])
            sources: Tuple[int, ...] = ()
            if src0 >= 0:
                sources = (src0,) if src1 < 0 else (src0, src1)
            dest = int(self.sig_dest[s])
            out.append((sources, None if dest < 0 else dest))
        return out


def program_digest(program: Program, max_instructions: int,
                   num_registers: int) -> str:
    """Content hash identifying one tape: image + entry + caps."""
    h = hashlib.sha256()
    h.update(f"{program.entry}:{max_instructions}:{num_registers}".encode())
    for addr in sorted(program.image):
        h.update(addr.to_bytes(4, "little", signed=False))
        h.update((program.image[addr] & 0xFF).to_bytes(1, "little"))
    return h.hexdigest()


class TraceCache:
    """On-disk op-tape store: one ``.npz`` per program digest.

    Layout: ``<root>/<NAMESPACE>/<digest>.npz``.  The namespace carries
    the tape-format version - bump it when the array layout or lowering
    semantics change; that is the invalidation mechanism (mirroring
    :class:`repro.experiments.parallel.ResultCache`).  The digest itself
    already encodes every input that shapes the tape (program image,
    entry point, instruction cap, register count), and is re-verified
    against the stored copy on load.  Corrupt or mismatched entries are
    treated as misses and overwritten.

    ``max_bytes`` bounds the store with least-recently-used eviction
    (hits refresh entry mtime); ``None`` follows
    ``REPRO_CACHE_MAX_BYTES`` and ``0`` means unlimited.  The budget
    covers this cache's own ``.npz`` tapes - JSON results sharing the
    root are governed by
    :class:`repro.experiments.parallel.ResultCache`'s identical limit.
    """

    NAMESPACE = "cpu-tape-v1"

    def __init__(self, root: Union[str, Path],
                 max_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_env(cls) -> Optional["TraceCache"]:
        """The default cache, or ``None`` when ``REPRO_CACHE_DIR`` is unset."""
        root = os.environ.get(CACHE_ENV_VAR)
        return cls(root) if root else None

    def _path(self, digest: str) -> Path:
        return self.root / self.NAMESPACE / f"{digest}.npz"

    def get(self, digest: str) -> Optional[OpTape]:
        path = self._path(digest)
        try:
            with np.load(path, allow_pickle=False) as data:
                if str(data["digest"]) != digest:
                    raise ValueError("digest mismatch")
                meta = data["meta"]
                halt = str(data["halt"])
                tape = OpTape(
                    sig=np.array(data["sig"], dtype=np.int32),
                    flags=np.array(data["flags"], dtype=np.uint8),
                    mem_addr=np.array(data["mem_addr"], dtype=np.int64),
                    sig_srcs=np.array(data["sig_srcs"],
                                      dtype=np.int16).reshape(-1, 2),
                    sig_dest=np.array(data["sig_dest"], dtype=np.int16),
                    max_instructions=int(meta[0]),
                    num_registers=int(meta[1]),
                    exit_code=int(meta[3]) if int(meta[2]) else None,
                    halt_reason=halt or None,
                )
        except (OSError, ValueError, KeyError, IndexError, EOFError,
                zipfile.BadZipFile):
            # a torn or truncated publish reads as a miss, never a crash
            self.misses += 1
            return None
        tape.fingerprint = digest
        self.hits += 1
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return tape

    def put(self, digest: str, tape: OpTape) -> None:
        tape.fingerprint = digest
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        has_exit = tape.exit_code is not None
        meta = np.asarray([tape.max_instructions, tape.num_registers,
                           1 if has_exit else 0,
                           tape.exit_code if has_exit else 0],
                          dtype=np.int64)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle,
                         digest=np.asarray(digest),
                         sig=tape.sig,
                         flags=tape.flags,
                         mem_addr=tape.mem_addr,
                         sig_srcs=tape.sig_srcs,
                         sig_dest=tape.sig_dest,
                         meta=meta,
                         halt=np.asarray(tape.halt_reason or ""))
            os.replace(tmp_name, path)  # atomic publish
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        limit = self.max_bytes if self.max_bytes is not None \
            else cache_max_bytes()
        if limit > 0:
            self.evictions += enforce_cache_limit(
                self.root / self.NAMESPACE, ".npz", limit)

    def size_bytes(self) -> int:
        """Total size of the stored tapes (the eviction budget)."""
        namespace = self.root / self.NAMESPACE
        return sum(path.stat().st_size
                   for path in namespace.rglob("*.npz") if path.is_file())


TraceCacheLike = Optional[Union[TraceCache, str, Path]]


def _coerce_cache(cache: TraceCacheLike) -> Optional[TraceCache]:
    if cache is None:
        return TraceCache.from_env()
    if isinstance(cache, TraceCache):
        return cache
    return TraceCache(cache)


def tape_for_program(program: Program,
                     max_instructions: int = 2_000_000,
                     num_registers: int = 32,
                     cache: TraceCacheLike = None,
                     workload_name: str = "program",
                     strict: bool = True) -> OpTape:
    """One tape per ``(program, instruction cap)``, cached on disk.

    ``cache`` accepts a :class:`TraceCache`, a directory path, or ``None``
    (use ``REPRO_CACHE_DIR`` when set, else compute every time).  With
    ``strict`` (the default) a stream truncated by the instruction cap
    raises :class:`~repro.errors.ExecutionError`, matching
    :meth:`repro.cpu.CpuSimulator.run_program`; the capped tape is still
    cached first, so a rerun fails fast without redoing the functional
    pass.  ``strict=False`` returns the truncated tape (the sensitivity
    studies replay fixed-length prefixes).
    """
    store = _coerce_cache(cache)
    digest = program_digest(program, max_instructions, num_registers)
    tape = store.get(digest) if store is not None else None
    if tape is None:
        tape = OpTape.from_program(program, max_instructions=max_instructions,
                                   num_registers=num_registers)
        tape.fingerprint = digest
        if store is not None:
            store.put(digest, tape)
    if strict and tape.hit_instruction_limit:
        raise ExecutionError(
            f"{workload_name}: hit the {max_instructions}-instruction limit")
    return tape
