"""The gate-level pipeline timing engine.

Consumes the functional executor's retirement stream and computes, per
instruction, when it issues to the register file, when its operands are
at the ALU, when execution completes and when write-back lands - all in
28 ps gate cycles, under the constraints of:

* the static RF port schedule of the selected design (issue gaps),
* read-after-write dependencies through the 28-stage execute block
  (with or without the baseline's internal RF forwarding),
* loopback occupancy: in HiPerRF designs a just-read register stays
  unreadable until its loopback write lands (the Section IV-D hazard),
* taken-branch front-end redirects and the 77 K memory latency.

The engine attributes every stalled cycle to one cause so Figure 14's
CPI overheads can be decomposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.cpu.config import CoreConfig
from repro.cpu.rf_model import RFTimingModel
from repro.errors import ExecutionError
from repro.isa.executor import ExecutedOp


@dataclass
class StallBreakdown:
    """Gate cycles lost to each stall cause, plus useful-issue cycles."""

    port: int = 0
    raw: int = 0
    loopback: int = 0
    branch: int = 0

    def total(self) -> int:
        return self.port + self.raw + self.loopback + self.branch

    def as_dict(self) -> Dict[str, int]:
        return {"port": self.port, "raw": self.raw,
                "loopback": self.loopback, "branch": self.branch}


@dataclass
class PipelineResult:
    """Outcome of a timing run."""

    design: str
    instructions: int
    total_cycles: int
    stalls: StallBreakdown
    branches_taken: int = 0
    loads: int = 0

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.total_cycles / self.instructions


class GateLevelPipeline:
    """In-order gate-pipelined timing model for one RF design.

    ``memory_model`` (optional, from :mod:`repro.mem`) replaces the flat
    77 K ``memory_latency`` with a per-access latency - e.g. a
    direct-mapped cryo buffer; ``None`` keeps the paper's flat model.
    """

    def __init__(self, rf: RFTimingModel,
                 config: Optional[CoreConfig] = None,
                 memory_model=None) -> None:
        self.rf = rf
        self.config = config or CoreConfig()
        self.memory_model = memory_model
        # Per-register availability (gate cycle at which a read may start)
        # and whether the loopback (rather than a write-back) set it -
        # fixed-size arrays indexed by architectural register number.
        self._ready_at: List[int] = [0] * self.config.num_registers
        self._ready_loopback: List[bool] = [False] * self.config.num_registers
        self._next_issue_ok = 0
        self._front_end_ready = 0
        self._stalls = StallBreakdown()
        self._instructions = 0
        self._last_completion = 0
        self._branches_taken = 0
        self._loads = 0

    # -- per-instruction timing -------------------------------------------

    def _check_register(self, index: int) -> int:
        """Validate one architectural register index against the config."""
        if not 0 <= index < self.config.num_registers:
            raise ExecutionError(
                f"register index {index} out of range for a "
                f"{self.config.num_registers}-register file")
        return index

    def feed(self, op: ExecutedOp) -> int:
        """Account one retired instruction; returns its issue cycle."""
        config = self.config
        rf = self.rf
        sources = tuple(dict.fromkeys(op.sources))  # RAR dedup, order kept
        for src in sources:
            self._check_register(src)
        if op.destination is not None:
            self._check_register(op.destination)
        slots = rf.read_slots_gates(sources)
        issue_gap = rf.issue_gap_gates(sources, op.destination)

        # Constraint 1: the RF ports free up per the static schedule.
        t_port = self._next_issue_ok
        # Constraint 2: a taken branch re-steers the front end.
        t_front = self._front_end_ready
        # Constraint 3: every source must be readable when its read fires.
        # The paper's model charges dependencies through the readout delay
        # alone (Section VI-B); the static schedule's intra-instruction
        # slot offsets are port-occupancy bookkeeping, so reads are
        # anchored at issue here.
        t_dep = 0
        dep_loopback = False
        for src in sources:
            ready = self._ready_at[src]
            if ready > t_dep:
                t_dep = ready
                dep_loopback = self._ready_loopback[src]

        t_issue = max(t_port, t_front, t_dep)

        # Attribute the visible stall beyond the port-schedule baseline.
        if t_issue > t_port:
            lost = t_issue - t_port
            if t_dep >= t_front:
                if dep_loopback:
                    self._stalls.loopback += lost
                else:
                    self._stalls.raw += lost
            else:
                self._stalls.branch += lost
        self._stalls.port += issue_gap

        # Reads happen; loopback keeps each read register busy until the
        # recycled value has landed back in its cells (Section IV-D).
        if rf.has_loopback:
            busy_until = t_issue + rf.loopback_busy_gates()
            for src in sources:
                if busy_until > self._ready_at[src]:
                    self._ready_at[src] = busy_until
                    self._ready_loopback[src] = True

        # Operand arrival -> execute -> write-back.  A same-bank source
        # pair serialises its second read two RF cycles later (Figure 12);
        # that offset survives into the operand path.
        if sources:
            extra = max(slots) - min(slots) if len(slots) > 1 else 0
            operands_done = t_issue + extra + rf.readout_cycles
        else:
            operands_done = t_issue + rf.rf_cycle_gates
        exec_done = operands_done + config.execute_depth
        if op.is_load:
            if self.memory_model is not None:
                exec_done += self.memory_model.access(op.mem_address,
                                                      is_store=False)
            else:
                exec_done += config.memory_latency
            self._loads += 1
        elif op.is_store and self.memory_model is not None:
            # Write-through fill; stores do not stall the in-order flow.
            self.memory_model.access(op.mem_address, is_store=True)
        writeback = exec_done + config.writeback_depth

        if op.destination is not None:
            visible = writeback + rf.write_visible_extra_gates()
            self._ready_at[op.destination] = visible
            self._ready_loopback[op.destination] = False

        if op.branch_taken or (op.instr.is_branch
                               and not config.fall_through_speculation):
            self._front_end_ready = exec_done + config.branch_redirect_penalty
            self._branches_taken += 1

        self._next_issue_ok = t_issue + issue_gap
        self._instructions += 1
        self._last_completion = max(self._last_completion, writeback)
        return t_issue

    def run(self, ops: Iterable[ExecutedOp]) -> PipelineResult:
        """Feed a whole retirement stream and summarise."""
        for op in ops:
            self.feed(op)
        return self.result()

    def result(self) -> PipelineResult:
        return PipelineResult(
            design=self.rf.name,
            instructions=self._instructions,
            total_cycles=self._last_completion,
            stalls=self._stalls,
            branches_taken=self._branches_taken,
            loads=self._loads,
        )
