"""CLI: run an RV32I assembly file on the gate-level CPU simulator.

Usage::

    python -m repro.cpu program.s                      # all designs
    python -m repro.cpu program.s --design hiperrf
    python -m repro.cpu --workload mcf --design hiperrf --waterfall
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cpu.rf_model import RF_DESIGN_NAMES
from repro.cpu.simulator import simulate_program
from repro.cpu.timeline import record_timeline, render_waterfall
from repro.isa import Executor, assemble
from repro.workloads import get_workload, workload_names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cpu",
        description="Run RV32I code on the SFQ gate-level CPU simulator.")
    parser.add_argument("source", nargs="?", type=Path,
                        help="RV32I assembly file (.s)")
    parser.add_argument("--workload", choices=workload_names(),
                        help="run a bundled benchmark instead of a file")
    parser.add_argument("--design", choices=RF_DESIGN_NAMES,
                        help="single register file design (default: all)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload problem-size scale")
    parser.add_argument("--max-instructions", type=int, default=2_000_000)
    parser.add_argument("--tier", choices=("compiled", "reference"),
                        help="replay tier (default: REPRO_CPU_COMPILED, "
                             "compiled when unset)")
    parser.add_argument("--waterfall", action="store_true",
                        help="print the first instructions' pipeline "
                             "waterfall (needs --design)")
    args = parser.parse_args(argv)

    if bool(args.source) == bool(args.workload):
        parser.error("provide exactly one of: a source file or --workload")
    if args.waterfall and not args.design:
        parser.error("--waterfall needs --design")

    if args.workload:
        source = get_workload(args.workload).build(args.scale)
        name = args.workload
    else:
        source = args.source.read_text()
        name = args.source.name
    program = assemble(source)

    designs = [args.design] if args.design else list(RF_DESIGN_NAMES)
    reports = simulate_program(program, designs, name,
                               max_instructions=args.max_instructions,
                               tier=args.tier)

    print(f"{name}: {reports[designs[0]].instructions} instructions, "
          f"exit code {reports[designs[0]].exit_code}")
    baseline_cpi = reports.get("ndro_rf", reports[designs[0]]).cpi
    for design in designs:
        report = reports[design]
        overhead = 100.0 * (report.cpi / baseline_cpi - 1.0)
        print(f"  {design:26s} CPI={report.cpi:7.2f} ({overhead:+.1f}%)  "
              f"stalls={report.stall_cycles}")

    if args.waterfall:
        executor = Executor(program)
        records = record_timeline(
            executor.trace(max_instructions=args.max_instructions),
            design=args.design)
        print()
        print(render_waterfall(records[:32]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
