"""Glue: assemble, functionally execute, and time a program on a design."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.cpu.batched import lanes_for_designs, replay_lanes
from repro.cpu.compiled import compiled_enabled, replay
from repro.cpu.config import CoreConfig
from repro.cpu.optape import OpTape, TraceCacheLike, tape_for_program
from repro.cpu.pipeline import GateLevelPipeline
from repro.cpu.rf_model import RF_DESIGN_NAMES, RFTimingModel
from repro.cpu.stats import CpiReport
from repro.errors import ExecutionError
from repro.isa.assembler import Program, assemble
from repro.isa.executor import ExecutedOp, Executor, HaltReason


class CpuSimulator:
    """Run one program on one register file design.

    The functional executor produces the retirement stream once; the
    gate-level pipeline then replays it under the selected design's RF
    timing.  (The paper's simulator does both in one pass; splitting them
    is equivalent for an in-order core because the instruction stream
    does not depend on timing.)

    ``run_program``/``run_trace`` always use the reference pipeline (the
    equivalence oracle); ``run_tape`` and :func:`simulate_program` go
    through the active replay tier (compiled unless ``REPRO_CPU_COMPILED``
    turns it off).
    """

    def __init__(self, design: str = "ndro_rf",
                 config: Optional[CoreConfig] = None) -> None:
        self.config = config or CoreConfig()
        self.rf = RFTimingModel.for_design(design, self.config)
        self.design = design

    def run_program(self, program: Program, workload_name: str = "program",
                    max_instructions: int = 2_000_000,
                    expect_exit_code: Optional[int] = None) -> CpiReport:
        executor = Executor(program)
        pipeline = GateLevelPipeline(self.rf, self.config)
        for op in executor.trace(max_instructions=max_instructions):
            pipeline.feed(op)
        if executor.halt_reason is HaltReason.INSTRUCTION_LIMIT:
            raise ExecutionError(
                f"{workload_name}: hit the {max_instructions}-instruction "
                "limit without exiting")
        if expect_exit_code is not None \
                and executor.exit_code != expect_exit_code:
            raise ExecutionError(
                f"{workload_name}: exit code {executor.exit_code} != "
                f"expected {expect_exit_code} (functional bug)")
        return CpiReport.from_result(workload_name, pipeline.result(),
                                     exit_code=executor.exit_code)

    def run_source(self, source: str, workload_name: str = "program",
                   **kwargs) -> CpiReport:
        return self.run_program(assemble(source), workload_name, **kwargs)

    def run_trace(self, ops: Iterable[ExecutedOp],
                  workload_name: str = "trace",
                  max_instructions: int = 2_000_000) -> CpiReport:
        """Time a pre-recorded retirement stream.

        Enforces the same instruction cap ``run_program`` applies to a
        live functional pass: a trace longer than ``max_instructions``
        raises :class:`~repro.errors.ExecutionError`, so pre-recorded
        replays cannot silently diverge from the figure sweeps' contract.
        """
        pipeline = GateLevelPipeline(self.rf, self.config)
        fed = 0
        for op in ops:
            if fed >= max_instructions:
                raise ExecutionError(
                    f"{workload_name}: trace exceeds the "
                    f"{max_instructions}-instruction limit")
            pipeline.feed(op)
            fed += 1
        return CpiReport.from_result(workload_name, pipeline.result())

    def run_tape(self, tape: OpTape, workload_name: str = "tape",
                 tier: Optional[str] = None) -> CpiReport:
        """Replay a lowered op tape on the active tier."""
        result = replay(tape, self.rf, self.config, tier=tier)
        return CpiReport.from_result(workload_name, result,
                                     exit_code=tape.exit_code)


def simulate_program(program: Program, designs: Sequence[str] = RF_DESIGN_NAMES,
                     workload_name: str = "program",
                     config: Optional[CoreConfig] = None,
                     max_instructions: int = 2_000_000,
                     trace_cache: TraceCacheLike = None,
                     tier: Optional[str] = None) -> Dict[str, CpiReport]:
    """Run one program across several designs, reusing one op tape.

    The functional pass is lowered once into an
    :class:`~repro.cpu.optape.OpTape`; the whole design set then replays
    as **one lane batch** through :func:`repro.cpu.batched.replay_lanes`
    (``REPRO_CPU_LANES`` selects the lane tier / cap) - only the
    per-design timing tables change between lanes.  ``trace_cache``
    (a :class:`~repro.cpu.optape.TraceCache`, a directory path, or
    ``None`` for ``REPRO_CACHE_DIR``) persists the tape, so a rerun - or
    the same sweep over additional designs - skips the functional pass
    entirely.  ``tier`` forces a tier: ``"batched"`` (one lane batch),
    ``"compiled"``/``"reference"`` (scalar per-design replay); ``None``
    follows ``REPRO_CPU_LANES`` and ``REPRO_CPU_COMPILED``.
    """
    config = config or CoreConfig()
    tape = tape_for_program(program, max_instructions=max_instructions,
                            num_registers=config.num_registers,
                            cache=trace_cache, workload_name=workload_name)
    reports: Dict[str, CpiReport] = {}
    if tier == "batched" or (tier is None and compiled_enabled()):
        lanes = lanes_for_designs(designs, config)
        for design, result in zip(designs,
                                  replay_lanes(tape, lanes, tier=tier)):
            reports[design] = CpiReport.from_result(
                workload_name, result, exit_code=tape.exit_code)
        return reports
    for design in designs:
        rf = RFTimingModel.for_design(design, config)
        result = replay(tape, rf, config, tier=tier)
        reports[design] = CpiReport.from_result(workload_name, result,
                                                exit_code=tape.exit_code)
    return reports
