"""Glue: assemble, functionally execute, and time a program on a design."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.cpu.config import CoreConfig
from repro.cpu.pipeline import GateLevelPipeline
from repro.cpu.rf_model import RF_DESIGN_NAMES, RFTimingModel
from repro.cpu.stats import CpiReport
from repro.errors import ExecutionError
from repro.isa.assembler import Program, assemble
from repro.isa.executor import ExecutedOp, Executor, HaltReason


class CpuSimulator:
    """Run one program on one register file design.

    The functional executor produces the retirement stream once; the
    gate-level pipeline then replays it under the selected design's RF
    timing.  (The paper's simulator does both in one pass; splitting them
    is equivalent for an in-order core because the instruction stream
    does not depend on timing.)
    """

    def __init__(self, design: str = "ndro_rf",
                 config: Optional[CoreConfig] = None) -> None:
        self.config = config or CoreConfig()
        self.rf = RFTimingModel.for_design(design, self.config)
        self.design = design

    def run_program(self, program: Program, workload_name: str = "program",
                    max_instructions: int = 2_000_000,
                    expect_exit_code: Optional[int] = None) -> CpiReport:
        executor = Executor(program)
        pipeline = GateLevelPipeline(self.rf, self.config)
        for op in executor.trace(max_instructions=max_instructions):
            pipeline.feed(op)
        if executor.halt_reason is HaltReason.INSTRUCTION_LIMIT:
            raise ExecutionError(
                f"{workload_name}: hit the {max_instructions}-instruction "
                "limit without exiting")
        if expect_exit_code is not None \
                and executor.exit_code != expect_exit_code:
            raise ExecutionError(
                f"{workload_name}: exit code {executor.exit_code} != "
                f"expected {expect_exit_code} (functional bug)")
        return CpiReport.from_result(workload_name, pipeline.result(),
                                     exit_code=executor.exit_code)

    def run_source(self, source: str, workload_name: str = "program",
                   **kwargs) -> CpiReport:
        return self.run_program(assemble(source), workload_name, **kwargs)

    def run_trace(self, ops: Iterable[ExecutedOp],
                  workload_name: str = "trace") -> CpiReport:
        """Time a pre-recorded retirement stream (used by Figure 14 sweeps)."""
        pipeline = GateLevelPipeline(self.rf, self.config)
        for op in ops:
            pipeline.feed(op)
        return CpiReport.from_result(workload_name, pipeline.result())


def simulate_program(program: Program, designs: Sequence[str] = RF_DESIGN_NAMES,
                     workload_name: str = "program",
                     config: Optional[CoreConfig] = None,
                     max_instructions: int = 2_000_000) -> Dict[str, CpiReport]:
    """Run one program across several designs, reusing one functional pass."""
    executor = Executor(program)
    ops = list(executor.trace(max_instructions=max_instructions))
    if executor.halt_reason is HaltReason.INSTRUCTION_LIMIT:
        raise ExecutionError(
            f"{workload_name}: hit the {max_instructions}-instruction limit")
    reports: Dict[str, CpiReport] = {}
    for design in designs:
        simulator = CpuSimulator(design, config)
        report = simulator.run_trace(ops, workload_name)
        reports[design] = CpiReport(
            workload=report.workload,
            design=report.design,
            instructions=report.instructions,
            total_cycles=report.total_cycles,
            cpi=report.cpi,
            stall_cycles=report.stall_cycles,
            exit_code=executor.exit_code,
        )
    return reports
