"""Gate-level SFQ synthesis model (the qPalace stand-in).

The paper derives two core numbers from qPalace synthesis of the Sodor
core: the 28 ps worst-case gate cycle and the 28-stage gate-level depth
of the execute block.  This package reproduces that style of analysis:

* :mod:`repro.synth.netlist` - a combinational gate-network IR with SFQ
  costs per gate (JJ count, clocked or not),
* :mod:`repro.synth.pipeline` - SFQ-specific synthesis passes:
  levelisation, splitter insertion at every fan-out point (SFQ pulses
  cannot fan out), and full path balancing with DRO buffers (every gate
  is clocked, so all of a gate's inputs must arrive in the same wave),
* :mod:`repro.synth.blocks` - generators for the datapath blocks the
  Sodor execute stage needs: Kogge-Stone adder, logic unit, barrel
  shifter, comparator, and the composed 32-bit ALU.

The headline reproduction: the synthesised 32-bit ALU's balanced
pipeline depth lands at the paper's ~28 gate stages, and its JJ budget
is consistent with the full-chip component split in :mod:`repro.chip`.
"""

from repro.synth.netlist import Gate, GateKind, GateNetwork
from repro.synth.pipeline import PipelineReport, synthesize
from repro.synth.blocks import (
    build_alu,
    build_execute_stage,
    build_comparator,
    build_kogge_stone_adder,
    build_logic_unit,
    build_shifter,
)

__all__ = [
    "Gate",
    "GateKind",
    "GateNetwork",
    "PipelineReport",
    "build_alu",
    "build_execute_stage",
    "build_comparator",
    "build_kogge_stone_adder",
    "build_logic_unit",
    "build_shifter",
    "synthesize",
]
