"""Datapath block generators: the Sodor execute stage's building blocks.

Each generator returns a :class:`GateNetwork`; :func:`repro.synth.pipeline.
synthesize` then measures its SFQ pipeline depth and JJ budget.  The
composition mirrors the RV32I execute stage: operand-select muxes, a
Kogge-Stone adder/subtractor, a logic unit, a barrel shifter, a signed/
unsigned comparator, and the result mux - whose balanced depth is the
paper's "execution stage ... 28 stages deep".
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError
from repro.rf.geometry import log2_int
from repro.synth.netlist import GateNetwork


def _check_width(width: int) -> None:
    if width < 2 or width & (width - 1):
        raise ConfigError(f"width must be a power of two >= 2, got {width}")


def build_kogge_stone_adder(width: int = 32,
                            with_subtract: bool = False) -> GateNetwork:
    """Sparse-tree (Kogge-Stone) adder, optionally with a subtract mode.

    The paper cites sparse-tree RSFQ ALUs (Dorojevets et al.) as the
    state of the art; parallel-prefix addition keeps the depth at
    ``2*log2(w)`` prefix levels instead of a ripple carry's ``w``.
    """
    _check_width(width)
    network = GateNetwork(f"ks_adder{width}{'_sub' if with_subtract else ''}")
    a = network.add_inputs(width, "a")
    b_raw = network.add_inputs(width, "b")
    if with_subtract:
        sub = network.add_input("sub")
        # b xor sub implements conditional inversion; carry-in = sub.
        b = [network.add_xor(bit, sub, f"binv{i}")
             for i, bit in enumerate(b_raw)]
        carry_in: Optional[int] = sub
    else:
        b = b_raw
        carry_in = None

    # Level 0: propagate/generate per bit.
    propagate = [network.add_xor(a[i], b[i], f"p{i}") for i in range(width)]
    generate = [network.add_and(a[i], b[i], f"g{i}") for i in range(width)]
    if carry_in is not None:
        # Fold the carry-in into bit 0's generate: g0' = g0 | (p0 & cin).
        g0_extra = network.add_and(propagate[0], carry_in, "g0cin")
        generate[0] = network.add_or(generate[0], g0_extra, "g0p")

    # Prefix levels: span doubles each level.
    span = 1
    prop = list(propagate)
    gen = list(generate)
    while span < width:
        new_prop = list(prop)
        new_gen = list(gen)
        for i in range(span, width):
            g_and = network.add_and(prop[i], gen[i - span], f"s{span}ga{i}")
            new_gen[i] = network.add_or(gen[i], g_and, f"s{span}go{i}")
            new_prop[i] = network.add_and(prop[i], prop[i - span],
                                          f"s{span}pp{i}")
        prop, gen = new_prop, new_gen
        span *= 2

    # Sum bits: s_i = p_i xor carry_{i-1}; carry_{i-1} is gen[i-1].
    sums = [propagate[0] if carry_in is None
            else network.add_xor(propagate[0], carry_in, "s0")]
    for i in range(1, width):
        sums.append(network.add_xor(propagate[i], gen[i - 1], f"s{i}"))
    for i, bit in enumerate(sums):
        network.add_output(bit, f"sum{i}")
    network.add_output(gen[width - 1], "carry_out")
    return network


def build_logic_unit(width: int = 32) -> GateNetwork:
    """Per-bit AND/OR/XOR with a 2-bit operation select."""
    _check_width(width)
    network = GateNetwork(f"logic{width}")
    a = network.add_inputs(width, "a")
    b = network.add_inputs(width, "b")
    sel0 = network.add_input("sel0")
    sel1 = network.add_input("sel1")
    for i in range(width):
        and_bit = network.add_and(a[i], b[i], f"and{i}")
        or_bit = network.add_or(a[i], b[i], f"or{i}")
        xor_bit = network.add_xor(a[i], b[i], f"xor{i}")
        low = network.add_mux2(sel0, and_bit, or_bit, f"m0_{i}")
        out = network.add_mux2(sel1, low, xor_bit, f"m1_{i}")
        network.add_output(out, f"r{i}")
    return network


def build_shifter(width: int = 32) -> GateNetwork:
    """Logarithmic barrel shifter (right shift; mirrors cover left)."""
    _check_width(width)
    network = GateNetwork(f"shifter{width}")
    data = network.add_inputs(width, "d")
    stages = log2_int(width)
    amount = network.add_inputs(stages, "sh")
    zero = network.add_input("zero")  # fill bit (0 or sign)
    current = list(data)
    for stage in range(stages):
        shift = 1 << stage
        new = []
        for i in range(width):
            shifted = current[i + shift] if i + shift < width else zero
            new.append(network.add_mux2(amount[stage], current[i], shifted,
                                        f"st{stage}b{i}"))
        current = new
    for i, bit in enumerate(current):
        network.add_output(bit, f"r{i}")
    return network


def build_comparator(width: int = 32) -> GateNetwork:
    """Signed/unsigned less-than via a subtract and sign logic."""
    _check_width(width)
    network = GateNetwork(f"cmp{width}")
    a = network.add_inputs(width, "a")
    b = network.add_inputs(width, "b")
    unsigned = network.add_input("unsigned")
    # a - b: invert b, carry-in 1 folded into bit0 generate.
    b_inv = [network.add_not(bit, f"binv{i}") for i, bit in enumerate(b)]
    propagate = [network.add_xor(a[i], b_inv[i], f"p{i}")
                 for i in range(width)]
    generate = [network.add_and(a[i], b_inv[i], f"g{i}")
                for i in range(width)]
    generate[0] = network.add_or(generate[0], propagate[0], "g0cin")
    span = 1
    prop = list(propagate)
    gen = list(generate)
    while span < width:
        new_prop = list(prop)
        new_gen = list(gen)
        for i in range(span, width):
            g_and = network.add_and(prop[i], gen[i - span], f"s{span}ga{i}")
            new_gen[i] = network.add_or(gen[i], g_and, f"s{span}go{i}")
            new_prop[i] = network.add_and(prop[i], prop[i - span],
                                          f"s{span}pp{i}")
        prop, gen = new_prop, new_gen
        span *= 2
    carry_out = gen[width - 1]
    sign_a = a[width - 1]
    sign_b = b[width - 1]
    # unsigned: lt = not carry_out; signed: lt = (sign_a ^ sign_b) ?
    # sign_a : not carry_out.
    no_borrow = network.add_not(carry_out, "nb")
    signs_differ = network.add_xor(sign_a, sign_b, "sd")
    signed_lt = network.add_mux2(signs_differ, no_borrow, sign_a, "slt")
    result = network.add_mux2(unsigned, signed_lt, no_borrow, "sel")
    network.add_output(result, "lt")
    return network


def _merge_networks(target: GateNetwork, source: GateNetwork,
                    input_map: dict) -> List[int]:
    """Inline ``source`` into ``target``, mapping its primary inputs.

    ``input_map`` maps source input gate ids to target gate ids.  Returns
    the target ids corresponding to the source's primary outputs.
    """
    from repro.synth.netlist import GateKind

    mapping = dict(input_map)
    outputs = []
    for gate in source.gates:
        if gate.kind is GateKind.INPUT:
            if gate.gate_id not in mapping:
                raise ConfigError(
                    f"unmapped input {gate.name!r} while inlining "
                    f"{source.name} into {target.name}")
            continue
        if gate.kind is GateKind.OUTPUT:
            outputs.append(mapping[gate.inputs[0]])
            continue
        new_inputs = tuple(mapping[s] for s in gate.inputs)
        mapping[gate.gate_id] = target._add(gate.kind, new_inputs, gate.name)
    return outputs


def build_alu(width: int = 32) -> GateNetwork:
    """The composed execute-stage datapath.

    Operand-select muxes (bypass/immediate), adder-subtractor, logic
    unit, barrel shifter and comparator in parallel, followed by the
    two-level result mux - the execute block whose gate-level depth the
    paper reports as 28 stages.
    """
    _check_width(width)
    network = GateNetwork(f"alu{width}")
    rs1 = network.add_inputs(width, "rs1")
    rs2 = network.add_inputs(width, "rs2")
    imm = network.add_inputs(width, "imm")
    use_imm = network.add_input("use_imm")
    sub_mode = network.add_input("sub")
    logic_sel0 = network.add_input("lsel0")
    logic_sel1 = network.add_input("lsel1")
    shift_fill = network.add_input("sfill")
    cmp_unsigned = network.add_input("cmpu")
    result_sel0 = network.add_input("rsel0")
    result_sel1 = network.add_input("rsel1")

    # Operand B select: rs2 or immediate.
    op_b = [network.add_mux2(use_imm, rs2[i], imm[i], f"opb{i}")
            for i in range(width)]

    adder = build_kogge_stone_adder(width, with_subtract=True)
    adder_inputs = {}
    for i in range(width):
        adder_inputs[adder.primary_inputs[i]] = rs1[i]
        adder_inputs[adder.primary_inputs[width + i]] = op_b[i]
    adder_inputs[adder.primary_inputs[2 * width]] = sub_mode
    adder_out = _merge_networks(network, adder, adder_inputs)[:width]

    logic = build_logic_unit(width)
    logic_inputs = {}
    for i in range(width):
        logic_inputs[logic.primary_inputs[i]] = rs1[i]
        logic_inputs[logic.primary_inputs[width + i]] = op_b[i]
    logic_inputs[logic.primary_inputs[2 * width]] = logic_sel0
    logic_inputs[logic.primary_inputs[2 * width + 1]] = logic_sel1
    logic_out = _merge_networks(network, logic, logic_inputs)

    shifter = build_shifter(width)
    stages = log2_int(width)
    shifter_inputs = {}
    for i in range(width):
        shifter_inputs[shifter.primary_inputs[i]] = rs1[i]
    for k in range(stages):
        shifter_inputs[shifter.primary_inputs[width + k]] = op_b[k]
    shifter_inputs[shifter.primary_inputs[width + stages]] = shift_fill
    shift_out = _merge_networks(network, shifter, shifter_inputs)

    comparator = build_comparator(width)
    cmp_inputs = {}
    for i in range(width):
        cmp_inputs[comparator.primary_inputs[i]] = rs1[i]
        cmp_inputs[comparator.primary_inputs[width + i]] = op_b[i]
    cmp_inputs[comparator.primary_inputs[2 * width]] = cmp_unsigned
    cmp_out = _merge_networks(network, comparator, cmp_inputs)[0]

    # Result mux: {add, logic, shift, slt} by (rsel1, rsel0).
    zero = network.add_and(result_sel0,
                           network.add_not(result_sel0, "z0n"), "zero")
    for i in range(width):
        slt_bit = cmp_out if i == 0 else zero
        low = network.add_mux2(result_sel0, adder_out[i], logic_out[i],
                               f"rm0_{i}")
        high = network.add_mux2(result_sel0, shift_out[i], slt_bit,
                                f"rm1_{i}")
        out = network.add_mux2(result_sel1, low, high, f"rm2_{i}")
        network.add_output(out, f"result{i}")
    return network


def build_execute_stage(width: int = 32) -> GateNetwork:
    """The full execute stage: write-back bypass muxes feeding the ALU.

    The Sodor execute stage is more than the bare ALU - each operand
    passes a bypass mux (register file value vs in-flight write-back
    value) before the datapath.  The synthesised, path-balanced depth of
    this block is the paper's headline "execution stage of the RISC-V
    core is 28 stages deep".
    """
    _check_width(width)
    network = GateNetwork(f"execute{width}")
    rf_rs1 = network.add_inputs(width, "rf_rs1")
    rf_rs2 = network.add_inputs(width, "rf_rs2")
    wb_bus = network.add_inputs(width, "wb")
    bypass1 = network.add_input("byp1")
    bypass2 = network.add_input("byp2")
    imm = network.add_inputs(width, "imm")
    use_imm = network.add_input("use_imm")
    sub_mode = network.add_input("sub")
    logic_sel0 = network.add_input("lsel0")
    logic_sel1 = network.add_input("lsel1")
    shift_fill = network.add_input("sfill")
    cmp_unsigned = network.add_input("cmpu")
    result_sel0 = network.add_input("rsel0")
    result_sel1 = network.add_input("rsel1")

    rs1 = [network.add_mux2(bypass1, rf_rs1[i], wb_bus[i], f"byp1_{i}")
           for i in range(width)]
    rs2 = [network.add_mux2(bypass2, rf_rs2[i], wb_bus[i], f"byp2_{i}")
           for i in range(width)]

    alu = build_alu(width)
    alu_inputs = {}
    cursor = 0
    for i in range(width):
        alu_inputs[alu.primary_inputs[cursor]] = rs1[i]
        cursor += 1
    for i in range(width):
        alu_inputs[alu.primary_inputs[cursor]] = rs2[i]
        cursor += 1
    for i in range(width):
        alu_inputs[alu.primary_inputs[cursor]] = imm[i]
        cursor += 1
    for control in (use_imm, sub_mode, logic_sel0, logic_sel1, shift_fill,
                    cmp_unsigned, result_sel0, result_sel1):
        alu_inputs[alu.primary_inputs[cursor]] = control
        cursor += 1
    alu_out = _merge_networks(network, alu, alu_inputs)
    for i, bit in enumerate(alu_out):
        network.add_output(bit, f"result{i}")
    return network
