"""Combinational gate-network IR with SFQ gate costs."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import NetlistError


class GateKind(enum.Enum):
    """SFQ logic gate types with their JJ costs.

    JJ counts follow the paper (AND=12, NOT=10) and standard RSFQlib
    values for the rest; every logic gate is clocked in RSFQ, which is
    what forces full path balancing downstream.
    """

    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    BUF = "buf"        # DRO used as a synchronisation buffer
    INPUT = "input"
    OUTPUT = "output"


#: JJ cost per gate kind.
GATE_JJ: Dict[GateKind, int] = {
    GateKind.AND: 12,
    GateKind.OR: 8,
    GateKind.XOR: 10,
    GateKind.NOT: 10,
    GateKind.BUF: 4,      # DRO buffer cell
    GateKind.INPUT: 0,
    GateKind.OUTPUT: 0,
}

#: Which kinds are clocked logic stages (occupy one pipeline level).
CLOCKED_KINDS = {GateKind.AND, GateKind.OR, GateKind.XOR, GateKind.NOT,
                 GateKind.BUF}


@dataclass
class Gate:
    """One gate instance: a kind plus its input gate ids."""

    gate_id: int
    kind: GateKind
    inputs: Tuple[int, ...] = ()
    name: str = ""

    @property
    def jj_count(self) -> int:
        return GATE_JJ[self.kind]


class GateNetwork:
    """A DAG of gates built incrementally by the block generators."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: List[Gate] = []
        self.primary_inputs: List[int] = []
        self.primary_outputs: List[int] = []

    # -- construction ----------------------------------------------------

    def _add(self, kind: GateKind, inputs: Sequence[int],
             name: str = "") -> int:
        for source in inputs:
            if not 0 <= source < len(self.gates):
                raise NetlistError(
                    f"{self.name}: gate input {source} does not exist")
        gate = Gate(len(self.gates), kind, tuple(inputs), name)
        self.gates.append(gate)
        return gate.gate_id

    def add_input(self, name: str = "") -> int:
        gate_id = self._add(GateKind.INPUT, (), name)
        self.primary_inputs.append(gate_id)
        return gate_id

    def add_output(self, source: int, name: str = "") -> int:
        gate_id = self._add(GateKind.OUTPUT, (source,), name)
        self.primary_outputs.append(gate_id)
        return gate_id

    def add_and(self, a: int, b: int, name: str = "") -> int:
        return self._add(GateKind.AND, (a, b), name)

    def add_or(self, a: int, b: int, name: str = "") -> int:
        return self._add(GateKind.OR, (a, b), name)

    def add_xor(self, a: int, b: int, name: str = "") -> int:
        return self._add(GateKind.XOR, (a, b), name)

    def add_not(self, a: int, name: str = "") -> int:
        return self._add(GateKind.NOT, (a,), name)

    def add_buf(self, a: int, name: str = "") -> int:
        return self._add(GateKind.BUF, (a,), name)

    # -- wide helpers ----------------------------------------------------

    def add_inputs(self, count: int, prefix: str) -> List[int]:
        return [self.add_input(f"{prefix}{i}") for i in range(count)]

    def add_wide_or(self, sources: Sequence[int], name: str = "") -> int:
        """Balanced OR tree over arbitrarily many sources."""
        if not sources:
            raise NetlistError(f"{self.name}: empty OR tree")
        level = list(sources)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add_or(level[i], level[i + 1], name))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def add_mux2(self, select: int, when0: int, when1: int,
                 name: str = "") -> int:
        """2:1 mux from AND/OR/NOT gates."""
        select_n = self.add_not(select, f"{name}.seln")
        take0 = self.add_and(when0, select_n, f"{name}.t0")
        take1 = self.add_and(when1, select, f"{name}.t1")
        return self.add_or(take0, take1, f"{name}.or")

    # -- analysis ----------------------------------------------------------

    def logic_jj_count(self) -> int:
        """JJs in the raw logic network (before synthesis passes)."""
        return sum(gate.jj_count for gate in self.gates)

    def fanouts(self) -> Dict[int, int]:
        """Number of sinks driven by each gate."""
        counts: Dict[int, int] = {gate.gate_id: 0 for gate in self.gates}
        for gate in self.gates:
            for source in gate.inputs:
                counts[source] += 1
        return counts

    def levels(self) -> Dict[int, int]:
        """Logic level of each gate (inputs are level 0).

        Clocked gates advance the level by one; INPUT/OUTPUT markers are
        transparent.  The network is built append-only, so gate ids are
        already in topological order.
        """
        level: Dict[int, int] = {}
        for gate in self.gates:
            if gate.kind is GateKind.INPUT:
                level[gate.gate_id] = 0
            elif gate.kind is GateKind.OUTPUT:
                level[gate.gate_id] = level[gate.inputs[0]]
            else:
                source_level = max((level[s] for s in gate.inputs), default=0)
                level[gate.gate_id] = source_level + 1
        return level

    def depth(self) -> int:
        """Longest clocked-gate path from any input to any output."""
        level = self.levels()
        if not self.primary_outputs:
            return max(level.values(), default=0)
        return max(level[out] for out in self.primary_outputs)

    def gate_count(self, kind: GateKind | None = None) -> int:
        if kind is None:
            return sum(1 for g in self.gates if g.kind in CLOCKED_KINDS)
        return sum(1 for g in self.gates if g.kind is kind)

    def __repr__(self) -> str:
        return (f"GateNetwork({self.name!r}, gates={len(self.gates)}, "
                f"depth={self.depth()})")
