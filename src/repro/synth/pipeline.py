"""SFQ synthesis passes: splitters, path balancing and clock distribution.

Three costs separate an SFQ netlist from its CMOS-style logic network:

1. **Splitter insertion** - a pulse cannot drive two loads; every gate
   with fan-out ``f`` needs ``f - 1`` splitters (3 JJs each).
2. **Path balancing** - every logic gate is clocked, so both inputs of a
   gate must arrive in the same clock wave; a shorter input path needs
   one DRO buffer per missing level.  This is the dominant overhead of
   gate-level pipelining and the reason deep pipelines are unavoidable
   in RSFQ.
3. **Clock distribution** - each clocked gate (including the inserted
   buffers) consumes one clock pulse per wave, delivered through a
   binary splitter tree.

:func:`synthesize` runs all three over a :class:`GateNetwork` and
reports the balanced pipeline depth and the full JJ budget - the same
quantities the paper extracts from qPalace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cells import params
from repro.synth.netlist import CLOCKED_KINDS, GATE_JJ, GateKind, GateNetwork

SPLITTER_JJ = 3
BUFFER_JJ = GATE_JJ[GateKind.BUF]
CLOCK_SPLITTER_JJ = 3


@dataclass(frozen=True)
class PipelineReport:
    """Outcome of synthesising one block."""

    name: str
    depth: int
    logic_gates: int
    logic_jj: int
    splitters: int
    splitter_jj: int
    balancing_buffers: int
    balancing_jj: int
    clocked_cells: int
    clock_tree_jj: int
    gate_cycle_ps: float = params.GATE_CYCLE_PS

    @property
    def total_jj(self) -> int:
        return (self.logic_jj + self.splitter_jj + self.balancing_jj
                + self.clock_tree_jj)

    @property
    def balancing_overhead(self) -> float:
        """Balancing JJs as a fraction of the logic JJs."""
        if self.logic_jj == 0:
            return 0.0
        return self.balancing_jj / self.logic_jj

    @property
    def latency_ps(self) -> float:
        """End-to-end latency of one wave through the block."""
        return self.depth * self.gate_cycle_ps

    def describe(self) -> str:
        lines = [
            f"block {self.name}: depth {self.depth} stages "
            f"({self.latency_ps:.0f} ps at {self.gate_cycle_ps:.0f} ps/stage)",
            f"  logic gates        {self.logic_gates:>7,d}  "
            f"({self.logic_jj:,} JJ)",
            f"  splitters          {self.splitters:>7,d}  "
            f"({self.splitter_jj:,} JJ)",
            f"  balancing buffers  {self.balancing_buffers:>7,d}  "
            f"({self.balancing_jj:,} JJ, "
            f"{self.balancing_overhead:.0%} of logic)",
            f"  clock tree         {'':>7s}  ({self.clock_tree_jj:,} JJ)",
            f"  total              {'':>7s}  ({self.total_jj:,} JJ)",
        ]
        return "\n".join(lines)


def synthesize(network: GateNetwork) -> PipelineReport:
    """Run the SFQ synthesis passes and report depth and JJ budget."""
    levels: Dict[int, int] = network.levels()
    depth = network.depth()

    logic_gates = 0
    logic_jj = 0
    for gate in network.gates:
        if gate.kind in CLOCKED_KINDS:
            logic_gates += 1
            logic_jj += gate.jj_count

    # Pass 1: splitters at every fan-out point.
    splitters = 0
    for gate_id, fanout in network.fanouts().items():
        if fanout > 1:
            splitters += fanout - 1
    splitter_jj = splitters * SPLITTER_JJ

    # Pass 2: path balancing.  For each clocked gate at level L, every
    # input arriving from level Li needs (L - 1 - Li) buffers so all its
    # inputs arrive in wave L-1.  Primary outputs are balanced to the
    # block's full depth so downstream stages see one coherent wave.
    buffers = 0
    for gate in network.gates:
        if gate.kind in CLOCKED_KINDS:
            target = levels[gate.gate_id] - 1
            for source in gate.inputs:
                buffers += max(target - levels[source], 0)
        elif gate.kind is GateKind.OUTPUT:
            buffers += max(depth - levels[gate.inputs[0]], 0)
    balancing_jj = buffers * BUFFER_JJ

    # Pass 3: clock distribution to every clocked cell (logic + buffers).
    clocked_cells = logic_gates + buffers
    clock_tree_jj = max(clocked_cells - 1, 0) * CLOCK_SPLITTER_JJ

    return PipelineReport(
        name=network.name,
        depth=depth,
        logic_gates=logic_gates,
        logic_jj=logic_jj,
        splitters=splitters,
        splitter_jj=splitter_jj,
        balancing_buffers=buffers,
        balancing_jj=balancing_jj,
        clocked_cells=clocked_cells,
        clock_tree_jj=clock_tree_jj,
    )
