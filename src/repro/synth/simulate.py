"""Run a synthesised gate network pulse-accurately with gate-level clocking.

Bridges :mod:`repro.synth` and :mod:`repro.pulse`: every logic gate of a
:class:`GateNetwork` becomes a clocked pulse-level gate, fan-outs become
splitter trees, path balancing becomes chains of clocked buffers, and a
global clock driver fires one wave per logic level - the "gate-level
clocking" execution model of the paper's Section II-A, on a real netlist.

This is deliberately wave-synchronous (one input vector at a time); it
verifies the functional correctness of gate networks whose *costs* the
synthesis passes report, closing the loop between the structural and
behavioural views.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.pulse.engine import Component, Engine
from repro.pulse.logic import (
    ClockedAnd,
    ClockedBuffer,
    ClockedGate,
    ClockedNot,
    ClockedOr,
    ClockedXor,
)
from repro.pulse.monitor import Probe
from repro.pulse.splittree import SplitTree
from repro.synth.netlist import GateKind, GateNetwork

_GATE_CLASSES = {
    GateKind.AND: ClockedAnd,
    GateKind.OR: ClockedOr,
    GateKind.XOR: ClockedXor,
    GateKind.NOT: ClockedNot,
    GateKind.BUF: ClockedBuffer,
}


class PulseNetworkSimulator:
    """A pulse-level instantiation of a gate network.

    One evaluation applies an input vector and runs ``depth`` clock
    waves, each wave clocking exactly the gates of one logic level -
    an idealised but faithful rendering of SFQ gate-level pipelining.
    """

    def __init__(self, network: GateNetwork,
                 wave_period_ps: float = 50.0) -> None:
        if wave_period_ps <= 0:
            raise ConfigError("wave period must be positive")
        self.network = network
        self.wave_period_ps = wave_period_ps
        self.engine = Engine()
        self.levels = network.levels()
        self.depth = network.depth()

        # Instantiate clocked gates; inputs become transparent probes.
        self._nodes: Dict[int, Component] = {}
        for gate in network.gates:
            if gate.kind is GateKind.INPUT:
                self._nodes[gate.gate_id] = self.engine.add(
                    Probe(f"in{gate.gate_id}"))
            elif gate.kind is GateKind.OUTPUT:
                self._nodes[gate.gate_id] = self.engine.add(
                    Probe(f"out{gate.gate_id}"))
            else:
                cls = _GATE_CLASSES[gate.kind]
                self._nodes[gate.gate_id] = self.engine.add(
                    cls(f"g{gate.gate_id}", delay_ps=1.0))

        # Wire data paths with splitter trees at fan-out points.
        fanouts = network.fanouts()
        taps: Dict[int, List] = {}
        for gate_id, count in fanouts.items():
            if count > 1:
                tree = SplitTree(self.engine, f"fan{gate_id}", count)
                source = self._nodes[gate_id]
                out_port = "out"
                source.connect(out_port, tree.inp[0], tree.inp[1])
                taps[gate_id] = list(tree.outputs)

        def next_tap(source_id: int):
            if source_id in taps:
                return taps[source_id].pop(0)
            return (self._nodes[source_id], "out")

        port_names = {0: "a", 1: "b"}
        for gate in network.gates:
            if gate.kind is GateKind.INPUT:
                continue
            for position, source in enumerate(gate.inputs):
                comp, port = next_tap(source)
                sink_port = "in" if gate.kind is GateKind.OUTPUT \
                    else port_names[position]
                comp.connect(port, self._nodes[gate.gate_id], sink_port)

        # Clock distribution: one injection point per logic level.
        self._level_gates: Dict[int, List[ClockedGate]] = {}
        for gate in network.gates:
            node = self._nodes[gate.gate_id]
            if isinstance(node, ClockedGate):
                self._level_gates.setdefault(
                    self.levels[gate.gate_id], []).append(node)
        self._clock_trees: Dict[int, SplitTree] = {}
        for level, gates in self._level_gates.items():
            tree = SplitTree(self.engine, f"clk{level}", len(gates))
            for index, gate in enumerate(gates):
                tree.connect_output(index, gate, "clk")
            self._clock_trees[level] = tree

        self._time = 0.0

    @property
    def clocked_gate_count(self) -> int:
        return sum(len(g) for g in self._level_gates.values())

    def evaluate(self, input_bits: Sequence[int]) -> List[int]:
        """Apply one input vector; returns the output bit vector."""
        inputs = self.network.primary_inputs
        if len(input_bits) != len(inputs):
            raise ConfigError(
                f"expected {len(inputs)} input bits, got {len(input_bits)}")
        start = self._time + self.wave_period_ps
        # Drive '1' inputs as pulses at the start of wave 0.
        for gate_id, bit in zip(inputs, input_bits):
            if bit:
                self.engine.schedule(self._nodes[gate_id], "in", start)
        # Fire one clock wave per level, deepest last.  The level-k clock
        # fires after wave k-1's results have landed.
        for level in sorted(self._clock_trees):
            comp, port = self._clock_trees[level].inp
            self.engine.schedule(comp, port,
                                 start + level * self.wave_period_ps - 10.0)
        end = start + (self.depth + 1) * self.wave_period_ps
        self.engine.run(until_ps=end)
        self._time = end

        outputs = []
        for gate_id in self.network.primary_outputs:
            probe: Probe = self._nodes[gate_id]
            pulses = probe.pulses_in_window(start, end)
            outputs.append(1 if pulses else 0)
            probe.clear()
        return outputs


def simulate_network(network: GateNetwork,
                     input_bits: Sequence[int]) -> List[int]:
    """One-shot convenience wrapper."""
    return PulseNetworkSimulator(network).evaluate(input_bits)
