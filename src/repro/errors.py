"""Exception hierarchy for the HiPerRF reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CellLibraryError(ReproError):
    """Unknown cell name or inconsistent cell parameters."""


class NetlistError(ReproError):
    """Structural problem while building or connecting a netlist."""


class SimulationError(ReproError):
    """Pulse-level or analog simulation failed or diverged."""


class TimingViolationError(SimulationError):
    """Two pulses violated a cell's setup/hold or throughput constraint."""


class AssemblerError(ReproError):
    """RISC-V assembly source could not be assembled."""


class DecodeError(ReproError):
    """A 32-bit word does not decode to a valid RV32I instruction."""


class ExecutionError(ReproError):
    """The functional or timing simulator hit an unrecoverable state."""


class ConfigError(ReproError):
    """Invalid design or simulator configuration."""
