"""Monte Carlo parametric yield tier for the HC-DRO cell.

Real SFQ sign-off is statistical: fabrication spreads junction critical
currents, inductances and bias delivery around their design values, so
a cell is characterised by its *parametric yield* — the fraction of
sampled process corners that still behave perfectly — rather than a
single worst-case margin.  This module layers that analysis on the
chunked block-diagonal batched solver:

* :func:`hcdro_parameter_specs` enumerates the perturbable parameters
  of the HC-DRO netlist (per-junction Ic, per-inductor L, per-source
  bias) with Gaussian fractional spreads from :class:`SpreadSpec`.
* :func:`sample_multipliers` draws the full ``(samples, params)``
  multiplier matrix from one seeded generator **up front**, so chunk
  size and worker count can never influence which parameters a sample
  receives (bitwise reproducibility).
* :func:`run_yield_analysis` shards ``samples x read_scales`` lanes
  through :class:`~repro.josim.solver.BatchedTransientSolver` (one
  topology group, streamed per-chunk via ``run_reduced`` so waveforms
  never accumulate), optionally fanning shards out across worker
  processes, and rolls the integer verdicts up into a
  :class:`YieldReport` (yield %, percentile margins, per-parameter
  sensitivity).
* :func:`verify_against_scalar` replays randomly sampled lanes through
  the scalar :class:`~repro.josim.solver.TransientSolver` oracle and
  reports the worst phase deviation (the 1e-9 equivalence bar).

CLI::

    python -m repro.josim.montecarlo --samples 1000 --seed 7 --json

Lane ordering is sample-major (``lane = sample * len(scales) +
scale_index``); every roll-up is computed from the full verdict matrix
after all shards return, so results are invariant to sharding.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.experiments.parallel import parallel_map, resolve_workers
from repro.josim.backend import BACKEND_ENV_VAR, available_backends
from repro.josim.cells import (
    CellHandles,
    RECOMMENDED_J2_BIAS_UA,
    RECOMMENDED_PULSE_WIDTH_PS,
    RECOMMENDED_READ_PULSE_UA,
    RECOMMENDED_WRITE_PULSE_UA,
    build_hcdro_cell,
)
from repro.josim.elements import BiasCurrent, Inductor, JosephsonJunction
from repro.josim.solver import (
    BatchedTransientSolver,
    CHUNK_ENV_VAR,
    TransientResult,
    TransientSolver,
)
from repro.josim.testbench import HCDRORunReport, _reduce_report, _stamp_stimulus

#: Parameter kinds sampled per element class.
KIND_IC = "ic"
KIND_INDUCTANCE = "l"
KIND_BIAS = "bias"

#: Multipliers are clipped here so a deep negative tail can never flip
#: the sign of a physical parameter (element validation would reject it).
MIN_MULTIPLIER = 0.05


@dataclass(frozen=True)
class SpreadSpec:
    """Fractional 1-sigma Gaussian spreads per element class.

    The defaults approximate a mature Nb process: ~2% Ic spread, ~3%
    inductance spread, ~2% bias-delivery spread.
    """

    sigma_ic: float = 0.02
    sigma_l: float = 0.03
    sigma_bias: float = 0.02

    def __post_init__(self) -> None:
        for label, value in (("sigma_ic", self.sigma_ic),
                             ("sigma_l", self.sigma_l),
                             ("sigma_bias", self.sigma_bias)):
            if value < 0.0:
                raise ConfigError(f"{label} must be >= 0, got {value}")


@dataclass(frozen=True)
class ParameterSpec:
    """One perturbable netlist parameter: an element field plus its sigma."""

    element: str
    kind: str
    sigma: float

    @property
    def label(self) -> str:
        return f"{self.element}.{self.kind}"


@dataclass(frozen=True)
class YieldConfig:
    """One Monte Carlo yield study, fully determined by its fields."""

    samples: int = 1000
    seed: int = 1234
    spreads: SpreadSpec = field(default_factory=SpreadSpec)
    read_scales: Tuple[float, ...] = (0.95, 1.0, 1.05)
    writes: int = 3
    reads: int = 4
    write_amplitude_ua: float = RECOMMENDED_WRITE_PULSE_UA
    read_amplitude_ua: float = RECOMMENDED_READ_PULSE_UA
    j2_bias_ua: float = RECOMMENDED_J2_BIAS_UA
    pulse_width_ps: float = RECOMMENDED_PULSE_WIDTH_PS
    pulse_spacing_ps: float = 25.0
    settle_ps: float = 30.0
    timestep_ps: float = 0.05
    record_every: int = 20
    shard_lanes: int = 2048
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ConfigError(f"samples must be positive, got {self.samples}")
        if not self.read_scales:
            raise ConfigError("read_scales must be non-empty")
        if any(scale <= 0.0 for scale in self.read_scales):
            raise ConfigError("read_scales must be positive")
        if self.record_every < 1:
            raise ConfigError("record_every must be >= 1")
        if self.shard_lanes < 1:
            raise ConfigError("shard_lanes must be >= 1")

    @property
    def lanes(self) -> int:
        """Total transient lanes the study runs (samples x scales)."""
        return self.samples * len(self.read_scales)

    @property
    def nominal_index(self) -> int:
        """Index of the read scale closest to 1.0 (the yield scale)."""
        return int(np.argmin(np.abs(np.asarray(self.read_scales) - 1.0)))


@dataclass(frozen=True)
class YieldReport:
    """Roll-up of one Monte Carlo yield study."""

    config: YieldConfig
    yield_percent: float
    scale_yield: Dict[float, float]
    margin_mean_percent: float
    margin_p5_percent: float
    margin_p50_percent: float
    margin_p95_percent: float
    sensitivity: Dict[str, float]
    elapsed_s: float
    lanes_per_sec: float


def hcdro_parameter_specs(
        spreads: Optional[SpreadSpec] = None) -> Tuple[ParameterSpec, ...]:
    """Enumerate the HC-DRO cell's perturbable parameters, template order.

    Junctions spread in Ic, inductors in L, bias sources in delivered
    current.  Parameters whose class sigma is zero are omitted so the
    multiplier matrix only carries live columns.  The template circuit
    fixes the ordering, which in turn fixes the meaning of each column
    of :func:`sample_multipliers` for a given :class:`SpreadSpec`.
    """
    spreads = spreads or SpreadSpec()
    template = build_hcdro_cell()
    specs: List[ParameterSpec] = []
    for element in template.circuit.elements:
        if isinstance(element, JosephsonJunction) and spreads.sigma_ic > 0:
            specs.append(ParameterSpec(element.name, KIND_IC,
                                       spreads.sigma_ic))
        elif isinstance(element, Inductor) and spreads.sigma_l > 0:
            specs.append(ParameterSpec(element.name, KIND_INDUCTANCE,
                                       spreads.sigma_l))
        elif isinstance(element, BiasCurrent) and spreads.sigma_bias > 0:
            specs.append(ParameterSpec(element.name, KIND_BIAS,
                                       spreads.sigma_bias))
    return tuple(specs)


def sample_multipliers(specs: Sequence[ParameterSpec], samples: int,
                       seed: int) -> np.ndarray:
    """Draw the full ``(samples, len(specs))`` multiplier matrix.

    One seeded generator, one draw, before any sharding — so the same
    ``(specs, samples, seed)`` triple yields a bitwise-identical matrix
    regardless of chunk size or worker count.  Multipliers are
    ``1 + sigma * z`` with ``z ~ N(0, 1)``, clipped at
    :data:`MIN_MULTIPLIER`.
    """
    if samples <= 0:
        raise ConfigError(f"samples must be positive, got {samples}")
    rng = np.random.default_rng(seed)
    z = rng.standard_normal((samples, len(specs)))
    sigmas = np.asarray([spec.sigma for spec in specs], dtype=float)
    return np.maximum(1.0 + z * sigmas, MIN_MULTIPLIER)


def apply_multipliers(handles: CellHandles,
                      specs: Sequence[ParameterSpec],
                      multipliers: np.ndarray) -> None:
    """Scale one cell's parameters in place by one multiplier row.

    Mutates the named element fields and re-runs their validation /
    derived-constant hooks (``__post_init__``) so precomputed stamps
    like ``inv_l`` stay consistent with the perturbed values.
    """
    if len(multipliers) != len(specs):
        raise ConfigError(
            f"multiplier row has {len(multipliers)} entries for "
            f"{len(specs)} parameter specs")
    for spec, multiplier in zip(specs, multipliers):
        element = handles.circuit.element(spec.element)
        scale = float(multiplier)
        if spec.kind == KIND_IC:
            assert isinstance(element, JosephsonJunction)
            element.critical_current_ua *= scale
            element.__post_init__()
        elif spec.kind == KIND_INDUCTANCE:
            assert isinstance(element, Inductor)
            element.inductance_ph *= scale
            element.__post_init__()
        elif spec.kind == KIND_BIAS:
            assert isinstance(element, BiasCurrent)
            element.current_ua *= scale
        else:  # pragma: no cover - specs built by hcdro_parameter_specs
            raise ConfigError(f"unknown parameter kind {spec.kind!r}")


def _build_lane(config: YieldConfig, specs: Sequence[ParameterSpec],
                multiplier_row: np.ndarray,
                read_scale: float) -> Tuple[CellHandles, float, float]:
    """Build one perturbed, stimulus-stamped cell; return (handles, read_start, end)."""
    handles = build_hcdro_cell(j2_bias_ua=config.j2_bias_ua)
    apply_multipliers(handles, specs, multiplier_row)
    read_start, end = _stamp_stimulus(
        handles, config.writes, config.reads,
        write_amplitude_ua=config.write_amplitude_ua,
        read_amplitude_ua=config.read_amplitude_ua * read_scale,
        pulse_width_ps=config.pulse_width_ps,
        pulse_spacing_ps=config.pulse_spacing_ps,
        settle_ps=config.settle_ps)
    return handles, read_start, end


#: Integer outcome of one lane: (stored_after_writes, stored_at_end,
#: output_pulses).  Integers — not floats — cross the shard boundary,
#: so roll-ups are exactly invariant to sharding and worker count.
LaneOutcome = Tuple[int, int, int]


@dataclass(frozen=True)
class _ShardTask:
    """Picklable unit of work: a contiguous slice of the lane list."""

    config: YieldConfig
    specs: Tuple[ParameterSpec, ...]
    multiplier_rows: np.ndarray  # (lanes_in_shard, params)
    read_scales: Tuple[float, ...]  # per-lane read scale


def _run_shard(task: _ShardTask) -> List[LaneOutcome]:
    """Run one shard's lanes as a single chunked batched transient."""
    config = task.config
    lanes = [
        _build_lane(config, task.specs, task.multiplier_rows[i], scale)
        for i, scale in enumerate(task.read_scales)
    ]
    solver = BatchedTransientSolver(
        [handles.circuit for handles, _, _ in lanes],
        timestep_ps=config.timestep_ps,
        labels=[f"mc lane {i} (scale {scale:g})"
                for i, scale in enumerate(task.read_scales)],
        backend=config.backend)
    outcomes: List[Optional[LaneOutcome]] = [None] * len(lanes)

    def reduce(lane: int, result: TransientResult) -> None:
        handles, read_start, _ = lanes[lane]
        report: HCDRORunReport = _reduce_report(
            result, handles, config.writes, config.reads, read_start)
        outcomes[lane] = (report.stored_after_writes, report.stored_at_end,
                          report.output_pulses)

    solver.run_reduced([end for _, _, end in lanes], reduce,
                       record_every=config.record_every)
    return [outcome for outcome in outcomes if outcome is not None]


def run_lanes(config: YieldConfig, multipliers: np.ndarray,
              specs: Sequence[ParameterSpec],
              workers: Optional[int] = None) -> List[LaneOutcome]:
    """Evaluate every (sample, scale) lane; returns sample-major outcomes.

    Lanes are split into driver-level shards of ``config.shard_lanes``
    (each shard is itself chunk-streamed by the batched solver, so peak
    memory is governed by ``REPRO_JOSIM_CHUNK`` either way); shards fan
    out across worker processes when more than one resolves.
    """
    scales = config.read_scales
    lane_scales = [scale for _ in range(config.samples) for scale in scales]
    lane_samples = [s for s in range(config.samples) for _ in scales]
    tasks: List[_ShardTask] = []
    for start in range(0, len(lane_scales), config.shard_lanes):
        stop = min(start + config.shard_lanes, len(lane_scales))
        tasks.append(_ShardTask(
            config=config,
            specs=tuple(specs),
            multiplier_rows=multipliers[lane_samples[start:stop]],
            read_scales=tuple(lane_scales[start:stop])))
    if resolve_workers(workers) <= 1 or len(tasks) <= 1:
        shard_results = [_run_shard(task) for task in tasks]
    else:
        shard_results = parallel_map(_run_shard, tasks, workers=workers)
    outcomes: List[LaneOutcome] = []
    for result in shard_results:
        outcomes.extend(result)
    return outcomes


def _verdicts(config: YieldConfig,
              outcomes: Sequence[LaneOutcome]) -> np.ndarray:
    """Boolean (samples, scales) verdict matrix from lane outcomes."""
    expected = min(config.writes, 3)
    flat = np.asarray([
        stored_mid == expected and stored_end == 0 and pulses == expected
        for stored_mid, stored_end, pulses in outcomes
    ], dtype=bool)
    return flat.reshape(config.samples, len(config.read_scales))


def _margins_percent(config: YieldConfig, verdicts: np.ndarray) -> np.ndarray:
    """Per-sample contiguous working window around nominal, in percent.

    Mirrors :func:`repro.josim.margins.working_margin_percent`: expand
    from the nominal scale outwards while every tested scale passes;
    the margin is the smaller one-sided span.  A sample failing at
    nominal has zero margin.
    """
    order = np.argsort(np.asarray(config.read_scales))
    scales = np.asarray(config.read_scales)[order]
    nominal_pos = int(np.argmin(np.abs(scales - 1.0)))
    nominal = float(scales[nominal_pos])
    margins = np.zeros(verdicts.shape[0], dtype=float)
    ordered = verdicts[:, order]
    for sample in range(verdicts.shape[0]):
        if not ordered[sample, nominal_pos]:
            continue
        low = high = nominal
        for pos in range(nominal_pos - 1, -1, -1):
            if not ordered[sample, pos]:
                break
            low = float(scales[pos])
        for pos in range(nominal_pos + 1, len(scales)):
            if not ordered[sample, pos]:
                break
            high = float(scales[pos])
        margins[sample] = 100.0 * min(nominal - low, high - nominal)
    return margins


def _sensitivity(specs: Sequence[ParameterSpec], multipliers: np.ndarray,
                 passed: np.ndarray) -> Dict[str, float]:
    """Mean multiplier shift of failing vs passing samples, in sigmas.

    A strongly positive value means failures sit above nominal on that
    parameter (it fails high); negative means it fails low; near zero
    means the yield is insensitive to it.  Zero when either group is
    empty — with no contrast there is no signal.
    """
    sensitivity: Dict[str, float] = {}
    failed = ~passed
    for column, spec in enumerate(specs):
        if not passed.any() or not failed.any() or spec.sigma <= 0:
            sensitivity[spec.label] = 0.0
            continue
        delta = (float(multipliers[failed, column].mean())
                 - float(multipliers[passed, column].mean()))
        sensitivity[spec.label] = delta / spec.sigma
    return sensitivity


def run_yield_analysis(config: Optional[YieldConfig] = None,
                       workers: Optional[int] = None) -> YieldReport:
    """Full Monte Carlo yield study: sample, simulate, roll up."""
    config = config or YieldConfig()
    specs = hcdro_parameter_specs(config.spreads)
    multipliers = sample_multipliers(specs, config.samples, config.seed)
    started = time.perf_counter()
    outcomes = run_lanes(config, multipliers, specs, workers=workers)
    elapsed = time.perf_counter() - started
    verdicts = _verdicts(config, outcomes)
    nominal = config.nominal_index
    passed = verdicts[:, nominal]
    margins = _margins_percent(config, verdicts)
    scale_yield = {
        float(scale): 100.0 * float(verdicts[:, k].mean())
        for k, scale in enumerate(config.read_scales)
    }
    return YieldReport(
        config=config,
        yield_percent=100.0 * float(passed.mean()),
        scale_yield=scale_yield,
        margin_mean_percent=float(margins.mean()),
        margin_p5_percent=float(np.percentile(margins, 5.0)),
        margin_p50_percent=float(np.percentile(margins, 50.0)),
        margin_p95_percent=float(np.percentile(margins, 95.0)),
        sensitivity=_sensitivity(specs, multipliers, passed),
        elapsed_s=elapsed,
        lanes_per_sec=config.lanes / elapsed if elapsed > 0 else 0.0,
    )


def verify_against_scalar(config: Optional[YieldConfig] = None,
                          lanes: int = 32) -> float:
    """Replay sampled lanes through the scalar oracle; return max |dphi|.

    Builds each picked lane's perturbed circuit twice from the same
    multiplier row — once for the batched tier, once for the scalar
    :class:`TransientSolver` — and compares full phase trajectories at
    ``record_every=1``.  The acceptance bar is 1e-9.
    """
    config = config or YieldConfig()
    specs = hcdro_parameter_specs(config.spreads)
    multipliers = sample_multipliers(specs, config.samples, config.seed)
    rng = np.random.default_rng(config.seed + 1)
    total = config.lanes
    picked = rng.choice(total, size=min(lanes, total), replace=False)
    num_scales = len(config.read_scales)
    built = []
    for lane in picked:
        sample, scale_idx = divmod(int(lane), num_scales)
        scale = config.read_scales[scale_idx]
        built.append((
            _build_lane(config, specs, multipliers[sample], scale),
            _build_lane(config, specs, multipliers[sample], scale),
        ))
    solver = BatchedTransientSolver(
        [batched[0].circuit for batched, _ in built],
        timestep_ps=config.timestep_ps,
        backend=config.backend)
    batched_results = solver.run([batched[2] for batched, _ in built])
    worst = 0.0
    for (_, scalar_lane), batched_result in zip(built, batched_results):
        handles, _, end = scalar_lane
        scalar_result = TransientSolver(
            handles.circuit, timestep_ps=config.timestep_ps).run(end)
        deviation = float(np.max(np.abs(
            batched_result.phases - scalar_result.phases)))
        worst = max(worst, deviation)
    return worst


def render(report: YieldReport) -> str:
    """Human-readable summary of a yield study."""
    config = report.config
    title = (f"HC-DRO Monte Carlo yield — {config.samples} samples x "
             f"{len(config.read_scales)} read scales "
             f"({config.lanes} lanes, seed {config.seed})")
    lines = [title, "=" * len(title)]
    lines.append(f"spreads: Ic {100 * config.spreads.sigma_ic:.1f}%  "
                 f"L {100 * config.spreads.sigma_l:.1f}%  "
                 f"bias {100 * config.spreads.sigma_bias:.1f}%  (1-sigma)")
    lines.append(f"parametric yield at nominal read: "
                 f"{report.yield_percent:.2f}%")
    lines.append("yield by read scale:")
    for scale in sorted(report.scale_yield):
        lines.append(f"  x{scale:<5g} {report.scale_yield[scale]:6.2f}%")
    lines.append(f"read margin (percent of nominal): "
                 f"mean {report.margin_mean_percent:.2f}  "
                 f"p5 {report.margin_p5_percent:.2f}  "
                 f"p50 {report.margin_p50_percent:.2f}  "
                 f"p95 {report.margin_p95_percent:.2f}")
    lines.append("per-parameter sensitivity (fail-vs-pass shift, sigmas):")
    ranked = sorted(report.sensitivity.items(),
                    key=lambda item: -abs(item[1]))
    for label, value in ranked:
        lines.append(f"  {label:<12s} {value:+.3f}")
    lines.append(f"throughput: {report.lanes_per_sec:,.0f} lanes/sec "
                 f"({report.elapsed_s:.2f} s)")
    return "\n".join(lines)


def _report_dict(report: YieldReport) -> Dict[str, object]:
    return {
        "samples": report.config.samples,
        "seed": report.config.seed,
        "lanes": report.config.lanes,
        "read_scales": list(report.config.read_scales),
        "yield_percent": report.yield_percent,
        "scale_yield": {str(k): v for k, v in report.scale_yield.items()},
        "margin_mean_percent": report.margin_mean_percent,
        "margin_p5_percent": report.margin_p5_percent,
        "margin_p50_percent": report.margin_p50_percent,
        "margin_p95_percent": report.margin_p95_percent,
        "sensitivity": report.sensitivity,
        "elapsed_s": report.elapsed_s,
        "lanes_per_sec": report.lanes_per_sec,
    }


def _parse_scales(text: str) -> Tuple[float, ...]:
    try:
        scales = tuple(float(part) for part in text.split(",") if part)
    except ValueError as exc:
        raise ConfigError(f"bad --scales value {text!r}") from exc
    if not scales:
        raise ConfigError("--scales must name at least one scale")
    return scales


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.josim.montecarlo",
        description="Monte Carlo parametric yield of the HC-DRO cell.")
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--sigma-ic", type=float, default=0.02,
                        help="fractional 1-sigma Ic spread")
    parser.add_argument("--sigma-l", type=float, default=0.03,
                        help="fractional 1-sigma inductance spread")
    parser.add_argument("--sigma-bias", type=float, default=0.02,
                        help="fractional 1-sigma bias spread")
    parser.add_argument("--scales", type=str, default="0.95,1.0,1.05",
                        help="comma-separated read-amplitude scales")
    parser.add_argument("--writes", type=int, default=3)
    parser.add_argument("--reads", type=int, default=4)
    parser.add_argument("--shard-lanes", type=int, default=2048,
                        help="lanes per worker dispatch unit")
    parser.add_argument("--chunk", type=int, default=None,
                        help=f"override {CHUNK_ENV_VAR} (solver chunk lanes)")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--backend", type=str, default=None,
                        choices=available_backends(),
                        help=f"array backend (default: ${BACKEND_ENV_VAR} "
                             "or numpy)")
    parser.add_argument("--verify", type=int, default=0, metavar="LANES",
                        help="also replay LANES lanes through the scalar "
                             "oracle and report max |dphi|")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.chunk is not None:
        os.environ[CHUNK_ENV_VAR] = str(args.chunk)
    try:
        config = YieldConfig(
            samples=args.samples,
            seed=args.seed,
            spreads=SpreadSpec(sigma_ic=args.sigma_ic, sigma_l=args.sigma_l,
                               sigma_bias=args.sigma_bias),
            read_scales=_parse_scales(args.scales),
            writes=args.writes,
            reads=args.reads,
            shard_lanes=args.shard_lanes,
            backend=args.backend)
        report = run_yield_analysis(config, workers=args.workers)
        payload = _report_dict(report)
        if args.verify > 0:
            deviation = verify_against_scalar(config, lanes=args.verify)
            payload["scalar_oracle_max_dphi"] = deviation
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(render(report))
            if args.verify > 0:
                print(f"scalar-oracle max |dphi| over {args.verify} lanes: "
                      f"{payload['scalar_oracle_max_dphi']:.3e}")
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
