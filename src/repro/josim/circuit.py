"""Netlist container for the phase-domain solver."""

from __future__ import annotations

from typing import Dict, List, Union

from repro.errors import NetlistError
from repro.josim.elements import (
    BiasCurrent,
    Capacitor,
    Element,
    Inductor,
    JosephsonJunction,
    PulseCurrent,
    Resistor,
)

SourceElement = Union[BiasCurrent, PulseCurrent]


class Circuit:
    """A named-node netlist of superconducting circuit elements.

    Nodes are referenced by string names; ``"gnd"`` (or ``"0"``) is the
    ground reference.  Element factory methods mirror a SPICE deck:

    >>> ckt = Circuit()
    >>> ckt.jj("J1", "n1", "gnd", critical_current_ua=115.0)   # doctest: +ELLIPSIS
    JosephsonJunction(...)
    """

    GROUND_NAMES = ("gnd", "0", "GND")

    def __init__(self) -> None:
        self._node_index: Dict[str, int] = {}
        self._element_index: Dict[str, Element] = {}
        self.elements: List[Element] = []

    # -- nodes -----------------------------------------------------------

    def node(self, name: str) -> int:
        """Index for a node name (0 is ground; new names are allocated)."""
        if name in self.GROUND_NAMES:
            return 0
        if name not in self._node_index:
            self._node_index[name] = len(self._node_index) + 1
        return self._node_index[name]

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_index)

    def node_names(self) -> List[str]:
        return sorted(self._node_index, key=self._node_index.get)

    # -- element factories -------------------------------------------------

    def _add(self, element: Element) -> Element:
        if element.name in self._element_index:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._element_index[element.name] = element
        self.elements.append(element)
        return element

    def jj(self, name: str, pos: str, neg: str, **kwargs) -> JosephsonJunction:
        return self._add(JosephsonJunction(
            name, self.node(pos), self.node(neg), **kwargs))

    def inductor(self, name: str, pos: str, neg: str,
                 inductance_ph: float) -> Inductor:
        return self._add(Inductor(name, self.node(pos), self.node(neg),
                                  inductance_ph=inductance_ph))

    def resistor(self, name: str, pos: str, neg: str,
                 resistance_ohm: float) -> Resistor:
        return self._add(Resistor(name, self.node(pos), self.node(neg),
                                  resistance_ohm=resistance_ohm))

    def capacitor(self, name: str, pos: str, neg: str,
                  capacitance_ff: float) -> Capacitor:
        return self._add(Capacitor(name, self.node(pos), self.node(neg),
                                   capacitance_ff=capacitance_ff))

    def bias(self, name: str, pos: str, neg: str = "gnd",
             current_ua: float = 0.0, ramp_ps: float = 5.0) -> BiasCurrent:
        return self._add(BiasCurrent(name, self.node(pos), self.node(neg),
                                     current_ua=current_ua, ramp_ps=ramp_ps))

    def pulse(self, name: str, pos: str, neg: str = "gnd",
              start_ps: float = 10.0, amplitude_ua: float = 500.0,
              width_ps: float = 4.0) -> PulseCurrent:
        return self._add(PulseCurrent(name, self.node(pos), self.node(neg),
                                      start_ps=start_ps,
                                      amplitude_ua=amplitude_ua,
                                      width_ps=width_ps))

    # -- queries -----------------------------------------------------------

    def element(self, name: str) -> Element:
        try:
            return self._element_index[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def partition(self) -> Dict[type, List[Element]]:
        """Elements grouped by concrete class, in netlist order.

        The compiled-stamp solver and introspection tools use this to
        build per-class index/value arrays without re-walking the
        element list with ``isinstance`` chains.
        """
        groups: Dict[type, List[Element]] = {}
        for element in self.elements:
            groups.setdefault(type(element), []).append(element)
        return groups

    def junctions(self) -> List[JosephsonJunction]:
        return [e for e in self.elements if isinstance(e, JosephsonJunction)]

    def sources(self) -> List[SourceElement]:
        return [e for e in self.elements
                if isinstance(e, (BiasCurrent, PulseCurrent))]

    def validate(self) -> None:
        """Sanity-check the netlist before simulation."""
        if not self.elements:
            raise NetlistError("empty circuit")
        if self.num_nodes == 0:
            raise NetlistError("circuit has no non-ground nodes")
        grounded = any(0 in (e.pos, e.neg) for e in self.elements)
        if not grounded:
            raise NetlistError("no element references ground; floating circuit")
