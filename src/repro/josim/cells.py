"""Prebuilt cell netlists for the analog solver: JTL, DRO and HC-DRO.

The HC-DRO topology follows the paper's Figure 1(b): an input inductor L1
into junction J1, the storage loop J1-L2-J2, and a readout side where a
CLK pulse through L3 pushes J2 past critical so one stored fluxon escapes
to the output via the buffer junction J3.

On parameters: the paper quotes L1~6 pH, L2~20 pH, L3~4 pH, J1~115 uA,
J2~111 uA, J3~80 uA (``PAPER_HCDRO_PARAMS``).  In a lumped-element RCSJ
model a bare 20 pH loop cannot hold three fluxons (each fluxon needs
PHI0/L2 ~ 103 uA of circulating current, exceeding the junction critical
currents); the fabricated cell relies on distributed/kinetic inductance
and bias shaping that a SPICE-level netlist reproduces with a larger
*effective* storage inductance.  ``build_hcdro_cell`` therefore defaults
to the effective-parameter set (``EFFECTIVE_HCDRO_PARAMS``) that yields
the robust 0-3 fluxon behaviour the paper reports; the storage loop,
junction roles and readout mechanism are unchanged.  DESIGN.md records
this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.josim.circuit import Circuit

#: Parameter names follow Figure 1(b).
PAPER_HCDRO_PARAMS: Dict[str, float] = {
    "l1_ph": 6.0,
    "l2_ph": 20.0,
    "l3_ph": 4.0,
    "j1_ua": 115.0,
    "j2_ua": 111.0,
    "j3_ua": 80.0,
}

#: Effective lumped parameters that realise the 3-fluxon storage window.
EFFECTIVE_HCDRO_PARAMS: Dict[str, float] = {
    "l1_ph": 6.0,
    "l2_ph": 80.0,
    "l3_ph": 4.0,
    "j1_ua": 115.0,
    "j2_ua": 111.0,
    "j3_ua": 80.0,
}

#: Verified drive point (see tests/josim): writes always deposit exactly
#: one fluxon up to the 3-fluxon capacity; reads pop exactly one stored
#: fluxon per CLK pulse and are silent on an empty cell.  The read
#: amplitude has a ~10% working margin (450-500 uA at 75 uA J2 bias).
RECOMMENDED_WRITE_PULSE_UA = 600.0
RECOMMENDED_READ_PULSE_UA = 450.0
RECOMMENDED_PULSE_WIDTH_PS = 3.0
RECOMMENDED_J2_BIAS_UA = 75.0


@dataclass(frozen=True)
class CellHandles:
    """Named handles into a built cell netlist."""

    circuit: Circuit
    input_node: str
    clock_node: str
    output_node: str
    input_jj: str
    output_jj: str
    storage_inductor: str


def build_jtl_stage(bias_fraction: float = 0.7,
                    ic_ua: float = 100.0) -> CellHandles:
    """A two-junction JTL stage: pulse in at ``in``, pulse out at ``out``."""
    ckt = Circuit()
    ckt.inductor("LIN", "in", "n1", inductance_ph=2.0)
    ckt.jj("J1", "n1", "gnd", critical_current_ua=ic_ua)
    ckt.bias("IB1", "n1", current_ua=bias_fraction * ic_ua)
    ckt.inductor("L12", "n1", "n2", inductance_ph=4.0)
    ckt.jj("J2", "n2", "gnd", critical_current_ua=ic_ua)
    ckt.bias("IB2", "n2", current_ua=bias_fraction * ic_ua)
    ckt.inductor("LOUT", "n2", "out", inductance_ph=2.0)
    ckt.resistor("ROUT", "out", "gnd", resistance_ohm=8.0)
    return CellHandles(ckt, "in", "", "out", "J1", "J2", "L12")


def _build_dro_like(params: Dict[str, float], j1_bias_ua: float,
                    j2_bias_ua: float) -> CellHandles:
    ckt = Circuit()
    # Input branch: D pulse -> L1 -> storage loop entry (J1).
    ckt.inductor("L1", "d", "n1", inductance_ph=params["l1_ph"])
    ckt.jj("J1", "n1", "gnd", critical_current_ua=params["j1_ua"])
    ckt.bias("IB1", "n1", current_ua=j1_bias_ua)
    # Storage loop J1 - L2 - J2.
    ckt.inductor("L2", "n1", "n2", inductance_ph=params["l2_ph"])
    ckt.jj("J2", "n2", "gnd", critical_current_ua=params["j2_ua"])
    ckt.bias("IB2", "n2", current_ua=j2_bias_ua)
    # Readout: CLK pulse through L3 pushes J2 over critical; the released
    # fluxon escapes through J3 to the output.
    ckt.inductor("L3", "clk", "n2", inductance_ph=params["l3_ph"])
    ckt.jj("J3", "n2", "out", critical_current_ua=params["j3_ua"])
    ckt.inductor("LOUT", "out", "gnd", inductance_ph=6.0)
    ckt.resistor("ROUT", "out", "gnd", resistance_ohm=5.0)
    return CellHandles(ckt, "d", "clk", "out", "J1", "J2", "L2")


def build_dro_cell() -> CellHandles:
    """Single-fluxon DRO cell (Figure 1a-like loop)."""
    params = dict(EFFECTIVE_HCDRO_PARAMS)
    params["l2_ph"] = 24.0  # one-fluxon loop
    return _build_dro_like(params, j1_bias_ua=0.0, j2_bias_ua=75.0)


def build_hcdro_cell(params: Dict[str, float] | None = None,
                     j1_bias_ua: float = 0.0,
                     j2_bias_ua: float = 75.0) -> CellHandles:
    """HC-DRO cell able to hold up to three fluxons (Figure 1b)."""
    chosen = dict(EFFECTIVE_HCDRO_PARAMS)
    if params:
        chosen.update(params)
    return _build_dro_like(chosen, j1_bias_ua=j1_bias_ua,
                           j2_bias_ua=j2_bias_ua)


def build_splitter_cell(ic_ua: float = 100.0) -> CellHandles:
    """Analog splitter (Figure 3a): one input pulse, two output pulses.

    A driving junction feeds two output branches; when it switches, the
    released fluxon reproduces into both branch junctions.
    """
    ckt = Circuit()
    ckt.inductor("LIN", "in", "n1", inductance_ph=2.0)
    ckt.jj("J1", "n1", "gnd", critical_current_ua=1.4 * ic_ua)
    ckt.bias("IB1", "n1", current_ua=0.7 * 1.4 * ic_ua)
    for branch, node in (("A", "outa"), ("B", "outb")):
        ckt.inductor(f"L{branch}", "n1", f"m{branch}", inductance_ph=4.0)
        ckt.jj(f"J{branch}", f"m{branch}", "gnd", critical_current_ua=ic_ua)
        ckt.bias(f"IB{branch}", f"m{branch}", current_ua=0.7 * ic_ua)
        ckt.inductor(f"LO{branch}", f"m{branch}", node, inductance_ph=2.0)
        ckt.resistor(f"RO{branch}", node, "gnd", resistance_ohm=6.0)
    return CellHandles(ckt, "in", "", "outa", "J1", "JA", "LA")

