"""A compact superconducting circuit transient solver (JoSim stand-in).

The paper designed and verified its DRO / HC-DRO cells with JoSim, a
SPICE-class simulator for Josephson junction circuits.  This package
implements the same physics at the scale the reproduction needs:

* RCSJ junction model (``I = Ic sin(phi) + V/R + C dV/dt``) in the
  *phase domain*: node phases are the state variables and every element
  current is expressed through them,
* modified nodal analysis with trapezoidal integration and a Newton
  solve per timestep,
* fluxon bookkeeping: a 2*pi phase slip of a junction is one fluxon
  passing through it, so storage-loop occupancy is read directly off the
  junction phases.

Units: ps, uA, pH, mV, and Ohm-scale resistances entered in mV/uA
(1 mV/uA = 1 kOhm; helpers convert).  With these choices the flux
quantum is ``PHI0 = 2.0678 mV*ps`` and a 20 pH loop stores one fluxon at
~103 uA circulating current - exactly the regime of the paper's HC-DRO
(L2 ~ 20 pH, Ic ~ 110 uA).
"""

from repro.josim.elements import (
    BiasCurrent,
    Capacitor,
    Inductor,
    JosephsonJunction,
    PulseCurrent,
    Resistor,
)
from repro.josim.circuit import Circuit
from repro.josim.solver import (
    BatchedTransientSolver,
    TransientResult,
    TransientSolver,
    topology_signature,
)
from repro.josim.fluxon import junction_fluxons, loop_fluxons
from repro.josim.cells import (
    build_dro_cell,
    build_hcdro_cell,
    build_jtl_stage,
)
from repro.josim.sweep import (
    HCDROConfig,
    HCDROSummary,
    run_configs,
    simulate_hcdro,
    simulate_hcdro_batch,
    sweep_map,
    topology_key,
)
from repro.josim.backend import ArrayBackend, available_backends, get_backend
from repro.josim.montecarlo import (
    SpreadSpec,
    YieldConfig,
    YieldReport,
    run_yield_analysis,
)

__all__ = [
    "ArrayBackend",
    "BatchedTransientSolver",
    "BiasCurrent",
    "Capacitor",
    "Circuit",
    "HCDROConfig",
    "HCDROSummary",
    "Inductor",
    "JosephsonJunction",
    "PulseCurrent",
    "Resistor",
    "SpreadSpec",
    "TransientResult",
    "TransientSolver",
    "YieldConfig",
    "YieldReport",
    "available_backends",
    "build_dro_cell",
    "build_hcdro_cell",
    "build_jtl_stage",
    "get_backend",
    "junction_fluxons",
    "loop_fluxons",
    "run_configs",
    "run_yield_analysis",
    "simulate_hcdro",
    "simulate_hcdro_batch",
    "sweep_map",
    "topology_key",
    "topology_signature",
]
