"""Circuit elements for the phase-domain transient solver.

Every element connects two nodes (node 0 is ground) and reports the
current it draws from its positive node as a function of the node phase
vector and its time derivatives:

``I_element = f(phi_a - phi_b, d(phi)/dt, d2(phi)/dt2, t)``

with the phase-to-voltage relation ``V = KAPPA * dphi/dt`` where
``KAPPA = PHI0 / (2*pi)`` in mV*ps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import PHI0

#: Phase-to-flux constant, PHI0 / 2pi, in mV*ps.
KAPPA = PHI0 / (2.0 * math.pi)


@dataclass
class Element:
    """Base class: a two-terminal element between ``pos`` and ``neg`` nodes."""

    name: str
    pos: int
    neg: int

    def __post_init__(self) -> None:
        if self.pos < 0 or self.neg < 0:
            raise ValueError(f"{self.name}: node indices must be >= 0")
        if self.pos == self.neg:
            raise ValueError(f"{self.name}: element shorts a node to itself")


@dataclass
class JosephsonJunction(Element):
    """RCSJ junction: ``I = Ic sin(phi) + (KAPPA/R) phi' + KAPPA*C phi''``.

    ``critical_current_ua`` is Ic in uA; ``shunt_ohm`` the damping shunt in
    Ohm; ``capacitance_ff`` the junction capacitance in fF.  Defaults give
    an overdamped junction (Stewart-McCumber parameter < 1), the standard
    RSFQ operating point.
    """

    critical_current_ua: float = 100.0
    shunt_ohm: float = 2.0
    capacitance_ff: float = 200.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.critical_current_ua <= 0:
            raise ValueError(f"{self.name}: Ic must be positive")
        if self.shunt_ohm <= 0:
            raise ValueError(f"{self.name}: shunt resistance must be positive")
        if self.capacitance_ff < 0:
            raise ValueError(f"{self.name}: capacitance must be >= 0")
        # Derived constants, precomputed once so the solver's stamp
        # compilation (and the per-element reference path) never repeats
        # the unit conversions:
        #: Shunt conductance in uA/mV (1/R with R in mV/uA = kOhm).
        self.conductance = 1.0 / (self.shunt_ohm * 1e-3)
        #: Capacitance in uA*ps/mV.  1 fF = 1e-15 F; in (uA*ps/mV):
        #: 1 F = 1 A*s/V = 1e6 uA * 1e12 ps / 1e3 mV = 1e15, so
        #: 1 fF = 1 unit exactly.
        self.capacitance = self.capacitance_ff

    @property
    def stewart_mccumber(self) -> float:
        """Dimensionless damping parameter beta_c."""
        r_mv_per_ua = self.shunt_ohm * 1e-3
        return (2.0 * math.pi * self.critical_current_ua
                * r_mv_per_ua ** 2 * self.capacitance / PHI0)


@dataclass
class Inductor(Element):
    """Superconducting inductor: ``I = KAPPA * phi / L`` (L in pH).

    In these units L carries an implicit 1e-3 scale: L[pH] * I[uA] =
    1e-3 mV*ps, folded into :attr:`inv_l`.
    """

    inductance_ph: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance_ph <= 0:
            raise ValueError(f"{self.name}: inductance must be positive")
        #: KAPPA / L in uA per radian (precomputed once).
        self.inv_l = KAPPA / (self.inductance_ph * 1e-3)


@dataclass
class Resistor(Element):
    """Ohmic resistor (rarely used in SFQ cells outside shunts)."""

    resistance_ohm: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance_ohm <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")
        #: Conductance in uA/mV (precomputed once).
        self.conductance = 1.0 / (self.resistance_ohm * 1e-3)


@dataclass
class Capacitor(Element):
    """Linear capacitor (fF)."""

    capacitance_ff: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance_ff <= 0:
            raise ValueError(f"{self.name}: capacitance must be positive")


@dataclass
class BiasCurrent(Element):
    """DC bias current injected into ``pos`` (returned from ``neg``).

    The bias ramps up linearly over ``ramp_ps`` so switching it on does
    not itself kick junctions through phase slips - the same settling
    treatment JoSim decks use.
    """

    current_ua: float = 0.0
    ramp_ps: float = 5.0

    def value_at(self, t: float) -> float:
        if self.ramp_ps <= 0 or t >= self.ramp_ps:
            return self.current_ua
        if t <= 0:
            return 0.0
        return self.current_ua * t / self.ramp_ps


@dataclass
class PulseCurrent(Element):
    """SFQ-like input pulse: a raised-cosine current burst.

    The default amplitude/width pair delivers roughly one flux quantum of
    drive into a typical input inductor, which is how JoSim testbenches
    launch SFQ pulses into a cell.
    """

    start_ps: float = 10.0
    amplitude_ua: float = 500.0
    width_ps: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width_ps <= 0:
            raise ValueError(f"{self.name}: pulse width must be positive")

    def value_at(self, t: float) -> float:
        if not self.start_ps <= t <= self.start_ps + self.width_ps:
            return 0.0
        x = (t - self.start_ps) / self.width_ps
        return self.amplitude_ua * 0.5 * (1.0 - math.cos(2.0 * math.pi * x))

    @property
    def charge_area(self) -> float:
        """Integral of the pulse in uA*ps (flux delivered into 1 pH is area*1e-3)."""
        return self.amplitude_ua * self.width_ps * 0.5
