"""Fluxon bookkeeping on transient results.

In the phase picture, one fluxon passing through a junction is a 2*pi
phase slip, so the net fluxon count through a junction is its final phase
divided by 2*pi (rounded).  A storage loop's occupancy is the difference
between fluxons that entered through its input junction and left through
its output junction.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.josim.solver import TransientResult


def junction_fluxons(result: TransientResult, jj_name: str,
                     at_ps: Optional[float] = None) -> int:
    """Net fluxons that have passed through a junction by ``at_ps`` (default: end)."""
    phase = result.junction_phase(jj_name)
    if at_ps is None:
        value = phase[-1]
    else:
        index = int(np.searchsorted(result.times_ps, at_ps))
        index = min(index, len(phase) - 1)
        value = phase[index]
    return int(round(value / (2.0 * math.pi)))


def loop_fluxons(result: TransientResult, input_jj: str, output_jj: str,
                 at_ps: Optional[float] = None) -> int:
    """Fluxons held in a storage loop bounded by two junctions.

    For the DRO/HC-DRO loop ``J1 - L2 - J2`` every fluxon enters by
    slipping J1 and leaves by slipping J2, so occupancy is
    ``slips(J1) - slips(J2)``.
    """
    return (junction_fluxons(result, input_jj, at_ps)
            - junction_fluxons(result, output_jj, at_ps))


def switching_times_ps(result: TransientResult, jj_name: str) -> list:
    """Approximate times at which the junction completed each 2*pi slip."""
    phase = result.junction_phase(jj_name)
    times = result.times_ps
    events = []
    threshold = math.pi  # halfway through the slip
    next_level = 2.0 * math.pi
    for t, value in zip(times, phase):
        while value >= next_level - threshold + math.pi:
            events.append(float(t))
            next_level += 2.0 * math.pi
    return events
