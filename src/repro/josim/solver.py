"""Trapezoidal transient solver with a Newton iteration per timestep.

Two assembly backends share one Newton driver:

* **compiled** (default): at construction the circuit is compiled into
  per-class NumPy stamp structures — junction gather/scatter matrices,
  parameter vectors, a precomputed source-current table, and the
  constant linear part of the Jacobian (inductors, resistors,
  capacitors and the JJ shunt/capacitance terms never change between
  Newton iterations for a fixed timestep).  Each iteration is then a
  handful of vectorized NumPy calls — one matvec for the linear
  residual, one ``sin``/``cos`` pass over all junctions, two small
  scatter matvecs, and a direct LAPACK ``gesv`` solve — instead of a
  Python walk over the element list.
* **reference** (``reference=True``): the original per-element assembly,
  kept as the independently-auditable ground truth.  The equivalence
  tests drive both backends through the same decks and assert the
  trajectories agree to ~1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # direct LAPACK entry point: ~3x less call overhead than np.linalg
    from scipy.linalg import get_lapack_funcs

    _GESV = get_lapack_funcs(
        ("gesv",), (np.empty((1, 1)), np.empty(1)))[0]
except ImportError:  # pragma: no cover - scipy is normally available
    _GESV = None

from repro.errors import SimulationError
from repro.josim.circuit import Circuit
from repro.josim.elements import (
    BiasCurrent,
    Capacitor,
    Inductor,
    JosephsonJunction,
    KAPPA,
    PulseCurrent,
    Resistor,
)

#: Above this many table entries the per-step source fallback is used
#: instead of precomputing the (steps x nodes) source-current table.
_SOURCE_TABLE_LIMIT = 4_000_000


@dataclass
class TransientResult:
    """Time series produced by a transient run.

    ``phases`` has shape ``(num_steps, num_nodes + 1)``: column 0 is the
    ground node (identically zero) so node indices from the circuit can be
    used directly.
    """

    circuit: Circuit
    times_ps: np.ndarray
    phases: np.ndarray
    velocities: np.ndarray

    def node_phase(self, name: str) -> np.ndarray:
        return self.phases[:, self.circuit.node(name)]

    def node_voltage_mv(self, name: str) -> np.ndarray:
        """Node voltage: V = KAPPA * dphi/dt."""
        return KAPPA * self.velocities[:, self.circuit.node(name)]

    def junction_phase(self, jj_name: str) -> np.ndarray:
        """Phase difference across a junction over time."""
        element = self.circuit.element(jj_name)
        return self.phases[:, element.pos] - self.phases[:, element.neg]

    def element_delta_phase(self, name: str) -> np.ndarray:
        element = self.circuit.element(name)
        return self.phases[:, element.pos] - self.phases[:, element.neg]

    def inductor_current_ua(self, name: str) -> np.ndarray:
        """Current through an inductor over time (uA)."""
        element = self.circuit.element(name)
        if not isinstance(element, Inductor):
            raise SimulationError(f"{name!r} is not an inductor")
        return element.inv_l * self.element_delta_phase(name)


class _CompiledStamps:
    """Precomputed NumPy structures for one circuit at one timestep.

    The trapezoidal derivative estimates are affine in the trial phases,
    so every linear element contributes a constant Jacobian stamp.  The
    KCL residual splits as::

        F(phi) = J_lin @ phi + step_const + R_sin @ sin(D @ phi)

    where ``J_lin = A_phi + (2/h) A_v + (4/h^2) A_a`` is assembled once,
    ``step_const`` (history + source terms) is refreshed once per
    timestep, ``D`` is the junction incidence matrix and ``R_sin``
    carries the signed critical currents.  The Jacobian update is the
    flat scatter matvec ``J.ravel() = J_lin.ravel() + JC @ cos(D@phi)``.
    """

    def __init__(self, circuit: Circuit, h: float) -> None:
        n = circuit.num_nodes
        self.n = n
        dv = 2.0 / h
        da = 4.0 / (h * h)
        a_phi = np.zeros((n, n))   # d(residual)/d(phi) from inductors
        a_v = np.zeros((n, n))     # d(residual)/d(v) from R + JJ shunts
        a_a = np.zeros((n, n))     # d(residual)/d(a) from C + JJ caps

        groups = circuit.partition()
        junctions = groups.get(JosephsonJunction, [])
        for element in junctions:
            self._stamp(a_v, element.pos, element.neg,
                        KAPPA * element.conductance)
            self._stamp(a_a, element.pos, element.neg,
                        KAPPA * element.capacitance)
        for element in groups.get(Inductor, []):
            self._stamp(a_phi, element.pos, element.neg, element.inv_l)
        for element in groups.get(Resistor, []):
            self._stamp(a_v, element.pos, element.neg,
                        KAPPA * element.conductance)
        for element in groups.get(Capacitor, []):
            self._stamp(a_a, element.pos, element.neg,
                        KAPPA * element.capacitance_ff)

        self.a_v = a_v
        self.a_a = a_a
        self.j_lin = a_phi + dv * a_v + da * a_a
        self.j_lin_flat = self.j_lin.ravel()

        # Junction gather/scatter matrices.
        k = len(junctions)
        self.num_jj = k
        incidence = np.zeros((k, n))       # dphi = incidence @ phi
        r_sin = np.zeros((n, k))           # residual += r_sin @ sin(dphi)
        jc = np.zeros((n * n, k))          # J.ravel() += jc @ cos(dphi)
        for idx, element in enumerate(junctions):
            p, q, ic = element.pos, element.neg, element.critical_current_ua
            if p > 0:
                incidence[idx, p - 1] = 1.0
                r_sin[p - 1, idx] += ic
                jc[(p - 1) * n + (p - 1), idx] += ic
                if q > 0:
                    jc[(p - 1) * n + (q - 1), idx] -= ic
            if q > 0:
                incidence[idx, q - 1] = -1.0
                r_sin[q - 1, idx] -= ic
                jc[(q - 1) * n + (q - 1), idx] += ic
                if p > 0:
                    jc[(q - 1) * n + (p - 1), idx] -= ic
        self.incidence = incidence
        self.r_sin = r_sin
        self.jc = jc

        # Sources: a source injected INTO pos appears as a negative
        # outflow in the residual (matching the reference assembly), so
        # the scatter matrix carries -1 at pos and +1 at neg.
        biases = groups.get(BiasCurrent, [])
        pulses = groups.get(PulseCurrent, [])
        num_src = len(biases) + len(pulses)
        scatter = np.zeros((n, num_src))
        for idx, element in enumerate(biases + pulses):
            if element.pos > 0:
                scatter[element.pos - 1, idx] = -1.0
            if element.neg > 0:
                scatter[element.neg - 1, idx] = 1.0
        self.src_scatter = scatter
        self.bias_cur = np.asarray([b.current_ua for b in biases])
        self.bias_ramp = np.asarray([b.ramp_ps for b in biases])
        self.pulse_start = np.asarray([p.start_ps for p in pulses])
        self.pulse_amp = np.asarray([p.amplitude_ua for p in pulses])
        self.pulse_width = np.asarray([p.width_ps for p in pulses])

    @staticmethod
    def _stamp(matrix: np.ndarray, pos: int, neg: int, value: float) -> None:
        if pos > 0:
            matrix[pos - 1, pos - 1] += value
            if neg > 0:
                matrix[pos - 1, neg - 1] -= value
        if neg > 0:
            matrix[neg - 1, neg - 1] += value
            if pos > 0:
                matrix[neg - 1, pos - 1] -= value

    def _source_values(self, t) -> np.ndarray:
        """Per-source injected currents at time(s) ``t`` (vectorized)."""
        t = np.asarray(t, dtype=float)
        columns = []
        if self.bias_cur.size:
            ramp = self.bias_ramp
            denom = np.where(ramp > 0, ramp, 1.0)
            tt = t[..., None]
            ramped = np.where(
                (ramp <= 0) | (tt >= ramp),
                self.bias_cur,
                np.where(tt <= 0, 0.0, self.bias_cur * tt / denom))
            columns.append(ramped)
        if self.pulse_amp.size:
            x = (t[..., None] - self.pulse_start) / self.pulse_width
            columns.append(np.where(
                (x >= 0.0) & (x <= 1.0),
                self.pulse_amp * 0.5 * (1.0 - np.cos(2.0 * np.pi * x)),
                0.0))
        if not columns:
            return np.zeros(t.shape + (0,))
        return np.concatenate(columns, axis=-1)

    def source_table(self, times: np.ndarray) -> np.ndarray:
        """Signed residual source contribution for every step at once."""
        return self._source_values(times) @ self.src_scatter.T

    def source_vector(self, t: float) -> np.ndarray:
        """Signed residual source contribution at one time point."""
        return self.src_scatter @ self._source_values(t)


def _solve_dense(jacobian: np.ndarray, residual: np.ndarray) -> np.ndarray:
    """Direct linear solve; jacobian and residual may be overwritten."""
    if _GESV is not None:
        _, _, update, info = _GESV(jacobian, residual,
                                   overwrite_a=True, overwrite_b=True)
        if info != 0:
            raise np.linalg.LinAlgError(f"gesv failed (info={info})")
        return update
    return np.linalg.solve(jacobian, residual)


class TransientSolver:
    """Phase-domain MNA with trapezoidal integration.

    State variables are the non-ground node phases.  Each step solves the
    nonlinear KCL system with Newton's method; the Jacobian is dense
    (cells have a handful of nodes).

    ``reference=True`` selects the per-element assembly path instead of
    the compiled-stamp fast path; results agree to ~1e-9 in phase.
    """

    def __init__(self, circuit: Circuit, timestep_ps: float = 0.05,
                 newton_tol_ua: float = 1e-6, max_newton_iter: int = 60,
                 reference: bool = False) -> None:
        circuit.validate()
        if timestep_ps <= 0:
            raise SimulationError("timestep must be positive")
        self.circuit = circuit
        self.h = timestep_ps
        self.tol = newton_tol_ua
        self.max_iter = max_newton_iter
        self.reference = reference
        self._n = circuit.num_nodes  # non-ground nodes
        self._stamps: _CompiledStamps | None = None
        self._compiled_element_count = -1
        if not reference:
            self._compile()

    def _compile(self) -> None:
        self._stamps = _CompiledStamps(self.circuit, self.h)
        self._compiled_element_count = len(self.circuit.elements)

    # -- assembly helpers --------------------------------------------------

    def _stamp(self, matrix: np.ndarray, pos: int, neg: int, value: float) -> None:
        """Stamp a two-terminal conductance-like derivative into the Jacobian."""
        _CompiledStamps._stamp(matrix, pos, neg, value)

    def _residual_and_jacobian(self, phi: np.ndarray, phi_prev: np.ndarray,
                               v_prev: np.ndarray, a_prev: np.ndarray,
                               t: float):
        """Reference per-element assembly: KCL residual F (uA) and dF/dphi."""
        h = self.h
        # Trapezoidal derivative estimates at the trial point.
        v = 2.0 / h * (phi - phi_prev) - v_prev
        a = 4.0 / (h * h) * (phi - phi_prev) - 4.0 / h * v_prev - a_prev
        dv = 2.0 / h
        da = 4.0 / (h * h)

        residual = np.zeros(self._n)
        jacobian = np.zeros((self._n, self._n))

        def delta(vector: np.ndarray, pos: int, neg: int) -> float:
            left = vector[pos - 1] if pos > 0 else 0.0
            right = vector[neg - 1] if neg > 0 else 0.0
            return left - right

        def accumulate(pos: int, neg: int, current: float) -> None:
            if pos > 0:
                residual[pos - 1] += current
            if neg > 0:
                residual[neg - 1] -= current

        for element in self.circuit.elements:
            pos, neg = element.pos, element.neg
            if isinstance(element, JosephsonJunction):
                dphi = delta(phi, pos, neg)
                current = (element.critical_current_ua * np.sin(dphi)
                           + KAPPA * element.conductance * delta(v, pos, neg)
                           + KAPPA * element.capacitance * delta(a, pos, neg))
                accumulate(pos, neg, current)
                slope = (element.critical_current_ua * np.cos(dphi)
                         + KAPPA * element.conductance * dv
                         + KAPPA * element.capacitance * da)
                self._stamp(jacobian, pos, neg, slope)
            elif isinstance(element, Inductor):
                current = element.inv_l * delta(phi, pos, neg)
                accumulate(pos, neg, current)
                self._stamp(jacobian, pos, neg, element.inv_l)
            elif isinstance(element, Resistor):
                current = KAPPA * element.conductance * delta(v, pos, neg)
                accumulate(pos, neg, current)
                self._stamp(jacobian, pos, neg, KAPPA * element.conductance * dv)
            elif isinstance(element, Capacitor):
                current = KAPPA * element.capacitance_ff * delta(a, pos, neg)
                accumulate(pos, neg, current)
                self._stamp(jacobian, pos, neg,
                            KAPPA * element.capacitance_ff * da)
            elif isinstance(element, (BiasCurrent, PulseCurrent)):
                injected = element.value_at(t)
                # Injected INTO pos: appears as a negative outflow term.
                if pos > 0:
                    residual[pos - 1] -= injected
                if neg > 0:
                    residual[neg - 1] += injected
        return residual, jacobian, v, a

    # -- main entry ----------------------------------------------------------

    def run(self, duration_ps: float,
            record_every: int = 1) -> TransientResult:
        """Integrate for ``duration_ps`` and return the recorded series.

        Every ``record_every``-th step is recorded; the final step is
        always recorded even when ``steps % record_every != 0`` so the
        series ends at the true end of the transient.
        """
        if duration_ps <= 0:
            raise SimulationError("duration must be positive")
        if record_every < 1:
            raise SimulationError("record_every must be >= 1")
        steps = int(round(duration_ps / self.h))
        if not self.reference and (
                self._stamps is None
                or self._compiled_element_count != len(self.circuit.elements)):
            self._compile()  # the circuit grew since construction
        if self.reference:
            times, phases, velocities = self._run_reference(
                steps, record_every)
        else:
            times, phases, velocities = self._run_compiled(
                steps, record_every)
        return TransientResult(
            circuit=self.circuit,
            times_ps=times,
            phases=phases,
            velocities=velocities,
        )

    def _record_plan(self, steps: int, record_every: int):
        """Preallocated recording buffers (final step always recorded)."""
        recorded = list(range(0, steps + 1, record_every))
        if recorded[-1] != steps:
            recorded.append(steps)
        num_rec = len(recorded)
        times = np.zeros(num_rec)
        phases = np.zeros((num_rec, self._n + 1))
        velocities = np.zeros((num_rec, self._n + 1))
        return times, phases, velocities

    def _run_compiled(self, steps: int, record_every: int):
        stamps = self._stamps
        n = self._n
        h = self.h
        tol = self.tol
        max_iter = self.max_iter
        c1 = 2.0 / h             # dv/dphi
        c2 = 4.0 / (h * h)       # da/dphi
        c3 = 4.0 / h
        phi = np.zeros(n)
        v = np.zeros(n)
        a = np.zeros(n)
        times, phases, velocities = self._record_plan(steps, record_every)
        row = 1

        j_lin = stamps.j_lin
        j_lin_flat = stamps.j_lin_flat
        a_v = stamps.a_v
        a_a = stamps.a_a
        incidence = stamps.incidence
        r_sin = stamps.r_sin
        jc = stamps.jc

        # Source currents for the whole transient in one vectorized pass
        # (falls back to per-step evaluation for very long runs).
        if steps * max(n, 1) <= _SOURCE_TABLE_LIMIT:
            source_rows = stamps.source_table(h * np.arange(1, steps + 1))
        else:
            source_rows = None

        residual = np.empty(n)
        jac_flat = np.empty(n * n)
        jacobian = jac_flat.reshape(n, n)
        hist = np.empty(n)
        norm = 0.0

        for step in range(1, steps + 1):
            t = step * h
            # History + source terms: constant across Newton iterations.
            np.dot(a_v, c1 * phi + v, out=hist)
            step_const = -hist - a_a.dot(c2 * phi + c3 * v + a)
            if source_rows is not None:
                step_const += source_rows[step - 1]
            else:
                step_const += stamps.source_vector(t)
            trial = phi.copy()  # previous solution is the predictor
            converged = False
            for _ in range(max_iter):
                dphi = incidence.dot(trial)
                np.dot(j_lin, trial, out=residual)
                residual += step_const
                residual += r_sin.dot(np.sin(dphi))
                # Exact inf-norm; the tolist round-trip is ~4x cheaper
                # than a NumPy reduction at this vector size.
                norm = max(map(abs, residual.tolist()))
                if norm < tol:
                    converged = True
                    break
                np.dot(jc, np.cos(dphi), out=jac_flat)
                jac_flat += j_lin_flat
                try:
                    update = _solve_dense(jacobian, residual)
                except np.linalg.LinAlgError as exc:
                    raise SimulationError(
                        f"singular Jacobian at t={t:.3f} ps") from exc
                # Damped Newton keeps 2pi phase slips stable.
                max_step = max(map(abs, update.tolist()))
                if max_step > 1.0:
                    update *= 1.0 / max_step
                trial -= update
            if not converged:
                raise SimulationError(
                    f"Newton failed to converge at t={t:.3f} ps "
                    f"(residual {norm:.3e} uA)")
            # Converged derivatives come from the trapezoidal formulas
            # directly - no redundant assembly pass.
            v_new = 2.0 / h * (trial - phi) - v
            a_new = 4.0 / (h * h) * (trial - phi) - 4.0 / h * v - a
            phi, v, a = trial, v_new, a_new
            if step % record_every == 0 or step == steps:
                times[row] = t
                phases[row, 1:] = phi
                velocities[row, 1:] = v
                row += 1
        return times, phases, velocities

    def _run_reference(self, steps: int, record_every: int):
        h = self.h
        phi = np.zeros(self._n)
        v = np.zeros(self._n)
        a = np.zeros(self._n)
        times, phases, velocities = self._record_plan(steps, record_every)
        row = 1
        norm = 0.0
        for step in range(1, steps + 1):
            t = step * h
            trial = phi.copy()  # previous solution is the predictor
            converged = False
            for _ in range(self.max_iter):
                residual, jacobian, _, _ = \
                    self._residual_and_jacobian(trial, phi, v, a, t)
                norm = float(np.max(np.abs(residual)))
                if norm < self.tol:
                    converged = True
                    break
                try:
                    update = np.linalg.solve(jacobian, residual)
                except np.linalg.LinAlgError as exc:
                    raise SimulationError(
                        f"singular Jacobian at t={t:.3f} ps") from exc
                # Damped Newton keeps 2pi phase slips stable.
                max_step = float(np.max(np.abs(update)))
                if max_step > 1.0:
                    update *= 1.0 / max_step
                trial -= update
            if not converged:
                raise SimulationError(
                    f"Newton failed to converge at t={t:.3f} ps "
                    f"(residual {norm:.3e} uA)")
            # Reuse the converged iteration's trapezoidal derivatives
            # instead of a redundant final assembly pass.
            v_new = 2.0 / h * (trial - phi) - v
            a_new = 4.0 / (h * h) * (trial - phi) - 4.0 / h * v - a
            phi, v, a = trial, v_new, a_new
            if step % record_every == 0 or step == steps:
                times[row] = t
                phases[row, 1:] = phi
                velocities[row, 1:] = v
                row += 1
        return times, phases, velocities
